//! Cross-crate integration: the full simulated VoD pipeline
//! (radio model → home topology → multipath scheduler → HLS player).

use threegol::core::vod::{RadioStart, VodExperiment};
use threegol::hls::VideoQuality;
use threegol::radio::LocationProfile;
use threegol::sched::Policy;

fn q(i: usize) -> VideoQuality {
    VideoQuality::paper_ladder().swap_remove(i)
}

#[test]
fn threegol_beats_adsl_across_the_ladder() {
    for (qi, quality) in VideoQuality::paper_ladder().into_iter().enumerate() {
        let e = VodExperiment::paper_default(LocationProfile::reference_2mbps(), quality, 2);
        let adsl = e.adsl_only().run_mean(3);
        let gol = e.run_mean(3);
        assert!(
            gol.download.mean < adsl.download.mean,
            "Q{}: 3GOL {} vs ADSL {}",
            qi + 1,
            gol.download.mean,
            adsl.download.mean
        );
        assert!(gol.prebuffer.mean <= adsl.prebuffer.mean, "Q{}: pre-buffer regressed", qi + 1);
    }
}

#[test]
fn playout_with_full_prebuffer_never_stalls() {
    let mut e = VodExperiment::paper_default(LocationProfile::reference_2mbps(), q(3), 1);
    e.prebuffer_fraction = 1.0;
    let out = e.run_once(0);
    assert!(out.playout.smooth(), "stalls: {:?}", out.playout.stalls);
    assert_eq!(out.playout.startup_secs, out.prebuffer_secs);
}

#[test]
fn greedy_waste_is_small() {
    // The paper bounds waste by (N−1)·S_max per duplication round and
    // observes it is "generally much smaller". With 2 phones and Q4
    // segments (0.9225 MB) assert the practical envelope N(N−1)·S and
    // that the average stays under the paper's single-round bound.
    let e = VodExperiment::paper_default(LocationProfile::reference_2mbps(), q(3), 2);
    let single_round = 2.0 * 922_500.0;
    let envelope = 6.0 * 922_500.0;
    let mut total = 0.0;
    for rep in 0..5 {
        let out = e.run_once(rep);
        total += out.wasted_bytes;
        assert!(
            out.wasted_bytes <= envelope + 1.0,
            "rep {rep}: waste {} over envelope {envelope}",
            out.wasted_bytes
        );
    }
    assert!(total / 5.0 <= single_round, "mean waste {} over paper bound", total / 5.0);
}

#[test]
fn every_policy_completes_the_same_video() {
    for policy in [Policy::Greedy, Policy::RoundRobin, Policy::min_time_paper()] {
        let mut e = VodExperiment::paper_default(LocationProfile::reference_2mbps(), q(1), 2);
        e.policy = policy;
        let out = e.run_once(0);
        assert!(out.download_secs.is_finite() && out.download_secs > 0.0);
        // All 20 segments accounted for across paths (plus waste).
        let moved: f64 = out.bytes_per_path.iter().sum();
        let payload = 20.0 * 311e3 / 8.0 * 10.0;
        assert!(moved >= payload - 1.0, "{policy:?}: moved {moved} < payload {payload}");
    }
}

#[test]
fn warm_radio_never_hurts_prebuffer_much() {
    let mut cold = VodExperiment::paper_default(LocationProfile::paper_table4().remove(0), q(0), 2);
    cold.prebuffer_fraction = 0.2;
    let mut warm = cold.clone();
    warm.radio_start = RadioStart::Warm;
    let c = cold.run_mean(5);
    let w = warm.run_mean(5);
    // The acquisition delay is ~2 s; warm starts should not be slower
    // by more than noise.
    assert!(w.prebuffer.mean <= c.prebuffer.mean + 1.0);
}

#[test]
fn faster_adsl_reduces_relative_benefit() {
    // Paper Table 2's VDSL observation: a fat pipe leaves little room.
    let quality = q(3);
    let slow_loc = LocationProfile::reference_2mbps();
    let mut fast_loc = LocationProfile::reference_2mbps();
    fast_loc.adsl_down_bps = 20e6;
    let slow = VodExperiment::paper_default(slow_loc, quality.clone(), 2);
    let fast = VodExperiment::paper_default(fast_loc, quality, 2);
    let slow_speedup = slow.adsl_only().run_mean(3).download.mean / slow.run_mean(3).download.mean;
    let fast_speedup = fast.adsl_only().run_mean(3).download.mean / fast.run_mean(3).download.mean;
    assert!(
        slow_speedup > fast_speedup,
        "slow line ×{slow_speedup:.2} vs fast line ×{fast_speedup:.2}"
    );
}
