//! Cross-crate integration: homes as isolated units on the virtual
//! network. Several households share one runtime; each keeps its own
//! address namespace, discovery broadcast domain and quota state.

use std::sync::Arc;
use std::time::Duration;

use threegol::proxy::{
    DeviceProxy, Discovery, Home, HomeNet, HomeSpec, OriginServer, PathTarget, RateLimit,
    ThreegolClient,
};

/// Bring up one home's origin + discovery + named devices and return
/// the discovery listener plus the device handles.
async fn bring_up_home(
    net: HomeNet,
    devices: &[(&str, f64)],
) -> (Discovery, Vec<(Arc<DeviceProxy>, std::net::SocketAddr)>) {
    let origin = Arc::new(OriginServer::small_for_tests());
    let (origin_addr, _task) = origin.clone().spawn(&net.origin().to_string()).await.unwrap();
    let discovery = Discovery::bind(&net.discovery().to_string()).await.unwrap();
    let disco_addr = discovery.local_addr().unwrap();
    let mut spawned = Vec::new();
    for (i, (name, allowance)) in devices.iter().enumerate() {
        let device = Arc::new(DeviceProxy::new(
            name.to_string(),
            origin_addr,
            RateLimit::unlimited(),
            RateLimit::unlimited(),
            *allowance,
        ));
        let (lan_addr, _task) = device.clone().spawn(&net.device(i).to_string()).await.unwrap();
        device.clone().spawn_announcer(disco_addr, lan_addr, Duration::from_millis(50));
        spawned.push((device, lan_addr));
    }
    (discovery, spawned)
}

#[tokio::test]
async fn quota_exhaustion_withdraws_only_in_its_own_home() {
    let net_a = HomeNet::new(1);
    let net_b = HomeNet::new(2);
    // Home A: one device whose allowance dies after two 64 kB probes,
    // one healthy device. Home B: one healthy device.
    let (disc_a, devs_a) = bring_up_home(net_a, &[("a-small", 100_000.0), ("a-big", 1e9)]).await;
    let (disc_b, _devs_b) = bring_up_home(net_b, &[("b-phone", 1e9)]).await;

    tokio::time::sleep(Duration::from_millis(300)).await;
    assert_eq!(disc_a.admissible().len(), 2);
    assert_eq!(disc_b.admissible().len(), 1);
    // Broadcast domains are disjoint: neither home hears the other's
    // announcers, and every advertised proxy lives in its own subnet.
    assert!(disc_b.admissible().iter().all(|ad| ad.name == "b-phone"));
    assert!(disc_a.admissible().iter().all(|ad| ad.name.starts_with("a-")));
    for ad in disc_a.admissible() {
        assert_eq!(ad.proxy_addr.to_string().split('.').nth(2), Some("1"), "{}", ad.proxy_addr);
    }

    // Burn a-small's quota through its proxy.
    let (small_dev, small_addr) = &devs_a[0];
    let client = ThreegolClient::new(vec![PathTarget::Device { addr: *small_addr }]);
    for _ in 0..2 {
        let (bodies, _) = client.fetch(vec!["/probe.bin".into()], None).await.unwrap();
        assert_eq!(bodies[0].len(), 64_000);
    }
    assert!(!small_dev.should_advertise());

    // Past the TTL the stale ad expires — in home A only; home B's
    // view never flinches.
    tokio::time::sleep(Duration::from_millis(3_200)).await;
    let phi_a = disc_a.admissible();
    assert_eq!(phi_a.len(), 1);
    assert_eq!(phi_a[0].name, "a-big");
    assert_eq!(disc_b.admissible().len(), 1);
}

#[tokio::test]
async fn two_full_homes_share_one_runtime() {
    // Two complete households, workload and all, in a single runtime.
    // Identical specs (apart from the namespace) must produce
    // identical timings — the homes cannot perturb each other.
    let a = Home::run(&HomeSpec::paper_default(11)).await.unwrap();
    let b = Home::run(&HomeSpec::paper_default(12)).await.unwrap();
    assert_eq!(a.vod_secs, b.vod_secs);
    assert_eq!(a.upload_secs, b.upload_secs);
    assert_eq!(a.upload_device_bytes, b.upload_device_bytes);

    // A crippled third home (no phones) is slower, proving the gain
    // really comes from its own devices, not a neighbour's.
    let solo = Home::run(&HomeSpec::paper_default(13).devices(0)).await.unwrap();
    assert!(solo.upload_secs > a.upload_secs, "{} vs {}", solo.upload_secs, a.upload_secs);
    assert!(a.upload_gain > solo.upload_gain);
}
