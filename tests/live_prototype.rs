//! Cross-crate integration: the live tokio prototype — origin, device
//! proxies, discovery, HLS-aware client — on the vendored runtime's
//! in-process virtual network. Addresses here use the loopback name
//! for familiarity, but nothing ever touches the kernel: every
//! listener and datagram lives in the runtime's own registry under
//! virtual time, which is what makes the transcript test below able to
//! demand byte-for-byte identical behavior across runs.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use threegol::hls::VideoQuality;
use threegol::proxy::{
    DeviceProxy, Discovery, OriginServer, PathTarget, RateLimit, ThreegolClient,
};

async fn small_origin() -> (Arc<OriginServer>, std::net::SocketAddr) {
    let ladder = vec![VideoQuality::new("Q1", 64e3)];
    let origin = Arc::new(OriginServer::new(&ladder, 10.0, 2.0));
    let (addr, _task) = origin.clone().spawn("127.0.0.1:0").await.unwrap();
    (origin, addr)
}

#[tokio::test]
async fn discovery_builds_admissible_set_from_live_devices() {
    let (_origin, origin_addr) = small_origin().await;
    let discovery = Discovery::bind("127.0.0.1:0").await.unwrap();
    let disco_addr = discovery.local_addr().unwrap();
    for i in 0..2 {
        let device = Arc::new(DeviceProxy::new(
            format!("phone-{i}"),
            origin_addr,
            RateLimit::unlimited(),
            RateLimit::unlimited(),
            1e9,
        ));
        let (lan_addr, _task) = device.clone().spawn("127.0.0.1:0").await.unwrap();
        device.spawn_announcer(disco_addr, lan_addr, Duration::from_millis(50));
    }
    tokio::time::sleep(Duration::from_millis(300)).await;
    let phi = discovery.admissible();
    assert_eq!(phi.len(), 2);
    assert!(phi.iter().all(|a| a.available_bytes > 0.0));
}

#[tokio::test]
async fn exhausted_device_drops_out_of_phi() {
    let (_origin, origin_addr) = small_origin().await;
    let discovery = Discovery::bind("127.0.0.1:0").await.unwrap();
    let disco_addr = discovery.local_addr().unwrap();
    // Allowance below one 2 MB probe: a single transfer exhausts it.
    let device = Arc::new(DeviceProxy::new(
        "phone-0",
        origin_addr,
        RateLimit::unlimited(),
        RateLimit::unlimited(),
        1_000_000.0,
    ));
    let (lan_addr, _task) = device.clone().spawn("127.0.0.1:0").await.unwrap();
    device.clone().spawn_announcer(disco_addr, lan_addr, Duration::from_millis(50));
    tokio::time::sleep(Duration::from_millis(200)).await;
    assert_eq!(discovery.admissible().len(), 1);

    // Burn the quota through the proxy.
    let client = ThreegolClient::new(vec![PathTarget::Device { addr: lan_addr }]);
    let (bodies, _) = client.fetch(vec!["/probe.bin".into()], None).await.unwrap();
    assert_eq!(bodies[0].len(), 2_000_000);
    assert!(!device.should_advertise());

    // After the TTL the stale advertisement expires and Φ empties.
    tokio::time::sleep(Duration::from_millis(3_200)).await;
    assert!(discovery.admissible().is_empty());
}

#[tokio::test]
async fn hls_fetch_through_discovered_devices() {
    let (origin, origin_addr) = small_origin().await;
    let device = Arc::new(DeviceProxy::new(
        "phone-0",
        origin_addr,
        RateLimit::new(4e6),
        RateLimit::new(4e6),
        1e9,
    ));
    let (lan_addr, _task) = device.clone().spawn("127.0.0.1:0").await.unwrap();
    let client = ThreegolClient::new(vec![
        PathTarget::Gateway {
            origin: origin_addr,
            down: RateLimit::new(4e6),
            up: RateLimit::new(1e6),
        },
        PathTarget::Device { addr: lan_addr },
    ]);
    let (playlist, bodies, report) = client.fetch_hls("/q1/index.m3u8").await.unwrap();
    assert_eq!(playlist.entries.len(), 5);
    assert_eq!(bodies.len(), 5);
    assert!(bodies.iter().all(|b| b.len() == 16_000));
    assert!((report.bytes_per_path.iter().sum::<f64>()) >= 5.0 * 16_000.0);
    assert!(origin.requests_served() >= 6); // playlist + 5 segments
}

#[tokio::test]
async fn uploads_survive_a_slow_device() {
    // One healthy path and one pathologically slow device: greedy
    // duplication must still deliver all photos.
    let (origin, origin_addr) = small_origin().await;
    let device = Arc::new(DeviceProxy::new(
        "phone-slow",
        origin_addr,
        RateLimit { rate_bps: 40_000.0, burst_bytes: 4096.0 },
        RateLimit { rate_bps: 40_000.0, burst_bytes: 4096.0 },
        1e9,
    ));
    let (lan_addr, _task) = device.clone().spawn("127.0.0.1:0").await.unwrap();
    let client = ThreegolClient::new(vec![
        PathTarget::Gateway {
            origin: origin_addr,
            down: RateLimit::new(8e6),
            up: RateLimit::new(8e6),
        },
        PathTarget::Device { addr: lan_addr },
    ]);
    let photos: Vec<(String, bytes::Bytes)> =
        (0..5).map(|i| (format!("p{i}.jpg"), bytes::Bytes::from(vec![i as u8; 50_000]))).collect();
    let report = client.upload_photos(photos).await.unwrap();
    assert!(report.item_secs.iter().all(|t| t.is_finite()));
    assert_eq!(origin.uploads().len(), 5);
}

/// Run the full prototype scenario once in a fresh runtime and record
/// everything observable — discovery order, body sizes and checksums,
/// every report field at full `f64` precision, origin-side state —
/// into one transcript string.
fn scenario_transcript() -> String {
    tokio::runtime::block_on(async {
        let mut log = String::new();
        let (origin, origin_addr) = small_origin().await;
        let discovery = Discovery::bind("127.0.0.1:0").await.unwrap();
        let disco_addr = discovery.local_addr().unwrap();
        for i in 0..2 {
            let device = Arc::new(DeviceProxy::new(
                format!("phone-{i}"),
                origin_addr,
                RateLimit::new(2e6),
                RateLimit::new(1e6),
                1e9,
            ));
            let (lan_addr, _task) = device.clone().spawn("127.0.0.1:0").await.unwrap();
            device.spawn_announcer(disco_addr, lan_addr, Duration::from_millis(50));
        }
        tokio::time::sleep(Duration::from_millis(200)).await;

        let mut paths = vec![PathTarget::Gateway {
            origin: origin_addr,
            down: RateLimit::new(4e6),
            up: RateLimit::new(0.5e6),
        }];
        for ad in discovery.admissible() {
            writeln!(log, "discovered {} at {} ({})", ad.name, ad.proxy_addr, ad.available_bytes)
                .unwrap();
            paths.push(PathTarget::Device { addr: ad.proxy_addr });
        }
        let client = ThreegolClient::new(paths);

        let t0 = tokio::time::Instant::now();
        let (playlist, bodies, report) = client.fetch_hls("/q1/index.m3u8").await.unwrap();
        writeln!(log, "vod: {} entries in {:?}", playlist.entries.len(), t0.elapsed()).unwrap();
        for body in &bodies {
            let sum: u64 = body.iter().map(|b| *b as u64).sum();
            writeln!(log, "segment {} bytes, checksum {sum}", body.len()).unwrap();
        }
        writeln!(log, "vod report: {report:?}").unwrap();

        let photos: Vec<(String, bytes::Bytes)> = (0..4)
            .map(|i| (format!("p{i}.jpg"), bytes::Bytes::from(vec![i as u8; 80_000])))
            .collect();
        let t0 = tokio::time::Instant::now();
        let report = client.upload_photos(photos).await.unwrap();
        writeln!(log, "upload in {:?}: {report:?}", t0.elapsed()).unwrap();
        for up in origin.uploads() {
            writeln!(log, "origin got {:?} ({} bytes)", up.filenames, up.total_bytes).unwrap();
        }
        writeln!(log, "origin served {} requests", origin.requests_served()).unwrap();
        log
    })
}

#[test]
fn scenario_transcript_is_byte_for_byte_deterministic() {
    let first = scenario_transcript();
    let second = scenario_transcript();
    assert!(!first.is_empty());
    assert_eq!(first, second, "virtual-net runs diverged");
}
