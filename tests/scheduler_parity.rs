//! Cross-validation of the two scheduler drivers: the pure toy
//! executor (`threegol-sched::toy`) and the fluid-simulation runner
//! (`threegol-core::TransactionRunner`) must agree exactly on
//! constant-rate, overhead-free paths — any divergence means one of
//! the drivers misinterprets the scheduler contract.

use proptest::prelude::*;

use threegol::core::{PathSpec, TransactionRunner};
use threegol::sched::toy::ToyExecutor;
use threegol::sched::{build, Policy, TransactionSpec};
use threegol::simnet::{CapacityProcess, Simulation};

fn run_both(policy: Policy, sizes: &[f64], rates_bps: &[f64]) -> (f64, f64, Vec<f64>, Vec<f64>) {
    // Toy executor.
    let mut sched = build(policy, TransactionSpec::new(sizes.to_vec(), rates_bps.len()));
    let toy = ToyExecutor::constant(rates_bps.to_vec()).run(sched.as_mut(), sizes);

    // Fluid simulation.
    let mut sim = Simulation::new();
    let paths: Vec<PathSpec> = rates_bps
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let l = sim.add_link(format!("p{i}"), CapacityProcess::constant(r));
            PathSpec::new(vec![l], 0.0, 0.0)
        })
        .collect();
    let mut sched = build(policy, TransactionSpec::new(sizes.to_vec(), rates_bps.len()));
    let fluid = TransactionRunner::new(paths, sizes.to_vec())
        .run(&mut sim, sched.as_mut())
        .expect("completes");

    (toy.total_secs, fluid.total_secs, toy.item_completion_secs, fluid.item_completion_secs)
}

#[test]
fn drivers_agree_on_fixed_scenarios() {
    let scenarios: Vec<(Policy, Vec<f64>, Vec<f64>)> = vec![
        (Policy::Greedy, vec![1000.0; 5], vec![8000.0, 4000.0]),
        (Policy::RoundRobin, vec![1000.0; 5], vec![8000.0, 4000.0]),
        (Policy::min_time_paper(), vec![1000.0; 5], vec![8000.0, 4000.0]),
        (Policy::Greedy, vec![500.0, 2500.0, 1500.0], vec![6000.0, 6000.0, 2000.0]),
        (Policy::RoundRobin, vec![750.0; 7], vec![1000.0]),
    ];
    for (policy, sizes, rates) in scenarios {
        let (t_toy, t_fluid, c_toy, c_fluid) = run_both(policy, &sizes, &rates);
        assert!((t_toy - t_fluid).abs() < 1e-6, "{policy:?}: toy {t_toy} vs fluid {t_fluid}");
        for (i, (a, b)) in c_toy.iter().zip(&c_fluid).enumerate() {
            assert!((a - b).abs() < 1e-6, "{policy:?} item {i}: {a} vs {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn drivers_agree_on_random_transactions(
        m in 1usize..10,
        policy_idx in 0usize..3,
        sizes_seed in 1u64..1000,
        n_paths in 1usize..4,
    ) {
        let policy = [Policy::Greedy, Policy::RoundRobin, Policy::min_time_paper()][policy_idx];
        let sizes: Vec<f64> = (0..m)
            .map(|i| 200.0 + ((sizes_seed.wrapping_mul(31).wrapping_add(i as u64 * 97)) % 5000) as f64)
            .collect();
        let rates: Vec<f64> = (0..n_paths)
            .map(|p| 1000.0 + ((sizes_seed.wrapping_mul(17).wrapping_add(p as u64 * 131)) % 9000) as f64)
            .collect();
        let (t_toy, t_fluid, c_toy, c_fluid) = run_both(policy, &sizes, &rates);
        prop_assert!((t_toy - t_fluid).abs() < 1e-6, "toy {t_toy} vs fluid {t_fluid}");
        for (a, b) in c_toy.iter().zip(&c_fluid) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
