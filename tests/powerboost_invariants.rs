//! Property-based cross-crate invariants of the 3GOL service.

use proptest::prelude::*;

use threegol::core::upload::UploadExperiment;
use threegol::core::vod::VodExperiment;
use threegol::hls::VideoQuality;
use threegol::radio::LocationProfile;
use threegol::sched::Policy;

fn arb_quality() -> impl Strategy<Value = VideoQuality> {
    (0usize..4).prop_map(|i| VideoQuality::paper_ladder().swap_remove(i))
}

fn arb_location() -> impl Strategy<Value = LocationProfile> {
    (0usize..5).prop_map(|i| LocationProfile::paper_table4().swap_remove(i))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Adding phones never makes the download slower than ADSL alone
    /// (greedy pulls work; a slow path can only ever take work that
    /// is re-issued elsewhere near the tail).
    #[test]
    fn threegol_never_slower_than_adsl(
        quality in arb_quality(),
        location in arb_location(),
        n_phones in 1usize..=2,
        seed in 0u64..50,
    ) {
        let mut e = VodExperiment::paper_default(location, quality, n_phones);
        e.seed = seed;
        let adsl = e.adsl_only().run_once(seed);
        let gol = e.run_once(seed);
        // Allow a sliver of slack for the duplicate-abort tail.
        prop_assert!(
            gol.download_secs <= adsl.download_secs * 1.05 + 1.0,
            "3GOL {} vs ADSL {}", gol.download_secs, adsl.download_secs
        );
    }

    /// Waste stays within a small multiple of the paper's (N−1)·S_max
    /// bound. The paper's bound assumes each assisting path wastes at
    /// most one partial duplicate; under rapidly varying rates a path
    /// whose duplicate is aborted can duplicate *again*, so the tight
    /// envelope is per-duplication-round — we assert the practical
    /// envelope N·(N−1)·S_max, and that waste is a small fraction of
    /// the payload.
    #[test]
    fn waste_bound_holds_everywhere(
        quality in arb_quality(),
        location in arb_location(),
        n_phones in 1usize..=3,
        seed in 0u64..50,
    ) {
        let seg_bytes = quality.bytes_per_sec() * 10.0;
        let payload = quality.bytes_per_sec() * 200.0;
        let mut e = VodExperiment::paper_default(location, quality, n_phones);
        e.seed = seed;
        let out = e.run_once(seed);
        let n = (n_phones + 1) as f64;
        prop_assert!(
            out.wasted_bytes <= n * (n - 1.0) * seg_bytes + 1.0,
            "waste {} exceeds N(N−1)·S = {}", out.wasted_bytes, n * (n - 1.0) * seg_bytes
        );
        prop_assert!(out.wasted_bytes <= payload, "waste exceeds the payload itself");
    }

    /// Per-item completion times are monotone inputs to the player:
    /// the pre-buffer time never exceeds the full download time and
    /// playout finishes after startup.
    #[test]
    fn player_metrics_consistent(
        quality in arb_quality(),
        prebuffer in 0.2f64..=1.0,
        seed in 0u64..50,
    ) {
        let mut e = VodExperiment::paper_default(
            LocationProfile::reference_2mbps(), quality, 2);
        e.prebuffer_fraction = prebuffer;
        e.seed = seed;
        let out = e.run_once(seed);
        prop_assert!(out.prebuffer_secs <= out.download_secs + 1e-9);
        prop_assert!(out.playout.finish_secs >= out.playout.startup_secs);
        prop_assert!(out.playout.total_stall_secs >= 0.0);
    }

    /// Uploads: every policy moves exactly the payload (plus waste).
    #[test]
    fn upload_accounting_balances(
        location in arb_location(),
        n_phones in 0usize..=2,
        policy_idx in 0usize..3,
        seed in 0u64..30,
    ) {
        let policy = [Policy::Greedy, Policy::RoundRobin, Policy::min_time_paper()][policy_idx];
        let mut e = UploadExperiment::paper_default(location, n_phones);
        e.policy = policy;
        e.seed = seed;
        e.n_photos = 8;
        let out = e.run_once(seed);
        let moved: f64 = out.bytes_per_path.iter().sum();
        prop_assert!(
            (moved - (out.total_bytes + out.wasted_bytes)).abs() < 1.0,
            "moved {moved} vs payload {} + waste {}", out.total_bytes, out.wasted_bytes
        );
    }
}
