//! Cross-crate integration: traces → caps → §6 analyses.

use threegol::caps::{evaluate_estimator, AllowanceEstimator, QuotaTracker};
use threegol::simnet::stats::Ecdf;
use threegol::traces::analysis::{
    adoption_increase, budgeted_speedup_per_user, cell_load, BudgetModel,
};
use threegol::traces::dslam::{DslamTrace, DslamTraceConfig};
use threegol::traces::mno::{MnoConfig, MnoTrace};

fn mno() -> MnoTrace {
    MnoTrace::generate(MnoConfig { n_users: 5_000, n_months: 12, ..MnoConfig::default() })
}

fn dslam() -> DslamTrace {
    DslamTrace::generate(DslamTraceConfig { n_users: 3_000, ..DslamTraceConfig::default() })
}

#[test]
fn estimator_allowances_feed_quota_trackers() {
    let trace = mno();
    let est = AllowanceEstimator::paper();
    let mut advertising = 0usize;
    let mut total = 0usize;
    for user in trace.users.iter().take(500) {
        let history = user.monthly_free_bytes();
        let allowance = est.monthly_allowance(&history[..history.len() - 1]);
        let tracker = QuotaTracker::new(allowance / 30.0);
        total += 1;
        if tracker.should_advertise() {
            advertising += 1;
        }
    }
    // Most users have stable spare volume, so most devices advertise.
    assert!(advertising as f64 / total as f64 > 0.5, "{advertising}/{total} advertising");
}

#[test]
fn estimator_keeps_overruns_rare_on_the_trace() {
    let ev = evaluate_estimator(&AllowanceEstimator::paper(), &mno().free_series());
    assert!(ev.months > 10_000);
    assert!(ev.mean_overrun_days < 1.0, "overrun {} days", ev.mean_overrun_days);
    assert!(ev.free_capacity_used > 0.4, "utilization {}", ev.free_capacity_used);
}

#[test]
fn budget_pipeline_is_internally_consistent() {
    let trace = dslam();
    let model = BudgetModel::paper();
    let ratios = budgeted_speedup_per_user(&trace, &model);
    assert_eq!(ratios.len(), trace.video_user_count());
    let ecdf = Ecdf::new(ratios);
    // No user is ever slowed down and none exceeds the capacity bound.
    assert!(ecdf.quantile(0.0) >= 1.0 - 1e-9);
    assert!(ecdf.quantile(1.0) <= 1.0 + model.g3_bps / model.adsl_bps + 1e-9);

    let load = cell_load(&trace, &model, 80e6);
    // Per-user onloaded volume can never exceed the daily budget.
    assert!(load.mean_onloaded_per_user_bytes <= model.daily_budget_bytes);
    // Total onloaded bytes = sum over bins.
    let total_bits: f64 = load.capped_bps.iter().map(|bps| bps * 300.0).sum();
    let per_user = total_bits / 8.0 / trace.video_user_count() as f64;
    assert!((per_user - load.mean_onloaded_per_user_bytes).abs() < 1.0);
}

#[test]
fn adoption_analysis_uses_mno_volumes() {
    let trace = mno();
    let mean_daily = trace.mean_used_bytes() / 30.0;
    assert!(mean_daily > 1e6, "mean daily usage {mean_daily}");
    let pts = adoption_increase(mean_daily, 20e6, &[0.5, 1.0]);
    assert!(pts[1].total_increase > pts[0].total_increase);
    assert!(pts[1].peak_increase < pts[1].total_increase);
}

#[test]
fn trace_regeneration_is_stable() {
    // Same config → identical traces (the reproducibility contract the
    // whole harness relies on).
    let a = dslam();
    let b = dslam();
    assert_eq!(a.requests.len(), b.requests.len());
    assert_eq!(a.requests.first(), b.requests.first());
    assert_eq!(a.requests.last(), b.requests.last());
    let ma = mno();
    let mb = mno();
    assert_eq!(ma.users[99], mb.users[99]);
}
