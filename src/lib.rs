//! # threegol
//!
//! Facade crate for the 3GOL reproduction ("3GOL: Power-boosting ADSL
//! using 3G OnLoading", CoNEXT 2013): re-exports every workspace crate
//! under one roof and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! Start with [`core`] for the simulated 3GOL service, [`proxy`] for
//! the live tokio prototype, and the `examples/` directory for end-to-
//! end scenarios:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example vod_powerboost
//! cargo run --release --example photo_upload
//! cargo run --release --example capped_onloading
//! cargo run --release --example live_proxy
//! ```

pub use threegol_caps as caps;
pub use threegol_core as core;
pub use threegol_hls as hls;
pub use threegol_http as http;
pub use threegol_measure as measure;
pub use threegol_proxy as proxy;
pub use threegol_radio as radio;
pub use threegol_sched as sched;
pub use threegol_simnet as simnet;
pub use threegol_traces as traces;
