//! The round-robin baseline scheduler (RR): item `k` is statically
//! assigned to path `k mod N`; each path drains its queue in order and
//! idles when the queue empties — even if other paths are still busy.

use std::collections::VecDeque;

use crate::transaction::{Command, MultipathScheduler, SharedState, TransactionSpec};

/// The round-robin multipath scheduler.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    state: SharedState,
    queues: Vec<VecDeque<usize>>,
}

impl RoundRobin {
    /// Create a round-robin scheduler for `spec`.
    pub fn new(spec: TransactionSpec) -> RoundRobin {
        let n = spec.n_paths;
        RoundRobin { state: SharedState::new(spec), queues: vec![VecDeque::new(); n] }
    }

    fn start_next(&mut self, path: usize, out: &mut Vec<Command>) {
        if let Some(item) = self.queues[path].pop_front() {
            self.state.inflight[path] = Some(item);
            out.push(Command::Start { path, item });
        }
    }
}

impl MultipathScheduler for RoundRobin {
    fn start(&mut self) -> Vec<Command> {
        let n = self.state.spec.n_paths;
        for item in 0..self.state.spec.n_items() {
            self.queues[item % n].push_back(item);
        }
        let mut out = Vec::new();
        for path in 0..n {
            self.start_next(path, &mut out);
        }
        out
    }

    fn on_complete(
        &mut self,
        path: usize,
        item: usize,
        _now: f64,
        _bytes: f64,
        _elapsed_secs: f64,
    ) -> Vec<Command> {
        self.state.inflight[path] = None;
        let _ = self.state.complete(item);
        let mut out = Vec::new();
        self.start_next(path, &mut out);
        out
    }

    fn on_failed(&mut self, path: usize, item: usize, _now: f64) -> Vec<Command> {
        self.state.inflight[path] = None;
        if !self.state.completed[item] {
            self.queues[path].push_front(item); // retry on the same path
        }
        let mut out = Vec::new();
        self.start_next(path, &mut out);
        out
    }

    fn is_done(&self) -> bool {
        self.state.is_done()
    }

    fn name(&self) -> &'static str {
        "RR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn starts(cmds: &[Command]) -> Vec<(usize, usize)> {
        cmds.iter()
            .filter_map(|c| match c {
                Command::Start { path, item } => Some((*path, *item)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cyclic_assignment() {
        let mut rr = RoundRobin::new(TransactionSpec::uniform(5, 2, 1.0));
        let cmds = rr.start();
        assert_eq!(starts(&cmds), vec![(0, 0), (1, 1)]);
        // Path 0's queue: 0, 2, 4. Path 1's queue: 1, 3.
        let cmds = rr.on_complete(0, 0, 1.0, 1.0, 1.0);
        assert_eq!(starts(&cmds), vec![(0, 2)]);
        let cmds = rr.on_complete(1, 1, 1.0, 1.0, 1.0);
        assert_eq!(starts(&cmds), vec![(1, 3)]);
    }

    #[test]
    fn path_idles_when_queue_empty() {
        let mut rr = RoundRobin::new(TransactionSpec::uniform(3, 2, 1.0));
        rr.start(); // q0: 0,2  q1: 1
        let cmds = rr.on_complete(1, 1, 1.0, 1.0, 1.0);
        // Path 1's queue is empty — it idles; no stealing.
        assert!(cmds.is_empty());
        assert!(!rr.is_done());
        rr.on_complete(0, 0, 2.0, 1.0, 1.0);
        let cmds = rr.on_complete(0, 2, 3.0, 1.0, 1.0);
        assert!(cmds.is_empty());
        assert!(rr.is_done());
    }

    #[test]
    fn failure_retries_on_same_path() {
        let mut rr = RoundRobin::new(TransactionSpec::uniform(4, 2, 1.0));
        rr.start();
        let cmds = rr.on_failed(0, 0, 0.5);
        assert_eq!(starts(&cmds), vec![(0, 0)]);
    }

    #[test]
    fn single_path_degenerates_to_sequential() {
        let mut rr = RoundRobin::new(TransactionSpec::uniform(3, 1, 1.0));
        let cmds = rr.start();
        assert_eq!(starts(&cmds), vec![(0, 0)]);
        assert_eq!(starts(&rr.on_complete(0, 0, 1.0, 1.0, 1.0)), vec![(0, 1)]);
        assert_eq!(starts(&rr.on_complete(0, 1, 2.0, 1.0, 1.0)), vec![(0, 2)]);
        rr.on_complete(0, 2, 3.0, 1.0, 1.0);
        assert!(rr.is_done());
    }
}
