//! Playout-aware scheduling — the extension the paper defers:
//!
//! > "We could modify the scheduler to cover also the playout phase,
//! > but given the wide amount of proposals in this area, we leave
//! > this extension as future work." (§4.1.1)
//!
//! [`PlayoutAware`] behaves like the greedy scheduler during the
//! pre-buffer phase, but once the pre-buffer is scheduled it gates
//! each remaining segment on its *playout deadline*: a segment only
//! becomes eligible when it is due within the fetch-ahead `horizon`.
//! The effect is just-in-time streaming: the transaction holds the
//! paths (and, on the 3G side, the user's quota) only for the bytes
//! that are actually urgent, instead of racing the whole file down.
//!
//! Tail duplication and duplicate aborting work as in greedy, but only
//! among eligible items, and duplication picks the item with the
//! *earliest deadline* still in flight (a deadline is a stronger
//! urgency signal than scheduling age).

use std::collections::VecDeque;

use crate::transaction::{Command, MultipathScheduler, SharedState, TransactionSpec};

/// The playout-aware (deadline-gated greedy) scheduler.
#[derive(Debug, Clone)]
pub struct PlayoutAware {
    state: SharedState,
    /// Playout deadline of each item, seconds from transaction start.
    deadlines: Vec<f64>,
    /// Fetch-ahead window, seconds.
    horizon_secs: f64,
    /// Items not yet scheduled, in playout order.
    pending: VecDeque<usize>,
    /// Latest time the scheduler has observed.
    now: f64,
}

impl PlayoutAware {
    /// Create a playout-aware scheduler.
    ///
    /// `deadlines[i]` is when segment `i` must be buffered (relative to
    /// transaction start); items whose deadline is `<= horizon_secs`
    /// away are eligible for dispatch. Deadlines must be non-decreasing.
    ///
    /// # Panics
    /// Panics if lengths mismatch or deadlines decrease.
    pub fn new(spec: TransactionSpec, deadlines: Vec<f64>, horizon_secs: f64) -> PlayoutAware {
        assert_eq!(spec.n_items(), deadlines.len(), "one deadline per item");
        assert!(deadlines.windows(2).all(|w| w[0] <= w[1]), "deadlines must be in playout order");
        assert!(horizon_secs >= 0.0);
        PlayoutAware {
            state: SharedState::new(spec),
            deadlines,
            horizon_secs,
            pending: VecDeque::new(),
            now: 0.0,
        }
    }

    /// Deadlines for a VoD session: the first `prebuffer` segments are
    /// due immediately (deadline 0), the rest at their playout times
    /// assuming playback starts after `startup_estimate_secs`.
    pub fn vod_deadlines(
        n_segments: usize,
        segment_secs: f64,
        prebuffer_segments: usize,
        startup_estimate_secs: f64,
    ) -> Vec<f64> {
        (0..n_segments)
            .map(|i| {
                if i < prebuffer_segments {
                    0.0
                } else {
                    startup_estimate_secs + (i - prebuffer_segments) as f64 * segment_secs
                }
            })
            .collect()
    }

    fn eligible(&self, item: usize) -> bool {
        // Epsilon absorbs float error in drivers' time bookkeeping
        // (t0-relative subtraction can land a hair before the
        // eligibility boundary the wakeup was scheduled for).
        self.deadlines[item] - self.now <= self.horizon_secs + 1e-6
    }

    /// Next pending eligible item (playout order).
    fn next_pending_eligible(&mut self) -> Option<usize> {
        if let Some(&item) = self.pending.front() {
            if self.eligible(item) {
                return self.pending.pop_front();
            }
        }
        None
    }

    /// Earliest-deadline in-flight item for tail duplication.
    fn duplication_candidate(&self, path: usize) -> Option<usize> {
        self.state
            .inflight
            .iter()
            .enumerate()
            .filter(|&(p, slot)| p != path && slot.is_some())
            .filter_map(|(_, slot)| *slot)
            .filter(|&item| !self.state.completed[item])
            .min_by(|&a, &b| self.deadlines[a].total_cmp(&self.deadlines[b]))
    }

    fn fill_path(&mut self, path: usize, out: &mut Vec<Command>) {
        if self.state.inflight[path].is_some() {
            return;
        }
        let assignment = self.next_pending_eligible().or_else(|| {
            // Only duplicate when nothing pending is eligible AND no
            // pending work will become eligible before the in-flight
            // items' deadlines (tail of the transaction).
            if self.pending.is_empty() {
                self.duplication_candidate(path)
            } else {
                None
            }
        });
        if let Some(item) = assignment {
            self.state.inflight[path] = Some(item);
            out.push(Command::Start { path, item });
        }
    }

    fn fill_all_idle(&mut self, out: &mut Vec<Command>) {
        for path in 0..self.state.spec.n_paths {
            self.fill_path(path, out);
        }
    }
}

impl MultipathScheduler for PlayoutAware {
    fn start(&mut self) -> Vec<Command> {
        self.pending = (0..self.state.spec.n_items()).collect();
        self.now = 0.0;
        let mut out = Vec::new();
        self.fill_all_idle(&mut out);
        out
    }

    fn on_complete(
        &mut self,
        path: usize,
        item: usize,
        now: f64,
        _bytes: f64,
        _elapsed_secs: f64,
    ) -> Vec<Command> {
        self.now = self.now.max(now);
        self.state.inflight[path] = None;
        let fresh = self.state.complete(item);
        let mut out = Vec::new();
        if fresh {
            let dups: Vec<usize> = self
                .state
                .inflight
                .iter()
                .enumerate()
                .filter(|&(p, slot)| p != path && *slot == Some(item))
                .map(|(p, _)| p)
                .collect();
            for p in dups {
                out.push(Command::Abort { path: p, item });
                self.state.inflight[p] = None;
            }
        }
        if !self.state.is_done() {
            self.fill_all_idle(&mut out);
        }
        out
    }

    fn on_failed(&mut self, path: usize, item: usize, now: f64) -> Vec<Command> {
        self.now = self.now.max(now);
        self.state.inflight[path] = None;
        if !self.state.completed[item]
            && !self.pending.contains(&item)
            && !self.state.inflight.contains(&Some(item))
        {
            self.pending.push_front(item);
        }
        let mut out = Vec::new();
        if !self.state.is_done() {
            self.fill_all_idle(&mut out);
        }
        out
    }

    fn is_done(&self) -> bool {
        self.state.is_done()
    }

    fn name(&self) -> &'static str {
        "PLAYOUT"
    }

    fn next_wakeup(&self) -> Option<f64> {
        // Wake when the head-of-line pending item becomes eligible and
        // some path is idle to take it.
        let any_idle = self.state.inflight.iter().any(|s| s.is_none());
        if !any_idle {
            return None;
        }
        self.pending.front().map(|&item| {
            // Strictly in the future, so a tick that fires marginally
            // before the boundary cannot re-arm at the same instant.
            (self.deadlines[item] - self.horizon_secs).max(self.now + 1e-6)
        })
    }

    fn on_tick(&mut self, now: f64) -> Vec<Command> {
        self.now = self.now.max(now);
        let mut out = Vec::new();
        if !self.state.is_done() {
            self.fill_all_idle(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn starts(cmds: &[Command]) -> Vec<(usize, usize)> {
        cmds.iter()
            .filter_map(|c| match c {
                Command::Start { path, item } => Some((*path, *item)),
                _ => None,
            })
            .collect()
    }

    fn sched(n_items: usize, prebuffer: usize, horizon: f64) -> PlayoutAware {
        let spec = TransactionSpec::uniform(n_items, 2, 1000.0);
        let deadlines = PlayoutAware::vod_deadlines(n_items, 10.0, prebuffer, 5.0);
        PlayoutAware::new(spec, deadlines, horizon)
    }

    #[test]
    fn vod_deadline_shape() {
        let d = PlayoutAware::vod_deadlines(5, 10.0, 2, 4.0);
        assert_eq!(d, vec![0.0, 0.0, 4.0, 14.0, 24.0]);
    }

    #[test]
    fn prebuffer_dispatches_immediately() {
        let mut s = sched(6, 2, 0.0);
        let cmds = s.start();
        // Only the two pre-buffer segments are eligible at t = 0.
        assert_eq!(starts(&cmds), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn later_segments_gated_until_deadline_window() {
        let mut s = sched(6, 2, 0.0);
        s.start();
        // Both prebuffer segments done quickly; item 2 (deadline 5) is
        // not yet eligible at t = 1 — paths idle.
        let cmds = s.on_complete(0, 0, 1.0, 1000.0, 1.0);
        assert!(starts(&cmds).is_empty(), "{cmds:?}");
        let cmds = s.on_complete(1, 1, 1.2, 1000.0, 1.2);
        assert!(starts(&cmds).is_empty());
        // The scheduler asks to be woken at the eligibility time.
        assert_eq!(s.next_wakeup(), Some(5.0));
        // Tick at t = 5: item 2 dispatches (on one path; item 3 due at
        // 15 stays gated).
        let cmds = s.on_tick(5.0);
        assert_eq!(starts(&cmds), vec![(0, 2)]);
        assert_eq!(s.next_wakeup(), Some(15.0));
    }

    #[test]
    fn horizon_prefetches_ahead() {
        let mut s = sched(6, 2, 100.0); // huge horizon = plain greedy
        let cmds = s.start();
        assert_eq!(starts(&cmds), vec![(0, 0), (1, 1)]);
        let cmds = s.on_complete(0, 0, 1.0, 1000.0, 1.0);
        assert_eq!(starts(&cmds), vec![(0, 2)]);
    }

    #[test]
    fn tail_duplication_among_eligible_only() {
        let mut s = sched(3, 3, 0.0); // everything is pre-buffer
        s.start(); // p0<-0, p1<-1
        s.on_complete(0, 0, 1.0, 1000.0, 1.0); // p0 <- 2
                                               // p1 finishes; nothing pending; p1 duplicates item 2 (earliest
                                               // deadline in flight).
        let cmds = s.on_complete(1, 1, 2.0, 1000.0, 2.0);
        assert_eq!(starts(&cmds), vec![(1, 2)]);
        // First copy to finish aborts the other.
        let cmds = s.on_complete(0, 2, 3.0, 1000.0, 2.0);
        assert!(cmds.contains(&Command::Abort { path: 1, item: 2 }));
        assert!(s.is_done());
    }

    #[test]
    fn no_duplication_while_gated_work_remains() {
        let mut s = sched(6, 2, 0.0);
        s.start();
        s.on_complete(0, 0, 1.0, 1000.0, 1.0);
        let cmds = s.on_complete(1, 1, 1.5, 1000.0, 1.5);
        // Items 2..6 are pending but gated: paths must idle (not
        // duplicate), waiting for deadlines.
        assert!(starts(&cmds).is_empty());
        assert!(!s.is_done());
    }

    #[test]
    fn failure_requeues_respecting_order() {
        let mut s = sched(4, 4, 0.0);
        s.start();
        let cmds = s.on_failed(0, 0, 0.5);
        assert_eq!(starts(&cmds), vec![(0, 0)]);
    }

    #[test]
    fn no_wakeup_needed_when_all_paths_busy() {
        let mut s = sched(6, 2, 0.0);
        s.start();
        assert_eq!(s.next_wakeup(), None); // both paths busy
    }

    #[test]
    #[should_panic]
    fn decreasing_deadlines_rejected() {
        PlayoutAware::new(TransactionSpec::uniform(2, 1, 1.0), vec![5.0, 1.0], 0.0);
    }
}
