//! Exponentially smoothed path-bandwidth estimation (the MIN
//! scheduler's input, paper §5.1: "estimate the bandwidth using
//! exponential smoothing filtering. We set the filter parameter to 0.75
//! to maintain a high level of agility").

/// An exponential-smoothing bandwidth estimator for one path.
///
/// `alpha` is the weight of the newest sample: `est ← α·sample +
/// (1−α)·est`. The first sample initializes the estimate directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthEstimator {
    alpha: f64,
    estimate_bps: Option<f64>,
}

impl BandwidthEstimator {
    /// Create an estimator with the given smoothing weight in `(0, 1]`.
    pub fn new(alpha: f64) -> BandwidthEstimator {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        BandwidthEstimator { alpha, estimate_bps: None }
    }

    /// The paper's configuration (α = 0.75).
    pub fn paper() -> BandwidthEstimator {
        BandwidthEstimator::new(0.75)
    }

    /// Feed a completed transfer of `bytes` over `secs` seconds.
    /// Degenerate samples (non-positive duration or size) are ignored.
    pub fn observe(&mut self, bytes: f64, secs: f64) {
        if secs <= 0.0 || bytes <= 0.0 || !secs.is_finite() || !bytes.is_finite() {
            return;
        }
        let sample = bytes * 8.0 / secs;
        self.estimate_bps = Some(match self.estimate_bps {
            None => sample,
            Some(est) => self.alpha * sample + (1.0 - self.alpha) * est,
        });
    }

    /// Current estimate in bits/second, if any sample has been seen.
    pub fn estimate_bps(&self) -> Option<f64> {
        self.estimate_bps
    }

    /// Estimated seconds to transfer `bytes` at the current estimate.
    pub fn eta_secs(&self, bytes: f64) -> Option<f64> {
        self.estimate_bps.map(|bps| bytes * 8.0 / bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = BandwidthEstimator::paper();
        assert_eq!(e.estimate_bps(), None);
        e.observe(1000.0, 1.0); // 8 kbps
        assert_eq!(e.estimate_bps(), Some(8000.0));
    }

    #[test]
    fn smoothing_weights_new_sample() {
        let mut e = BandwidthEstimator::new(0.75);
        e.observe(1000.0, 1.0); // 8000 bps
        e.observe(2000.0, 1.0); // sample 16000
                                // 0.75·16000 + 0.25·8000 = 14000
        assert_eq!(e.estimate_bps(), Some(14000.0));
    }

    #[test]
    fn degenerate_samples_ignored() {
        let mut e = BandwidthEstimator::paper();
        e.observe(0.0, 1.0);
        e.observe(100.0, 0.0);
        e.observe(f64::NAN, 1.0);
        assert_eq!(e.estimate_bps(), None);
    }

    #[test]
    fn eta_uses_estimate() {
        let mut e = BandwidthEstimator::paper();
        assert_eq!(e.eta_secs(100.0), None);
        e.observe(1000.0, 1.0); // 8000 bps
        assert_eq!(e.eta_secs(1000.0), Some(1.0));
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_panics() {
        BandwidthEstimator::new(0.0);
    }
}
