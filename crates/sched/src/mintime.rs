//! The minimum-estimated-time baseline scheduler (MIN).
//!
//! "The minimum time scheduler assigns the items to the path that
//! minimizes the estimated transfer time, computed by using the
//! estimated available bandwidth of each path. For the MIN scheduler we
//! assign the first N items in a round-robin fashion to initialize and
//! then estimate the bandwidth using exponential smoothing filtering"
//! (paper §5.1).
//!
//! The pathology the paper observes — MIN performing worst of the three
//! under highly variable cellular bandwidth — arises because assignment
//! decisions *commit* items to a path based on an estimate that may be
//! stale by the time the path gets to them, and an idle path receives
//! no work unless an assignment decision lands on it.

use std::collections::VecDeque;

use crate::estimator::BandwidthEstimator;
use crate::transaction::{Command, MultipathScheduler, SharedState, TransactionSpec};

/// The min-estimated-time multipath scheduler.
#[derive(Debug, Clone)]
pub struct MinTime {
    state: SharedState,
    estimators: Vec<BandwidthEstimator>,
    /// Per-path committed queues.
    queues: Vec<VecDeque<usize>>,
    /// Items not yet committed to any path, in order.
    unassigned: VecDeque<usize>,
    /// Bytes committed to each path (queued + in flight), for the
    /// estimated-finish-time computation.
    backlog_bytes: Vec<f64>,
}

impl MinTime {
    /// Create a MIN scheduler with smoothing weight `alpha` (the paper
    /// uses 0.75).
    pub fn new(spec: TransactionSpec, alpha: f64) -> MinTime {
        let n = spec.n_paths;
        MinTime {
            state: SharedState::new(spec),
            estimators: vec![BandwidthEstimator::new(alpha); n],
            queues: vec![VecDeque::new(); n],
            unassigned: VecDeque::new(),
            backlog_bytes: vec![0.0; n],
        }
    }

    /// The path with the minimal estimated completion time for an item
    /// of `size` bytes, among paths with a bandwidth estimate. Ties go
    /// to the lower path index.
    fn argmin_path(&self, size: f64) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for p in 0..self.state.spec.n_paths {
            if let Some(bps) = self.estimators[p].estimate_bps() {
                let eta = (self.backlog_bytes[p] + size) * 8.0 / bps;
                if best.is_none_or(|(b, _)| eta < b) {
                    best = Some((eta, p));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Commit one unassigned item (if any) to its argmin path; start it
    /// immediately if that path is idle.
    fn dispatch_one(&mut self, out: &mut Vec<Command>) {
        let Some(&item) = self.unassigned.front() else { return };
        let size = self.state.spec.item_sizes[item];
        let Some(path) = self.argmin_path(size) else { return };
        self.unassigned.pop_front();
        self.backlog_bytes[path] += size;
        if self.state.inflight[path].is_none() {
            self.state.inflight[path] = Some(item);
            out.push(Command::Start { path, item });
        } else {
            self.queues[path].push_back(item);
        }
    }

    fn start_queued(&mut self, path: usize, out: &mut Vec<Command>) {
        if self.state.inflight[path].is_none() {
            if let Some(item) = self.queues[path].pop_front() {
                self.state.inflight[path] = Some(item);
                out.push(Command::Start { path, item });
            }
        }
    }
}

impl MultipathScheduler for MinTime {
    fn start(&mut self) -> Vec<Command> {
        let n = self.state.spec.n_paths;
        let m = self.state.spec.n_items();
        let mut out = Vec::new();
        // First N items round-robin to bootstrap the estimators.
        for item in 0..m.min(n) {
            self.state.inflight[item] = Some(item);
            self.backlog_bytes[item] += self.state.spec.item_sizes[item];
            out.push(Command::Start { path: item, item });
        }
        self.unassigned = (m.min(n)..m).collect();
        out
    }

    fn on_complete(
        &mut self,
        path: usize,
        item: usize,
        _now: f64,
        bytes: f64,
        elapsed_secs: f64,
    ) -> Vec<Command> {
        self.state.inflight[path] = None;
        self.backlog_bytes[path] =
            (self.backlog_bytes[path] - self.state.spec.item_sizes[item]).max(0.0);
        let _ = self.state.complete(item);
        self.estimators[path].observe(bytes, elapsed_secs);
        let mut out = Vec::new();
        // One assignment decision per completion.
        self.dispatch_one(&mut out);
        // Work the completing path's queue.
        self.start_queued(path, &mut out);
        out
    }

    fn on_failed(&mut self, path: usize, item: usize, _now: f64) -> Vec<Command> {
        self.state.inflight[path] = None;
        self.backlog_bytes[path] =
            (self.backlog_bytes[path] - self.state.spec.item_sizes[item]).max(0.0);
        let mut out = Vec::new();
        if !self.state.completed[item] {
            // Re-enter the assignment pool at the front.
            self.unassigned.push_front(item);
            self.dispatch_one(&mut out);
        }
        self.start_queued(path, &mut out);
        out
    }

    fn is_done(&self) -> bool {
        self.state.is_done()
    }

    fn name(&self) -> &'static str {
        "MIN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn starts(cmds: &[Command]) -> Vec<(usize, usize)> {
        cmds.iter()
            .filter_map(|c| match c {
                Command::Start { path, item } => Some((*path, *item)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn bootstrap_is_round_robin() {
        let mut m = MinTime::new(TransactionSpec::uniform(5, 2, 100.0), 0.75);
        let cmds = m.start();
        assert_eq!(starts(&cmds), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn assignment_follows_estimates() {
        let mut m = MinTime::new(TransactionSpec::uniform(4, 2, 100.0), 0.75);
        m.start();
        // Path 0 completes fast (high bandwidth estimate): next item
        // should be committed to path 0 and start immediately.
        let cmds = m.on_complete(0, 0, 1.0, 100.0, 1.0);
        assert_eq!(starts(&cmds), vec![(0, 2)]);
        // Path 1 completes slowly; path 0's estimate (800 bps over
        // backlog 100 B → 1 s) still beats path 1 (80 bps → 10 s), so
        // item 3 queues on busy path 0 and path 1 idles: the pathology.
        let cmds = m.on_complete(1, 1, 10.0, 100.0, 10.0);
        assert!(starts(&cmds).is_empty(), "{cmds:?}");
        // When path 0 finishes item 2, its queued item 3 starts there.
        let cmds = m.on_complete(0, 2, 11.0, 100.0, 1.0);
        assert_eq!(starts(&cmds), vec![(0, 3)]);
        m.on_complete(0, 3, 12.0, 100.0, 1.0);
        assert!(m.is_done());
    }

    #[test]
    fn backlog_discourages_overload() {
        let mut m = MinTime::new(TransactionSpec::uniform(6, 2, 100.0), 0.75);
        m.start();
        // Both paths get equal estimates.
        m.on_complete(0, 0, 1.0, 100.0, 1.0); // commits item 2 to path 0
        let cmds = m.on_complete(1, 1, 1.0, 100.0, 1.0);
        // Path 0 now has backlog 100 (item 2 in flight); path 1 has 0:
        // item 3 goes to path 1.
        assert_eq!(starts(&cmds), vec![(1, 3)]);
    }

    #[test]
    fn failed_item_is_reassigned() {
        let mut m = MinTime::new(TransactionSpec::uniform(3, 2, 100.0), 0.75);
        m.start();
        m.on_complete(0, 0, 1.0, 100.0, 1.0); // estimate for path 0; item 2 -> path 0
        let cmds = m.on_failed(1, 1, 2.0);
        // Item 1 re-enters the pool and is committed to path 0 (the only
        // estimated path), queued behind item 2.
        assert!(starts(&cmds).is_empty());
        let cmds = m.on_complete(0, 2, 3.0, 100.0, 1.0);
        assert_eq!(starts(&cmds), vec![(0, 1)]);
        m.on_complete(0, 1, 4.0, 100.0, 1.0);
        assert!(m.is_done());
    }

    #[test]
    fn more_paths_than_items() {
        let mut m = MinTime::new(TransactionSpec::uniform(2, 4, 100.0), 0.75);
        let cmds = m.start();
        assert_eq!(starts(&cmds), vec![(0, 0), (1, 1)]);
        m.on_complete(0, 0, 1.0, 100.0, 1.0);
        m.on_complete(1, 1, 1.0, 100.0, 1.0);
        assert!(m.is_done());
    }
}
