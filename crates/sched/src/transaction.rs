//! Transaction model and the scheduler interface.

/// Specification of a multipath transaction: `M` item sizes over `N`
/// paths.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransactionSpec {
    /// Item sizes in bytes, in download/playout order.
    pub item_sizes: Vec<f64>,
    /// Number of available paths (`N`); path 0 is conventionally the
    /// ADSL/gateway path, paths `1..N` the 3G devices.
    pub n_paths: usize,
}

impl TransactionSpec {
    /// A transaction of `m` equally sized items over `n` paths.
    pub fn uniform(m: usize, n: usize, size_bytes: f64) -> TransactionSpec {
        TransactionSpec { item_sizes: vec![size_bytes; m], n_paths: n }
    }

    /// A transaction from explicit item sizes.
    pub fn new(item_sizes: Vec<f64>, n_paths: usize) -> TransactionSpec {
        assert!(n_paths >= 1, "a transaction needs at least one path");
        assert!(!item_sizes.is_empty(), "a transaction needs at least one item");
        assert!(item_sizes.iter().all(|s| s.is_finite() && *s >= 0.0));
        TransactionSpec { item_sizes, n_paths }
    }

    /// Number of items (`M`).
    pub fn n_items(&self) -> usize {
        self.item_sizes.len()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> f64 {
        self.item_sizes.iter().sum()
    }

    /// Largest item size (`S_max` in the waste bound `(N−1)·S_max`).
    pub fn max_item_bytes(&self) -> f64 {
        self.item_sizes.iter().cloned().fold(0.0, f64::max)
    }
}

/// A scheduling policy selector.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// The paper's greedy scheduler (GRD).
    Greedy,
    /// Static round-robin (RR).
    RoundRobin,
    /// Minimum-estimated-time with exponential smoothing (MIN).
    MinTime {
        /// Smoothing weight on the newest sample; the paper uses 0.75.
        alpha: f64,
    },
}

impl Policy {
    /// The MIN policy with the paper's α = 0.75.
    pub fn min_time_paper() -> Policy {
        Policy::MinTime { alpha: 0.75 }
    }

    /// Short display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Greedy => "GRD",
            Policy::RoundRobin => "RR",
            Policy::MinTime { .. } => "MIN",
        }
    }
}

/// An instruction from the scheduler to the transport driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Begin transferring `item` on `path`.
    Start {
        /// Path index in `0..N`.
        path: usize,
        /// Item index in `0..M`.
        item: usize,
    },
    /// Abort the ongoing transfer of `item` on `path` (a duplicate of an
    /// item that has completed elsewhere).
    Abort {
        /// Path index in `0..N`.
        path: usize,
        /// Item index in `0..M`.
        item: usize,
    },
}

/// A multipath transaction scheduler.
///
/// Drivers call [`MultipathScheduler::start`] once, then feed every
/// completion through [`MultipathScheduler::on_complete`], executing the
/// returned commands (aborts before starts). The transaction ends when
/// [`MultipathScheduler::is_done`] is true.
pub trait MultipathScheduler: Send {
    /// Begin the transaction (all paths idle). Returns initial commands.
    fn start(&mut self) -> Vec<Command>;

    /// `item` finished on `path` at time `now`, having transferred
    /// `bytes` over `elapsed_secs` (wall/virtual time the transfer took;
    /// drivers should measure from transfer start to completion). The
    /// returned commands may abort duplicates on other paths and start
    /// new transfers on any path that became idle.
    fn on_complete(
        &mut self,
        path: usize,
        item: usize,
        now: f64,
        bytes: f64,
        elapsed_secs: f64,
    ) -> Vec<Command>;

    /// Notification that a transfer failed (path error). Default: treat
    /// the path as idle again and let the scheduler reassign.
    fn on_failed(&mut self, path: usize, item: usize, now: f64) -> Vec<Command>;

    /// True once every item has completed on some path.
    fn is_done(&self) -> bool;

    /// The next absolute time (same clock as `now`) at which the
    /// scheduler wants a timer tick, if any. Drivers that support
    /// timers call [`MultipathScheduler::on_tick`] at (or after) this
    /// time. Purely time-driven work — e.g. deadline-gated dispatch in
    /// the playout-aware scheduler — relies on this; the paper's three
    /// schedulers never need it.
    fn next_wakeup(&self) -> Option<f64> {
        None
    }

    /// Timer tick at `now`; may emit new commands. Default: no-op.
    fn on_tick(&mut self, _now: f64) -> Vec<Command> {
        Vec::new()
    }

    /// Short display name ("GRD", "RR", "MIN").
    fn name(&self) -> &'static str;
}

/// Book-keeping shared by all scheduler implementations.
#[derive(Debug, Clone)]
pub(crate) struct SharedState {
    pub spec: TransactionSpec,
    /// completed[i]: item i has finished on some path.
    pub completed: Vec<bool>,
    pub n_completed: usize,
    /// inflight[p]: the item path p is currently transferring.
    pub inflight: Vec<Option<usize>>,
}

impl SharedState {
    pub fn new(spec: TransactionSpec) -> SharedState {
        let m = spec.n_items();
        let n = spec.n_paths;
        SharedState { spec, completed: vec![false; m], n_completed: 0, inflight: vec![None; n] }
    }

    /// Record a completion; returns false if the item was already done
    /// (a duplicate copy raced the abort — possible on live transports).
    pub fn complete(&mut self, item: usize) -> bool {
        if self.completed[item] {
            return false;
        }
        self.completed[item] = true;
        self.n_completed += 1;
        true
    }

    pub fn is_done(&self) -> bool {
        self.n_completed == self.spec.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let s = TransactionSpec::new(vec![10.0, 30.0, 20.0], 2);
        assert_eq!(s.n_items(), 3);
        assert_eq!(s.total_bytes(), 60.0);
        assert_eq!(s.max_item_bytes(), 30.0);
        let u = TransactionSpec::uniform(5, 3, 7.0);
        assert_eq!(u.n_items(), 5);
        assert_eq!(u.total_bytes(), 35.0);
    }

    #[test]
    #[should_panic]
    fn zero_paths_rejected() {
        TransactionSpec::new(vec![1.0], 0);
    }

    #[test]
    #[should_panic]
    fn empty_items_rejected() {
        TransactionSpec::new(vec![], 1);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(Policy::Greedy.label(), "GRD");
        assert_eq!(Policy::RoundRobin.label(), "RR");
        assert_eq!(Policy::min_time_paper().label(), "MIN");
        match Policy::min_time_paper() {
            Policy::MinTime { alpha } => assert_eq!(alpha, 0.75),
            _ => panic!(),
        }
    }

    #[test]
    fn shared_state_counts_unique_completions() {
        let mut s = SharedState::new(TransactionSpec::uniform(2, 1, 1.0));
        assert!(s.complete(0));
        assert!(!s.complete(0)); // duplicate
        assert!(!s.is_done());
        assert!(s.complete(1));
        assert!(s.is_done());
    }
}
