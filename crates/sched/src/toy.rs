//! A tiny deterministic executor for exercising schedulers end-to-end
//! without a network: each path transfers at a scripted rate. Used by
//! unit/property tests and for documenting scheduler behaviour; the
//! real drivers live in `threegol-core` (fluid simulation) and
//! `threegol-proxy` (live tokio transport).

use crate::transaction::{Command, MultipathScheduler};

/// Outcome of running a transaction on the toy executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ToyResult {
    /// Total transaction time, seconds.
    pub total_secs: f64,
    /// Completion time of each item (first copy to finish).
    pub item_completion_secs: Vec<f64>,
    /// Bytes transferred by aborted duplicate copies.
    pub wasted_bytes: f64,
    /// Number of Start commands executed.
    pub starts: usize,
    /// Number of Abort commands executed.
    pub aborts: usize,
}

#[derive(Debug, Clone)]
struct Active {
    item: usize,
    remaining: f64,
    rate_bps: f64,
    /// Start order, used to break simultaneous-completion ties the
    /// same way the fluid runner does (flow creation order).
    seq: u64,
}

/// Deterministic scripted-rate executor.
///
/// `rate_script[p]` is the sequence of rates (bits/second) path `p`
/// uses for its successive transfers, cycled if it runs out. This lets
/// tests model "highly variable" paths deterministically.
#[derive(Debug, Clone)]
pub struct ToyExecutor {
    rate_script: Vec<Vec<f64>>,
    transfers_started: Vec<usize>,
}

impl ToyExecutor {
    /// Create an executor with one rate script per path.
    pub fn new(rate_script: Vec<Vec<f64>>) -> ToyExecutor {
        assert!(!rate_script.is_empty());
        assert!(rate_script.iter().all(|s| !s.is_empty() && s.iter().all(|r| *r > 0.0)));
        let n = rate_script.len();
        ToyExecutor { rate_script, transfers_started: vec![0; n] }
    }

    /// Constant-rate paths.
    pub fn constant(rates_bps: Vec<f64>) -> ToyExecutor {
        ToyExecutor::new(rates_bps.into_iter().map(|r| vec![r]).collect())
    }

    fn next_rate(&mut self, path: usize) -> f64 {
        let script = &self.rate_script[path];
        let r = script[self.transfers_started[path] % script.len()];
        self.transfers_started[path] += 1;
        r
    }

    /// Run `sched` (for `item_sizes`) to completion and report timing.
    ///
    /// # Panics
    /// Panics if the scheduler deadlocks (not done but no transfer
    /// active) or issues an invalid command — both are scheduler bugs
    /// the tests are meant to catch.
    pub fn run(&mut self, sched: &mut dyn MultipathScheduler, item_sizes: &[f64]) -> ToyResult {
        let n = self.rate_script.len();
        let mut active: Vec<Option<Active>> = vec![None; n];
        let mut now = 0.0_f64;
        let mut next_seq = 0u64;
        let mut item_completion = vec![f64::NAN; item_sizes.len()];
        let mut wasted = 0.0;
        let mut starts = 0usize;
        let mut aborts = 0usize;

        let exec = |cmds: Vec<Command>,
                    active: &mut Vec<Option<Active>>,
                    this: &mut ToyExecutor,
                    next_seq: &mut u64,
                    wasted: &mut f64,
                    starts: &mut usize,
                    aborts: &mut usize| {
            for cmd in cmds {
                match cmd {
                    Command::Start { path, item } => {
                        assert!(active[path].is_none(), "Start on busy path {path}");
                        let rate = this.next_rate(path);
                        let seq = *next_seq;
                        *next_seq += 1;
                        active[path] =
                            Some(Active { item, remaining: item_sizes[item], rate_bps: rate, seq });
                        *starts += 1;
                    }
                    Command::Abort { path, item } => {
                        let a = active[path]
                            .take()
                            .unwrap_or_else(|| panic!("Abort on idle path {path}"));
                        assert_eq!(a.item, item, "Abort of wrong item on path {path}");
                        *wasted += item_sizes[item] - a.remaining;
                        *aborts += 1;
                    }
                }
            }
        };

        exec(
            sched.start(),
            &mut active,
            self,
            &mut next_seq,
            &mut wasted,
            &mut starts,
            &mut aborts,
        );

        while !sched.is_done() {
            // Earliest completion among active transfers.
            let (path, dt, _) = active
                .iter()
                .enumerate()
                .filter_map(|(p, a)| a.as_ref().map(|a| (p, a.remaining * 8.0 / a.rate_bps, a.seq)))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)))
                .expect("scheduler deadlock: not done but no active transfer");
            now += dt;
            for a in active.iter_mut().flatten() {
                a.remaining -= a.rate_bps * dt / 8.0;
            }
            let finished = active[path].take().expect("path had a transfer");
            let item = finished.item;
            if item_completion[item].is_nan() {
                item_completion[item] = now;
            }
            let elapsed = item_sizes[item] * 8.0 / finished.rate_bps;
            let cmds = sched.on_complete(path, item, now, item_sizes[item], elapsed);
            exec(cmds, &mut active, self, &mut next_seq, &mut wasted, &mut starts, &mut aborts);
        }

        ToyResult {
            total_secs: now,
            item_completion_secs: item_completion,
            wasted_bytes: wasted,
            starts,
            aborts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{Policy, TransactionSpec};
    use crate::{build, Greedy};

    fn run_policy(policy: Policy, sizes: &[f64], rates: Vec<Vec<f64>>) -> ToyResult {
        let spec = TransactionSpec::new(sizes.to_vec(), rates.len());
        let mut sched = build(policy, spec);
        ToyExecutor::new(rates).run(sched.as_mut(), sizes)
    }

    #[test]
    fn single_path_sequential_time() {
        // 3 items of 1000 B at 8000 bps = 1 s each.
        for policy in [Policy::Greedy, Policy::RoundRobin, Policy::min_time_paper()] {
            let r = run_policy(policy, &[1000.0, 1000.0, 1000.0], vec![vec![8000.0]]);
            assert!((r.total_secs - 3.0).abs() < 1e-9, "{policy:?}: {r:?}");
        }
    }

    #[test]
    fn greedy_uses_both_paths_fully() {
        // 4 × 1000 B items; path rates 8000 and 4000 bps (1 s and 2 s per item).
        // Greedy: p0 gets items at t=1,2,3; p1 finishes one at t=2, then
        // duplicates. Total well under the single-path 4 s.
        let r = run_policy(Policy::Greedy, &[1000.0; 4], vec![vec![8000.0], vec![4000.0]]);
        assert!(r.total_secs <= 3.0 + 1e-9, "{r:?}");
        // All completions recorded.
        assert!(r.item_completion_secs.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn greedy_waste_bounded() {
        let sizes = vec![1000.0; 10];
        let spec = TransactionSpec::new(sizes.clone(), 3);
        let bound = Greedy::new(spec.clone()).waste_bound_bytes();
        let mut sched = Greedy::new(spec);
        let r = ToyExecutor::constant(vec![8000.0, 5000.0, 3000.0]).run(&mut sched, &sizes);
        assert!(r.wasted_bytes <= bound + 1e-9, "waste {} > bound {}", r.wasted_bytes, bound);
    }

    #[test]
    fn round_robin_bounded_by_slowest_queue() {
        // 4 items over paths of 8000/2000 bps: RR puts items 1,3 on the
        // slow path (4 s each) → total 8 s. Greedy finishes far sooner.
        let rr = run_policy(Policy::RoundRobin, &[1000.0; 4], vec![vec![8000.0], vec![2000.0]]);
        assert!((rr.total_secs - 8.0).abs() < 1e-9, "{rr:?}");
        let grd = run_policy(Policy::Greedy, &[1000.0; 4], vec![vec![8000.0], vec![2000.0]]);
        assert!(grd.total_secs < rr.total_secs, "GRD {} vs RR {}", grd.total_secs, rr.total_secs);
    }

    #[test]
    fn min_commits_to_stale_estimates() {
        // Path 1's first transfer is fast (burst) then collapses; MIN
        // keeps feeding it based on the stale estimate while path 0
        // idles. Greedy adapts by pulling.
        let sizes = vec![1000.0; 6];
        let script = || vec![vec![4000.0], vec![32000.0, 1000.0, 1000.0, 1000.0, 1000.0]];
        let min = run_policy(Policy::min_time_paper(), &sizes, script());
        let grd = run_policy(Policy::Greedy, &sizes, script());
        let rr = run_policy(Policy::RoundRobin, &sizes, script());
        assert!(
            grd.total_secs <= rr.total_secs && rr.total_secs <= min.total_secs,
            "expected GRD <= RR <= MIN, got GRD {} RR {} MIN {}",
            grd.total_secs,
            rr.total_secs,
            min.total_secs
        );
    }

    #[test]
    fn aborts_clean_up_duplicates() {
        // 2 items, 2 paths; the second path is much slower so greedy
        // duplicates the tail item; one abort must be issued.
        let r = run_policy(Policy::Greedy, &[1000.0, 1000.0], vec![vec![8000.0], vec![800.0]]);
        assert!(r.aborts >= 1, "{r:?}");
        assert!(r.wasted_bytes > 0.0);
        assert!(r.total_secs < 2.5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every policy finishes every transaction, records every
            /// item completion, and the total time is at least the
            /// lower bound total_bytes / sum(rates).
            #[test]
            fn all_policies_complete(
                m in 1usize..12,
                n in 1usize..4,
                size in 500.0f64..5000.0,
                seed in 0u64..1000,
            ) {
                let sizes = vec![size; m];
                // Deterministic pseudo-random rate scripts from the seed.
                let rates: Vec<Vec<f64>> = (0..n).map(|p| {
                    (0..4).map(|k| {
                        let x = (seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(((p * 7 + k) as u64).wrapping_mul(1442695040888963407))) >> 33;
                        1000.0 + (x % 16000) as f64
                    }).collect()
                }).collect();
                for policy in [Policy::Greedy, Policy::RoundRobin, Policy::min_time_paper()] {
                    let spec = TransactionSpec::new(sizes.clone(), n);
                    let mut sched = build(policy, spec);
                    let r = ToyExecutor::new(rates.clone()).run(sched.as_mut(), &sizes);
                    prop_assert!(r.total_secs.is_finite() && r.total_secs > 0.0);
                    prop_assert!(r.item_completion_secs.iter().all(|t| t.is_finite()));
                    // Can't beat the aggregate-capacity lower bound
                    // (best-case per-transfer rates).
                    let max_rate: f64 = rates.iter().flatten().cloned().fold(0.0, f64::max);
                    let lb = sizes.iter().sum::<f64>() * 8.0 / (n as f64 * max_rate);
                    prop_assert!(r.total_secs >= lb - 1e-6);
                }
            }

            /// Greedy's wasted bytes never exceed the paper's bound.
            #[test]
            fn greedy_waste_bound_holds(
                m in 1usize..10,
                n in 2usize..5,
                seed in 0u64..500,
            ) {
                let sizes: Vec<f64> = (0..m).map(|i| 500.0 + (i as f64 * 321.0) % 2000.0).collect();
                let rates: Vec<Vec<f64>> = (0..n).map(|p| {
                    vec![800.0 + ((seed + p as u64 * 13) % 9000) as f64]
                }).collect();
                let spec = TransactionSpec::new(sizes.clone(), n);
                let bound = Greedy::new(spec.clone()).waste_bound_bytes();
                let mut sched = Greedy::new(spec);
                let r = ToyExecutor::new(rates).run(&mut sched, &sizes);
                prop_assert!(r.wasted_bytes <= bound + 1e-6);
            }
        }
    }
}
