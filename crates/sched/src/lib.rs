//! # threegol-sched
//!
//! The multipath transaction schedulers at the heart of 3GOL (paper
//! §4.1.1 and §5.1).
//!
//! A *transaction* is a set of `M` items (HLS video segments, photos)
//! to transfer over `N` paths (the ADSL line plus one path per 3G
//! device). The scheduler's goal is to minimize the total transaction
//! time. Three policies are implemented:
//!
//! * [`Greedy`] (**GRD**, the paper's contribution): assign items in
//!   order to the first available path; once every item is scheduled,
//!   an idle path re-transfers the *oldest* item still in flight
//!   elsewhere, and when any copy of an item completes all other copies
//!   are aborted. Wasted bytes are bounded by `(N−1)·S_max`.
//! * [`RoundRobin`] (**RR**): item `k` is statically assigned to path
//!   `k mod N`; each path works through its queue sequentially.
//! * [`MinTime`] (**MIN**): first `N` items round-robin to bootstrap,
//!   then each completion updates the path's bandwidth estimate
//!   (exponential smoothing, α = 0.75) and the next unassigned item is
//!   queued on the path with the minimal estimated finish time. Under
//!   rapidly varying cellular bandwidth the estimates go stale and MIN
//!   performs worst — exactly the paper's finding.
//!
//! The schedulers are pure state machines: they receive path/completion
//! events and emit [`Command`]s. They know nothing about the transport,
//! so the same implementations drive both the `threegol-simnet` fluid
//! simulator and the live tokio prototype in `threegol-proxy`.

pub mod estimator;
pub mod greedy;
pub mod mintime;
pub mod playout;
pub mod roundrobin;
pub mod toy;
pub mod transaction;

pub use estimator::BandwidthEstimator;
pub use greedy::Greedy;
pub use mintime::MinTime;
pub use playout::PlayoutAware;
pub use roundrobin::RoundRobin;
pub use transaction::{Command, MultipathScheduler, Policy, TransactionSpec};

/// Instantiate a scheduler for `spec` under the given policy.
pub fn build(policy: Policy, spec: TransactionSpec) -> Box<dyn MultipathScheduler> {
    match policy {
        Policy::Greedy => Box::new(Greedy::new(spec)),
        Policy::RoundRobin => Box::new(RoundRobin::new(spec)),
        Policy::MinTime { alpha } => Box::new(MinTime::new(spec, alpha)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dispatches_policies() {
        let spec = TransactionSpec::uniform(4, 2, 100.0);
        assert_eq!(build(Policy::Greedy, spec.clone()).name(), "GRD");
        assert_eq!(build(Policy::RoundRobin, spec.clone()).name(), "RR");
        assert_eq!(build(Policy::MinTime { alpha: 0.75 }, spec).name(), "MIN");
    }
}
