//! The paper's greedy scheduler (GRD), §4.1.1.
//!
//! > "First, an item is assigned to each path. Then, if there are any
//! > remaining items (M ≥ N), they are scheduled by order, on the first
//! > available path. […] When all items have been already scheduled and
//! > a path becomes idle before the transaction is completed, we
//! > reassign the oldest scheduled item among the ones being transferred
//! > by the other N−1 paths. […] when a rescheduled item completes, all
//! > other ongoing transfers of that item are aborted."

use crate::transaction::{Command, MultipathScheduler, SharedState, TransactionSpec};

/// The greedy multipath scheduler.
#[derive(Debug, Clone)]
pub struct Greedy {
    state: SharedState,
    /// Items not yet scheduled anywhere, in order.
    pending: std::collections::VecDeque<usize>,
    /// Monotone assignment counter used as the "age" of an item's
    /// *original* schedule (for oldest-first duplication).
    next_age: u64,
    /// first_scheduled_age[i]: when item i was first scheduled.
    first_scheduled_age: Vec<Option<u64>>,
}

impl Greedy {
    /// Create a greedy scheduler for `spec`.
    pub fn new(spec: TransactionSpec) -> Greedy {
        let m = spec.n_items();
        Greedy {
            state: SharedState::new(spec),
            pending: std::collections::VecDeque::new(),
            next_age: 0,
            first_scheduled_age: vec![None; m],
        }
    }

    /// Total bytes of duplicated work possible at this instant — the
    /// paper's bound is `(N−1) · S_max`.
    pub fn waste_bound_bytes(&self) -> f64 {
        (self.state.spec.n_paths.saturating_sub(1)) as f64 * self.state.spec.max_item_bytes()
    }

    /// Pick work for an idle `path`: the next pending item, or — when
    /// everything is scheduled — a duplicate of the oldest in-flight
    /// item not already running on this path.
    fn assignment_for(&mut self, path: usize) -> Option<usize> {
        debug_assert!(self.state.inflight[path].is_none());
        if let Some(item) = self.pending.pop_front() {
            if self.first_scheduled_age[item].is_none() {
                self.first_scheduled_age[item] = Some(self.next_age);
                self.next_age += 1;
            }
            return Some(item);
        }
        // Duplicate the oldest-scheduled item still in flight elsewhere.
        let mut best: Option<(u64, usize)> = None;
        for (p, slot) in self.state.inflight.iter().enumerate() {
            if p == path {
                continue;
            }
            if let Some(item) = *slot {
                if self.state.completed[item] {
                    continue;
                }
                // Never run two copies of the same item on one path set
                // slot; a path can't duplicate what it already runs — it
                // is idle — but several idle paths could both pick the
                // same oldest item; that is allowed (each is a copy on a
                // distinct path).
                let age = self.first_scheduled_age[item].unwrap_or(u64::MAX);
                if best.is_none_or(|(ba, _)| age < ba) {
                    best = Some((age, item));
                }
            }
        }
        best.map(|(_, item)| item)
    }

    fn fill_path(&mut self, path: usize, out: &mut Vec<Command>) {
        if let Some(item) = self.assignment_for(path) {
            self.state.inflight[path] = Some(item);
            out.push(Command::Start { path, item });
        }
    }
}

impl MultipathScheduler for Greedy {
    fn start(&mut self) -> Vec<Command> {
        self.pending = (0..self.state.spec.n_items()).collect();
        let mut out = Vec::new();
        for path in 0..self.state.spec.n_paths {
            self.fill_path(path, &mut out);
        }
        out
    }

    fn on_complete(
        &mut self,
        path: usize,
        item: usize,
        _now: f64,
        _bytes: f64,
        _elapsed_secs: f64,
    ) -> Vec<Command> {
        let mut out = Vec::new();
        self.state.inflight[path] = None;
        let fresh = self.state.complete(item);
        if fresh {
            // Abort every other ongoing copy of this item; those paths
            // become idle and are refilled below.
            let dup_paths: Vec<usize> = self
                .state
                .inflight
                .iter()
                .enumerate()
                .filter(|&(p, slot)| p != path && *slot == Some(item))
                .map(|(p, _)| p)
                .collect();
            for p in dup_paths {
                out.push(Command::Abort { path: p, item });
                self.state.inflight[p] = None;
                if !self.state.is_done() {
                    self.fill_path(p, &mut out);
                }
            }
        }
        if !self.state.is_done() {
            self.fill_path(path, &mut out);
        }
        out
    }

    fn on_failed(&mut self, path: usize, item: usize, _now: f64) -> Vec<Command> {
        self.state.inflight[path] = None;
        if !self.state.completed[item]
            && !self.pending.contains(&item)
            && !self.state.inflight.contains(&Some(item))
        {
            // Put the item back at the front so it is retried first.
            self.pending.push_front(item);
        }
        let mut out = Vec::new();
        if !self.state.is_done() {
            self.fill_path(path, &mut out);
        }
        out
    }

    fn is_done(&self) -> bool {
        self.state.is_done()
    }

    fn name(&self) -> &'static str {
        "GRD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn starts(cmds: &[Command]) -> Vec<(usize, usize)> {
        cmds.iter()
            .filter_map(|c| match c {
                Command::Start { path, item } => Some((*path, *item)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_assignment_in_order() {
        let mut g = Greedy::new(TransactionSpec::uniform(5, 2, 10.0));
        let cmds = g.start();
        assert_eq!(starts(&cmds), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn fewer_items_than_paths_duplicates_immediately() {
        let mut g = Greedy::new(TransactionSpec::uniform(1, 3, 10.0));
        let cmds = g.start();
        let s = starts(&cmds);
        // All three paths transfer copies of item 0.
        assert_eq!(s, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn completion_pulls_next_item() {
        let mut g = Greedy::new(TransactionSpec::uniform(4, 2, 10.0));
        g.start();
        let cmds = g.on_complete(0, 0, 1.0, 10.0, 1.0);
        assert_eq!(starts(&cmds), vec![(0, 2)]);
        let cmds = g.on_complete(1, 1, 1.5, 10.0, 1.5);
        assert_eq!(starts(&cmds), vec![(1, 3)]);
        assert!(!g.is_done());
    }

    #[test]
    fn tail_duplication_picks_oldest() {
        let mut g = Greedy::new(TransactionSpec::uniform(3, 2, 10.0));
        g.start(); // p0<-0, p1<-1
                   // p0 finishes item 0, takes item 2 (last pending).
        g.on_complete(0, 0, 1.0, 10.0, 1.0);
        // p1 finishes item 1; nothing pending; oldest in flight is item 2
        // on p0 — p1 duplicates it.
        let cmds = g.on_complete(1, 1, 2.0, 10.0, 2.0);
        assert_eq!(starts(&cmds), vec![(1, 2)]);
    }

    #[test]
    fn duplicate_completion_aborts_other_copies() {
        let mut g = Greedy::new(TransactionSpec::uniform(3, 2, 10.0));
        g.start();
        g.on_complete(0, 0, 1.0, 10.0, 1.0); // p0 <- 2
        g.on_complete(1, 1, 2.0, 10.0, 2.0); // p1 duplicates 2
                                             // The copy on p1 completes first: p0's copy must be aborted and
                                             // the transaction is done.
        let cmds = g.on_complete(1, 2, 3.0, 10.0, 1.0);
        assert!(cmds.contains(&Command::Abort { path: 0, item: 2 }));
        assert!(g.is_done());
        // No further starts after done.
        assert_eq!(starts(&cmds), vec![]);
    }

    #[test]
    fn late_duplicate_completion_is_harmless() {
        let mut g = Greedy::new(TransactionSpec::uniform(2, 2, 10.0));
        g.start();
        g.on_complete(0, 0, 1.0, 10.0, 1.0); // p0 duplicates item 1
        let cmds = g.on_complete(1, 1, 2.0, 10.0, 2.0);
        // item 1 completed on p1; abort p0's copy; done.
        assert!(cmds.contains(&Command::Abort { path: 0, item: 1 }));
        assert!(g.is_done());
        // If the driver's abort raced an actual completion on p0, the
        // duplicate completion must be ignored gracefully.
        let cmds = g.on_complete(0, 1, 2.1, 10.0, 1.1);
        assert!(cmds.is_empty());
        assert!(g.is_done());
    }

    #[test]
    fn failure_requeues_item_first() {
        let mut g = Greedy::new(TransactionSpec::uniform(3, 2, 10.0));
        g.start(); // p0<-0, p1<-1
        let cmds = g.on_failed(0, 0, 0.5);
        // Item 0 retried immediately on the failed path (it is re-queued
        // at the front).
        assert_eq!(starts(&cmds), vec![(0, 0)]);
    }

    #[test]
    fn waste_bound_formula() {
        let g = Greedy::new(TransactionSpec::new(vec![5.0, 9.0, 2.0], 3));
        assert_eq!(g.waste_bound_bytes(), 18.0);
        let g1 = Greedy::new(TransactionSpec::new(vec![5.0], 1));
        assert_eq!(g1.waste_bound_bytes(), 0.0);
    }

    #[test]
    fn all_paths_busy_until_done() {
        // Invariant claimed by the paper: greedy keeps every path busy
        // until the transaction completes.
        let mut g = Greedy::new(TransactionSpec::uniform(6, 3, 10.0));
        g.start();
        for p in 0..3 {
            assert!(g.state.inflight[p].is_some());
        }
        let mut t = 1.0;
        let completions = [(0, 0), (1, 1), (2, 2), (0, 3), (1, 4)];
        for &(p, i) in &completions {
            g.on_complete(p, i, t, 10.0, 1.0);
            t += 1.0;
            if !g.is_done() {
                for q in 0..3 {
                    assert!(g.state.inflight[q].is_some(), "path {q} idle after ({p},{i})");
                }
            }
        }
    }
}
