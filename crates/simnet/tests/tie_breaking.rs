//! Tie-breaking regressions for the event-local stepper.
//!
//! The calendar rework must preserve the engine's ordering rules at
//! coincident instants exactly:
//!
//! 1. a wakeup sharing an instant with a completion fires first;
//! 2. a capacity change sharing that instant is applied (component
//!    marked dirty) before either surfaces, so the completing flow's
//!    record still carries its pre-change rate;
//! 3. several flows completing at one instant surface in ascending
//!    `FlowId` order;
//! 4. a residual transfer shorter than one clock ULP snaps to
//!    completion at the *current* instant — after any wakeup already
//!    due there.

use threegol_simnet::{CapacityProcess, SimEvent, SimTime, Simulation, WakeToken};

fn mbps(x: f64) -> f64 {
    x * 1e6
}

/// Wakeup, capacity change and completion all at exactly t = 1 s: the
/// wakeup surfaces first, then the completion — timed to the bit and
/// carrying the pre-change rate.
#[test]
fn wakeup_precedes_completion_and_capacity_applies_silently() {
    let mut sim = Simulation::new();
    let l = sim.add_link(
        "l",
        CapacityProcess::piecewise(vec![
            (SimTime::ZERO, mbps(8.0)),
            (SimTime::from_secs(1.0), mbps(2.0)),
        ]),
    );
    // 1 MB at 8 Mbps completes at exactly 1.0 — the same instant as
    // the capacity drop and the wakeup.
    let f = sim.start_flow(vec![l], 1_000_000.0);
    sim.schedule_wakeup(SimTime::from_secs(1.0), WakeToken(7));

    let e1 = sim.next_event().expect("wakeup");
    match e1 {
        SimEvent::Wakeup { token, time } => {
            assert_eq!(token, WakeToken(7));
            assert_eq!(time.to_bits(), SimTime::from_secs(1.0).to_bits());
        }
        other => panic!("expected the wakeup first, got {other:?}"),
    }
    let e2 = sim.next_event().expect("completion");
    match e2 {
        SimEvent::FlowCompleted { flow, record, time } => {
            assert_eq!(flow, f);
            assert_eq!(time.to_bits(), SimTime::from_secs(1.0).to_bits());
            // The record still carries the rate the flow actually had:
            // the 2 Mbps step never applied to it.
            assert_eq!(record.rate_bps, mbps(8.0));
        }
        other => panic!("expected the completion second, got {other:?}"),
    }
    assert!(sim.next_event().is_none());
}

/// Flows tying on completion instant surface in ascending `FlowId`
/// order, regardless of start order tricks.
#[test]
fn simultaneous_completions_pop_in_flow_id_order() {
    let mut sim = Simulation::new();
    let la = sim.add_link("a", CapacityProcess::constant(mbps(8.0)));
    let lb = sim.add_link("b", CapacityProcess::constant(mbps(8.0)));
    let lc = sim.add_link("c", CapacityProcess::constant(mbps(8.0)));
    // Independent links, identical transfer times: all due at 1.0 s.
    let f0 = sim.start_flow(vec![lc], 1_000_000.0);
    let f1 = sim.start_flow(vec![la], 1_000_000.0);
    let f2 = sim.start_flow(vec![lb], 1_000_000.0);
    let mut order = Vec::new();
    while let Some(ev) = sim.next_event() {
        match ev {
            SimEvent::FlowCompleted { flow, time, .. } => {
                assert_eq!(time.to_bits(), SimTime::from_secs(1.0).to_bits());
                order.push(flow);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(order, vec![f0, f1, f2]);
}

/// A residual shorter than one ULP of the clock completes at the
/// current instant with zero bytes left — but only after the wakeup
/// sharing that instant has fired.
#[test]
fn sub_ulp_residual_snaps_after_coincident_wakeup() {
    let mut sim = Simulation::new();
    let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
    // Push the clock to 1e9 s, where one ULP is ~1.2e-7 s.
    let far = SimTime::from_secs(1e9);
    sim.schedule_wakeup(far, WakeToken(0));
    assert!(matches!(sim.next_event(), Some(SimEvent::Wakeup { .. })));
    assert_eq!(sim.now().to_bits(), far.to_bits());

    // 0.01 bytes at 8 Mbps is a 1e-8 s transfer: below one clock ULP,
    // so time cannot advance to its completion instant.
    let f = sim.start_flow(vec![l], 0.01);
    sim.schedule_wakeup(far, WakeToken(1));

    let e1 = sim.next_event().expect("gating wakeup");
    match e1 {
        SimEvent::Wakeup { token, time } => {
            assert_eq!(token, WakeToken(1));
            assert_eq!(time.to_bits(), far.to_bits());
        }
        other => panic!("wakeup must precede the snapped completion, got {other:?}"),
    }
    let e2 = sim.next_event().expect("snapped completion");
    match e2 {
        SimEvent::FlowCompleted { flow, record, time } => {
            assert_eq!(flow, f);
            assert_eq!(time.to_bits(), far.to_bits());
            assert_eq!(record.remaining_bytes, 0.0);
        }
        other => panic!("expected the snapped completion, got {other:?}"),
    }
    assert!(sim.next_event().is_none());
}

/// The reference stepper agrees with the calendar stepper on all three
/// scenarios above (cheap spot-check on top of the proptest oracle).
#[test]
fn reference_stepper_agrees_on_ties() {
    let run = |reference: bool| -> Vec<(u8, u64, u64)> {
        let mut sim = Simulation::new();
        sim.use_reference_stepper(reference);
        let l = sim.add_link(
            "l",
            CapacityProcess::piecewise(vec![
                (SimTime::ZERO, mbps(8.0)),
                (SimTime::from_secs(1.0), mbps(2.0)),
            ]),
        );
        let m = sim.add_link("m", CapacityProcess::constant(mbps(8.0)));
        sim.start_flow(vec![l], 1_000_000.0);
        sim.start_flow(vec![m], 1_000_000.0);
        sim.start_flow(vec![m], 500_000.0);
        sim.schedule_wakeup(SimTime::from_secs(1.0), WakeToken(7));
        let mut out = Vec::new();
        while let Some(ev) = sim.next_event() {
            match ev {
                SimEvent::FlowCompleted { flow, time, .. } => {
                    out.push((0, flow.raw(), time.to_bits()))
                }
                SimEvent::Wakeup { token, time } => out.push((1, token.0, time.to_bits())),
            }
        }
        out
    };
    assert_eq!(run(false), run(true));
}
