//! Regression tests for rate recomputation across event interleavings.
//!
//! The engine re-solves only the connected components whose links
//! changed (see `DESIGN.md` §7), so these tests pin down the observable
//! contract: completion times and link rates must come out exactly as
//! the fluid model predicts, across capacity changes, wakeups that add
//! flows mid-run, completions that speed up survivors, and independent
//! "homes" that must not disturb each other.

use threegol_simnet::{CapacityProcess, SimEvent, SimTime, Simulation, WakeToken};

fn assert_secs(actual: SimTime, expected: f64) {
    assert!(
        (actual.secs() - expected).abs() < 1e-6,
        "expected t={expected}, got t={}",
        actual.secs()
    );
}

/// Two independent homes in one simulation: a piecewise capacity drop
/// in home A must re-time A's completion exactly while home B's flows
/// (a separate component) proceed untouched, including B's completion
/// speeding up its survivor.
#[test]
fn two_home_components_evolve_independently() {
    let mut sim = Simulation::new();
    // Home A: 8 Mbit/s until t=10, then 4 Mbit/s.
    let link_a = sim.add_link(
        "a",
        CapacityProcess::piecewise(vec![(SimTime::ZERO, 8e6), (SimTime::from_secs(10.0), 4e6)]),
    );
    // Home B: constant 6 Mbit/s, two flows sharing it.
    let link_b = sim.add_link("b", CapacityProcess::constant(6e6));

    // A: 160 Mbit => 80 Mbit by t=10, the rest at 4 Mbit/s => t=30.
    let flow_a = sim.start_flow(vec![link_a], 20e6);
    // B: fair share 3 Mbit/s each. b2 (24 Mbit) completes at t=8;
    // b1 (60 Mbit) then runs alone at 6 Mbit/s: 24 Mbit by t=8, the
    // remaining 36 Mbit in 6 s => t=14.
    let flow_b1 = sim.start_flow(vec![link_b], 7.5e6);
    let flow_b2 = sim.start_flow(vec![link_b], 3e6);

    assert!((sim.link_rate(link_b) - 6e6).abs() < 1.0);
    assert!((sim.link_rate(link_a) - 8e6).abs() < 1.0);

    match sim.next_event().expect("b2 completes") {
        SimEvent::FlowCompleted { flow, time, .. } => {
            assert_eq!(flow, flow_b2);
            assert_secs(time, 8.0);
        }
        other => panic!("unexpected event {other:?}"),
    }
    // Survivor takes the whole link; home A is mid-transfer, unchanged.
    assert!((sim.link_rate(link_b) - 6e6).abs() < 1.0);
    assert!((sim.link_rate(link_a) - 8e6).abs() < 1.0);

    match sim.next_event().expect("b1 completes") {
        SimEvent::FlowCompleted { flow, time, .. } => {
            assert_eq!(flow, flow_b1);
            assert_secs(time, 14.0);
        }
        other => panic!("unexpected event {other:?}"),
    }
    // The capacity drop at t=10 has already fired (internally); home
    // A's flow must now be running at the reduced rate.
    assert!((sim.link_rate(link_a) - 4e6).abs() < 1.0);

    match sim.next_event().expect("a completes") {
        SimEvent::FlowCompleted { flow, time, .. } => {
            assert_eq!(flow, flow_a);
            assert_secs(time, 30.0);
        }
        other => panic!("unexpected event {other:?}"),
    }
    assert!(sim.next_event().is_none());

    // Fluid accounting: every byte crossed its link exactly once.
    assert!((sim.link(link_a).bytes_carried - 20e6).abs() < 1.0);
    assert!((sim.link(link_b).bytes_carried - 10.5e6).abs() < 1.0);
}

/// A wakeup that adds a flow mid-run: rates re-split at the wakeup
/// instant and every completion lands where the fluid model says.
#[test]
fn wakeup_adds_flow_and_resplits_rates() {
    let mut sim = Simulation::new();
    let link = sim.add_link("l", CapacityProcess::constant(10e6));
    // 100 Mbit alone at 10 Mbit/s => t=10 if undisturbed.
    let f1 = sim.start_flow(vec![link], 12.5e6);
    sim.schedule_wakeup(SimTime::from_secs(5.0), WakeToken(7));

    match sim.next_event().expect("wakeup") {
        SimEvent::Wakeup { token, time } => {
            assert_eq!(token, WakeToken(7));
            assert_secs(time, 5.0);
        }
        other => panic!("unexpected event {other:?}"),
    }
    // f1 has moved 50 Mbit. Add a 25 Mbit flow: both now get 5 Mbit/s.
    let f2 = sim.start_flow(vec![link], 3.125e6);
    assert!((sim.link_rate(link) - 10e6).abs() < 1.0);

    // f2: 25 Mbit at 5 Mbit/s => t=10. f1: 50+25=75 Mbit by t=10,
    // then the last 25 Mbit alone at 10 Mbit/s => t=12.5.
    match sim.next_event().expect("f2 completes") {
        SimEvent::FlowCompleted { flow, time, .. } => {
            assert_eq!(flow, f2);
            assert_secs(time, 10.0);
        }
        other => panic!("unexpected event {other:?}"),
    }
    match sim.next_event().expect("f1 completes") {
        SimEvent::FlowCompleted { flow, time, .. } => {
            assert_eq!(flow, f1);
            assert_secs(time, 12.5);
        }
        other => panic!("unexpected event {other:?}"),
    }
}

/// A capacity change mid-flow re-times the completion exactly.
#[test]
fn capacity_change_retimes_completion() {
    let mut sim = Simulation::new();
    let link = sim.add_link(
        "l",
        CapacityProcess::piecewise(vec![(SimTime::ZERO, 8e6), (SimTime::from_secs(4.0), 2e6)]),
    );
    // 48 Mbit: 32 by t=4, the remaining 16 at 2 Mbit/s => t=12.
    let f = sim.start_flow(vec![link], 6e6);
    match sim.next_event().expect("completion") {
        SimEvent::FlowCompleted { flow, time, .. } => {
            assert_eq!(flow, f);
            assert_secs(time, 12.0);
        }
        other => panic!("unexpected event {other:?}"),
    }
}

/// `set_capacity_process` on one home's link re-solves that component
/// only — but correctly — while another component's rates persist.
#[test]
fn process_swap_dirties_only_its_component() {
    let mut sim = Simulation::new();
    // A multi-link component: a two-link path ties adsl+phone together.
    let adsl = sim.add_link("adsl", CapacityProcess::constant(2e6));
    let phone = sim.add_link("phone", CapacityProcess::constant(3e6));
    let other = sim.add_link("other", CapacityProcess::constant(5e6));
    sim.start_flow(vec![adsl, phone], 1e9);
    sim.start_flow(vec![phone], 1e9);
    sim.start_flow(vec![other], 1e9);

    // Path flow is bottlenecked by adsl (2) < phone share; the pure
    // phone flow takes the rest of phone: 2 + 1 = 3.
    assert!((sim.link_rate(phone) - 3e6).abs() < 1.0);
    assert!((sim.link_rate(other) - 5e6).abs() < 1.0);

    // RRC promotion: the phone link jumps to 8 Mbit/s. Now the path
    // flow is still capped by adsl at 2, the phone-only flow gets 6.
    sim.set_capacity_process(phone, CapacityProcess::constant(8e6));
    assert!((sim.link_rate(phone) - 8e6).abs() < 1.0);
    assert!((sim.link_rate(adsl) - 2e6).abs() < 1.0);
    assert!((sim.link_rate(other) - 5e6).abs() < 1.0);
}

/// Interleaving all three event kinds in one run: wakeup exactly at a
/// capacity-change instant, followed by a completion, keeps the rate
/// bookkeeping consistent (this interleaving defers the capacity
/// recompute past the wakeup delivery).
#[test]
fn coincident_wakeup_and_capacity_change_stay_consistent() {
    let mut sim = Simulation::new();
    let link = sim.add_link(
        "l",
        CapacityProcess::piecewise(vec![(SimTime::ZERO, 4e6), (SimTime::from_secs(5.0), 8e6)]),
    );
    // 40 Mbit: 20 by t=5, then 20 more at 8 Mbit/s => t=7.5.
    let f = sim.start_flow(vec![link], 5e6);
    sim.schedule_wakeup(SimTime::from_secs(5.0), WakeToken(1));

    match sim.next_event().expect("wakeup") {
        SimEvent::Wakeup { time, .. } => assert_secs(time, 5.0),
        other => panic!("unexpected event {other:?}"),
    }
    // The capacity change fired at the same instant; querying the rate
    // now must already see the new 8 Mbit/s.
    assert!((sim.link_rate(link) - 8e6).abs() < 1.0);
    match sim.next_event().expect("completion") {
        SimEvent::FlowCompleted { flow, time, .. } => {
            assert_eq!(flow, f);
            assert_secs(time, 7.5);
        }
        other => panic!("unexpected event {other:?}"),
    }
}
