//! Regression tests for incremental topology maintenance under flow
//! churn: multi-link flows merging components, removals leaving a
//! coarsened (but still correct) partition, and the periodic rebuild
//! that re-tightens it — all checked against the reference
//! `max_min_fair` oracle on the live flow set.

use threegol_simnet::fairshare::{max_min_fair, FlowDemand};
use threegol_simnet::{CapacityProcess, LinkId, Simulation};

/// Ask the oracle for the aggregate rate on `link` given the current
/// flow population (paths tracked by the test).
fn oracle_link_rate(caps: &[f64], demands: &[FlowDemand], link: usize) -> f64 {
    let rates = max_min_fair(caps, demands);
    demands.iter().zip(&rates).filter(|(d, _)| d.links.contains(&link)).map(|(_, r)| r).sum()
}

/// A multi-link flow bridges two previously independent components;
/// rates must re-split jointly, and removing the bridge must restore
/// the original (independent) rates even though the engine is allowed
/// to keep the coarsened partition.
#[test]
fn bridge_flow_merges_and_unmerges_components() {
    let mut sim = Simulation::new();
    let a = sim.add_link("a", CapacityProcess::constant(4e6));
    let b = sim.add_link("b", CapacityProcess::constant(6e6));
    sim.start_flow(vec![a], 1e12);
    sim.start_flow(vec![b], 1e12);
    assert!((sim.link_rate(a) - 4e6).abs() < 1.0);
    assert!((sim.link_rate(b) - 6e6).abs() < 1.0);

    // Bridge a+b: progressive filling gives the a-flow and the bridge
    // 2 Mbit/s each (a saturates), then the b-flow takes b's slack:
    // 6 - 2 = 4 Mbit/s.
    let bridge = sim.start_flow(vec![a, b], 1e12);
    assert!((sim.link_rate(a) - 4e6).abs() < 1.0);
    assert!((sim.link_rate(b) - 6e6).abs() < 1.0);
    let f = sim.flow(bridge).expect("active");
    assert!((f.rate_bps - 2e6).abs() < 1.0, "bridge rate {}", f.rate_bps);

    // Cancel the bridge: both links go back to single-flow saturation.
    sim.cancel_flow(bridge).expect("cancel");
    assert!((sim.link_rate(a) - 4e6).abs() < 1.0);
    assert!((sim.link_rate(b) - 6e6).abs() < 1.0);
}

/// Sustained churn of merging flows: enough removals after merges to
/// cross the rebuild threshold, with every intermediate state checked
/// against the oracle. Exercises slot reuse, component coarsening, and
/// the full rebuild (which renumbers every live flow's slot).
#[test]
fn churn_with_rebuild_matches_oracle() {
    let mut sim = Simulation::new();
    let n_links = 6;
    let caps: Vec<f64> = (0..n_links).map(|i| 1e6 * (i + 1) as f64).collect();
    let links: Vec<LinkId> = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| sim.add_link(format!("l{i}"), CapacityProcess::constant(c)))
        .collect();

    // Long-lived background flows, one per link, that persist across
    // every rebuild.
    let mut demands = Vec::new();
    for &l in &links {
        sim.start_flow(vec![l], 1e12);
        demands.push(FlowDemand { links: vec![l.index()], cap: None });
    }

    // Repeatedly add a two-link bridge (merging two components) and
    // remove it again. Each removal after a merge counts toward the
    // rebuild threshold (64 + 4 * n_links), so ~200 rounds is certain
    // to cross it at least once.
    let mut x: u64 = 9;
    for round in 0..200 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
        let i = (x >> 33) as usize % n_links;
        let j = (i + 1 + (x >> 13) as usize % (n_links - 1)) % n_links;
        let bridge = sim.start_flow(vec![links[i], links[j]], 1e12);
        demands.push(FlowDemand { links: vec![links[i].index(), links[j].index()], cap: None });
        for (k, &l) in links.iter().enumerate() {
            let want = oracle_link_rate(&caps, &demands, l.index());
            let got = sim.link_rate(l);
            assert!(
                (got - want).abs() < 1e-3,
                "round {round} (bridge up), link {k}: engine {got} vs oracle {want}"
            );
        }
        sim.cancel_flow(bridge).expect("cancel bridge");
        demands.pop();
        for (k, &l) in links.iter().enumerate() {
            let want = oracle_link_rate(&caps, &demands, l.index());
            let got = sim.link_rate(l);
            assert!(
                (got - want).abs() < 1e-3,
                "round {round} (bridge down), link {k}: engine {got} vs oracle {want}"
            );
        }
    }
}

/// Capped flows keep their caps across slot reuse and rebuilds.
#[test]
fn rate_caps_survive_churn_and_rebuild() {
    let mut sim = Simulation::new();
    let l = sim.add_link("l", CapacityProcess::constant(10e6));
    let m = sim.add_link("m", CapacityProcess::constant(10e6));
    let capped = sim.start_capped_flow(vec![l], 1e12, 1e6);

    // Churn merging flows past the rebuild threshold.
    for _ in 0..300 {
        let b = sim.start_flow(vec![l, m], 1e12);
        sim.cancel_flow(b).expect("cancel");
    }
    // The capped flow must still be pinned at its cap, with the link
    // otherwise idle.
    assert!((sim.link_rate(l) - 1e6).abs() < 1.0);
    let f = sim.flow(capped).expect("active");
    assert!((f.rate_bps - 1e6).abs() < 1.0);
}

/// Paths longer than the inline limit (4 links) spill to the heap at
/// start time but still solve correctly, merge all their components,
/// and survive a rebuild.
#[test]
fn long_paths_spill_and_solve() {
    let mut sim = Simulation::new();
    let links: Vec<LinkId> = (0..6)
        .map(|i| sim.add_link(format!("l{i}"), CapacityProcess::constant(1e6 * (i + 2) as f64)))
        .collect();
    // A 6-link path is bottlenecked by its slowest link (2 Mbit/s).
    let f = sim.start_flow(links.clone(), 1e12);
    for &l in &links {
        assert!((sim.link_rate(l) - 2e6).abs() < 1.0);
    }
    assert!((sim.flow(f).expect("active").rate_bps - 2e6).abs() < 1.0);
    // Force a rebuild under it, then re-check.
    for _ in 0..400 {
        let b = sim.start_flow(vec![links[0], links[5]], 1e12);
        sim.cancel_flow(b).expect("cancel");
    }
    assert!((sim.link_rate(links[0]) - 2e6).abs() < 1.0);
    assert!((sim.flow(f).expect("active").rate_bps - 2e6).abs() < 1.0);
}
