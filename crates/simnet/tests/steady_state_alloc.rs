//! Verifies the tentpole property of the hot-path rework: once warm,
//! the steady-state event loop (capacity changes, wakeups and flow
//! completions, no flow *starts*) performs **zero** heap allocations.
//! This covers the calendar stepper end to end: completion and
//! capacity heap pushes must reuse capacity, lazy-deletion compaction
//! must run in place, and retiring a completed flow must recycle its
//! topology slot without growing any buffer.
//!
//! A counting global allocator wraps `System`; the test warms the
//! simulation until every persistent buffer has reached its steady
//! size, snapshots the counter, drives hundreds of further events and
//! asserts the counter did not move. This file must contain exactly
//! one `#[test]` — a concurrently running test could allocate and
//! produce a false failure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use threegol_simnet::capacity::DiurnalProfile;
use threegol_simnet::{CapacityProcess, SimTime, Simulation, WakeToken};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_event_loop_allocates_nothing() {
    // The fig06 shape: one ADSL line plus two 3G phone links, all
    // resampled every second, plus a two-link path so several links
    // share one component. Flows are effectively infinite, so the
    // whole run is pure steady state.
    let mut sim = Simulation::new();
    let adsl =
        sim.add_link("adsl", CapacityProcess::stochastic(2e6, 0.3, 1.0, DiurnalProfile::flat(), 1));
    let p1 =
        sim.add_link("3g1", CapacityProcess::stochastic(3e6, 0.4, 1.0, DiurnalProfile::flat(), 2));
    let p2 =
        sim.add_link("3g2", CapacityProcess::stochastic(3e6, 0.4, 1.0, DiurnalProfile::flat(), 3));
    for link in [adsl, p1, p2] {
        sim.start_flow(vec![link], 1e15);
        sim.start_flow(vec![link], 1e15);
    }
    sim.start_flow(vec![adsl, p1], 1e15);
    // A warm-up-only flow, cancelled below: pre-grows the topology's
    // free-slot list so the finite flow's mid-window completion can
    // recycle a slot without allocating.
    let warmup_only = sim.start_flow(vec![p2], 1e15);
    // A finite flow sized to complete mid-measurement (~0.5 Mbps fair
    // share × ~60 s): its retirement exercises the completion calendar
    // — pop, lazy settlement, slot recycling — inside the measured
    // window.
    sim.start_flow(vec![adsl], 4_000_000.0);
    // Wakeups scheduled up front: popping them during the measured
    // window must not allocate either.
    for i in 0..200u64 {
        sim.schedule_wakeup(SimTime::from_secs(20.0 + i as f64), WakeToken(i));
    }

    // Warm-up: grow every persistent buffer (scratch, dirty lists,
    // candidate lists) to steady size, crossing a run_until boundary
    // (all-dirty recompute), plenty of capacity events, and several
    // wakeups coinciding with capacity changes (that pattern defers a
    // recompute and lets dirty-link commits accumulate, so it sets the
    // high-water mark of the dirty list).
    sim.run_until(SimTime::from_secs(10.0));
    let _ = sim.cancel_flow(warmup_only).expect("warm-up flow active");
    while let Some(e) = sim.next_event_until(SimTime::from_secs(30.0)) {
        std::hint::black_box(e);
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    // Measured window: ~600 capacity-change events across the three
    // stochastic links plus 200 wakeups, one flow completion and one
    // run_until boundary.
    let mut completions = 0u32;
    while let Some(e) = sim.next_event_until(SimTime::from_secs(215.0)) {
        if matches!(e, threegol_simnet::SimEvent::FlowCompleted { .. }) {
            completions += 1;
        }
        std::hint::black_box(e);
    }
    sim.run_until(SimTime::from_secs(220.0));
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(after - before, 0, "steady-state event loop allocated {} time(s)", after - before);
    // The simulation really did advance through the window, and the
    // finite flow's completion really happened inside it.
    assert_eq!(sim.now(), SimTime::from_secs(220.0));
    assert_eq!(completions, 1, "the finite flow must complete mid-window");
}
