//! Oracle test for the calendar-based stepper.
//!
//! The engine retains a global-scan reference stepper
//! (`Simulation::use_reference_stepper`) that shares every byte of the
//! settlement arithmetic with the calendar engine and differs only in
//! how the next event is located (exhaustive scans over all flows and
//! links, exactly like the pre-calendar engine). This test drives
//! random topologies with flow churn through both modes and asserts
//! the *entire* `SimEvent` stream — times to the bit, ids, completion
//! records — is identical.

use proptest::prelude::*;
use threegol_simnet::capacity::DiurnalProfile;
use threegol_simnet::{CapacityProcess, SimEvent, SimTime, Simulation, WakeToken};

/// What to do when a scripted wakeup fires.
#[derive(Debug, Clone)]
enum Action {
    /// Start a flow over the given link choices (dedup'd, mod #links).
    Start { links: Vec<usize>, size: f64 },
    /// Cancel the lowest-id active flow, if any.
    Cancel,
    /// Replace a link's capacity process with a fresh stochastic one.
    Reseed { link: usize, seed: u64 },
}

#[derive(Debug, Clone)]
struct Script {
    n_links: usize,
    /// Flows started at time zero.
    initial: Vec<(Vec<usize>, f64)>,
    /// One action per scheduled wakeup, fired in order.
    actions: Vec<Action>,
}

/// A bit-exact signature of one event (plus any cancel it triggered).
type Sig = (u8, u64, u64, u64, u64);

fn resolve_path(
    choices: &[usize],
    links: &[threegol_simnet::LinkId],
) -> Vec<threegol_simnet::LinkId> {
    let mut idx: Vec<usize> = choices.iter().map(|c| c % links.len()).collect();
    idx.sort_unstable();
    idx.dedup();
    idx.into_iter().map(|i| links[i]).collect()
}

fn run(script: &Script, reference: bool) -> Vec<Sig> {
    let mut sim = Simulation::new();
    sim.use_reference_stepper(reference);
    let links: Vec<threegol_simnet::LinkId> = (0..script.n_links)
        .map(|i| {
            // Mix process families so the capacity calendar sees links
            // that never change, change a few times, and change every
            // interval.
            let process = match i % 3 {
                0 => CapacityProcess::constant(1e6 + i as f64 * 3e5),
                1 => CapacityProcess::piecewise(vec![
                    (SimTime::ZERO, 2e6),
                    (SimTime::from_secs(1.5), 8e5 + i as f64 * 1e5),
                    (SimTime::from_secs(4.0), 3e6),
                ]),
                _ => CapacityProcess::stochastic(
                    2e6,
                    0.35,
                    1.0,
                    DiurnalProfile::flat(),
                    7 + i as u64,
                ),
            };
            sim.add_link(format!("l{i}"), process)
        })
        .collect();
    for (choices, size) in &script.initial {
        let path = resolve_path(choices, &links);
        sim.start_flow(path, *size);
    }
    // Half the wakeups land on whole seconds — coinciding with the
    // stochastic links' resampling instants — the rest in between.
    for (k, _) in script.actions.iter().enumerate() {
        let at = if k % 2 == 0 { (k + 1) as f64 } else { 0.4 + 0.7 * k as f64 };
        sim.schedule_wakeup(SimTime::from_secs(at), WakeToken(k as u64));
    }

    let mut out = Vec::new();
    let mut fired = 0usize;
    let horizon = SimTime::from_secs(600.0);
    while let Some(ev) = sim.next_event_until(horizon) {
        match &ev {
            SimEvent::FlowCompleted { flow, record, time } => out.push((
                0,
                flow.raw(),
                time.to_bits(),
                record.rate_bps.to_bits(),
                record.transferred_bytes().to_bits(),
            )),
            SimEvent::Wakeup { token, time } => {
                out.push((1, token.0, time.to_bits(), 0, 0));
                let action = &script.actions[fired % script.actions.len()];
                fired += 1;
                match action {
                    Action::Start { links: choices, size } => {
                        let path = resolve_path(choices, &links);
                        sim.start_flow(path, *size);
                    }
                    Action::Cancel => {
                        let victim = sim.active_flows().next();
                        if let Some(victim) = victim {
                            let rec = sim.cancel_flow(victim).expect("listed as active");
                            out.push((
                                2,
                                victim.raw(),
                                sim.now().to_bits(),
                                rec.rate_bps.to_bits(),
                                rec.transferred_bytes().to_bits(),
                            ));
                        }
                    }
                    Action::Reseed { link, seed } => {
                        let l = links[link % links.len()];
                        sim.set_capacity_process(
                            l,
                            CapacityProcess::stochastic(
                                1.5e6,
                                0.5,
                                1.0,
                                DiurnalProfile::flat(),
                                *seed,
                            ),
                        );
                    }
                }
            }
        }
        if out.len() > 20_000 {
            break;
        }
    }
    out
}

fn action_strategy() -> impl Strategy<Value = Action> {
    (0u8..7, proptest::collection::vec(0usize..6, 1..3), 0.0f64..3e6, 0usize..6, 0u64..50).prop_map(
        |(kind, links, size, link, seed)| match kind {
            0..=3 => Action::Start { links, size },
            4 | 5 => Action::Cancel,
            _ => Action::Reseed { link, seed },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The calendar stepper and the global-scan reference stepper
    /// produce bit-identical event streams over random churn.
    #[test]
    fn calendar_stream_matches_reference(
        n_links in 1usize..6,
        initial in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..3), 0.0f64..2e6),
            1..6,
        ),
        actions in proptest::collection::vec(action_strategy(), 1..16),
    ) {
        let script = Script { n_links, initial, actions };
        let calendar = run(&script, false);
        let reference = run(&script, true);
        // Every script schedules at least one wakeup, so a stream can
        // never be trivially empty.
        prop_assert!(!calendar.is_empty());
        prop_assert_eq!(calendar, reference);
    }
}
