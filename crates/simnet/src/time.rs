//! Virtual simulation time.
//!
//! Time is a non-negative `f64` number of seconds since the start of the
//! simulation. We wrap it in a newtype so that call sites never confuse
//! seconds with bytes-per-second, and so that ordering (needed by the
//! event queue) is total: the constructors reject NaN.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time far beyond any experiment horizon, used as an "infinity"
    /// sentinel when searching for the earliest next event.
    pub const FAR_FUTURE: SimTime = SimTime(f64::MAX / 4.0);

    /// Create a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative — both indicate a bug in the
    /// caller (completion times and durations are always non-negative).
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() || secs == f64::INFINITY, "SimTime from NaN");
        assert!(secs >= 0.0, "SimTime must be non-negative, got {secs}");
        if secs.is_infinite() {
            Self::FAR_FUTURE
        } else {
            SimTime(secs)
        }
    }

    /// Create a time from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1000.0)
    }

    /// Create a time from hours (used by diurnal profiles and traces).
    pub fn from_hours(h: f64) -> Self {
        Self::from_secs(h * 3600.0)
    }

    /// Seconds since simulation start.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Milliseconds since simulation start.
    pub fn millis(self) -> f64 {
        self.0 * 1000.0
    }

    /// Hours since simulation start.
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Hour-of-day in `[0, 24)`, wrapping multi-day times.
    pub fn hour_of_day(self) -> f64 {
        self.hours() % 24.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }

    /// The raw IEEE-754 bit pattern of the underlying seconds value.
    ///
    /// Two times compare equal via `==` iff their bits match (the
    /// constructors reject NaN and negative values, so there is exactly
    /// one representation per instant). Tests that assert event streams
    /// are *byte*-identical compare these bits rather than rounded
    /// seconds.
    pub fn to_bits(self) -> u64 {
        self.0.to_bits()
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(7200.0);
        assert_eq!(t.hours(), 2.0);
        assert_eq!(t.millis(), 7_200_000.0);
        assert_eq!(SimTime::from_hours(2.0), t);
        assert_eq!(SimTime::from_millis(500.0).secs(), 0.5);
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_hours(49.5);
        assert!((t.hour_of_day() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.0) + 2.5;
        assert_eq!(t.secs(), 3.5);
        assert_eq!(t - SimTime::from_secs(1.0), 2.5);
        assert_eq!(t.since(SimTime::from_secs(10.0)), 0.0);
    }

    #[test]
    fn infinity_becomes_far_future() {
        assert_eq!(SimTime::from_secs(f64::INFINITY), SimTime::FAR_FUTURE);
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }
}
