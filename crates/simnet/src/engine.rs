//! The discrete-event fluid engine.
//!
//! [`Simulation`] owns links and flows, advances virtual time from event
//! to event, and recomputes max-min fair rates whenever the flow set or
//! a relevant link capacity changes. Capacity change points of links that
//! currently carry no flow are ignored (they cannot affect any rate),
//! which keeps long idle periods free.
//!
//! The caller drives the simulation with [`Simulation::next_event`] and
//! reacts to completions/wakeups — this is how the multipath schedulers
//! in `threegol-sched` are plugged in.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::capacity::CapacityProcess;
use crate::error::SimError;
use crate::fairshare::{max_min_fair_subset_into, FairShareScratch, FlowSet};
use crate::flow::{Flow, FlowId};
use crate::link::{Link, LinkId};
use crate::time::SimTime;

/// Opaque user token attached to a scheduled wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WakeToken(pub u64);

/// An externally visible simulation event.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A flow finished transferring all its bytes.
    FlowCompleted {
        /// The completed flow's id.
        flow: FlowId,
        /// Full record of the flow at completion time.
        record: Flow,
        /// Completion time.
        time: SimTime,
    },
    /// A wakeup scheduled via [`Simulation::schedule_wakeup`] fired.
    Wakeup {
        /// The token supplied at scheduling time.
        token: WakeToken,
        /// Fire time.
        time: SimTime,
    },
}

impl SimEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            SimEvent::FlowCompleted { time, .. } | SimEvent::Wakeup { time, .. } => *time,
        }
    }
}

/// Bytes below which a flow counts as complete (numerical slop: far
/// below one byte, yet large enough that the residual's transfer time
/// can never underflow the clock's f64 resolution at realistic rates
/// and horizons).
const COMPLETE_EPS_BYTES: f64 = 1e-3;

/// Paths can hold up to this many links inline; longer ones spill to a
/// heap vector at flow-start time (never in the steady-state loop).
const INLINE_PATH: usize = 4;
/// `lens` marker for a spilled path.
const SPILLED: u8 = u8::MAX;

/// Per-slot path/cap storage for active flows — the engine-side
/// [`FlowSet`] the solver consumes directly. Slots stay stable across
/// unrelated churn and are reused after removal, so rates, components
/// and flow records can all reference a flow by slot.
#[derive(Debug, Default)]
struct SlotPaths {
    /// Per-slot rate cap (`f64::INFINITY` when uncapped).
    caps: Vec<f64>,
    /// Inline path length, or [`SPILLED`].
    lens: Vec<u8>,
    /// Inline link indices (first `lens[slot]` entries are valid).
    inline: Vec<[u32; INLINE_PATH]>,
    /// Overflow storage for paths longer than [`INLINE_PATH`].
    spill: Vec<Vec<u32>>,
}

impl SlotPaths {
    /// Number of slots (live and free).
    fn len(&self) -> usize {
        self.caps.len()
    }

    /// Append one (uninitialized) slot.
    fn push_slot(&mut self) {
        self.caps.push(f64::INFINITY);
        self.lens.push(0);
        self.inline.push([0; INLINE_PATH]);
        self.spill.push(Vec::new());
    }

    /// (Re)initialize `slot` with a flow's path and cap.
    fn set(&mut self, slot: usize, path: &[LinkId], cap: Option<f64>) {
        self.caps[slot] = cap.unwrap_or(f64::INFINITY);
        if path.len() <= INLINE_PATH {
            self.lens[slot] = path.len() as u8;
            for (dst, l) in self.inline[slot].iter_mut().zip(path) {
                *dst = l.0 as u32;
            }
        } else {
            self.lens[slot] = SPILLED;
            self.spill[slot].clear();
            self.spill[slot].extend(path.iter().map(|l| l.0 as u32));
        }
    }

    /// Drop all slots (used by full rebuilds).
    fn clear(&mut self) {
        self.caps.clear();
        self.lens.clear();
        self.inline.clear();
        self.spill.clear();
    }
}

impl FlowSet for SlotPaths {
    fn links_of(&self, f: usize) -> &[u32] {
        if self.lens[f] == SPILLED {
            &self.spill[f]
        } else {
            &self.inline[f][..self.lens[f] as usize]
        }
    }

    fn cap_of(&self, f: usize) -> f64 {
        self.caps[f]
    }
}

/// One connected component of the link-sharing graph: its links and the
/// flow slots currently assigned to it. Freed components keep their
/// buffers for reuse.
#[derive(Debug, Default)]
struct Comp {
    flows: Vec<u32>,
    links: Vec<u32>,
}

/// Incrementally maintained view of the flow/link topology.
///
/// Holds per-link flow-incidence counts (so capacity changes on
/// flowless links can be skipped without rescanning flows) and the
/// connected components of the link-sharing graph — max-min fairness
/// decomposes over components, which is what lets a capacity change or
/// a flow arrival/departure re-solve only the component it touched.
///
/// Every mutation is O(touched component), not O(system): adding a flow
/// unions the components its path crosses; removing one swap-removes it
/// from its component. Removals never split components, so after a
/// merge sustained churn can leave the partition coarser than the true
/// one — still correct (a union of components also solves exactly),
/// just less incremental — and a full rebuild re-tightens it once
/// enough removals accumulate after a merge. Workloads whose flows pin
/// single links (the 3GOL chunk model) never merge and never rebuild.
#[derive(Debug, Default)]
struct Topology {
    /// `FlowId` of each slot (stale for free slots).
    flow_ids: Vec<FlowId>,
    /// Paths and caps by slot (the solver's [`FlowSet`]).
    paths: SlotPaths,
    /// Component of each slot (`u32::MAX` marks a free slot).
    comp_of_flow: Vec<u32>,
    /// Index of each slot inside its component's `flows` list.
    pos_in_comp: Vec<u32>,
    free_slots: Vec<u32>,
    /// Number of active flows crossing each link.
    incidence: Vec<u32>,
    /// Component id of each link.
    comp_of_link: Vec<u32>,
    comps: Vec<Comp>,
    /// Dirty flag per component, plus the drain list feeding
    /// `recompute_rates` (the flag dedupes pushes).
    comp_dirty: Vec<bool>,
    dirty_comps: Vec<u32>,
    free_comps: Vec<u32>,
    /// Re-tightening bookkeeping (see type docs).
    merged_since_rebuild: bool,
    removals_since_merge: u32,
    needs_rebuild: bool,
    /// Union-find parents (rebuild scratch).
    parent: Vec<u32>,
}

impl Topology {
    /// Union-find root with path halving.
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let grand = parent[parent[x as usize] as usize];
            parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Flag `c` for re-solve and enqueue it once.
    fn mark_comp_dirty(&mut self, c: u32) {
        if !self.comp_dirty[c as usize] {
            self.comp_dirty[c as usize] = true;
            self.dirty_comps.push(c);
        }
    }

    /// Flag the component containing `link`.
    fn mark_link_dirty(&mut self, link: usize) {
        self.mark_comp_dirty(self.comp_of_link[link]);
    }

    /// Register a new link as its own singleton component.
    fn add_link(&mut self) {
        let link = self.incidence.len() as u32;
        self.incidence.push(0);
        let c = match self.free_comps.pop() {
            Some(c) => c,
            None => {
                self.comps.push(Comp::default());
                self.comp_dirty.push(false);
                (self.comps.len() - 1) as u32
            }
        };
        self.comps[c as usize].links.push(link);
        self.comp_of_link.push(c);
    }

    /// Merge the smaller of components `a`, `b` into the larger;
    /// returns the survivor.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        let size = |c: &Comp| c.links.len() + c.flows.len();
        let (into, from) = if size(&self.comps[a as usize]) >= size(&self.comps[b as usize]) {
            (a, b)
        } else {
            (b, a)
        };
        let moved = std::mem::take(&mut self.comps[from as usize]);
        for &l in &moved.links {
            self.comp_of_link[l as usize] = into;
        }
        let target = &mut self.comps[into as usize];
        let base = target.flows.len();
        target.links.extend_from_slice(&moved.links);
        target.flows.extend_from_slice(&moved.flows);
        for (k, &f) in moved.flows.iter().enumerate() {
            self.comp_of_flow[f as usize] = into;
            self.pos_in_comp[f as usize] = (base + k) as u32;
        }
        // Hand the emptied buffers back for reuse and transfer dirtiness.
        let mut moved = moved;
        moved.flows.clear();
        moved.links.clear();
        self.comps[from as usize] = moved;
        if self.comp_dirty[from as usize] {
            self.comp_dirty[from as usize] = false;
            self.mark_comp_dirty(into);
        }
        self.free_comps.push(from);
        self.merged_since_rebuild = true;
        into
    }

    /// Register flow `id` on `path`, returning its slot. Marks the
    /// (possibly merged) component dirty.
    fn add_flow(&mut self, id: FlowId, path: &[LinkId], cap: Option<f64>) -> u32 {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.flow_ids.len() as u32;
                self.flow_ids.push(id);
                self.comp_of_flow.push(0);
                self.pos_in_comp.push(0);
                self.paths.push_slot();
                s
            }
        };
        self.flow_ids[slot as usize] = id;
        self.paths.set(slot as usize, path, cap);
        let mut target = self.comp_of_link[path[0].0];
        for l in path {
            self.incidence[l.0] += 1;
        }
        for l in &path[1..] {
            let other = self.comp_of_link[l.0];
            if other != target {
                target = self.merge(target, other);
            }
        }
        let comp = &mut self.comps[target as usize];
        self.comp_of_flow[slot as usize] = target;
        self.pos_in_comp[slot as usize] = comp.flows.len() as u32;
        comp.flows.push(slot);
        self.mark_comp_dirty(target);
        slot
    }

    /// Unregister the flow in `slot` (whose path was `path`) and mark
    /// its component dirty.
    fn remove_flow(&mut self, slot: u32, path: &[LinkId]) {
        for l in path {
            self.incidence[l.0] -= 1;
        }
        let c = self.comp_of_flow[slot as usize];
        let pos = self.pos_in_comp[slot as usize] as usize;
        let comp = &mut self.comps[c as usize];
        comp.flows.swap_remove(pos);
        if let Some(&moved) = comp.flows.get(pos) {
            self.pos_in_comp[moved as usize] = pos as u32;
        }
        self.comp_of_flow[slot as usize] = u32::MAX;
        self.free_slots.push(slot);
        self.mark_comp_dirty(c);
        if self.merged_since_rebuild {
            self.removals_since_merge += 1;
            if self.removals_since_merge as usize > 64 + 4 * self.incidence.len() {
                self.needs_rebuild = true;
            }
        }
    }

    /// Recompute the exact partition from scratch (into mostly
    /// persistent buffers), renumbering slots densely and updating each
    /// flow's stored slot. Only runs to re-tighten coarsened components.
    fn rebuild(&mut self, n_links: usize, flows: &mut BTreeMap<FlowId, Flow>) {
        self.flow_ids.clear();
        self.paths.clear();
        self.comp_of_flow.clear();
        self.pos_in_comp.clear();
        self.free_slots.clear();
        self.incidence.clear();
        self.incidence.resize(n_links, 0);
        self.parent.clear();
        self.parent.extend(0..n_links as u32);
        for (id, f) in flows.iter_mut() {
            let slot = self.flow_ids.len();
            f.slot = slot as u32;
            self.flow_ids.push(*id);
            self.paths.push_slot();
            self.paths.set(slot, &f.path, f.rate_cap);
            self.comp_of_flow.push(0);
            self.pos_in_comp.push(0);
            let root = Self::find(&mut self.parent, f.path[0].0 as u32);
            for l in &f.path {
                self.incidence[l.0] += 1;
                let r = Self::find(&mut self.parent, l.0 as u32);
                if r != root {
                    self.parent[r as usize] = root;
                }
            }
        }

        // Dense component ids: number the roots, then map every link
        // (flowless links stay singleton components).
        self.comp_of_link.clear();
        self.comp_of_link.resize(n_links, 0);
        let mut n_comps = 0u32;
        for l in 0..n_links as u32 {
            if Self::find(&mut self.parent, l) == l {
                self.comp_of_link[l as usize] = n_comps;
                n_comps += 1;
            }
        }
        for l in 0..n_links as u32 {
            let root = Self::find(&mut self.parent, l);
            self.comp_of_link[l as usize] = self.comp_of_link[root as usize];
        }
        self.comps.clear();
        self.comps.resize_with(n_comps as usize, Comp::default);
        self.comp_dirty.clear();
        self.comp_dirty.resize(n_comps as usize, false);
        self.dirty_comps.clear();
        self.free_comps.clear();
        for l in 0..n_links {
            self.comps[self.comp_of_link[l] as usize].links.push(l as u32);
        }
        for slot in 0..self.flow_ids.len() {
            let c = self.comp_of_link[self.paths.links_of(slot)[0] as usize];
            self.comp_of_flow[slot] = c;
            let comp = &mut self.comps[c as usize];
            self.pos_in_comp[slot] = comp.flows.len() as u32;
            comp.flows.push(slot as u32);
        }
        self.merged_since_rebuild = false;
        self.removals_since_merge = 0;
        self.needs_rebuild = false;
    }
}

/// A deterministic fluid-flow network simulation.
#[derive(Debug, Default)]
pub struct Simulation {
    now: SimTime,
    links: Vec<Link>,
    flows: BTreeMap<FlowId, Flow>,
    next_flow_id: u64,
    wakeups: BinaryHeap<Reverse<(SimTime, u64, u64)>>, // (time, seq, token)
    wake_seq: u64,
    rates_dirty: bool,
    // --- hot-path state (see DESIGN.md §8) ---
    /// Incrementally maintained topology (always current).
    topo: Topology,
    /// Re-solve every component at the next recompute (set after a
    /// topology rebuild, whose renumbering invalidates all rates).
    all_dirty: bool,
    /// Cached per-link capacity, refreshed per component when that
    /// component is re-solved (clean components keep their values —
    /// exact between their change points, see DESIGN.md §8).
    caps: Vec<f64>,
    /// Per-slot rates (same indexing as `Topology::paths`).
    rates: Vec<f64>,
    /// Solver working memory.
    scratch: FairShareScratch,
    /// Links achieving the earliest next capacity change (recorded by
    /// `next_capacity_change`, committed if that event fires).
    cap_candidates: Vec<u32>,
}

impl Simulation {
    /// Create an empty simulation at time zero.
    pub fn new() -> Simulation {
        Simulation::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a link and return its id.
    pub fn add_link(&mut self, name: impl Into<String>, process: CapacityProcess) -> LinkId {
        self.links.push(Link::new(name, process));
        self.topo.add_link();
        LinkId(self.links.len() - 1)
    }

    /// Replace a link's capacity process (e.g., RRC state promotion).
    pub fn set_capacity_process(&mut self, link: LinkId, process: CapacityProcess) {
        self.links[link.0].process = process;
        self.topo.mark_link_dirty(link.0);
        self.rates_dirty = true;
    }

    /// Read a link.
    pub fn link(&self, link: LinkId) -> &Link {
        &self.links[link.0]
    }

    /// Number of registered links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterate over all links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Start a flow of `size_bytes` across `path`. Returns its id.
    ///
    /// # Panics
    /// Panics on an empty path, unknown links, or a non-finite/negative
    /// size; use [`Simulation::try_start_flow`] for fallible creation.
    pub fn start_flow(&mut self, path: Vec<LinkId>, size_bytes: f64) -> FlowId {
        self.try_start_flow(path, size_bytes, None).expect("invalid flow")
    }

    /// Start a flow with an optional per-flow rate cap (bits/second).
    pub fn start_capped_flow(
        &mut self,
        path: Vec<LinkId>,
        size_bytes: f64,
        rate_cap: f64,
    ) -> FlowId {
        self.try_start_flow(path, size_bytes, Some(rate_cap)).expect("invalid flow")
    }

    /// Fallible flow creation.
    pub fn try_start_flow(
        &mut self,
        path: Vec<LinkId>,
        size_bytes: f64,
        rate_cap: Option<f64>,
    ) -> Result<FlowId, SimError> {
        if path.is_empty() {
            return Err(SimError::EmptyPath);
        }
        for l in &path {
            if l.0 >= self.links.len() {
                return Err(SimError::UnknownLink(l.0));
            }
        }
        if !size_bytes.is_finite() || size_bytes < 0.0 {
            return Err(SimError::InvalidSize(format!("{size_bytes}")));
        }
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let slot = self.topo.add_flow(id, &path, rate_cap);
        self.flows.insert(
            id,
            Flow {
                path,
                size_bytes,
                remaining_bytes: size_bytes,
                rate_bps: 0.0,
                rate_cap,
                started_at: self.now,
                slot,
            },
        );
        self.rates_dirty = true;
        Ok(id)
    }

    /// Cancel an active flow, returning its record (with the bytes it
    /// transferred before cancellation — the "wasted bytes" accounting of
    /// the greedy scheduler uses this).
    pub fn cancel_flow(&mut self, id: FlowId) -> Result<Flow, SimError> {
        let f = self.flows.remove(&id).ok_or(SimError::UnknownFlow(id.0))?;
        self.topo.remove_flow(f.slot, &f.path);
        self.rates_dirty = true;
        Ok(f)
    }

    /// Access an active flow.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// Ids of all active flows (ascending).
    pub fn active_flows(&self) -> Vec<FlowId> {
        self.flows.keys().copied().collect()
    }

    /// Number of active flows.
    pub fn active_flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Schedule a wakeup at absolute time `at` (clamped to now if in the
    /// past) carrying `token`.
    pub fn schedule_wakeup(&mut self, at: SimTime, token: WakeToken) {
        let at = at.max(self.now);
        self.wakeups.push(Reverse((at, self.wake_seq, token.0)));
        self.wake_seq += 1;
    }

    /// Schedule a wakeup `delay_secs` from now.
    pub fn schedule_wakeup_in(&mut self, delay_secs: f64, token: WakeToken) {
        let at = self.now + delay_secs.max(0.0);
        self.schedule_wakeup(at, token);
    }

    /// Re-solve the components flagged dirty, refreshing their links'
    /// capacities at the current time; clean components keep their
    /// rates. After a rebuild every component is re-solved. In steady
    /// state (capacity changes and wakeups, no flow churn) this path
    /// performs no heap allocation; churn itself is O(touched
    /// component).
    fn recompute_rates(&mut self) {
        if self.topo.needs_rebuild {
            self.topo.rebuild(self.links.len(), &mut self.flows);
            self.all_dirty = true;
        }
        if self.rates.len() < self.topo.paths.len() {
            self.rates.resize(self.topo.paths.len(), 0.0);
        }
        if self.caps.len() < self.links.len() {
            self.caps.resize(self.links.len(), 0.0);
        }

        if self.all_dirty {
            for (cap, link) in self.caps.iter_mut().zip(&self.links) {
                *cap = link.capacity_at(self.now);
            }
            self.topo.dirty_comps.clear();
            for c in 0..self.topo.comps.len() {
                self.topo.comp_dirty[c] = false;
                if self.topo.comps[c].flows.is_empty() {
                    continue;
                }
                max_min_fair_subset_into(
                    &self.caps,
                    &self.topo.paths,
                    &self.topo.comps[c].flows,
                    &mut self.scratch,
                    &mut self.rates,
                );
            }
            for f in self.flows.values_mut() {
                f.rate_bps = self.rates[f.slot as usize];
            }
            self.all_dirty = false;
        } else {
            while let Some(c) = self.topo.dirty_comps.pop() {
                let c = c as usize;
                if !self.topo.comp_dirty[c] {
                    continue; // merged away since it was queued
                }
                self.topo.comp_dirty[c] = false;
                for &l in &self.topo.comps[c].links {
                    self.caps[l as usize] = self.links[l as usize].capacity_at(self.now);
                }
                if self.topo.comps[c].flows.is_empty() {
                    continue;
                }
                max_min_fair_subset_into(
                    &self.caps,
                    &self.topo.paths,
                    &self.topo.comps[c].flows,
                    &mut self.scratch,
                    &mut self.rates,
                );
                for &slot in &self.topo.comps[c].flows {
                    let id = self.topo.flow_ids[slot as usize];
                    let rate = self.rates[slot as usize];
                    self.flows.get_mut(&id).expect("flow exists").rate_bps = rate;
                }
            }
        }
        self.rates_dirty = false;
    }

    /// Earliest upcoming capacity change among links that carry flows,
    /// recording the links that change at that instant into
    /// `cap_candidates` (their components are marked dirty if that
    /// event actually fires).
    fn next_capacity_change(&mut self) -> SimTime {
        self.cap_candidates.clear();
        let mut earliest = SimTime::FAR_FUTURE;
        for (i, link) in self.links.iter().enumerate() {
            if self.topo.incidence[i] == 0 {
                continue;
            }
            if let Some(t) = link.process.next_change(self.now) {
                if t < earliest {
                    earliest = t;
                    self.cap_candidates.clear();
                    self.cap_candidates.push(i as u32);
                } else if t == earliest {
                    self.cap_candidates.push(i as u32);
                }
            }
        }
        earliest
    }

    /// Advance all flows by `dt` seconds at their current rates and
    /// charge the carried bytes to the links on each path.
    fn advance_flows(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let links = &mut self.links;
        for f in self.flows.values_mut() {
            let bytes = if f.rate_bps.is_infinite() {
                f.remaining_bytes
            } else {
                (f.rate_bps * dt / 8.0).min(f.remaining_bytes)
            };
            f.remaining_bytes -= bytes;
            for l in &f.path {
                links[l.0].bytes_carried += bytes;
            }
        }
    }

    /// Pop any flow already complete at the current instant.
    fn pop_completed(&mut self) -> Option<SimEvent> {
        let id = self
            .flows
            .iter()
            .find(|(_, f)| f.remaining_bytes <= COMPLETE_EPS_BYTES)
            .map(|(id, _)| *id)?;
        let record = self.flows.remove(&id).expect("flow exists");
        self.topo.remove_flow(record.slot, &record.path);
        self.rates_dirty = true;
        Some(SimEvent::FlowCompleted { flow: id, record, time: self.now })
    }

    /// Advance to, and return, the next externally visible event.
    ///
    /// Returns `None` when nothing can ever happen again: no wakeups are
    /// pending and either no flows are active or every active flow is
    /// permanently stalled (rate 0 with no future capacity change).
    pub fn next_event(&mut self) -> Option<SimEvent> {
        self.step(None)
    }

    /// Like [`Simulation::next_event`] but never advances past `limit`:
    /// if the next event would occur after it, the simulation state is
    /// advanced exactly to `limit` and `None` is returned.
    pub fn next_event_until(&mut self, limit: SimTime) -> Option<SimEvent> {
        self.step(Some(limit))
    }

    fn step(&mut self, limit: Option<SimTime>) -> Option<SimEvent> {
        let mut iters: u64 = 0;
        loop {
            iters += 1;
            if iters > 10_000_000 {
                panic!(
                    "engine stuck: now={}, flows={:?}",
                    self.now,
                    self.flows
                        .iter()
                        .map(|(id, f)| (id.0, f.rate_bps, f.remaining_bytes))
                        .collect::<Vec<_>>()
                );
            }
            // Zero-time completions first (e.g., several flows finishing
            // at the same instant, or zero-sized flows).
            if let Some(ev) = self.pop_completed() {
                return Some(ev);
            }
            if self.rates_dirty {
                self.recompute_rates();
                continue; // a rate change may complete an infinite-rate flow
            }

            // Candidate event times.
            let mut t_complete = SimTime::FAR_FUTURE;
            for f in self.flows.values() {
                if let Some(eta) = f.eta_secs() {
                    t_complete = t_complete.min(self.now + eta);
                }
            }
            let t_capacity = self.next_capacity_change();
            let t_wake =
                self.wakeups.peek().map(|Reverse((t, _, _))| *t).unwrap_or(SimTime::FAR_FUTURE);

            let t_next = t_complete.min(t_capacity).min(t_wake);
            if t_next >= SimTime::FAR_FUTURE {
                return None; // permanently idle or stalled
            }
            if let Some(lim) = limit {
                if t_next > lim {
                    // Advance exactly to the limit and stop. No event
                    // fired in between, so no capacity changed and all
                    // rates remain valid (capacity processes are
                    // piecewise-constant between their change points).
                    let dt = lim - self.now;
                    self.advance_flows(dt);
                    self.now = lim;
                    return None;
                }
            }

            let dt = t_next - self.now;
            if dt <= 0.0 && t_next == t_complete && t_wake > self.now {
                // The nearest completion is closer than one ULP of the
                // clock: time cannot advance, so snap the due flows to
                // completion instead of spinning.
                let now = self.now;
                for f in self.flows.values_mut() {
                    if let Some(eta) = f.eta_secs() {
                        if now + eta <= now {
                            f.remaining_bytes = 0.0;
                        }
                    }
                }
                continue;
            }
            self.advance_flows(dt);
            self.now = t_next;

            if t_next == t_capacity {
                // Mark the components of the links recorded during the
                // scan; the recompute happens lazily at the next query
                // or step, which also covers a coincident wakeup below.
                // (The pre-rework engine missed a capacity change that
                // coincided with a wakeup entirely, because the scan
                // only looks strictly past `now`.)
                for &l in &self.cap_candidates {
                    self.topo.mark_link_dirty(l as usize);
                }
                self.rates_dirty = true;
            }
            if t_next == t_wake {
                let Reverse((time, _, token)) = self.wakeups.pop().expect("peeked");
                return Some(SimEvent::Wakeup { token: WakeToken(token), time });
            }
            // Completions (if any) surface at the top of the loop.
        }
    }

    /// Process and discard events until virtual time reaches `until`.
    ///
    /// Events strictly before `until` are dropped; the simulation clock
    /// is left exactly at `until`. Useful for warm-up phases.
    pub fn run_until(&mut self, until: SimTime) {
        while self.next_event_until(until).is_some() {}
        if self.now < until {
            if self.rates_dirty {
                self.recompute_rates();
            }
            let dt = until - self.now;
            self.advance_flows(dt);
            self.now = until;
        }
    }

    /// Current aggregate rate crossing `link` (bits/second), summing
    /// the fair-share rates of all flows that traverse it. Recomputes
    /// rates if the flow set changed since the last event.
    pub fn link_rate(&mut self, link: LinkId) -> f64 {
        if self.rates_dirty {
            self.recompute_rates();
        }
        self.flows.values().filter(|f| f.path.contains(&link)).map(|f| f.rate_bps).sum()
    }

    /// The time of the next event without consuming it (recomputes rates
    /// if needed).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.flows.values().any(|f| f.remaining_bytes <= COMPLETE_EPS_BYTES) {
            return Some(self.now);
        }
        if self.rates_dirty {
            self.recompute_rates();
            if self.flows.values().any(|f| f.rate_bps.is_infinite()) {
                return Some(self.now);
            }
        }
        let mut t = SimTime::FAR_FUTURE;
        for f in self.flows.values() {
            if let Some(eta) = f.eta_secs() {
                t = t.min(self.now + eta);
            }
        }
        t = t.min(self.next_capacity_change());
        if let Some(Reverse((tw, _, _))) = self.wakeups.peek() {
            t = t.min(*tw);
        }
        if t >= SimTime::FAR_FUTURE {
            None
        } else {
            Some(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::DiurnalProfile;

    fn mbps(x: f64) -> f64 {
        x * 1e6
    }

    #[test]
    fn single_flow_transfer_time() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_flow(vec![l], 1_000_000.0); // 8 Mbit over 8 Mbps = 1 s
        let ev = sim.next_event().unwrap();
        assert!((ev.time().secs() - 1.0).abs() < 1e-9);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        // Two 1 MB flows: share 4 Mbps each. First completes at 2 s
        // (if equal) — equal sizes tie; both complete at 2 s.
        let a = sim.start_flow(vec![l], 1_000_000.0);
        let b = sim.start_flow(vec![l], 500_000.0);
        // b needs 4 Mbit at 4 Mbps -> 1 s. Then a has 0.5 MB left at 8 Mbps -> +0.5 s.
        let e1 = sim.next_event().unwrap();
        match &e1 {
            SimEvent::FlowCompleted { flow, .. } => assert_eq!(*flow, b),
            _ => panic!(),
        }
        assert!((e1.time().secs() - 1.0).abs() < 1e-9);
        let e2 = sim.next_event().unwrap();
        match &e2 {
            SimEvent::FlowCompleted { flow, .. } => assert_eq!(*flow, a),
            _ => panic!(),
        }
        assert!((e2.time().secs() - 1.5).abs() < 1e-9, "{}", e2.time());
    }

    #[test]
    fn parallel_paths_aggregate() {
        // The 3GOL core effect: an item on ADSL and an item on a phone
        // proceed independently at full speed.
        let mut sim = Simulation::new();
        let adsl = sim.add_link("adsl", CapacityProcess::constant(mbps(2.0)));
        let phone = sim.add_link("phone", CapacityProcess::constant(mbps(1.0)));
        sim.start_flow(vec![adsl], 250_000.0); // 2 Mbit / 2 Mbps = 1 s
        sim.start_flow(vec![phone], 250_000.0); // 2 Mbit / 1 Mbps = 2 s
        let e1 = sim.next_event().unwrap();
        let e2 = sim.next_event().unwrap();
        assert!((e1.time().secs() - 1.0).abs() < 1e-9);
        assert!((e2.time().secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_mid_flow() {
        let mut sim = Simulation::new();
        let l = sim.add_link(
            "l",
            CapacityProcess::piecewise(vec![
                (SimTime::ZERO, mbps(8.0)),
                (SimTime::from_secs(1.0), mbps(4.0)),
            ]),
        );
        // 2 MB = 16 Mbit. 1 s at 8 Mbps -> 8 Mbit done; 8 Mbit left at 4 Mbps -> 2 s more.
        sim.start_flow(vec![l], 2_000_000.0);
        let ev = sim.next_event().unwrap();
        assert!((ev.time().secs() - 3.0).abs() < 1e-9, "{}", ev.time());
    }

    #[test]
    fn wakeups_fire_in_order() {
        let mut sim = Simulation::new();
        sim.schedule_wakeup(SimTime::from_secs(2.0), WakeToken(2));
        sim.schedule_wakeup(SimTime::from_secs(1.0), WakeToken(1));
        sim.schedule_wakeup(SimTime::from_secs(1.0), WakeToken(10)); // FIFO tie
        let e1 = sim.next_event().unwrap();
        let e2 = sim.next_event().unwrap();
        let e3 = sim.next_event().unwrap();
        match (e1, e2, e3) {
            (
                SimEvent::Wakeup { token: t1, .. },
                SimEvent::Wakeup { token: t2, .. },
                SimEvent::Wakeup { token: t3, .. },
            ) => {
                assert_eq!(t1, WakeToken(1));
                assert_eq!(t2, WakeToken(10));
                assert_eq!(t3, WakeToken(2));
            }
            _ => panic!("expected wakeups"),
        }
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn cancel_returns_partial_progress() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        let f = sim.start_flow(vec![l], 1_000_000.0);
        sim.schedule_wakeup(SimTime::from_secs(0.5), WakeToken(0));
        let _ = sim.next_event().unwrap(); // wakeup at 0.5 s
        let record = sim.cancel_flow(f).unwrap();
        assert!((record.transferred_bytes() - 500_000.0).abs() < 1.0);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn cancel_unknown_flow_errors() {
        let mut sim = Simulation::new();
        assert!(matches!(sim.cancel_flow(FlowId(99)), Err(SimError::UnknownFlow(99))));
    }

    #[test]
    fn zero_sized_flow_completes_immediately() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(1.0)));
        let f = sim.start_flow(vec![l], 0.0);
        let ev = sim.next_event().unwrap();
        match ev {
            SimEvent::FlowCompleted { flow, time, .. } => {
                assert_eq!(flow, f);
                assert_eq!(time, SimTime::ZERO);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn invalid_flows_rejected() {
        let mut sim = Simulation::new();
        assert!(matches!(sim.try_start_flow(vec![], 1.0, None), Err(SimError::EmptyPath)));
        assert!(matches!(
            sim.try_start_flow(vec![LinkId(7)], 1.0, None),
            Err(SimError::UnknownLink(7))
        ));
        let l = sim.add_link("l", CapacityProcess::constant(1.0));
        assert!(matches!(
            sim.try_start_flow(vec![l], f64::NAN, None),
            Err(SimError::InvalidSize(_))
        ));
        assert!(matches!(sim.try_start_flow(vec![l], -3.0, None), Err(SimError::InvalidSize(_))));
    }

    #[test]
    fn stalled_flow_yields_none() {
        let mut sim = Simulation::new();
        let l = sim.add_link("dead", CapacityProcess::constant(0.0));
        sim.start_flow(vec![l], 100.0);
        assert!(sim.next_event().is_none());
        assert_eq!(sim.active_flow_count(), 1);
    }

    #[test]
    fn rate_cap_respected() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_capped_flow(vec![l], 1_000_000.0, mbps(2.0)); // 8 Mbit at 2 Mbps = 4 s
        let ev = sim.next_event().unwrap();
        assert!((ev.time().secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn link_accounting_tracks_bytes() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_flow(vec![l], 1_000_000.0);
        let _ = sim.next_event();
        assert!((sim.link(l).bytes_carried - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        let f = sim.start_flow(vec![l], 10_000_000.0);
        sim.run_until(SimTime::from_secs(3.0));
        assert_eq!(sim.now(), SimTime::from_secs(3.0));
        let flow = sim.flow(f).unwrap();
        assert!((flow.transferred_bytes() - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    fn run_until_stops_at_boundary_with_stochastic_links() {
        // Regression: capacity-change events are internal, so a naive
        // run_until could let one next_event call run far past the
        // boundary. The clock must stop exactly at the limit and the
        // carried bytes must match rate × time.
        let mut sim = Simulation::new();
        let l = sim.add_link(
            "s",
            CapacityProcess::stochastic(mbps(0.8), 0.2, 1.0, DiurnalProfile::flat(), 5),
        );
        sim.start_flow(vec![l], 50_000_000.0);
        sim.run_until(SimTime::from_secs(30.0));
        assert_eq!(sim.now(), SimTime::from_secs(30.0));
        let carried = sim.link(l).bytes_carried;
        // ~0.8 Mbps × 30 s ≈ 3 MB, well below the 50 MB flow size.
        assert!(carried > 1_500_000.0 && carried < 6_000_000.0, "carried {carried}");
    }

    #[test]
    fn next_event_until_respects_limit() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_flow(vec![l], 1_000_000.0); // completes at 1 s
        assert!(sim.next_event_until(SimTime::from_secs(0.5)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(0.5));
        let ev = sim.next_event_until(SimTime::from_secs(2.0)).unwrap();
        assert!((ev.time().secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stochastic_capacity_transfer_is_deterministic() {
        let run = || {
            let mut sim = Simulation::new();
            let l = sim.add_link(
                "hspa",
                CapacityProcess::stochastic(mbps(2.0), 0.3, 5.0, DiurnalProfile::flat(), 99),
            );
            sim.start_flow(vec![l], 2_000_000.0);
            sim.next_event().unwrap().time().secs()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // Roughly 2 MB at ~2 Mbps ≈ 8 s.
        assert!(a > 4.0 && a < 16.0, "t = {a}");
    }

    #[test]
    fn link_rate_reports_aggregate() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(6.0)));
        sim.start_flow(vec![l], 1e9);
        sim.start_flow(vec![l], 1e9);
        assert!((sim.link_rate(l) - mbps(6.0)).abs() < 1.0);
        let empty = sim.add_link("e", CapacityProcess::constant(mbps(1.0)));
        assert_eq!(sim.link_rate(empty), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Byte conservation: when every flow completes, each link
            /// carried exactly the sum of the sizes of the flows that
            /// traversed it.
            #[test]
            fn bytes_are_conserved(
                n_links in 1usize..5,
                flows in proptest::collection::vec(
                    (proptest::collection::btree_set(0usize..5, 1..3), 1_000.0f64..1e6),
                    1..10,
                ),
            ) {
                let mut sim = Simulation::new();
                let links: Vec<LinkId> = (0..n_links)
                    .map(|i| sim.add_link(format!("l{i}"), CapacityProcess::constant(1e6 + i as f64 * 3e5)))
                    .collect();
                let mut expected = vec![0.0f64; n_links];
                let mut total = 0usize;
                for (link_set, size) in &flows {
                    let path: Vec<LinkId> = link_set
                        .iter()
                        .filter(|&&l| l < n_links)
                        .map(|&l| links[l])
                        .collect();
                    if path.is_empty() {
                        continue;
                    }
                    for l in &path {
                        expected[l.index()] += *size;
                    }
                    sim.start_flow(path, *size);
                    total += 1;
                }
                let mut completions = 0;
                while let Some(ev) = sim.next_event() {
                    if matches!(ev, SimEvent::FlowCompleted { .. }) {
                        completions += 1;
                    }
                }
                prop_assert_eq!(completions, total);
                for (i, l) in links.iter().enumerate() {
                    prop_assert!(
                        (sim.link(*l).bytes_carried - expected[i]).abs() < 1.0,
                        "link {} carried {} expected {}",
                        i, sim.link(*l).bytes_carried, expected[i]
                    );
                }
            }

            /// Event-by-event determinism for identical scenarios.
            #[test]
            fn identical_runs_produce_identical_events(seed in 0u64..200) {
                let run = |seed: u64| -> Vec<(u64, f64)> {
                    let mut sim = Simulation::new();
                    let l = sim.add_link(
                        "s",
                        CapacityProcess::stochastic(
                            2e6, 0.4, 1.0, DiurnalProfile::flat(), seed,
                        ),
                    );
                    for k in 0..4 {
                        sim.start_flow(vec![l], 100_000.0 * (k + 1) as f64);
                    }
                    let mut out = Vec::new();
                    while let Some(ev) = sim.next_event() {
                        if let SimEvent::FlowCompleted { flow, time, .. } = ev {
                            out.push((flow.raw(), time.secs()));
                        }
                    }
                    out
                };
                prop_assert_eq!(run(seed), run(seed));
            }
        }
    }

    #[test]
    fn shared_bottleneck_with_side_link() {
        // Phone flow traverses both its radio share and the cell channel.
        let mut sim = Simulation::new();
        let cell = sim.add_link("cell", CapacityProcess::constant(mbps(3.0)));
        let radio_a = sim.add_link("ra", CapacityProcess::constant(mbps(2.0)));
        let radio_b = sim.add_link("rb", CapacityProcess::constant(mbps(2.0)));
        // Both flows limited by the 3 Mbps cell: 1.5 Mbps each.
        sim.start_flow(vec![radio_a, cell], 750_000.0);
        sim.start_flow(vec![radio_b, cell], 750_000.0);
        let e1 = sim.next_event().unwrap();
        // 6 Mbit at 1.5 Mbps = 4 s.
        assert!((e1.time().secs() - 4.0).abs() < 1e-9, "{}", e1.time());
    }
}
