//! The discrete-event fluid engine.
//!
//! [`Simulation`] owns links and flows, advances virtual time from event
//! to event, and recomputes max-min fair rates whenever the flow set or
//! a relevant link capacity changes. Capacity change points of links that
//! currently carry no flow are ignored (they cannot affect any rate),
//! which keeps long idle periods free.
//!
//! Stepping is **event-local**: the engine never scans the whole flow or
//! link population per event. Upcoming completions live in a
//! lazy-deletion min-heap keyed by `(predicted completion, flow id)`
//! whose entries are *lower bounds*: a rate change only queues a new
//! entry when the fresh prediction undercuts the flow's armed one (the
//! ratchet), and an entry that surfaces early is re-armed at the true
//! prediction — so steady-state rate churn costs no heap traffic at
//! all. Upcoming capacity changes live in a second heap keyed per link
//! and invalidated by a per-link epoch. Flow and link byte counters are
//! settled lazily from `(rate, settled_at)` anchors (see
//! `Flow::settle_to`), so a step costs
//! O(log n + size of the re-solved component) instead of
//! O(all flows + all links). See DESIGN.md §8.
//!
//! The caller drives the simulation with [`Simulation::next_event`] and
//! reacts to completions/wakeups — this is how the multipath schedulers
//! in `threegol-sched` are plugged in.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::ops::Bound;

use crate::capacity::CapacityProcess;
use crate::error::SimError;
use crate::fairshare::{max_min_fair_subset_into, FairShareScratch, FlowSet};
use crate::flow::{Flow, FlowId, COMPLETE_EPS_BYTES};
use crate::link::{Link, LinkId};
use crate::time::SimTime;

/// Opaque user token attached to a scheduled wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WakeToken(pub u64);

/// An externally visible simulation event.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A flow finished transferring all its bytes.
    FlowCompleted {
        /// The completed flow's id.
        flow: FlowId,
        /// Full record of the flow at completion time.
        record: Flow,
        /// Completion time.
        time: SimTime,
    },
    /// A wakeup scheduled via [`Simulation::schedule_wakeup`] fired.
    Wakeup {
        /// The token supplied at scheduling time.
        token: WakeToken,
        /// Fire time.
        time: SimTime,
    },
}

impl SimEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            SimEvent::FlowCompleted { time, .. } | SimEvent::Wakeup { time, .. } => *time,
        }
    }
}

/// Paths can hold up to this many links inline; longer ones spill to a
/// heap vector at flow-start time (never in the steady-state loop).
const INLINE_PATH: usize = 4;
/// `lens` marker for a spilled path.
const SPILLED: u8 = u8::MAX;

/// Per-slot path/cap storage for active flows — the engine-side
/// [`FlowSet`] the solver consumes directly. Slots stay stable across
/// unrelated churn and are reused after removal, so rates, components
/// and flow records can all reference a flow by slot.
#[derive(Debug, Default)]
struct SlotPaths {
    /// Per-slot rate cap (`f64::INFINITY` when uncapped).
    caps: Vec<f64>,
    /// Inline path length, or [`SPILLED`].
    lens: Vec<u8>,
    /// Inline link indices (first `lens[slot]` entries are valid).
    inline: Vec<[u32; INLINE_PATH]>,
    /// Overflow storage for paths longer than [`INLINE_PATH`].
    spill: Vec<Vec<u32>>,
}

impl SlotPaths {
    /// Number of slots (live and free).
    fn len(&self) -> usize {
        self.caps.len()
    }

    /// Append one (uninitialized) slot.
    fn push_slot(&mut self) {
        self.caps.push(f64::INFINITY);
        self.lens.push(0);
        self.inline.push([0; INLINE_PATH]);
        self.spill.push(Vec::new());
    }

    /// (Re)initialize `slot` with a flow's path and cap.
    fn set(&mut self, slot: usize, path: &[LinkId], cap: Option<f64>) {
        self.caps[slot] = cap.unwrap_or(f64::INFINITY);
        if path.len() <= INLINE_PATH {
            self.lens[slot] = path.len() as u8;
            for (dst, l) in self.inline[slot].iter_mut().zip(path) {
                *dst = l.0 as u32;
            }
        } else {
            self.lens[slot] = SPILLED;
            self.spill[slot].clear();
            self.spill[slot].extend(path.iter().map(|l| l.0 as u32));
        }
    }

    /// Drop all slots (used by full rebuilds).
    fn clear(&mut self) {
        self.caps.clear();
        self.lens.clear();
        self.inline.clear();
        self.spill.clear();
    }
}

impl FlowSet for SlotPaths {
    fn links_of(&self, f: usize) -> &[u32] {
        if self.lens[f] == SPILLED {
            &self.spill[f]
        } else {
            &self.inline[f][..self.lens[f] as usize]
        }
    }

    fn cap_of(&self, f: usize) -> f64 {
        self.caps[f]
    }
}

/// One connected component of the link-sharing graph: its links and the
/// flow slots currently assigned to it. Freed components keep their
/// buffers for reuse.
#[derive(Debug, Default)]
struct Comp {
    flows: Vec<u32>,
    links: Vec<u32>,
}

/// Incrementally maintained view of the flow/link topology.
///
/// Holds per-link flow-incidence counts (so capacity changes on
/// flowless links can be skipped without rescanning flows) and the
/// connected components of the link-sharing graph — max-min fairness
/// decomposes over components, which is what lets a capacity change or
/// a flow arrival/departure re-solve only the component it touched.
///
/// Every mutation is O(touched component), not O(system): adding a flow
/// unions the components its path crosses; removing one swap-removes it
/// from its component. Removals never split components, so after a
/// merge sustained churn can leave the partition coarser than the true
/// one — still correct (a union of components also solves exactly),
/// just less incremental — and a full rebuild re-tightens it once
/// enough removals accumulate after a merge. Workloads whose flows pin
/// single links (the 3GOL chunk model) never merge and never rebuild.
#[derive(Debug, Default)]
struct Topology {
    /// `FlowId` of each slot (stale for free slots).
    flow_ids: Vec<FlowId>,
    /// Paths and caps by slot (the solver's [`FlowSet`]).
    paths: SlotPaths,
    /// Component of each slot (`u32::MAX` marks a free slot).
    comp_of_flow: Vec<u32>,
    /// Index of each slot inside its component's `flows` list.
    pos_in_comp: Vec<u32>,
    free_slots: Vec<u32>,
    /// Number of active flows crossing each link.
    incidence: Vec<u32>,
    /// Component id of each link.
    comp_of_link: Vec<u32>,
    comps: Vec<Comp>,
    /// Dirty flag per component, plus the drain list feeding
    /// `recompute_rates` (the flag dedupes pushes).
    comp_dirty: Vec<bool>,
    dirty_comps: Vec<u32>,
    free_comps: Vec<u32>,
    /// Re-tightening bookkeeping (see type docs).
    merged_since_rebuild: bool,
    removals_since_merge: u32,
    needs_rebuild: bool,
    /// Union-find parents (rebuild scratch).
    parent: Vec<u32>,
}

impl Topology {
    /// Union-find root with path halving.
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let grand = parent[parent[x as usize] as usize];
            parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Flag `c` for re-solve and enqueue it once.
    fn mark_comp_dirty(&mut self, c: u32) {
        if !self.comp_dirty[c as usize] {
            self.comp_dirty[c as usize] = true;
            self.dirty_comps.push(c);
        }
    }

    /// Flag the component containing `link`.
    fn mark_link_dirty(&mut self, link: usize) {
        self.mark_comp_dirty(self.comp_of_link[link]);
    }

    /// Register a new link as its own singleton component.
    fn add_link(&mut self) {
        let link = self.incidence.len() as u32;
        self.incidence.push(0);
        let c = match self.free_comps.pop() {
            Some(c) => c,
            None => {
                self.comps.push(Comp::default());
                self.comp_dirty.push(false);
                (self.comps.len() - 1) as u32
            }
        };
        self.comps[c as usize].links.push(link);
        self.comp_of_link.push(c);
    }

    /// Merge the smaller of components `a`, `b` into the larger;
    /// returns the survivor.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        let size = |c: &Comp| c.links.len() + c.flows.len();
        let (into, from) = if size(&self.comps[a as usize]) >= size(&self.comps[b as usize]) {
            (a, b)
        } else {
            (b, a)
        };
        let moved = std::mem::take(&mut self.comps[from as usize]);
        for &l in &moved.links {
            self.comp_of_link[l as usize] = into;
        }
        let target = &mut self.comps[into as usize];
        let base = target.flows.len();
        target.links.extend_from_slice(&moved.links);
        target.flows.extend_from_slice(&moved.flows);
        for (k, &f) in moved.flows.iter().enumerate() {
            self.comp_of_flow[f as usize] = into;
            self.pos_in_comp[f as usize] = (base + k) as u32;
        }
        // Hand the emptied buffers back for reuse and transfer dirtiness.
        let mut moved = moved;
        moved.flows.clear();
        moved.links.clear();
        self.comps[from as usize] = moved;
        if self.comp_dirty[from as usize] {
            self.comp_dirty[from as usize] = false;
            self.mark_comp_dirty(into);
        }
        self.free_comps.push(from);
        self.merged_since_rebuild = true;
        into
    }

    /// Register flow `id` on `path`, returning its slot. Marks the
    /// (possibly merged) component dirty.
    fn add_flow(&mut self, id: FlowId, path: &[LinkId], cap: Option<f64>) -> u32 {
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.flow_ids.len() as u32;
                self.flow_ids.push(id);
                self.comp_of_flow.push(0);
                self.pos_in_comp.push(0);
                self.paths.push_slot();
                s
            }
        };
        self.flow_ids[slot as usize] = id;
        self.paths.set(slot as usize, path, cap);
        let mut target = self.comp_of_link[path[0].0];
        for l in path {
            self.incidence[l.0] += 1;
        }
        for l in &path[1..] {
            let other = self.comp_of_link[l.0];
            if other != target {
                target = self.merge(target, other);
            }
        }
        let comp = &mut self.comps[target as usize];
        self.comp_of_flow[slot as usize] = target;
        self.pos_in_comp[slot as usize] = comp.flows.len() as u32;
        comp.flows.push(slot);
        self.mark_comp_dirty(target);
        slot
    }

    /// Unregister the flow in `slot` (whose path was `path`) and mark
    /// its component dirty.
    fn remove_flow(&mut self, slot: u32, path: &[LinkId]) {
        for l in path {
            self.incidence[l.0] -= 1;
        }
        let c = self.comp_of_flow[slot as usize];
        let pos = self.pos_in_comp[slot as usize] as usize;
        let comp = &mut self.comps[c as usize];
        comp.flows.swap_remove(pos);
        if let Some(&moved) = comp.flows.get(pos) {
            self.pos_in_comp[moved as usize] = pos as u32;
        }
        self.comp_of_flow[slot as usize] = u32::MAX;
        self.free_slots.push(slot);
        self.mark_comp_dirty(c);
        if self.merged_since_rebuild {
            self.removals_since_merge += 1;
            if self.removals_since_merge as usize > 64 + 4 * self.incidence.len() {
                self.needs_rebuild = true;
            }
        }
    }

    /// Recompute the exact partition from scratch (into mostly
    /// persistent buffers), renumbering slots densely and updating each
    /// flow's stored slot. Only runs to re-tighten coarsened components.
    fn rebuild(&mut self, n_links: usize, flows: &mut BTreeMap<FlowId, Flow>) {
        self.flow_ids.clear();
        self.paths.clear();
        self.comp_of_flow.clear();
        self.pos_in_comp.clear();
        self.free_slots.clear();
        self.incidence.clear();
        self.incidence.resize(n_links, 0);
        self.parent.clear();
        self.parent.extend(0..n_links as u32);
        for (id, f) in flows.iter_mut() {
            let slot = self.flow_ids.len();
            f.slot = slot as u32;
            self.flow_ids.push(*id);
            self.paths.push_slot();
            self.paths.set(slot, &f.path, f.rate_cap);
            self.comp_of_flow.push(0);
            self.pos_in_comp.push(0);
            let root = Self::find(&mut self.parent, f.path[0].0 as u32);
            for l in &f.path {
                self.incidence[l.0] += 1;
                let r = Self::find(&mut self.parent, l.0 as u32);
                if r != root {
                    self.parent[r as usize] = root;
                }
            }
        }

        // Dense component ids: number the roots, then map every link
        // (flowless links stay singleton components).
        self.comp_of_link.clear();
        self.comp_of_link.resize(n_links, 0);
        let mut n_comps = 0u32;
        for l in 0..n_links as u32 {
            if Self::find(&mut self.parent, l) == l {
                self.comp_of_link[l as usize] = n_comps;
                n_comps += 1;
            }
        }
        for l in 0..n_links as u32 {
            let root = Self::find(&mut self.parent, l);
            self.comp_of_link[l as usize] = self.comp_of_link[root as usize];
        }
        self.comps.clear();
        self.comps.resize_with(n_comps as usize, Comp::default);
        self.comp_dirty.clear();
        self.comp_dirty.resize(n_comps as usize, false);
        self.dirty_comps.clear();
        self.free_comps.clear();
        for l in 0..n_links {
            self.comps[self.comp_of_link[l] as usize].links.push(l as u32);
        }
        for slot in 0..self.flow_ids.len() {
            let c = self.comp_of_link[self.paths.links_of(slot)[0] as usize];
            self.comp_of_flow[slot] = c;
            let comp = &mut self.comps[c as usize];
            self.pos_in_comp[slot] = comp.flows.len() as u32;
            comp.flows.push(slot as u32);
        }
        self.merged_since_rebuild = false;
        self.removals_since_merge = 0;
        self.needs_rebuild = false;
    }
}

/// Outcome of settling a calendar-due flow at the current instant.
enum Due {
    /// The flow completed; the event is ready to surface.
    Done(SimEvent),
    /// False alarm (floating-point slack between the predicted instant
    /// and the settled bytes): the flow still has work; a fresh
    /// prediction must be queued.
    Rearm,
    /// The flow's residual transfer time is below one clock ULP, but a
    /// wakeup is due at this same instant and fires first; the snap to
    /// completion is deferred until the wakeups at `now` drain.
    Gated,
}

/// A deterministic fluid-flow network simulation.
#[derive(Debug, Default)]
pub struct Simulation {
    now: SimTime,
    links: Vec<Link>,
    flows: BTreeMap<FlowId, Flow>,
    next_flow_id: u64,
    wakeups: BinaryHeap<Reverse<(SimTime, u64, u64)>>, // (time, seq, token)
    wake_seq: u64,
    rates_dirty: bool,
    // --- hot-path state (see DESIGN.md §8) ---
    /// Incrementally maintained topology (always current).
    topo: Topology,
    /// Re-solve every component at the next recompute (set after a
    /// topology rebuild, whose renumbering invalidates all rates).
    all_dirty: bool,
    /// Cached per-link capacity, refreshed per component when that
    /// component is re-solved (clean components keep their values —
    /// exact between their change points, see DESIGN.md §8).
    caps: Vec<f64>,
    /// Per-slot rates (same indexing as `Topology::paths`).
    rates: Vec<f64>,
    /// Solver working memory.
    scratch: FairShareScratch,
    /// Links achieving the earliest next capacity change, as recorded
    /// by the reference stepper's scan (committed if that event fires).
    cap_candidates: Vec<u32>,
    // --- event calendars (see DESIGN.md §8, "Event-local stepping") ---
    /// Completion calendar: lazy-deletion min-heap of
    /// `(predicted completion, flow id)`. Entry times are **lower
    /// bounds** on the true completion instant (see
    /// [`Flow::armed_at`]): an entry whose flow is gone is discarded
    /// when it surfaces; one that surfaces before its flow's current
    /// prediction is re-armed at that prediction without advancing the
    /// clock or touching any byte accounting.
    completions: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Capacity calendar: min-heap of `(next change, link, link epoch)`
    /// with one valid entry per armed link, re-armed when it fires.
    cap_events: BinaryHeap<Reverse<(SimTime, u32, u32)>>,
    /// Per-link arm epoch: bumped whenever queued `cap_events` entries
    /// must die — the process was replaced, or the link's flow
    /// incidence crossed zero in either direction.
    cap_epochs: Vec<u32>,
    /// Side stack for due completion entries deferred behind a
    /// same-instant wakeup (the sub-ULP snap gate); drained back into
    /// `completions` at the end of each pop run.
    gated_scratch: Vec<(SimTime, u64)>,
    /// Reusable settled copy handed out by [`Simulation::flow`], so
    /// queries never perturb the engine's own settlement arithmetic.
    flow_scratch: Option<Flow>,
    /// Step via the retained global-scan reference logic instead of the
    /// calendars (test oracle; see `use_reference_stepper`).
    reference_scan: bool,
}

impl Simulation {
    /// Create an empty simulation at time zero.
    pub fn new() -> Simulation {
        Simulation::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a link and return its id.
    pub fn add_link(&mut self, name: impl Into<String>, process: CapacityProcess) -> LinkId {
        self.links.push(Link::new(name, process));
        self.topo.add_link();
        self.cap_epochs.push(0);
        LinkId(self.links.len() - 1)
    }

    /// Replace a link's capacity process (e.g., RRC state promotion).
    pub fn set_capacity_process(&mut self, link: LinkId, process: CapacityProcess) {
        self.links[link.0].process = process;
        self.topo.mark_link_dirty(link.0);
        self.rates_dirty = true;
        self.cap_epochs[link.0] = self.cap_epochs[link.0].wrapping_add(1);
        if self.topo.incidence[link.0] > 0 {
            if let Some(t) = self.links[link.0].process.next_change(self.now) {
                self.cap_events.push(Reverse((t, link.0 as u32, self.cap_epochs[link.0])));
            }
        }
    }

    /// Read a link (with its byte accounting settled to the current
    /// time).
    pub fn link(&mut self, link: LinkId) -> &Link {
        let now = self.now;
        self.links[link.0].settle_to(now);
        &self.links[link.0]
    }

    /// Number of registered links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterate over all links with their ids (byte accounting settled).
    pub fn links(&mut self) -> impl Iterator<Item = (LinkId, &Link)> {
        let now = self.now;
        for l in &mut self.links {
            l.settle_to(now);
        }
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Start a flow of `size_bytes` across `path`. Returns its id.
    ///
    /// # Panics
    /// Panics on an empty path, unknown links, or a non-finite/negative
    /// size; use [`Simulation::try_start_flow`] for fallible creation.
    pub fn start_flow(&mut self, path: Vec<LinkId>, size_bytes: f64) -> FlowId {
        self.try_start_flow(path, size_bytes, None).expect("invalid flow")
    }

    /// Start a flow with an optional per-flow rate cap (bits/second).
    pub fn start_capped_flow(
        &mut self,
        path: Vec<LinkId>,
        size_bytes: f64,
        rate_cap: f64,
    ) -> FlowId {
        self.try_start_flow(path, size_bytes, Some(rate_cap)).expect("invalid flow")
    }

    /// Fallible flow creation.
    pub fn try_start_flow(
        &mut self,
        path: Vec<LinkId>,
        size_bytes: f64,
        rate_cap: Option<f64>,
    ) -> Result<FlowId, SimError> {
        if path.is_empty() {
            return Err(SimError::EmptyPath);
        }
        for l in &path {
            if l.0 >= self.links.len() {
                return Err(SimError::UnknownLink(l.0));
            }
        }
        if !size_bytes.is_finite() || size_bytes < 0.0 {
            return Err(SimError::InvalidSize(format!("{size_bytes}")));
        }
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        for l in &path {
            if self.topo.incidence[l.0] == 0 {
                // Idle → active: (re)arm the capacity calendar from now.
                // Bumping the epoch first kills any stale queued entry —
                // and makes a duplicated link later in this same path
                // self-correcting (its earlier arm goes stale).
                self.cap_epochs[l.0] = self.cap_epochs[l.0].wrapping_add(1);
                if let Some(t) = self.links[l.0].process.next_change(self.now) {
                    self.cap_events.push(Reverse((t, l.0 as u32, self.cap_epochs[l.0])));
                }
            }
        }
        let slot = self.topo.add_flow(id, &path, rate_cap);
        let mut f = Flow {
            path,
            size_bytes,
            remaining_bytes: size_bytes,
            rate_bps: 0.0,
            rate_cap,
            started_at: self.now,
            slot,
            settled_at: self.now,
            armed_at: SimTime::FAR_FUTURE,
        };
        // Zero-sized (≤ epsilon) flows are due immediately, before any
        // rate is ever assigned; queue them at their start instant.
        if let Some(t) = f.predicted_completion() {
            f.armed_at = t;
            self.completions.push(Reverse((t, id.0)));
        }
        self.flows.insert(id, f);
        // Keep the completion calendar's capacity above its compaction
        // ceiling (64 + 4·flows, plus one recompute's worth of ratchet
        // pushes). Reserved here, at a flow-churn point, it guarantees
        // the steady-state loop never outgrows the buffer however long
        // it runs: compaction trims the length back before it can
        // reach this capacity.
        let floor = 65 + 5 * self.flows.len();
        if self.completions.capacity() < floor {
            self.completions.reserve(floor - self.completions.len());
        }
        self.rates_dirty = true;
        Ok(id)
    }

    /// Cancel an active flow, returning its record (with the bytes it
    /// transferred before cancellation — the "wasted bytes" accounting of
    /// the greedy scheduler uses this).
    pub fn cancel_flow(&mut self, id: FlowId) -> Result<Flow, SimError> {
        let now = self.now;
        match self.flows.get_mut(&id) {
            Some(f) => f.settle_to(now),
            None => return Err(SimError::UnknownFlow(id.0)),
        }
        let f = self.flows.remove(&id).expect("checked above");
        self.topo.remove_flow(f.slot, &f.path);
        for l in &f.path {
            if self.topo.incidence[l.0] == 0 {
                self.cap_epochs[l.0] = self.cap_epochs[l.0].wrapping_add(1);
            }
        }
        self.rates_dirty = true;
        Ok(f)
    }

    /// Access an active flow, with its progress settled to the current
    /// time.
    ///
    /// The settlement happens on a reusable scratch copy: the engine's
    /// own record is only ever settled on event boundaries, so query
    /// patterns cannot perturb the simulated trajectory.
    pub fn flow(&mut self, id: FlowId) -> Option<&Flow> {
        let f = self.flows.get(&id)?;
        match &mut self.flow_scratch {
            Some(s) => {
                s.path.clone_from(&f.path);
                s.size_bytes = f.size_bytes;
                s.remaining_bytes = f.remaining_bytes;
                s.rate_bps = f.rate_bps;
                s.rate_cap = f.rate_cap;
                s.started_at = f.started_at;
                s.slot = f.slot;
                s.settled_at = f.settled_at;
                s.armed_at = f.armed_at;
            }
            None => self.flow_scratch = Some(f.clone()),
        }
        let now = self.now;
        let s = self.flow_scratch.as_mut().expect("just populated");
        s.settle_to(now);
        Some(s)
    }

    /// Ids of all active flows (ascending).
    pub fn active_flows(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// Number of active flows.
    pub fn active_flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Schedule a wakeup at absolute time `at` (clamped to now if in the
    /// past) carrying `token`.
    pub fn schedule_wakeup(&mut self, at: SimTime, token: WakeToken) {
        let at = at.max(self.now);
        self.wakeups.push(Reverse((at, self.wake_seq, token.0)));
        self.wake_seq += 1;
    }

    /// Schedule a wakeup `delay_secs` from now.
    pub fn schedule_wakeup_in(&mut self, delay_secs: f64, token: WakeToken) {
        let at = self.now + delay_secs.max(0.0);
        self.schedule_wakeup(at, token);
    }

    /// Re-solve the components flagged dirty, refreshing their links'
    /// capacities at the current time; clean components keep their
    /// rates. After a rebuild every component is re-solved.
    ///
    /// This is the only place rates change, so it is also where all
    /// lazy state is reconciled: every flow and link of a re-solved
    /// component is settled to `now` *before* its new rate takes
    /// effect, and a fresh completion prediction is queued — but only
    /// if it undercuts the flow's armed calendar entry (the ratchet:
    /// queued entries are lower bounds, so a *later* prediction just
    /// lets the old entry surface early and re-arm itself). In steady
    /// state (capacity changes and wakeups, no flow churn) this path
    /// performs no heap allocation and almost no heap traffic; churn
    /// itself is O(touched component).
    fn recompute_rates(&mut self) {
        if self.topo.needs_rebuild {
            // The rebuild renumbers slots; settle everything first so
            // the re-solve below starts from exact byte counts.
            for f in self.flows.values_mut() {
                f.settle_to(self.now);
            }
            self.topo.rebuild(self.links.len(), &mut self.flows);
            self.all_dirty = true;
        }
        if self.rates.len() < self.topo.paths.len() {
            self.rates.resize(self.topo.paths.len(), 0.0);
        }
        if self.caps.len() < self.links.len() {
            self.caps.resize(self.links.len(), 0.0);
        }

        if self.all_dirty {
            for (i, link) in self.links.iter_mut().enumerate() {
                link.settle_to(self.now);
                link.rate_sum = 0.0;
                self.caps[i] = link.capacity_at(self.now);
            }
            self.topo.dirty_comps.clear();
            for c in 0..self.topo.comps.len() {
                self.topo.comp_dirty[c] = false;
                if self.topo.comps[c].flows.is_empty() {
                    continue;
                }
                max_min_fair_subset_into(
                    &self.caps,
                    &self.topo.paths,
                    &self.topo.comps[c].flows,
                    &mut self.scratch,
                    &mut self.rates,
                );
            }
            for (id, f) in self.flows.iter_mut() {
                f.settle_to(self.now);
                f.rate_bps = self.rates[f.slot as usize];
                for l in &f.path {
                    self.links[l.0].rate_sum += f.rate_bps;
                }
                if let Some(t) = f.predicted_completion() {
                    if t < f.armed_at {
                        f.armed_at = t;
                        self.completions.push(Reverse((t, id.0)));
                    }
                }
            }
            self.all_dirty = false;
        } else {
            while let Some(c) = self.topo.dirty_comps.pop() {
                let c = c as usize;
                if !self.topo.comp_dirty[c] {
                    continue; // merged away since it was queued
                }
                self.topo.comp_dirty[c] = false;
                for &l in &self.topo.comps[c].links {
                    // Settle under the outgoing aggregate rate before
                    // zeroing it for re-accumulation below.
                    let link = &mut self.links[l as usize];
                    link.settle_to(self.now);
                    link.rate_sum = 0.0;
                    self.caps[l as usize] = link.capacity_at(self.now);
                }
                if self.topo.comps[c].flows.is_empty() {
                    continue;
                }
                max_min_fair_subset_into(
                    &self.caps,
                    &self.topo.paths,
                    &self.topo.comps[c].flows,
                    &mut self.scratch,
                    &mut self.rates,
                );
                for &slot in &self.topo.comps[c].flows {
                    let id = self.topo.flow_ids[slot as usize];
                    let rate = self.rates[slot as usize];
                    let f = self.flows.get_mut(&id).expect("flow exists");
                    f.settle_to(self.now);
                    f.rate_bps = rate;
                    for l in &f.path {
                        self.links[l.0].rate_sum += rate;
                    }
                    if let Some(t) = f.predicted_completion() {
                        if t < f.armed_at {
                            f.armed_at = t;
                            self.completions.push(Reverse((t, id.0)));
                        }
                    }
                }
            }
        }
        self.rates_dirty = false;
        self.compact_calendars();
    }

    /// Drop stale calendar entries in place once a heap outgrows a
    /// multiple of its live population. Without this, entries that
    /// never reach the top (e.g. far-future predictions invalidated by
    /// churn) would accumulate without bound.
    fn compact_calendars(&mut self) {
        if self.completions.len() > 64 + 4 * self.flows.len() {
            let flows = &self.flows;
            // Entries above a flow's armed time are redundant: the
            // armed entry (kept, `t <= armed_at`) already lower-bounds
            // the completion, so the later ones would only ever surface
            // early and re-arm to it.
            self.completions.retain(|Reverse((t, raw))| {
                flows.get(&FlowId(*raw)).map(|f| *t <= f.armed_at).unwrap_or(false)
            });
        }
        if self.cap_events.len() > 64 + 4 * self.links.len() {
            let epochs = &self.cap_epochs;
            let incidence = &self.topo.incidence;
            self.cap_events.retain(|Reverse((_, l, epoch))| {
                epochs[*l as usize] == *epoch && incidence[*l as usize] > 0
            });
        }
    }

    /// Earliest completion-calendar entry, **unvalidated**: the top may
    /// be stale (its flow gone, or a lower bound overtaken by a rate
    /// drop). The stepper treats it as a candidate and validates it
    /// only if it actually gates the step, so steady-state steps driven
    /// by capacity changes or wakeups never pay a flow-table lookup.
    fn peek_completion_top(&self) -> SimTime {
        self.completions.peek().map(|&Reverse((t, _))| t).unwrap_or(SimTime::FAR_FUTURE)
    }

    /// Examine the completion heap's top entry: `Some(t)` if it is the
    /// genuine prediction of a live flow, else repair it — drop a
    /// dead/stalled flow's entry, re-arm an early lower bound at the
    /// flow's current prediction — and return `None`. The clock and all
    /// byte accounting are untouched either way.
    ///
    /// # Panics
    /// Panics if the heap is empty.
    fn validate_completion_top(&mut self) -> Option<SimTime> {
        let &Reverse((t, raw)) = self.completions.peek().expect("nonempty calendar");
        match self.flows.get(&FlowId(raw)).and_then(|f| f.predicted_completion()) {
            // Lower-bound invariant: t <= prediction, so equality means
            // the entry is exact.
            Some(p) if p <= t => Some(t),
            Some(p) => {
                self.completions.pop();
                let f = self.flows.get_mut(&FlowId(raw)).expect("checked above");
                f.armed_at = p;
                self.completions.push(Reverse((p, raw)));
                None
            }
            None => {
                self.completions.pop();
                if let Some(f) = self.flows.get_mut(&FlowId(raw)) {
                    f.armed_at = SimTime::FAR_FUTURE; // stalled: re-armed on next rate
                }
                None
            }
        }
    }

    /// Earliest *genuine* completion instant (stale tops are repaired
    /// or dropped along the way). Used by [`Simulation::peek_time`],
    /// which must not report a stale instant.
    fn peek_completion(&mut self) -> SimTime {
        while !self.completions.is_empty() {
            if let Some(t) = self.validate_completion_top() {
                return t;
            }
        }
        SimTime::FAR_FUTURE
    }

    /// Earliest valid capacity-calendar entry (stale tops dropped).
    fn peek_capacity(&mut self) -> SimTime {
        while let Some(&Reverse((t, l, epoch))) = self.cap_events.peek() {
            let l = l as usize;
            if self.cap_epochs[l] == epoch && self.topo.incidence[l] > 0 {
                return t;
            }
            self.cap_events.pop();
        }
        SimTime::FAR_FUTURE
    }

    /// Fire every capacity change due at `t`: mark the affected
    /// components dirty and re-arm each fired link at its next change
    /// point (same epoch — only invalidation events bump it).
    fn fire_capacity(&mut self, t: SimTime) {
        while let Some(&Reverse((et, l, epoch))) = self.cap_events.peek() {
            if et > t {
                break;
            }
            self.cap_events.pop();
            let li = l as usize;
            if self.cap_epochs[li] != epoch || self.topo.incidence[li] == 0 {
                continue;
            }
            self.topo.mark_link_dirty(li);
            self.rates_dirty = true;
            if let Some(next) = self.links[li].process.next_change(t) {
                self.cap_events.push(Reverse((next, l, epoch)));
            }
        }
    }

    /// Reference stepper: earliest predicted completion over all flows.
    fn scan_completion(&self) -> SimTime {
        let mut t = SimTime::FAR_FUTURE;
        for f in self.flows.values() {
            if let Some(tc) = f.predicted_completion() {
                t = t.min(tc);
            }
        }
        t
    }

    /// Reference stepper: earliest upcoming capacity change among links
    /// that carry flows, recording the links that change at that
    /// instant into `cap_candidates` (their components are marked dirty
    /// if that event actually fires).
    fn scan_capacity_change(&mut self) -> SimTime {
        self.cap_candidates.clear();
        let mut earliest = SimTime::FAR_FUTURE;
        for (i, link) in self.links.iter().enumerate() {
            if self.topo.incidence[i] == 0 {
                continue;
            }
            if let Some(t) = link.process.next_change(self.now) {
                if t < earliest {
                    earliest = t;
                    self.cap_candidates.clear();
                    self.cap_candidates.push(i as u32);
                } else if t == earliest {
                    self.cap_candidates.push(i as u32);
                }
            }
        }
        earliest
    }

    /// Settle a flow that the calendar (or scan) claims is due at the
    /// current instant and classify the outcome. `wake_at_now` gates
    /// the sub-ULP snap: a residual too small to advance the clock
    /// completes only once no wakeup shares the instant (wakeups fire
    /// before snapped completions, exactly like the global-scan
    /// engine's ordering).
    fn resolve_due(&mut self, id: FlowId, wake_at_now: bool) -> Due {
        let now = self.now;
        let f = self.flows.get_mut(&id).expect("due flow exists");
        // The popped entry may be a lower bound the true completion has
        // drifted past (the rate dropped since it was armed), or the
        // flow may have stalled outright. Classify from the prediction
        // *before* settling, so an early surfacing leaves the
        // settlement arithmetic bit-for-bit untouched.
        match f.predicted_completion() {
            Some(p) if p <= now => {}
            _ => return Due::Rearm,
        }
        f.settle_to(now);
        let mut done = f.remaining_bytes <= COMPLETE_EPS_BYTES;
        if !done {
            let eta = f.eta_secs().expect("due flow with bytes left has a rate");
            if now + eta <= now {
                // The residual transfer time is below one ULP of the
                // clock: time cannot advance, so snap to completion
                // instead of spinning — unless a wakeup is due first.
                if wake_at_now {
                    return Due::Gated;
                }
                f.remaining_bytes = 0.0;
                done = true;
            }
        }
        if done {
            Due::Done(self.retire(id))
        } else {
            Due::Rearm
        }
    }

    /// Remove a completed flow from the system and build its event.
    fn retire(&mut self, id: FlowId) -> SimEvent {
        let record = self.flows.remove(&id).expect("retired flow exists");
        self.topo.remove_flow(record.slot, &record.path);
        for l in &record.path {
            if self.topo.incidence[l.0] == 0 {
                // Last flow left the link: its queued capacity changes
                // can no longer affect any rate.
                self.cap_epochs[l.0] = self.cap_epochs[l.0].wrapping_add(1);
            }
        }
        self.rates_dirty = true;
        SimEvent::FlowCompleted { flow: id, record, time: self.now }
    }

    /// Pop the next flow completion due at the current instant, if any.
    ///
    /// Due entries always sit exactly at `now` (predictions are never
    /// in the past, and the stepper stops at the earliest candidate),
    /// so the heap surfaces them in ascending `FlowId` order — the same
    /// order the reference stepper's BTreeMap scan produces.
    fn pop_due_completion(&mut self) -> Option<SimEvent> {
        if self.reference_scan {
            return self.pop_due_completion_scan();
        }
        let wake_at_now =
            self.wakeups.peek().map(|Reverse((t, _, _))| *t <= self.now).unwrap_or(false);
        let mut out = None;
        while let Some(&Reverse((t, raw))) = self.completions.peek() {
            if t > self.now {
                break;
            }
            self.completions.pop();
            let id = FlowId(raw);
            if !self.flows.contains_key(&id) {
                continue;
            }
            match self.resolve_due(id, wake_at_now) {
                Due::Done(ev) => {
                    out = Some(ev);
                    break;
                }
                Due::Gated => self.gated_scratch.push((t, raw)),
                Due::Rearm => {
                    let f = self.flows.get_mut(&id).expect("present above");
                    if let Some(tc) = f.predicted_completion() {
                        f.armed_at = tc;
                        self.completions.push(Reverse((tc, raw)));
                    } else {
                        f.armed_at = SimTime::FAR_FUTURE;
                    }
                }
            }
        }
        while let Some(e) = self.gated_scratch.pop() {
            self.completions.push(Reverse(e));
        }
        out
    }

    /// Reference-stepper variant of [`Simulation::pop_due_completion`]:
    /// scan the flow map in id order for the first due flow, resuming
    /// past gated / re-armed ones.
    fn pop_due_completion_scan(&mut self) -> Option<SimEvent> {
        let wake_at_now =
            self.wakeups.peek().map(|Reverse((t, _, _))| *t <= self.now).unwrap_or(false);
        let mut after: Option<FlowId> = None;
        loop {
            let now = self.now;
            let due = match after {
                None => self
                    .flows
                    .iter()
                    .find(|(_, f)| matches!(f.predicted_completion(), Some(t) if t <= now)),
                Some(prev) => self
                    .flows
                    .range((Bound::Excluded(prev), Bound::Unbounded))
                    .find(|(_, f)| matches!(f.predicted_completion(), Some(t) if t <= now)),
            }
            .map(|(id, _)| *id);
            let id = due?;
            match self.resolve_due(id, wake_at_now) {
                Due::Done(ev) => return Some(ev),
                Due::Gated | Due::Rearm => after = Some(id),
            }
        }
    }

    /// Advance to, and return, the next externally visible event.
    ///
    /// Returns `None` when nothing can ever happen again: no wakeups are
    /// pending and either no flows are active or every active flow is
    /// permanently stalled (rate 0 with no future capacity change).
    pub fn next_event(&mut self) -> Option<SimEvent> {
        self.step(None)
    }

    /// Like [`Simulation::next_event`] but never advances past `limit`:
    /// if the next event would occur after it, the simulation state is
    /// advanced exactly to `limit` and `None` is returned.
    pub fn next_event_until(&mut self, limit: SimTime) -> Option<SimEvent> {
        self.step(Some(limit))
    }

    fn step(&mut self, limit: Option<SimTime>) -> Option<SimEvent> {
        let mut iters: u64 = 0;
        loop {
            iters += 1;
            if iters > 10_000_000 {
                self.panic_stuck();
            }
            // Zero-time completions first (e.g., several flows finishing
            // at the same instant, or zero-sized flows).
            if let Some(ev) = self.pop_due_completion() {
                return Some(ev);
            }
            if self.rates_dirty {
                self.recompute_rates();
                continue; // a rate change may complete an infinite-rate flow
            }

            // Candidate event times.
            let t_complete = if self.reference_scan {
                self.scan_completion()
            } else {
                self.peek_completion_top()
            };
            let t_capacity = if self.reference_scan {
                self.scan_capacity_change()
            } else {
                self.peek_capacity()
            };
            let t_wake =
                self.wakeups.peek().map(|Reverse((t, _, _))| *t).unwrap_or(SimTime::FAR_FUTURE);

            let t_next = t_complete.min(t_capacity).min(t_wake);
            if t_next >= SimTime::FAR_FUTURE {
                return None; // permanently idle or stalled
            }
            // The completion candidate is an unvalidated heap top:
            // verify it only now that it would actually gate the step.
            // A stale top is repaired *without* advancing the clock and
            // the step retried, so spurious instants never leak out.
            if !self.reference_scan
                && t_next == t_complete
                && self.validate_completion_top().is_none()
            {
                continue;
            }
            if let Some(lim) = limit {
                if t_next > lim {
                    // Advance exactly to the limit and stop. No event
                    // fired in between, so no capacity changed and all
                    // rates (hence all lazy anchors) remain valid.
                    self.now = lim;
                    return None;
                }
            }
            self.now = t_next;

            if t_next == t_capacity {
                // Mark the changed links' components dirty; the
                // recompute happens lazily at the next query or step,
                // which also covers a coincident wakeup below.
                if self.reference_scan {
                    for &l in &self.cap_candidates {
                        self.topo.mark_link_dirty(l as usize);
                    }
                    self.rates_dirty = true;
                } else {
                    self.fire_capacity(t_next);
                }
            }
            if t_next == t_wake {
                let Reverse((time, _, token)) = self.wakeups.pop().expect("peeked");
                return Some(SimEvent::Wakeup { token: WakeToken(token), time });
            }
            // Completions (if any) surface at the top of the loop.
        }
    }

    /// Stuck-stepper diagnostic. Kept out of the hot loop: the message
    /// is only built here, and only a bounded prefix of the flow table
    /// goes into it.
    #[cold]
    #[inline(never)]
    fn panic_stuck(&self) -> ! {
        use std::fmt::Write;
        let mut dump = String::new();
        for (id, f) in self.flows.iter().take(16) {
            let _ = write!(dump, " ({}, {}, {})", id.0, f.rate_bps, f.remaining_bytes);
        }
        if self.flows.len() > 16 {
            let _ = write!(dump, " … and {} more", self.flows.len() - 16);
        }
        panic!("engine stuck: now={}, flows (id, rate, remaining):{}", self.now, dump);
    }

    /// Process and discard events until virtual time reaches `until`.
    ///
    /// Events strictly before `until` are dropped; the simulation clock
    /// is left exactly at `until`. Useful for warm-up phases.
    pub fn run_until(&mut self, until: SimTime) {
        while self.next_event_until(until).is_some() {}
        if self.now < until {
            if self.rates_dirty {
                self.recompute_rates();
            }
            self.now = until;
        }
    }

    /// Current aggregate rate crossing `link` (bits/second), summing
    /// the fair-share rates of all flows that traverse it. Recomputes
    /// rates if the flow set changed since the last event.
    pub fn link_rate(&mut self, link: LinkId) -> f64 {
        if self.rates_dirty {
            self.recompute_rates();
        }
        self.links[link.0].rate_sum
    }

    /// The time of the next event without consuming it (recomputes rates
    /// if needed).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let due = if self.reference_scan { self.scan_completion() } else { self.peek_completion() };
        if due <= self.now {
            return Some(self.now);
        }
        if self.rates_dirty {
            self.recompute_rates();
        }
        let t_complete =
            if self.reference_scan { self.scan_completion() } else { self.peek_completion() };
        let t_capacity =
            if self.reference_scan { self.scan_capacity_change() } else { self.peek_capacity() };
        let mut t = t_complete.min(t_capacity);
        if let Some(Reverse((tw, _, _))) = self.wakeups.peek() {
            t = t.min(*tw);
        }
        if t >= SimTime::FAR_FUTURE {
            None
        } else {
            Some(t)
        }
    }

    /// Step via the retained global-scan reference logic instead of the
    /// calendars.
    ///
    /// The reference stepper shares every byte of the settlement
    /// arithmetic with the calendar engine — it differs only in *how*
    /// the next event time is found (exhaustive scans over all flows
    /// and links, exactly like the pre-calendar engine). The oracle
    /// tests run both modes over identical scenarios and assert the
    /// event streams are bit-identical.
    #[doc(hidden)]
    pub fn use_reference_stepper(&mut self, on: bool) {
        self.reference_scan = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::DiurnalProfile;

    fn mbps(x: f64) -> f64 {
        x * 1e6
    }

    #[test]
    fn single_flow_transfer_time() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_flow(vec![l], 1_000_000.0); // 8 Mbit over 8 Mbps = 1 s
        let ev = sim.next_event().unwrap();
        assert!((ev.time().secs() - 1.0).abs() < 1e-9);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        // Two 1 MB flows: share 4 Mbps each. First completes at 2 s
        // (if equal) — equal sizes tie; both complete at 2 s.
        let a = sim.start_flow(vec![l], 1_000_000.0);
        let b = sim.start_flow(vec![l], 500_000.0);
        // b needs 4 Mbit at 4 Mbps -> 1 s. Then a has 0.5 MB left at 8 Mbps -> +0.5 s.
        let e1 = sim.next_event().unwrap();
        match &e1 {
            SimEvent::FlowCompleted { flow, .. } => assert_eq!(*flow, b),
            _ => panic!(),
        }
        assert!((e1.time().secs() - 1.0).abs() < 1e-9);
        let e2 = sim.next_event().unwrap();
        match &e2 {
            SimEvent::FlowCompleted { flow, .. } => assert_eq!(*flow, a),
            _ => panic!(),
        }
        assert!((e2.time().secs() - 1.5).abs() < 1e-9, "{}", e2.time());
    }

    #[test]
    fn parallel_paths_aggregate() {
        // The 3GOL core effect: an item on ADSL and an item on a phone
        // proceed independently at full speed.
        let mut sim = Simulation::new();
        let adsl = sim.add_link("adsl", CapacityProcess::constant(mbps(2.0)));
        let phone = sim.add_link("phone", CapacityProcess::constant(mbps(1.0)));
        sim.start_flow(vec![adsl], 250_000.0); // 2 Mbit / 2 Mbps = 1 s
        sim.start_flow(vec![phone], 250_000.0); // 2 Mbit / 1 Mbps = 2 s
        let e1 = sim.next_event().unwrap();
        let e2 = sim.next_event().unwrap();
        assert!((e1.time().secs() - 1.0).abs() < 1e-9);
        assert!((e2.time().secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_mid_flow() {
        let mut sim = Simulation::new();
        let l = sim.add_link(
            "l",
            CapacityProcess::piecewise(vec![
                (SimTime::ZERO, mbps(8.0)),
                (SimTime::from_secs(1.0), mbps(4.0)),
            ]),
        );
        // 2 MB = 16 Mbit. 1 s at 8 Mbps -> 8 Mbit done; 8 Mbit left at 4 Mbps -> 2 s more.
        sim.start_flow(vec![l], 2_000_000.0);
        let ev = sim.next_event().unwrap();
        assert!((ev.time().secs() - 3.0).abs() < 1e-9, "{}", ev.time());
    }

    #[test]
    fn wakeups_fire_in_order() {
        let mut sim = Simulation::new();
        sim.schedule_wakeup(SimTime::from_secs(2.0), WakeToken(2));
        sim.schedule_wakeup(SimTime::from_secs(1.0), WakeToken(1));
        sim.schedule_wakeup(SimTime::from_secs(1.0), WakeToken(10)); // FIFO tie
        let e1 = sim.next_event().unwrap();
        let e2 = sim.next_event().unwrap();
        let e3 = sim.next_event().unwrap();
        match (e1, e2, e3) {
            (
                SimEvent::Wakeup { token: t1, .. },
                SimEvent::Wakeup { token: t2, .. },
                SimEvent::Wakeup { token: t3, .. },
            ) => {
                assert_eq!(t1, WakeToken(1));
                assert_eq!(t2, WakeToken(10));
                assert_eq!(t3, WakeToken(2));
            }
            _ => panic!("expected wakeups"),
        }
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn cancel_returns_partial_progress() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        let f = sim.start_flow(vec![l], 1_000_000.0);
        sim.schedule_wakeup(SimTime::from_secs(0.5), WakeToken(0));
        let _ = sim.next_event().unwrap(); // wakeup at 0.5 s
        let record = sim.cancel_flow(f).unwrap();
        assert!((record.transferred_bytes() - 500_000.0).abs() < 1.0);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn cancel_unknown_flow_errors() {
        let mut sim = Simulation::new();
        assert!(matches!(sim.cancel_flow(FlowId(99)), Err(SimError::UnknownFlow(99))));
    }

    #[test]
    fn zero_sized_flow_completes_immediately() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(1.0)));
        let f = sim.start_flow(vec![l], 0.0);
        let ev = sim.next_event().unwrap();
        match ev {
            SimEvent::FlowCompleted { flow, time, .. } => {
                assert_eq!(flow, f);
                assert_eq!(time, SimTime::ZERO);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn invalid_flows_rejected() {
        let mut sim = Simulation::new();
        assert!(matches!(sim.try_start_flow(vec![], 1.0, None), Err(SimError::EmptyPath)));
        assert!(matches!(
            sim.try_start_flow(vec![LinkId(7)], 1.0, None),
            Err(SimError::UnknownLink(7))
        ));
        let l = sim.add_link("l", CapacityProcess::constant(1.0));
        assert!(matches!(
            sim.try_start_flow(vec![l], f64::NAN, None),
            Err(SimError::InvalidSize(_))
        ));
        assert!(matches!(sim.try_start_flow(vec![l], -3.0, None), Err(SimError::InvalidSize(_))));
    }

    #[test]
    fn stalled_flow_yields_none() {
        let mut sim = Simulation::new();
        let l = sim.add_link("dead", CapacityProcess::constant(0.0));
        sim.start_flow(vec![l], 100.0);
        assert!(sim.next_event().is_none());
        assert_eq!(sim.active_flow_count(), 1);
    }

    #[test]
    fn rate_cap_respected() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_capped_flow(vec![l], 1_000_000.0, mbps(2.0)); // 8 Mbit at 2 Mbps = 4 s
        let ev = sim.next_event().unwrap();
        assert!((ev.time().secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn link_accounting_tracks_bytes() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_flow(vec![l], 1_000_000.0);
        let _ = sim.next_event();
        assert!((sim.link(l).bytes_carried - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        let f = sim.start_flow(vec![l], 10_000_000.0);
        sim.run_until(SimTime::from_secs(3.0));
        assert_eq!(sim.now(), SimTime::from_secs(3.0));
        let flow = sim.flow(f).unwrap();
        assert!((flow.transferred_bytes() - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    fn run_until_stops_at_boundary_with_stochastic_links() {
        // Regression: capacity-change events are internal, so a naive
        // run_until could let one next_event call run far past the
        // boundary. The clock must stop exactly at the limit and the
        // carried bytes must match rate × time.
        let mut sim = Simulation::new();
        let l = sim.add_link(
            "s",
            CapacityProcess::stochastic(mbps(0.8), 0.2, 1.0, DiurnalProfile::flat(), 5),
        );
        sim.start_flow(vec![l], 50_000_000.0);
        sim.run_until(SimTime::from_secs(30.0));
        assert_eq!(sim.now(), SimTime::from_secs(30.0));
        let carried = sim.link(l).bytes_carried;
        // ~0.8 Mbps × 30 s ≈ 3 MB, well below the 50 MB flow size.
        assert!(carried > 1_500_000.0 && carried < 6_000_000.0, "carried {carried}");
    }

    #[test]
    fn next_event_until_respects_limit() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(8.0)));
        sim.start_flow(vec![l], 1_000_000.0); // completes at 1 s
        assert!(sim.next_event_until(SimTime::from_secs(0.5)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(0.5));
        let ev = sim.next_event_until(SimTime::from_secs(2.0)).unwrap();
        assert!((ev.time().secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stochastic_capacity_transfer_is_deterministic() {
        let run = || {
            let mut sim = Simulation::new();
            let l = sim.add_link(
                "hspa",
                CapacityProcess::stochastic(mbps(2.0), 0.3, 5.0, DiurnalProfile::flat(), 99),
            );
            sim.start_flow(vec![l], 2_000_000.0);
            sim.next_event().unwrap().time().secs()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // Roughly 2 MB at ~2 Mbps ≈ 8 s.
        assert!(a > 4.0 && a < 16.0, "t = {a}");
    }

    #[test]
    fn link_rate_reports_aggregate() {
        let mut sim = Simulation::new();
        let l = sim.add_link("l", CapacityProcess::constant(mbps(6.0)));
        sim.start_flow(vec![l], 1e9);
        sim.start_flow(vec![l], 1e9);
        assert!((sim.link_rate(l) - mbps(6.0)).abs() < 1.0);
        let empty = sim.add_link("e", CapacityProcess::constant(mbps(1.0)));
        assert_eq!(sim.link_rate(empty), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Byte conservation: when every flow completes, each link
            /// carried exactly the sum of the sizes of the flows that
            /// traversed it.
            #[test]
            fn bytes_are_conserved(
                n_links in 1usize..5,
                flows in proptest::collection::vec(
                    (proptest::collection::btree_set(0usize..5, 1..3), 1_000.0f64..1e6),
                    1..10,
                ),
            ) {
                let mut sim = Simulation::new();
                let links: Vec<LinkId> = (0..n_links)
                    .map(|i| sim.add_link(format!("l{i}"), CapacityProcess::constant(1e6 + i as f64 * 3e5)))
                    .collect();
                let mut expected = vec![0.0f64; n_links];
                let mut total = 0usize;
                for (link_set, size) in &flows {
                    let path: Vec<LinkId> = link_set
                        .iter()
                        .filter(|&&l| l < n_links)
                        .map(|&l| links[l])
                        .collect();
                    if path.is_empty() {
                        continue;
                    }
                    for l in &path {
                        expected[l.index()] += *size;
                    }
                    sim.start_flow(path, *size);
                    total += 1;
                }
                let mut completions = 0;
                while let Some(ev) = sim.next_event() {
                    if matches!(ev, SimEvent::FlowCompleted { .. }) {
                        completions += 1;
                    }
                }
                prop_assert_eq!(completions, total);
                for (i, l) in links.iter().enumerate() {
                    prop_assert!(
                        (sim.link(*l).bytes_carried - expected[i]).abs() < 1.0,
                        "link {} carried {} expected {}",
                        i, sim.link(*l).bytes_carried, expected[i]
                    );
                }
            }

            /// Event-by-event determinism for identical scenarios.
            #[test]
            fn identical_runs_produce_identical_events(seed in 0u64..200) {
                let run = |seed: u64| -> Vec<(u64, f64)> {
                    let mut sim = Simulation::new();
                    let l = sim.add_link(
                        "s",
                        CapacityProcess::stochastic(
                            2e6, 0.4, 1.0, DiurnalProfile::flat(), seed,
                        ),
                    );
                    for k in 0..4 {
                        sim.start_flow(vec![l], 100_000.0 * (k + 1) as f64);
                    }
                    let mut out = Vec::new();
                    while let Some(ev) = sim.next_event() {
                        if let SimEvent::FlowCompleted { flow, time, .. } = ev {
                            out.push((flow.raw(), time.secs()));
                        }
                    }
                    out
                };
                prop_assert_eq!(run(seed), run(seed));
            }
        }
    }

    #[test]
    fn shared_bottleneck_with_side_link() {
        // Phone flow traverses both its radio share and the cell channel.
        let mut sim = Simulation::new();
        let cell = sim.add_link("cell", CapacityProcess::constant(mbps(3.0)));
        let radio_a = sim.add_link("ra", CapacityProcess::constant(mbps(2.0)));
        let radio_b = sim.add_link("rb", CapacityProcess::constant(mbps(2.0)));
        // Both flows limited by the 3 Mbps cell: 1.5 Mbps each.
        sim.start_flow(vec![radio_a, cell], 750_000.0);
        sim.start_flow(vec![radio_b, cell], 750_000.0);
        let e1 = sim.next_event().unwrap();
        // 6 Mbit at 1.5 Mbps = 4 s.
        assert!((e1.time().secs() - 4.0).abs() < 1e-9, "{}", e1.time());
    }
}
