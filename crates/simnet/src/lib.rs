//! # threegol-simnet
//!
//! A deterministic, discrete-event, fluid-flow network simulator.
//!
//! This crate is the substrate on which the 3GOL reproduction runs its
//! trace-driven and controlled experiments. It models a network as a set
//! of [`Link`]s with (possibly time-varying) capacities and a set of
//! [`Flow`]s, each traversing a path of links. Flow rates are assigned by
//! **max-min fair sharing** (progressive filling), which approximates the
//! bandwidth sharing of long-lived TCP flows at the second-level
//! timescales the 3GOL paper measures.
//!
//! Everything is seeded and uses virtual time, so every experiment in the
//! repository is reproducible bit-for-bit.
//!
//! ## Quick tour
//!
//! ```
//! use threegol_simnet::{Simulation, CapacityProcess, SimEvent};
//!
//! let mut sim = Simulation::new();
//! // A 2 Mbit/s ADSL downlink.
//! let adsl = sim.add_link("adsl-down", CapacityProcess::constant(2_000_000.0));
//! // Start a 1 MiB transfer across it.
//! let flow = sim.start_flow(vec![adsl], 1024.0 * 1024.0);
//! let ev = sim.next_event().expect("one completion");
//! match ev {
//!     SimEvent::FlowCompleted { flow: f, .. } => assert_eq!(f, flow),
//!     _ => panic!("unexpected event"),
//! }
//! // 8 Mbit over a 2 Mbit/s pipe is ~4.2 s.
//! assert!((sim.now().secs() - 4.194).abs() < 0.01);
//! ```

pub mod capacity;
pub mod dist;
pub mod engine;
pub mod error;
pub mod fairshare;
pub mod flow;
pub mod link;
pub mod stats;
pub mod time;

pub use capacity::{CapacityProcess, DiurnalProfile};
pub use dist::{Distribution, SimRng};
pub use engine::{SimEvent, Simulation, WakeToken};
pub use error::SimError;
pub use flow::{Flow, FlowId};
pub use link::{Link, LinkId};
pub use time::SimTime;
