//! Max-min fair rate allocation (progressive filling / water-filling).
//!
//! Given link capacities and a set of flows (each traversing a set of
//! links, optionally with a per-flow rate cap), assign every flow the
//! max-min fair rate: all unconstrained flows' rates rise together until
//! each flow is stopped either by a saturated link or by its own cap.
//!
//! This is the classical fluid approximation of TCP bandwidth sharing
//! and is what gives the simulator its "parallel TCP over ADSL + N
//! phones" behaviour.

/// One flow's demand: the links it traverses and an optional rate cap.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Indices into the capacity slice passed to [`max_min_fair`].
    pub links: Vec<usize>,
    /// Optional per-flow cap in the same units as the link capacities.
    pub cap: Option<f64>,
}

/// Compute max-min fair rates.
///
/// `link_capacity[l]` is the capacity of link `l`; `flows[f].links` are
/// the links flow `f` traverses. Returns one rate per flow, in the same
/// units as the capacities.
///
/// Flows whose every link has infinite capacity and which have no cap
/// receive `f64::INFINITY`.
///
/// # Panics
/// Panics if a flow references a link index out of bounds.
pub fn max_min_fair(link_capacity: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    let nf = flows.len();
    let nl = link_capacity.len();
    let mut rate = vec![0.0_f64; nf];
    if nf == 0 {
        return rate;
    }
    for d in flows {
        for &l in &d.links {
            assert!(l < nl, "flow references unknown link {l}");
        }
    }

    let mut frozen = vec![false; nf];
    // Flows with a non-positive cap, or traversing a zero-capacity link,
    // are frozen at zero immediately.
    for (f, d) in flows.iter().enumerate() {
        let capped_zero = d.cap.is_some_and(|c| c <= 0.0);
        let dead_link = d.links.iter().any(|&l| link_capacity[l] <= 0.0);
        if capped_zero || dead_link {
            frozen[f] = true;
        }
    }

    // Progressive filling: raise all unfrozen rates together by the
    // largest increment that violates no constraint, then freeze the
    // flows whose constraint became tight.
    const REL_EPS: f64 = 1e-9;
    loop {
        let unfrozen: Vec<usize> = (0..nf).filter(|&f| !frozen[f]).collect();
        if unfrozen.is_empty() {
            break;
        }

        // Per-link: used capacity and number of unfrozen flows.
        let mut used = vec![0.0_f64; nl];
        let mut count = vec![0usize; nl];
        for (f, d) in flows.iter().enumerate() {
            for &l in &d.links {
                used[l] += rate[f];
                if !frozen[f] {
                    count[l] += 1;
                }
            }
        }

        // Largest uniform increment.
        let mut inc = f64::INFINITY;
        for l in 0..nl {
            if count[l] > 0 && link_capacity[l].is_finite() {
                let slack = (link_capacity[l] - used[l]).max(0.0);
                inc = inc.min(slack / count[l] as f64);
            }
        }
        for &f in &unfrozen {
            if let Some(c) = flows[f].cap {
                inc = inc.min((c - rate[f]).max(0.0));
            }
        }

        if inc.is_infinite() {
            // No finite constraint: these flows are unbounded.
            for &f in &unfrozen {
                rate[f] = f64::INFINITY;
            }
            break;
        }

        for &f in &unfrozen {
            rate[f] += inc;
        }

        // Freeze flows whose constraint is now tight.
        let mut used_after = vec![0.0_f64; nl];
        for (f, d) in flows.iter().enumerate() {
            for &l in &d.links {
                used_after[l] += rate[f];
            }
        }
        let mut any_frozen = false;
        for &f in &unfrozen {
            let at_cap = flows[f].cap.is_some_and(|c| rate[f] >= c - REL_EPS * c.max(1.0));
            let on_saturated = flows[f].links.iter().any(|&l| {
                link_capacity[l].is_finite()
                    && used_after[l] >= link_capacity[l] - REL_EPS * link_capacity[l].max(1.0)
            });
            if at_cap || on_saturated {
                frozen[f] = true;
                any_frozen = true;
            }
        }
        if !any_frozen {
            // Numerical safety net: a round that froze nothing would
            // recur forever (the increment it computed was already the
            // largest feasible one), so force progress by freezing the
            // flow with the smallest slack to any of its constraints.
            let mut best = unfrozen[0];
            let mut best_slack = f64::INFINITY;
            for &f in &unfrozen {
                let mut slack = f64::INFINITY;
                if let Some(c) = flows[f].cap {
                    slack = slack.min((c - rate[f]).max(0.0));
                }
                for &l in &flows[f].links {
                    if link_capacity[l].is_finite() {
                        slack = slack.min((link_capacity[l] - used_after[l]).max(0.0));
                    }
                }
                if slack < best_slack {
                    best_slack = slack;
                    best = f;
                }
            }
            frozen[best] = true;
        }
    }

    rate
}

/// Flattened flow demands for the allocation-free solver.
///
/// Same information as a `&[FlowDemand]`, but all paths live in one
/// contiguous arena so the table can be rebuilt with `clear` +
/// `push_flow` without any heap traffic once its buffers are warm.
/// Uncapped flows store a cap of `f64::INFINITY`.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    /// `offsets[f]..offsets[f + 1]` indexes `links` for flow `f`.
    offsets: Vec<u32>,
    /// Flattened link indices of every flow's path.
    links: Vec<u32>,
    /// Per-flow rate cap (`f64::INFINITY` when uncapped).
    caps: Vec<f64>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Remove all flows, keeping the buffers.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.links.clear();
        self.caps.clear();
    }

    /// Append one flow's demand.
    pub fn push_flow(&mut self, links: impl IntoIterator<Item = usize>, cap: Option<f64>) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        for l in links {
            self.links.push(u32::try_from(l).expect("link index fits u32"));
        }
        self.offsets.push(self.links.len() as u32);
        self.caps.push(cap.unwrap_or(f64::INFINITY));
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether the table holds no flows.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// The links flow `f` traverses.
    pub fn links_of(&self, f: usize) -> &[u32] {
        &self.links[self.offsets[f] as usize..self.offsets[f + 1] as usize]
    }

    /// Flow `f`'s rate cap (`f64::INFINITY` when uncapped).
    pub fn cap_of(&self, f: usize) -> f64 {
        self.caps[f]
    }

    /// Build a table from reference-style demands (test convenience).
    pub fn from_demands(flows: &[FlowDemand]) -> FlowTable {
        let mut t = FlowTable::new();
        for d in flows {
            t.push_flow(d.links.iter().copied(), d.cap);
        }
        t
    }
}

/// Flow demands addressable by dense index — the solver's view of a
/// flow population. Implemented by [`FlowTable`] and by the engine's
/// slot-based storage, so the same allocation-free solver serves both.
pub trait FlowSet {
    /// The links flow `f` traverses.
    fn links_of(&self, f: usize) -> &[u32];
    /// Flow `f`'s rate cap (`f64::INFINITY` when uncapped).
    fn cap_of(&self, f: usize) -> f64;
}

impl FlowSet for FlowTable {
    fn links_of(&self, f: usize) -> &[u32] {
        FlowTable::links_of(self, f)
    }

    fn cap_of(&self, f: usize) -> f64 {
        FlowTable::cap_of(self, f)
    }
}

/// Reusable working memory for [`max_min_fair_into`].
///
/// All vectors retain their capacity across calls; after a few warm-up
/// solves on a given problem size, further solves perform no heap
/// allocation at all.
#[derive(Debug, Default)]
pub struct FairShareScratch {
    /// Per-link capacity in use (valid only for links touched this call).
    used: Vec<f64>,
    /// Per-link number of still-rising flows (same validity).
    count: Vec<u32>,
    /// Links traversed by at least one initially-unfrozen flow.
    active_links: Vec<u32>,
    /// Flow indices still rising.
    unfrozen: Vec<u32>,
    /// `0..nf` identity subset for full solves.
    all_flows: Vec<u32>,
}

/// Allocation-free equivalent of [`max_min_fair`].
///
/// Writes one rate per flow into `out` (cleared and resized first).
/// `scratch` carries the working buffers between calls; `out` likewise
/// keeps its capacity, so a warm steady-state call allocates nothing.
///
/// Rates agree with the reference implementation to within `1e-9`
/// relative (property-tested below).
///
/// # Panics
/// Panics if a flow references a link index out of bounds.
pub fn max_min_fair_into(
    link_capacity: &[f64],
    flows: &FlowTable,
    scratch: &mut FairShareScratch,
    out: &mut Vec<f64>,
) {
    let nf = flows.len();
    out.clear();
    out.resize(nf, 0.0);
    scratch.all_flows.clear();
    scratch.all_flows.extend(0..nf as u32);
    // Split the borrow: the subset lives in scratch but the solver only
    // mutates the other scratch fields, so move it out for the call.
    let subset = std::mem::take(&mut scratch.all_flows);
    max_min_fair_subset_into(link_capacity, flows, &subset, scratch, out);
    scratch.all_flows = subset;
}

/// Solve max-min fairness restricted to `subset`.
///
/// `subset` must be *closed under link sharing*: no flow outside the
/// subset may traverse a link that a subset flow traverses (i.e., the
/// subset is a union of connected components of the flow/link sharing
/// graph). Under that precondition the restricted solve equals the
/// corresponding slice of the global solution, which is what lets the
/// engine re-solve only the components whose links changed.
///
/// Only `rates[f]` for `f` in `subset` are written; other entries are
/// left untouched. Allocation-free once `scratch` is warm.
pub fn max_min_fair_subset_into<F: FlowSet + ?Sized>(
    link_capacity: &[f64],
    flows: &F,
    subset: &[u32],
    scratch: &mut FairShareScratch,
    rates: &mut [f64],
) {
    const REL_EPS: f64 = 1e-9;
    let nl = link_capacity.len();
    if scratch.used.len() < nl {
        scratch.used.resize(nl, 0.0);
        scratch.count.resize(nl, 0);
    }
    scratch.active_links.clear();
    scratch.unfrozen.clear();

    // Reset the per-link state of every touched link (lazily: untouched
    // links keep stale values that this call never reads).
    for &f in subset {
        for &l in flows.links_of(f as usize) {
            let l = l as usize;
            assert!(l < nl, "flow references unknown link {l}");
            scratch.used[l] = 0.0;
            scratch.count[l] = 0;
        }
    }

    // Pre-freeze zero-cap / dead-link flows at zero; seed the per-link
    // rising-flow counts for the rest.
    for &f in subset {
        let fi = f as usize;
        rates[fi] = 0.0;
        let capped_zero = flows.cap_of(fi) <= 0.0;
        let dead_link = flows.links_of(fi).iter().any(|&l| link_capacity[l as usize] <= 0.0);
        if capped_zero || dead_link {
            continue;
        }
        scratch.unfrozen.push(f);
        for &l in flows.links_of(fi) {
            let l = l as usize;
            if scratch.count[l] == 0 {
                scratch.active_links.push(l as u32);
            }
            scratch.count[l] += 1;
        }
    }

    // Progressive filling, incremental across rounds: `used` rises by
    // `inc * count` per link instead of being re-summed from scratch,
    // and freezing a flow decrements its links' counts.
    while !scratch.unfrozen.is_empty() {
        let mut inc = f64::INFINITY;
        for &l in &scratch.active_links {
            let l = l as usize;
            if scratch.count[l] > 0 && link_capacity[l].is_finite() {
                let slack = (link_capacity[l] - scratch.used[l]).max(0.0);
                inc = inc.min(slack / scratch.count[l] as f64);
            }
        }
        for &f in &scratch.unfrozen {
            let c = flows.cap_of(f as usize);
            if c.is_finite() {
                inc = inc.min((c - rates[f as usize]).max(0.0));
            }
        }

        if inc.is_infinite() {
            // No finite constraint: these flows are unbounded.
            for &f in &scratch.unfrozen {
                rates[f as usize] = f64::INFINITY;
            }
            return;
        }

        for &f in &scratch.unfrozen {
            rates[f as usize] += inc;
        }
        for &l in &scratch.active_links {
            let l = l as usize;
            scratch.used[l] += inc * scratch.count[l] as f64;
        }

        // Freeze flows whose constraint is now tight.
        let mut any_frozen = false;
        let mut i = 0;
        while i < scratch.unfrozen.len() {
            let fi = scratch.unfrozen[i] as usize;
            let c = flows.cap_of(fi);
            let at_cap = c.is_finite() && rates[fi] >= c - REL_EPS * c.max(1.0);
            let on_saturated = flows.links_of(fi).iter().any(|&l| {
                let l = l as usize;
                link_capacity[l].is_finite()
                    && scratch.used[l] >= link_capacity[l] - REL_EPS * link_capacity[l].max(1.0)
            });
            if at_cap || on_saturated {
                for &l in flows.links_of(fi) {
                    scratch.count[l as usize] -= 1;
                }
                scratch.unfrozen.swap_remove(i);
                any_frozen = true;
            } else {
                i += 1;
            }
        }

        if !any_frozen {
            // Same safety net as the reference: force progress by
            // freezing the minimum-slack flow.
            let mut best = 0;
            let mut best_slack = f64::INFINITY;
            for (i, &f) in scratch.unfrozen.iter().enumerate() {
                let fi = f as usize;
                let mut slack = f64::INFINITY;
                let c = flows.cap_of(fi);
                if c.is_finite() {
                    slack = slack.min((c - rates[fi]).max(0.0));
                }
                for &l in flows.links_of(fi) {
                    let l = l as usize;
                    if link_capacity[l].is_finite() {
                        slack = slack.min((link_capacity[l] - scratch.used[l]).max(0.0));
                    }
                }
                if slack < best_slack {
                    best_slack = slack;
                    best = i;
                }
            }
            let fi = scratch.unfrozen[best] as usize;
            for &l in flows.links_of(fi) {
                scratch.count[l as usize] -= 1;
            }
            scratch.unfrozen.swap_remove(best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(links: &[usize]) -> FlowDemand {
        FlowDemand { links: links.to_vec(), cap: None }
    }

    fn capped(links: &[usize], cap: f64) -> FlowDemand {
        FlowDemand { links: links.to_vec(), cap: Some(cap) }
    }

    #[test]
    fn single_link_equal_split() {
        let rates = max_min_fair(&[9.0], &[demand(&[0]), demand(&[0]), demand(&[0])]);
        for r in rates {
            assert!((r - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(max_min_fair(&[1.0], &[]).is_empty());
    }

    #[test]
    fn classic_two_bottlenecks() {
        // Link 0: cap 1, flows A,B. Link 1: cap 2, flows B,C.
        // Max-min: A = B = 0.5 (link 0 saturates), C = 1.5.
        let flows = [demand(&[0]), demand(&[0, 1]), demand(&[1])];
        let r = max_min_fair(&[1.0, 2.0], &flows);
        assert!((r[0] - 0.5).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 0.5).abs() < 1e-6, "{r:?}");
        assert!((r[2] - 1.5).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn per_flow_cap_redistributes() {
        // One 10-unit link, two flows, one capped at 2: other gets 8.
        let flows = [capped(&[0], 2.0), demand(&[0])];
        let r = max_min_fair(&[10.0], &flows);
        assert!((r[0] - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 8.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn zero_capacity_link_kills_flow() {
        let flows = [demand(&[0, 1]), demand(&[1])];
        let r = max_min_fair(&[0.0, 4.0], &flows);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn zero_cap_flow_gets_nothing() {
        let flows = [capped(&[0], 0.0), demand(&[0])];
        let r = max_min_fair(&[5.0], &flows);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let flows = [demand(&[0])];
        let r = max_min_fair(&[f64::INFINITY], &flows);
        assert!(r[0].is_infinite());
    }

    #[test]
    fn disjoint_links_each_full() {
        let flows = [demand(&[0]), demand(&[1])];
        let r = max_min_fair(&[3.0, 7.0], &flows);
        assert!((r[0] - 3.0).abs() < 1e-6);
        assert!((r[1] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn multipath_parallel_paths_modeled_as_separate_flows() {
        // The 3GOL pattern: ADSL link and a phone link, one item flow on
        // each. No sharing, both run at link speed.
        let r = max_min_fair(&[2.0, 1.5], &[demand(&[0]), demand(&[1])]);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn shared_cell_channel() {
        // Two phones (flows) share one base-station channel of 5.76,
        // each device capped at 2.0 by its category: both get 2.0.
        let flows = [capped(&[0], 2.0), capped(&[0], 2.0)];
        let r = max_min_fair(&[5.76], &flows);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 2.0).abs() < 1e-6);
        // Three phones: channel binds, 1.92 each.
        let flows3 = [capped(&[0], 2.0), capped(&[0], 2.0), capped(&[0], 2.0)];
        let r3 = max_min_fair(&[5.76], &flows3);
        for r in r3 {
            assert!((r - 1.92).abs() < 1e-6);
        }
    }

    /// Verify the defining max-min property on a fixed scenario: every
    /// flow is blocked by a saturated link or its cap.
    fn assert_max_min(caps: &[f64], flows: &[FlowDemand], rates: &[f64]) {
        let mut used = vec![0.0; caps.len()];
        for (f, d) in flows.iter().enumerate() {
            for &l in &d.links {
                used[l] += rates[f];
            }
        }
        for l in 0..caps.len() {
            assert!(used[l] <= caps[l] * (1.0 + 1e-6) + 1e-9, "link {l} over capacity");
        }
        for (f, d) in flows.iter().enumerate() {
            let at_cap = d.cap.is_some_and(|c| rates[f] >= c - 1e-6);
            let blocked = d.links.iter().any(|&l| used[l] >= caps[l] - 1e-6 * caps[l].max(1.0));
            assert!(at_cap || blocked, "flow {f} is not bottlenecked: {rates:?}");
        }
    }

    /// Rates agree within 1e-9 relative (infinities must match exactly).
    fn assert_rates_close(reference: &[f64], optimized: &[f64]) {
        assert_eq!(reference.len(), optimized.len());
        for (f, (&a, &b)) in reference.iter().zip(optimized).enumerate() {
            if a.is_infinite() || b.is_infinite() {
                assert_eq!(a, b, "flow {f}: {a} vs {b}");
            } else {
                let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
                assert!((a - b).abs() <= tol, "flow {f}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn into_matches_reference_on_fixtures() {
        let fixtures: Vec<(Vec<f64>, Vec<FlowDemand>)> = vec![
            (vec![9.0], vec![demand(&[0]), demand(&[0]), demand(&[0])]),
            (vec![1.0, 2.0], vec![demand(&[0]), demand(&[0, 1]), demand(&[1])]),
            (vec![10.0], vec![capped(&[0], 2.0), demand(&[0])]),
            (vec![0.0, 4.0], vec![demand(&[0, 1]), demand(&[1])]),
            (vec![5.0], vec![capped(&[0], 0.0), demand(&[0])]),
            (vec![f64::INFINITY], vec![demand(&[0])]),
            (vec![3.0, 7.0], vec![demand(&[0]), demand(&[1])]),
            (vec![1.0], vec![]),
        ];
        let mut scratch = FairShareScratch::default();
        let mut out = Vec::new();
        for (caps, flows) in &fixtures {
            let reference = max_min_fair(caps, flows);
            let table = FlowTable::from_demands(flows);
            max_min_fair_into(caps, &table, &mut scratch, &mut out);
            assert_rates_close(&reference, &out);
        }
    }

    #[test]
    fn subset_solve_matches_global_on_disjoint_components() {
        // Two components: {link 0,1} with flows 0,1 and {link 2} with
        // flow 2. Re-solving only the first component must reproduce
        // the global solution's slice and leave flow 2 untouched.
        let caps = [4.0, 6.0, 2.0];
        let flows = [demand(&[0, 1]), demand(&[1]), demand(&[2])];
        let table = FlowTable::from_demands(&flows);
        let global = max_min_fair(&caps, &flows);
        let mut scratch = FairShareScratch::default();
        let mut rates = vec![-1.0; 3];
        max_min_fair_subset_into(&caps, &table, &[0, 1], &mut scratch, &mut rates);
        assert_rates_close(&global[..2], &rates[..2]);
        assert_eq!(rates[2], -1.0, "flow outside the subset was written");
        max_min_fair_subset_into(&caps, &table, &[2], &mut scratch, &mut rates);
        assert_rates_close(&global, &rates);
    }

    #[test]
    fn flow_table_round_trips_demands() {
        let flows = [demand(&[2, 0]), capped(&[1], 3.5), demand(&[0])];
        let t = FlowTable::from_demands(&flows);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.links_of(0), &[2, 0]);
        assert_eq!(t.links_of(1), &[1]);
        assert_eq!(t.links_of(2), &[0]);
        assert_eq!(t.cap_of(1), 3.5);
        assert_eq!(t.cap_of(2), f64::INFINITY);
        let mut t = t;
        t.clear();
        assert!(t.is_empty());
        t.push_flow([1usize], None);
        assert_eq!(t.links_of(0), &[1]);
    }

    /// Regression for the no-progress safety net: constraints engineered
    /// so float rounding leaves rounds that freeze nothing. Before the
    /// minimum-slack freeze both implementations relied on `inc <= 0.0`
    /// exactly, which is not guaranteed; the solve must still terminate
    /// and stay feasible across wildly mixed magnitudes.
    #[test]
    fn pathological_magnitudes_terminate() {
        let caps = [1e-12, 1.0 + 1e-15, 1e12, 3.0 * (1.0 / 3.0)];
        let flows = [
            demand(&[0, 1, 2, 3]),
            capped(&[1, 3], 1.0 / 3.0 + f64::EPSILON),
            capped(&[2], 1e12 * (1.0 - 1e-16)),
            demand(&[3]),
            capped(&[0], f64::MIN_POSITIVE),
        ];
        let reference = max_min_fair(&caps, &flows);
        assert_max_min(&caps, &flows, &reference);
        let mut scratch = FairShareScratch::default();
        let mut out = Vec::new();
        max_min_fair_into(&caps, &FlowTable::from_demands(&flows), &mut scratch, &mut out);
        assert_rates_close(&reference, &out);
    }

    #[test]
    fn max_min_property_on_mesh() {
        let caps = [4.0, 6.0, 2.0, 10.0];
        let flows =
            [demand(&[0, 1]), demand(&[1, 2]), demand(&[2, 3]), demand(&[0, 3]), capped(&[3], 1.0)];
        let r = max_min_fair(&caps, &flows);
        assert_max_min(&caps, &flows, &r);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<FlowDemand>)> {
            (2usize..6).prop_flat_map(|nl| {
                let caps = proptest::collection::vec(0.5f64..20.0, nl);
                let flows = proptest::collection::vec(
                    (
                        proptest::collection::btree_set(0..nl, 1..=nl.min(3)),
                        proptest::option::of(0.1f64..10.0),
                    ),
                    1..8,
                )
                .prop_map(|fs| {
                    fs.into_iter()
                        .map(|(links, cap)| FlowDemand { links: links.into_iter().collect(), cap })
                        .collect::<Vec<_>>()
                });
                (caps, flows)
            })
        }

        proptest! {
            #[test]
            fn rates_feasible_and_bottlenecked((caps, flows) in arb_scenario()) {
                let rates = max_min_fair(&caps, &flows);
                prop_assert_eq!(rates.len(), flows.len());
                for &r in &rates {
                    prop_assert!(r >= 0.0);
                    prop_assert!(r.is_finite());
                }
                assert_max_min(&caps, &flows, &rates);
            }

            #[test]
            fn allocation_is_deterministic((caps, flows) in arb_scenario()) {
                let a = max_min_fair(&caps, &flows);
                let b = max_min_fair(&caps, &flows);
                prop_assert_eq!(a, b);
            }

            /// The allocation-free solver is a drop-in replacement: on
            /// any scenario it matches the reference oracle to 1e-9
            /// relative, including when scratch is reused across cases.
            #[test]
            fn scratch_solver_matches_oracle((caps, flows) in arb_scenario()) {
                let reference = max_min_fair(&caps, &flows);
                let table = FlowTable::from_demands(&flows);
                let mut scratch = FairShareScratch::default();
                let mut out = Vec::new();
                // Solve twice through the same scratch: the second call
                // exercises the lazily-reset link state.
                max_min_fair_into(&caps, &table, &mut scratch, &mut out);
                max_min_fair_into(&caps, &table, &mut scratch, &mut out);
                prop_assert_eq!(reference.len(), out.len());
                for (f, (&a, &b)) in reference.iter().zip(&out).enumerate() {
                    if a.is_infinite() || b.is_infinite() {
                        prop_assert!(a == b, "flow {}: {} vs {}", f, a, b);
                    } else {
                        let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
                        prop_assert!((a - b).abs() <= tol, "flow {}: {} vs {}", f, a, b);
                    }
                }
            }
        }
    }
}
