//! Max-min fair rate allocation (progressive filling / water-filling).
//!
//! Given link capacities and a set of flows (each traversing a set of
//! links, optionally with a per-flow rate cap), assign every flow the
//! max-min fair rate: all unconstrained flows' rates rise together until
//! each flow is stopped either by a saturated link or by its own cap.
//!
//! This is the classical fluid approximation of TCP bandwidth sharing
//! and is what gives the simulator its "parallel TCP over ADSL + N
//! phones" behaviour.

/// One flow's demand: the links it traverses and an optional rate cap.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Indices into the capacity slice passed to [`max_min_fair`].
    pub links: Vec<usize>,
    /// Optional per-flow cap in the same units as the link capacities.
    pub cap: Option<f64>,
}

/// Compute max-min fair rates.
///
/// `link_capacity[l]` is the capacity of link `l`; `flows[f].links` are
/// the links flow `f` traverses. Returns one rate per flow, in the same
/// units as the capacities.
///
/// Flows whose every link has infinite capacity and which have no cap
/// receive `f64::INFINITY`.
///
/// # Panics
/// Panics if a flow references a link index out of bounds.
pub fn max_min_fair(link_capacity: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    let nf = flows.len();
    let nl = link_capacity.len();
    let mut rate = vec![0.0_f64; nf];
    if nf == 0 {
        return rate;
    }
    for d in flows {
        for &l in &d.links {
            assert!(l < nl, "flow references unknown link {l}");
        }
    }

    let mut frozen = vec![false; nf];
    // Flows with a non-positive cap, or traversing a zero-capacity link,
    // are frozen at zero immediately.
    for (f, d) in flows.iter().enumerate() {
        let capped_zero = d.cap.is_some_and(|c| c <= 0.0);
        let dead_link = d.links.iter().any(|&l| link_capacity[l] <= 0.0);
        if capped_zero || dead_link {
            frozen[f] = true;
        }
    }

    // Progressive filling: raise all unfrozen rates together by the
    // largest increment that violates no constraint, then freeze the
    // flows whose constraint became tight.
    const REL_EPS: f64 = 1e-9;
    loop {
        let unfrozen: Vec<usize> = (0..nf).filter(|&f| !frozen[f]).collect();
        if unfrozen.is_empty() {
            break;
        }

        // Per-link: used capacity and number of unfrozen flows.
        let mut used = vec![0.0_f64; nl];
        let mut count = vec![0usize; nl];
        for (f, d) in flows.iter().enumerate() {
            for &l in &d.links {
                used[l] += rate[f];
                if !frozen[f] {
                    count[l] += 1;
                }
            }
        }

        // Largest uniform increment.
        let mut inc = f64::INFINITY;
        for l in 0..nl {
            if count[l] > 0 && link_capacity[l].is_finite() {
                let slack = (link_capacity[l] - used[l]).max(0.0);
                inc = inc.min(slack / count[l] as f64);
            }
        }
        for &f in &unfrozen {
            if let Some(c) = flows[f].cap {
                inc = inc.min((c - rate[f]).max(0.0));
            }
        }

        if inc.is_infinite() {
            // No finite constraint: these flows are unbounded.
            for &f in &unfrozen {
                rate[f] = f64::INFINITY;
            }
            break;
        }

        for &f in &unfrozen {
            rate[f] += inc;
        }

        // Freeze flows whose constraint is now tight.
        let mut used_after = vec![0.0_f64; nl];
        for (f, d) in flows.iter().enumerate() {
            for &l in &d.links {
                used_after[l] += rate[f];
            }
        }
        let mut any_frozen = false;
        for &f in &unfrozen {
            let at_cap = flows[f]
                .cap
                .is_some_and(|c| rate[f] >= c - REL_EPS * c.max(1.0));
            let on_saturated = flows[f].links.iter().any(|&l| {
                link_capacity[l].is_finite()
                    && used_after[l] >= link_capacity[l] - REL_EPS * link_capacity[l].max(1.0)
            });
            if at_cap || on_saturated {
                frozen[f] = true;
                any_frozen = true;
            }
        }
        if !any_frozen {
            // Numerical safety net: freeze the flow with the smallest
            // slack so the loop always terminates.
            if inc <= 0.0 {
                for &f in &unfrozen {
                    frozen[f] = true;
                }
            }
        }
    }

    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(links: &[usize]) -> FlowDemand {
        FlowDemand { links: links.to_vec(), cap: None }
    }

    fn capped(links: &[usize], cap: f64) -> FlowDemand {
        FlowDemand { links: links.to_vec(), cap: Some(cap) }
    }

    #[test]
    fn single_link_equal_split() {
        let rates = max_min_fair(&[9.0], &[demand(&[0]), demand(&[0]), demand(&[0])]);
        for r in rates {
            assert!((r - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(max_min_fair(&[1.0], &[]).is_empty());
    }

    #[test]
    fn classic_two_bottlenecks() {
        // Link 0: cap 1, flows A,B. Link 1: cap 2, flows B,C.
        // Max-min: A = B = 0.5 (link 0 saturates), C = 1.5.
        let flows = [demand(&[0]), demand(&[0, 1]), demand(&[1])];
        let r = max_min_fair(&[1.0, 2.0], &flows);
        assert!((r[0] - 0.5).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 0.5).abs() < 1e-6, "{r:?}");
        assert!((r[2] - 1.5).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn per_flow_cap_redistributes() {
        // One 10-unit link, two flows, one capped at 2: other gets 8.
        let flows = [capped(&[0], 2.0), demand(&[0])];
        let r = max_min_fair(&[10.0], &flows);
        assert!((r[0] - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 8.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn zero_capacity_link_kills_flow() {
        let flows = [demand(&[0, 1]), demand(&[1])];
        let r = max_min_fair(&[0.0, 4.0], &flows);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn zero_cap_flow_gets_nothing() {
        let flows = [capped(&[0], 0.0), demand(&[0])];
        let r = max_min_fair(&[5.0], &flows);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let flows = [demand(&[0])];
        let r = max_min_fair(&[f64::INFINITY], &flows);
        assert!(r[0].is_infinite());
    }

    #[test]
    fn disjoint_links_each_full() {
        let flows = [demand(&[0]), demand(&[1])];
        let r = max_min_fair(&[3.0, 7.0], &flows);
        assert!((r[0] - 3.0).abs() < 1e-6);
        assert!((r[1] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn multipath_parallel_paths_modeled_as_separate_flows() {
        // The 3GOL pattern: ADSL link and a phone link, one item flow on
        // each. No sharing, both run at link speed.
        let r = max_min_fair(&[2.0, 1.5], &[demand(&[0]), demand(&[1])]);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn shared_cell_channel() {
        // Two phones (flows) share one base-station channel of 5.76,
        // each device capped at 2.0 by its category: both get 2.0.
        let flows = [capped(&[0], 2.0), capped(&[0], 2.0)];
        let r = max_min_fair(&[5.76], &flows);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 2.0).abs() < 1e-6);
        // Three phones: channel binds, 1.92 each.
        let flows3 = [capped(&[0], 2.0), capped(&[0], 2.0), capped(&[0], 2.0)];
        let r3 = max_min_fair(&[5.76], &flows3);
        for r in r3 {
            assert!((r - 1.92).abs() < 1e-6);
        }
    }

    /// Verify the defining max-min property on a fixed scenario: every
    /// flow is blocked by a saturated link or its cap.
    fn assert_max_min(caps: &[f64], flows: &[FlowDemand], rates: &[f64]) {
        let mut used = vec![0.0; caps.len()];
        for (f, d) in flows.iter().enumerate() {
            for &l in &d.links {
                used[l] += rates[f];
            }
        }
        for l in 0..caps.len() {
            assert!(used[l] <= caps[l] * (1.0 + 1e-6) + 1e-9, "link {l} over capacity");
        }
        for (f, d) in flows.iter().enumerate() {
            let at_cap = d.cap.is_some_and(|c| rates[f] >= c - 1e-6);
            let blocked = d.links.iter().any(|&l| used[l] >= caps[l] - 1e-6 * caps[l].max(1.0));
            assert!(at_cap || blocked, "flow {f} is not bottlenecked: {rates:?}");
        }
    }

    #[test]
    fn max_min_property_on_mesh() {
        let caps = [4.0, 6.0, 2.0, 10.0];
        let flows = [
            demand(&[0, 1]),
            demand(&[1, 2]),
            demand(&[2, 3]),
            demand(&[0, 3]),
            capped(&[3], 1.0),
        ];
        let r = max_min_fair(&caps, &flows);
        assert_max_min(&caps, &flows, &r);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<FlowDemand>)> {
            (2usize..6).prop_flat_map(|nl| {
                let caps = proptest::collection::vec(0.5f64..20.0, nl);
                let flows = proptest::collection::vec(
                    (
                        proptest::collection::btree_set(0..nl, 1..=nl.min(3)),
                        proptest::option::of(0.1f64..10.0),
                    ),
                    1..8,
                )
                .prop_map(|fs| {
                    fs.into_iter()
                        .map(|(links, cap)| FlowDemand {
                            links: links.into_iter().collect(),
                            cap,
                        })
                        .collect::<Vec<_>>()
                });
                (caps, flows)
            })
        }

        proptest! {
            #[test]
            fn rates_feasible_and_bottlenecked((caps, flows) in arb_scenario()) {
                let rates = max_min_fair(&caps, &flows);
                prop_assert_eq!(rates.len(), flows.len());
                for &r in &rates {
                    prop_assert!(r >= 0.0);
                    prop_assert!(r.is_finite());
                }
                assert_max_min(&caps, &flows, &rates);
            }

            #[test]
            fn allocation_is_deterministic((caps, flows) in arb_scenario()) {
                let a = max_min_fair(&caps, &flows);
                let b = max_min_fair(&caps, &flows);
                prop_assert_eq!(a, b);
            }
        }
    }
}
