//! Error type for the simulator.

use std::fmt;

/// Errors produced by [`crate::Simulation`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A flow id that is not (or no longer) active.
    UnknownFlow(u64),
    /// A link id that was never registered.
    UnknownLink(usize),
    /// A flow was started with an empty path.
    EmptyPath,
    /// A flow was started with a non-finite or negative size.
    InvalidSize(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownFlow(id) => write!(f, "unknown or completed flow #{id}"),
            SimError::UnknownLink(id) => write!(f, "unknown link #{id}"),
            SimError::EmptyPath => write!(f, "flow path must contain at least one link"),
            SimError::InvalidSize(s) => write!(f, "invalid flow size: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SimError::UnknownFlow(3).to_string(), "unknown or completed flow #3");
        assert_eq!(SimError::UnknownLink(1).to_string(), "unknown link #1");
        assert!(SimError::EmptyPath.to_string().contains("path"));
        assert!(SimError::InvalidSize("NaN".into()).to_string().contains("NaN"));
    }
}
