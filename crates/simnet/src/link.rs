//! Links: capacity-constrained resources that flows traverse.

use crate::capacity::CapacityProcess;
use crate::time::SimTime;

/// Identifier of a link within a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A unidirectional capacity-constrained resource.
///
/// A link does not know its endpoints — topology lives entirely in the
/// flows' paths. This keeps the model close to the paper's setting, where
/// the relevant constraints are the ADSL line, each phone's radio share,
/// the base-station shared channel, the Wi-Fi LAN and the cell backhaul.
///
/// Byte accounting is **lazy**: `bytes_carried` is exact as of
/// `settled_at`, and the bytes since then are `rate_sum × elapsed / 8`.
/// The engine settles a link whenever its component is re-solved (the
/// only times `rate_sum` can change) and whenever the link is read
/// through [`crate::Simulation::link`] / [`crate::Simulation::links`].
#[derive(Debug, Clone)]
pub struct Link {
    /// Human-readable name (for logs and experiment output).
    pub name: String,
    /// How this link's capacity evolves over time.
    pub process: CapacityProcess,
    /// Total bytes carried by this link so far (accounting, e.g., for
    /// Fig 11b's "load onloaded onto the cellular network"), as of
    /// `settled_at`.
    pub bytes_carried: f64,
    /// Sum of the fair-share rates of all flows crossing this link,
    /// bits/second, in effect since `settled_at`.
    pub(crate) rate_sum: f64,
    /// Time at which `bytes_carried` was last materialized.
    pub(crate) settled_at: SimTime,
}

impl Link {
    /// Create a link with the given capacity process.
    pub fn new(name: impl Into<String>, process: CapacityProcess) -> Link {
        Link {
            name: name.into(),
            process,
            bytes_carried: 0.0,
            rate_sum: 0.0,
            settled_at: SimTime::ZERO,
        }
    }

    /// Capacity in bits/second at `t`.
    pub fn capacity_at(&self, t: SimTime) -> f64 {
        self.process.capacity_at(t)
    }

    /// Materialize the bytes carried up to `t` at the current aggregate
    /// rate.
    pub(crate) fn settle_to(&mut self, t: SimTime) {
        let dt = t - self.settled_at;
        if dt <= 0.0 {
            return; // never move the anchor backwards
        }
        if self.rate_sum > 0.0 && self.rate_sum.is_finite() {
            self.bytes_carried += self.rate_sum * dt / 8.0;
        }
        self.settled_at = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_reports_capacity() {
        let l = Link::new("adsl", CapacityProcess::constant(3e6));
        assert_eq!(l.capacity_at(SimTime::ZERO), 3e6);
        assert_eq!(l.name, "adsl");
        assert_eq!(l.bytes_carried, 0.0);
    }

    #[test]
    fn settlement_accumulates_bytes() {
        let mut l = Link::new("l", CapacityProcess::constant(8e6));
        l.rate_sum = 8e6; // 1 MB/s
        l.settle_to(SimTime::from_secs(2.0));
        assert!((l.bytes_carried - 2e6).abs() < 1e-6);
        l.rate_sum = 0.0;
        l.settle_to(SimTime::from_secs(5.0));
        assert!((l.bytes_carried - 2e6).abs() < 1e-6);
    }
}
