//! Links: capacity-constrained resources that flows traverse.

use crate::capacity::CapacityProcess;
use crate::time::SimTime;

/// Identifier of a link within a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A unidirectional capacity-constrained resource.
///
/// A link does not know its endpoints — topology lives entirely in the
/// flows' paths. This keeps the model close to the paper's setting, where
/// the relevant constraints are the ADSL line, each phone's radio share,
/// the base-station shared channel, the Wi-Fi LAN and the cell backhaul.
#[derive(Debug, Clone)]
pub struct Link {
    /// Human-readable name (for logs and experiment output).
    pub name: String,
    /// How this link's capacity evolves over time.
    pub process: CapacityProcess,
    /// Total bytes carried by this link so far (accounting, e.g., for
    /// Fig 11b's "load onloaded onto the cellular network").
    pub bytes_carried: f64,
}

impl Link {
    /// Create a link with the given capacity process.
    pub fn new(name: impl Into<String>, process: CapacityProcess) -> Link {
        Link { name: name.into(), process, bytes_carried: 0.0 }
    }

    /// Capacity in bits/second at `t`.
    pub fn capacity_at(&self, t: SimTime) -> f64 {
        self.process.capacity_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_reports_capacity() {
        let l = Link::new("adsl", CapacityProcess::constant(3e6));
        assert_eq!(l.capacity_at(SimTime::ZERO), 3e6);
        assert_eq!(l.name, "adsl");
        assert_eq!(l.bytes_carried, 0.0);
    }
}
