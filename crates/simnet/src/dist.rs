//! Seeded random-number generation and the handful of distributions the
//! reproduction needs (normal, lognormal, exponential, Pareto, …).
//!
//! We implement the samplers here (Box–Muller for the normal family)
//! rather than pulling in `rand_distr`, keeping the dependency footprint
//! to the crates allowed for this project.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator.
///
/// Thin wrapper over [`StdRng`] so every stochastic component in the
/// workspace takes the same seedable type and substreams can be derived
/// reproducibly with [`SimRng::derive`].
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent substream keyed by `salt`.
    ///
    /// Deriving (rather than sharing one generator) keeps experiment
    /// components independent: adding a draw in one module does not
    /// perturb the sample path of another.
    pub fn derive(&self, salt: u64) -> Self {
        // SplitMix64 finalizer over (next output, salt) — cheap and well mixed.
        let mut base = self.inner.clone();
        let mut z = base.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (one value per call; we discard the
    /// cosine twin for simplicity — sampling is far from any hot path).
    pub fn standard_normal(&mut self) -> f64 {
        // Guard against ln(0).
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Lognormal parameterized by the *underlying* normal's `mu`/`sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Lognormal parameterized by its own mean and standard deviation
    /// (the natural way to match trace moments reported in the paper).
    pub fn lognormal_mean_sd(&mut self, mean: f64, sd: f64) -> f64 {
        let (mu, sigma) = lognormal_params(mean, sd);
        self.lognormal(mu, sigma)
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.uniform().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Pareto with scale `xm` and shape `alpha` (heavy-tailed sizes).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        xm / u.powf(1.0 / alpha)
    }

    /// Normal truncated to `[lo, hi]` by rejection (falls back to clamping
    /// after 64 rejections to stay loop-free in pathological configs).
    pub fn truncated_normal(&mut self, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        for _ in 0..64 {
            let x = self.normal(mean, sd);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        self.normal(mean, sd).clamp(lo, hi)
    }

    /// Draw a sample from a [`Distribution`] specification.
    pub fn sample(&mut self, dist: &Distribution) -> f64 {
        match *dist {
            Distribution::Constant(v) => v,
            Distribution::Uniform { lo, hi } => self.uniform_range(lo, hi),
            Distribution::Normal { mean, sd } => self.normal(mean, sd),
            Distribution::TruncatedNormal { mean, sd, lo, hi } => {
                self.truncated_normal(mean, sd, lo, hi)
            }
            Distribution::LogNormal { mean, sd } => self.lognormal_mean_sd(mean, sd),
            Distribution::Exponential { mean } => self.exponential(mean),
            Distribution::Pareto { scale, shape } => self.pareto(scale, shape),
        }
    }
}

/// Mix a base seed with a salt into a new well-distributed seed
/// (SplitMix64 finalizer). Used to derive per-component seeds from one
/// experiment seed without constructing intermediate generators.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convert a lognormal's (mean, sd) into the underlying normal's (mu, sigma).
pub fn lognormal_params(mean: f64, sd: f64) -> (f64, f64) {
    assert!(mean > 0.0, "lognormal mean must be positive");
    let cv2 = (sd / mean).powi(2);
    let sigma2 = (1.0 + cv2).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu, sigma2.sqrt())
}

/// A declarative distribution specification.
///
/// Used by trace generators and capacity processes so experiment
/// parameters can live in plain data (and be serialized alongside
/// results).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Distribution {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Normal with mean and standard deviation.
    Normal { mean: f64, sd: f64 },
    /// Normal truncated to `[lo, hi]`.
    TruncatedNormal { mean: f64, sd: f64, lo: f64, hi: f64 },
    /// Lognormal matching the given mean and standard deviation.
    LogNormal { mean: f64, sd: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Pareto with `scale` (minimum) and tail `shape`.
    Pareto { scale: f64, shape: f64 },
}

impl Distribution {
    /// The distribution's mean, where it exists in closed form.
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Constant(v) => v,
            Distribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            Distribution::Normal { mean, .. } => mean,
            Distribution::TruncatedNormal { mean, .. } => mean, // approximation
            Distribution::LogNormal { mean, .. } => mean,
            Distribution::Exponential { mean } => mean,
            Distribution::Pareto { scale, shape } => {
                if shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let s = Summary::of(samples);
        (s.mean, s.sd)
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn derive_gives_independent_streams() {
        let base = SimRng::seed_from_u64(7);
        let mut s1 = base.derive(1);
        let mut s2 = base.derive(2);
        let v1: Vec<f64> = (0..8).map(|_| s1.uniform()).collect();
        let v2: Vec<f64> = (0..8).map(|_| s2.uniform()).collect();
        assert_ne!(v1, v2);
        // And deriving the same salt twice matches.
        let mut s1b = base.derive(1);
        let v1b: Vec<f64> = (0..8).map(|_| s1b.uniform()).collect();
        assert_eq!(v1, v1b);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.normal(5.0, 2.0)).collect();
        let (m, sd) = moments(&xs);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((sd - 2.0).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn lognormal_matches_target_moments() {
        let mut rng = SimRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.lognormal_mean_sd(2.5, 0.74)).collect();
        let (m, sd) = moments(&xs);
        assert!((m - 2.5).abs() < 0.02, "mean {m}");
        assert!((sd - 0.74).abs() < 0.03, "sd {sd}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.exponential(3.0)).collect();
        let (m, _) = moments(&xs);
        assert!((m - 3.0).abs() < 0.08, "mean {m}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(rng.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn truncated_normal_within_bounds() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.truncated_normal(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn chance_probability() {
        let mut rng = SimRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.25).abs() < 0.02, "p {p}");
    }

    #[test]
    fn spec_sampling_and_means() {
        let mut rng = SimRng::seed_from_u64(8);
        let spec = Distribution::Uniform { lo: 2.0, hi: 4.0 };
        assert_eq!(spec.mean(), 3.0);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.sample(&spec)).collect();
        let (m, _) = moments(&xs);
        assert!((m - 3.0).abs() < 0.03);
        assert_eq!(Distribution::Constant(9.0).mean(), 9.0);
        assert!(Distribution::Pareto { scale: 1.0, shape: 0.5 }.mean().is_infinite());
    }
}
