//! Summary statistics used throughout the reproduction: means, standard
//! deviations, percentiles and empirical CDFs — the quantities the
//! paper's tables and figures report.

/// Basic summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub sd: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Compute the summary of `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, sd: 0.0, min: 0.0, max: 0.0 };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary { n, mean, sd: var.sqrt(), min, max }
    }
}

/// Linear-interpolation percentile (`q` in `[0, 1]`) of an unsorted sample.
///
/// Returns 0 for an empty sample. Matches the common "type 7" estimator
/// used by numpy's default.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&v, q)
}

/// Percentile of an already-sorted sample.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median of a sample.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// An empirical cumulative distribution function.
///
/// Built once from a sample; supports evaluation at arbitrary points and
/// extraction of evenly spaced points for figure series.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample (NaNs are rejected by debug assertion).
    pub fn new(mut xs: Vec<f64>) -> Ecdf {
        debug_assert!(xs.iter().all(|x| !x.is_nan()));
        xs.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted: xs }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the `q`-quantile of the sample.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q)
    }

    /// `(x, F(x))` points at `k` evenly spaced quantiles — convenient for
    /// printing a figure series.
    pub fn series(&self, k: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || k == 0 {
            return Vec::new();
        }
        (0..=k)
            .map(|i| {
                let q = i as f64 / k as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// The fraction of the sample strictly greater than `x`.
    pub fn exceed(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }
}

/// Histogram with fixed-width bins over `[lo, hi)`; values outside the
/// range are clamped into the edge bins. Used for the violin-plot style
/// densities of Fig 5.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo && bins > 0);
        Histogram { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let idx = (((x - self.lo) / w).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// `(bin_center, density)` pairs normalized so densities integrate to 1.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let norm = if self.total == 0 { 0.0 } else { 1.0 / (self.total as f64 * w) };
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c as f64 * norm))
            .collect()
    }

    /// Total observations added.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.sd - 2.1380899).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_edge_cases() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let one = Summary::of(&[3.0]);
        assert_eq!(one.sd, 0.0);
        assert_eq!(one.mean, 3.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert!((e.exceed(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_series_monotone() {
        let e = Ecdf::new((0..100).map(|i| (i * 7 % 31) as f64).collect());
        let s = e.series(10);
        assert_eq!(s.len(), 11);
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 20);
        for i in 0..1000 {
            h.add((i % 10) as f64 + 0.5);
        }
        let total: f64 = h.density().iter().map(|&(_, d)| d * 0.5).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.total(), 2);
    }
}
