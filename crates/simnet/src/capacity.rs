//! Time-varying link capacities.
//!
//! A [`CapacityProcess`] answers two questions for the fluid engine:
//! what is the capacity *now* (`capacity_at`), and when does it next
//! change (`next_change`)? Stochastic processes are **pure functions of
//! (seed, time-bin)**, so evaluation is stateless, order-independent and
//! reproducible regardless of how the engine interleaves queries.

use crate::dist::SimRng;
use crate::time::SimTime;

/// A normalized 24-hour load/weight profile.
///
/// Stores one weight per hour; evaluation linearly interpolates between
/// hour marks and wraps around midnight. Used both for cellular load
/// (paper Fig 1 mobile curve) and for wired traffic (Fig 1 wired curve).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiurnalProfile {
    weights: [f64; 24],
}

impl DiurnalProfile {
    /// Build from 24 non-negative hourly weights (hour 0 = midnight).
    pub fn new(weights: [f64; 24]) -> DiurnalProfile {
        assert!(weights.iter().all(|w| *w >= 0.0), "negative diurnal weight");
        DiurnalProfile { weights }
    }

    /// A flat profile (no diurnal variation).
    pub fn flat() -> DiurnalProfile {
        DiurnalProfile { weights: [1.0; 24] }
    }

    /// The profile normalized so its peak weight is 1.
    pub fn normalized_peak(&self) -> DiurnalProfile {
        let peak = self.weights.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > 0.0, "cannot normalize an all-zero profile");
        let mut w = self.weights;
        for v in &mut w {
            *v /= peak;
        }
        DiurnalProfile { weights: w }
    }

    /// The profile normalized so its weights sum to 1 (a distribution
    /// over hours — used when spreading a day's traffic volume).
    pub fn normalized_sum(&self) -> DiurnalProfile {
        let sum: f64 = self.weights.iter().sum();
        assert!(sum > 0.0, "cannot normalize an all-zero profile");
        let mut w = self.weights;
        for v in &mut w {
            *v /= sum;
        }
        DiurnalProfile { weights: w }
    }

    /// Interpolated weight at an hour-of-day in `[0, 24)`.
    pub fn at_hour(&self, hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0);
        let lo = h.floor() as usize % 24;
        let hi = (lo + 1) % 24;
        let frac = h - h.floor();
        self.weights[lo] * (1.0 - frac) + self.weights[hi] * frac
    }

    /// Weight at a simulation time (wrapping multi-day times).
    pub fn at(&self, t: SimTime) -> f64 {
        self.at_hour(t.hour_of_day())
    }

    /// The hour with the largest weight.
    pub fn peak_hour(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Raw hourly weights.
    pub fn weights(&self) -> &[f64; 24] {
        &self.weights
    }
}

/// How a link's capacity evolves over time.
// One process lives inline per link and links number in the dozens;
// boxing `Stochastic`'s diurnal table would only add an indirection to
// every `capacity_at` call on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CapacityProcess {
    /// Fixed capacity, in bits/second.
    Constant(f64),
    /// Step function: `(from_time, capacity)` change points, sorted by
    /// time. Capacity before the first point is the first point's value.
    Piecewise(Vec<(SimTime, f64)>),
    /// Stochastic piecewise-constant process: every `step_secs` the
    /// capacity is redrawn as `base × diurnal(t) × lognormal(1, rel_sd)`,
    /// clamped to `[floor, ceil]`. Models HSPA short-term rate variation
    /// on top of a diurnal load curve.
    Stochastic {
        /// Nominal capacity in bits/second.
        base: f64,
        /// Relative standard deviation of the lognormal multiplier.
        rel_sd: f64,
        /// Redraw interval, seconds.
        step_secs: f64,
        /// Diurnal modulation (use [`DiurnalProfile::flat`] for none).
        diurnal: DiurnalProfile,
        /// Lower clamp, bits/second.
        floor: f64,
        /// Upper clamp, bits/second.
        ceil: f64,
        /// Seed for the per-bin multiplier stream.
        seed: u64,
    },
}

impl CapacityProcess {
    /// Fixed capacity in bits/second.
    pub fn constant(bps: f64) -> CapacityProcess {
        assert!(bps >= 0.0 && bps.is_finite());
        CapacityProcess::Constant(bps)
    }

    /// Step-function capacity; `points` must be non-empty and sorted.
    pub fn piecewise(points: Vec<(SimTime, f64)>) -> CapacityProcess {
        assert!(!points.is_empty(), "piecewise process needs >= 1 point");
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "piecewise points must be sorted by time"
        );
        CapacityProcess::Piecewise(points)
    }

    /// Convenience constructor for the stochastic process.
    pub fn stochastic(
        base: f64,
        rel_sd: f64,
        step_secs: f64,
        diurnal: DiurnalProfile,
        seed: u64,
    ) -> CapacityProcess {
        assert!(base > 0.0 && step_secs > 0.0 && rel_sd >= 0.0);
        CapacityProcess::Stochastic {
            base,
            rel_sd,
            step_secs,
            diurnal,
            floor: 0.0,
            ceil: f64::INFINITY,
            seed,
        }
    }

    /// Clamp a stochastic process to `[floor, ceil]` (no-op for others).
    pub fn with_bounds(self, new_floor: f64, new_ceil: f64) -> CapacityProcess {
        match self {
            CapacityProcess::Stochastic { base, rel_sd, step_secs, diurnal, seed, .. } => {
                CapacityProcess::Stochastic {
                    base,
                    rel_sd,
                    step_secs,
                    diurnal,
                    floor: new_floor,
                    ceil: new_ceil,
                    seed,
                }
            }
            other => other,
        }
    }

    /// Capacity in bits/second at time `t`.
    pub fn capacity_at(&self, t: SimTime) -> f64 {
        match self {
            CapacityProcess::Constant(bps) => *bps,
            CapacityProcess::Piecewise(points) => {
                let idx = points.partition_point(|(pt, _)| *pt <= t);
                if idx == 0 {
                    points[0].1
                } else {
                    points[idx - 1].1
                }
            }
            CapacityProcess::Stochastic { base, rel_sd, step_secs, diurnal, floor, ceil, seed } => {
                let bin = (t.secs() / step_secs).floor() as u64;
                let mult = if *rel_sd > 0.0 {
                    let mut rng = SimRng::seed_from_u64(*seed).derive(bin);
                    rng.lognormal_mean_sd(1.0, *rel_sd)
                } else {
                    1.0
                };
                (base * diurnal.at(t) * mult).clamp(*floor, *ceil)
            }
        }
    }

    /// The next time strictly after `t` at which capacity may change, or
    /// `None` if it never changes again.
    ///
    /// The *strictly after* contract is load-bearing: the engine's
    /// capacity calendar re-arms a fired link from this method at the
    /// fire instant itself, so a return value of `t` would re-queue the
    /// same instant forever. Every process family honours it —
    /// `Constant` never changes, `Piecewise` returns the first point
    /// past `t`, `Stochastic` the next resampling boundary after `t`.
    pub fn next_change(&self, t: SimTime) -> Option<SimTime> {
        match self {
            CapacityProcess::Constant(_) => None,
            CapacityProcess::Piecewise(points) => {
                points.iter().map(|(pt, _)| *pt).find(|pt| *pt > t)
            }
            CapacityProcess::Stochastic { step_secs, .. } => {
                let bin = (t.secs() / step_secs).floor();
                Some(SimTime::from_secs((bin + 1.0) * step_secs))
            }
        }
    }

    /// Mean capacity of the process ignoring stochastic variation
    /// (useful for sanity checks and back-of-envelope figures).
    pub fn nominal(&self) -> f64 {
        match self {
            CapacityProcess::Constant(bps) => *bps,
            CapacityProcess::Piecewise(points) => {
                points.iter().map(|(_, c)| *c).sum::<f64>() / points.len() as f64
            }
            CapacityProcess::Stochastic { base, .. } => *base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let p = CapacityProcess::constant(1e6);
        assert_eq!(p.capacity_at(SimTime::ZERO), 1e6);
        assert_eq!(p.capacity_at(SimTime::from_hours(100.0)), 1e6);
        assert_eq!(p.next_change(SimTime::ZERO), None);
    }

    #[test]
    fn piecewise_steps() {
        let p = CapacityProcess::piecewise(vec![
            (SimTime::ZERO, 10.0),
            (SimTime::from_secs(5.0), 20.0),
            (SimTime::from_secs(9.0), 5.0),
        ]);
        assert_eq!(p.capacity_at(SimTime::from_secs(0.0)), 10.0);
        assert_eq!(p.capacity_at(SimTime::from_secs(4.9)), 10.0);
        assert_eq!(p.capacity_at(SimTime::from_secs(5.0)), 20.0);
        assert_eq!(p.capacity_at(SimTime::from_secs(100.0)), 5.0);
        assert_eq!(p.next_change(SimTime::ZERO), Some(SimTime::from_secs(5.0)));
        assert_eq!(p.next_change(SimTime::from_secs(5.0)), Some(SimTime::from_secs(9.0)));
        assert_eq!(p.next_change(SimTime::from_secs(9.0)), None);
    }

    #[test]
    fn stochastic_is_pure_in_time() {
        let p = CapacityProcess::stochastic(1e6, 0.3, 10.0, DiurnalProfile::flat(), 42);
        let t = SimTime::from_secs(123.0);
        assert_eq!(p.capacity_at(t), p.capacity_at(t));
        // Same bin, same value.
        assert_eq!(
            p.capacity_at(SimTime::from_secs(120.1)),
            p.capacity_at(SimTime::from_secs(129.9))
        );
        // Change points land on bin boundaries.
        assert_eq!(p.next_change(t), Some(SimTime::from_secs(130.0)));
    }

    #[test]
    fn stochastic_mean_tracks_base() {
        let p = CapacityProcess::stochastic(2e6, 0.25, 1.0, DiurnalProfile::flat(), 7);
        let mean: f64 =
            (0..5000).map(|i| p.capacity_at(SimTime::from_secs(i as f64))).sum::<f64>() / 5000.0;
        assert!((mean / 2e6 - 1.0).abs() < 0.03, "mean ratio {}", mean / 2e6);
    }

    #[test]
    fn bounds_are_enforced() {
        let p = CapacityProcess::stochastic(1e6, 1.0, 1.0, DiurnalProfile::flat(), 9)
            .with_bounds(0.8e6, 1.2e6);
        for i in 0..500 {
            let c = p.capacity_at(SimTime::from_secs(i as f64));
            assert!((0.8e6..=1.2e6).contains(&c));
        }
    }

    #[test]
    fn diurnal_interpolates_and_wraps() {
        let mut w = [0.0; 24];
        w[0] = 1.0;
        w[1] = 3.0;
        w[23] = 2.0;
        let d = DiurnalProfile::new(w);
        assert_eq!(d.at_hour(0.0), 1.0);
        assert_eq!(d.at_hour(0.5), 2.0);
        // Wrap 23h -> 0h.
        assert_eq!(d.at_hour(23.5), 1.5);
        assert_eq!(d.at_hour(24.0), 1.0);
        assert_eq!(d.peak_hour(), 1);
    }

    #[test]
    fn diurnal_normalizations() {
        let mut w = [1.0; 24];
        w[12] = 4.0;
        let d = DiurnalProfile::new(w);
        let peak = d.normalized_peak();
        assert_eq!(peak.at_hour(12.0), 1.0);
        assert_eq!(peak.at_hour(0.0), 0.25);
        let sum = d.normalized_sum();
        let total: f64 = sum.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_modulates_capacity() {
        let mut w = [1.0; 24];
        w[3] = 0.5;
        let p = CapacityProcess::stochastic(1e6, 0.0, 60.0, DiurnalProfile::new(w), 1);
        assert_eq!(p.capacity_at(SimTime::from_hours(3.0)), 0.5e6);
        assert_eq!(p.capacity_at(SimTime::from_hours(12.0)), 1e6);
    }
}
