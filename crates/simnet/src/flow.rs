//! Flows: fluid transfers traversing a path of links.

use crate::link::LinkId;
use crate::time::SimTime;

/// Identifier of a flow within a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

impl FlowId {
    /// The raw id (unique for the lifetime of the simulation).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A fluid transfer of `size_bytes` across `path`.
///
/// The engine assigns each active flow a rate via max-min fair sharing;
/// an optional `rate_cap` models per-flow limits such as a device's HSPA
/// category or an application pacing itself.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Links the flow traverses (order does not matter to the fluid model).
    pub path: Vec<LinkId>,
    /// Total size in bytes.
    pub size_bytes: f64,
    /// Bytes still to transfer.
    pub remaining_bytes: f64,
    /// Current assigned rate, bits/second.
    pub rate_bps: f64,
    /// Optional per-flow cap, bits/second.
    pub rate_cap: Option<f64>,
    /// When the flow was started.
    pub started_at: SimTime,
    /// Engine-internal topology slot (stable while the flow is active).
    pub(crate) slot: u32,
}

impl Flow {
    /// Bytes already transferred.
    pub fn transferred_bytes(&self) -> f64 {
        self.size_bytes - self.remaining_bytes
    }

    /// Fraction complete in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.size_bytes <= 0.0 {
            1.0
        } else {
            (self.transferred_bytes() / self.size_bytes).clamp(0.0, 1.0)
        }
    }

    /// Time to completion at the current rate (None if the rate is zero).
    pub fn eta_secs(&self) -> Option<f64> {
        if self.rate_bps > 0.0 {
            Some(self.remaining_bytes * 8.0 / self.rate_bps)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(size: f64, remaining: f64, rate: f64) -> Flow {
        Flow {
            path: vec![LinkId(0)],
            size_bytes: size,
            remaining_bytes: remaining,
            rate_bps: rate,
            rate_cap: None,
            started_at: SimTime::ZERO,
            slot: 0,
        }
    }

    #[test]
    fn progress_accounting() {
        let f = flow(1000.0, 250.0, 8000.0);
        assert_eq!(f.transferred_bytes(), 750.0);
        assert!((f.progress() - 0.75).abs() < 1e-12);
        assert!((f.eta_secs().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_has_no_eta() {
        assert_eq!(flow(10.0, 10.0, 0.0).eta_secs(), None);
    }

    #[test]
    fn zero_size_is_complete() {
        assert_eq!(flow(0.0, 0.0, 1.0).progress(), 1.0);
    }
}
