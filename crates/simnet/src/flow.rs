//! Flows: fluid transfers traversing a path of links.

use crate::link::LinkId;
use crate::time::SimTime;

/// Bytes below which a flow counts as complete (numerical slop: far
/// below one byte, yet large enough that the residual's transfer time
/// can never underflow the clock's f64 resolution at realistic rates
/// and horizons).
pub(crate) const COMPLETE_EPS_BYTES: f64 = 1e-3;

/// Identifier of a flow within a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

impl FlowId {
    /// The raw id (unique for the lifetime of the simulation).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A fluid transfer of `size_bytes` across `path`.
///
/// The engine assigns each active flow a rate via max-min fair sharing;
/// an optional `rate_cap` models per-flow limits such as a device's HSPA
/// category or an application pacing itself.
///
/// Progress is accounted **lazily**: `remaining_bytes` is exact as of
/// `settled_at`, and the engine materializes it (via `Flow::settle_to`)
/// only when the flow's rate changes, it completes or is cancelled, or
/// it is queried through [`crate::Simulation::flow`]. Records handed out
/// in events and cancellations are always settled.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Links the flow traverses (order does not matter to the fluid model).
    pub path: Vec<LinkId>,
    /// Total size in bytes.
    pub size_bytes: f64,
    /// Bytes still to transfer, as of `settled_at`.
    pub remaining_bytes: f64,
    /// Current assigned rate, bits/second (in effect since `settled_at`).
    pub rate_bps: f64,
    /// Optional per-flow cap, bits/second.
    pub rate_cap: Option<f64>,
    /// When the flow was started.
    pub started_at: SimTime,
    /// Engine-internal topology slot (stable while the flow is active).
    pub(crate) slot: u32,
    /// Time at which `remaining_bytes` was last materialized. The rate
    /// has been constant since then, so progress between `settled_at`
    /// and "now" is just `rate_bps × elapsed`.
    pub(crate) settled_at: SimTime,
    /// Earliest completion-calendar entry queued for this flow — a
    /// *lower bound* on the true completion instant. Rate changes only
    /// queue a new entry when the fresh prediction undercuts it (the
    /// ratchet); an entry that surfaces early is re-armed at the true
    /// prediction. `FAR_FUTURE` means nothing is armed (the flow is
    /// stalled, or every queued entry is known-dead).
    pub(crate) armed_at: SimTime,
}

impl Flow {
    /// Bytes already transferred (as of the last settlement).
    pub fn transferred_bytes(&self) -> f64 {
        self.size_bytes - self.remaining_bytes
    }

    /// Fraction complete in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.size_bytes <= 0.0 {
            1.0
        } else {
            (self.transferred_bytes() / self.size_bytes).clamp(0.0, 1.0)
        }
    }

    /// Time to completion at the current rate (None if the rate is zero).
    pub fn eta_secs(&self) -> Option<f64> {
        if self.rate_bps > 0.0 {
            Some(self.remaining_bytes * 8.0 / self.rate_bps)
        } else {
            None
        }
    }

    /// Materialize progress up to `t` at the current rate.
    pub(crate) fn settle_to(&mut self, t: SimTime) {
        let dt = t - self.settled_at;
        if dt <= 0.0 {
            return; // never move the anchor backwards
        }
        let bytes = if self.rate_bps.is_infinite() {
            self.remaining_bytes
        } else {
            (self.rate_bps * dt / 8.0).min(self.remaining_bytes)
        };
        self.remaining_bytes -= bytes;
        self.settled_at = t;
    }

    /// Absolute completion instant predicted from the settled state, or
    /// `None` for a stalled (zero-rate, unfinished) flow. Flows already
    /// within [`COMPLETE_EPS_BYTES`] of done are due immediately,
    /// whatever their rate.
    pub(crate) fn predicted_completion(&self) -> Option<SimTime> {
        if self.remaining_bytes <= COMPLETE_EPS_BYTES {
            return Some(self.settled_at);
        }
        self.eta_secs().map(|eta| self.settled_at + eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(size: f64, remaining: f64, rate: f64) -> Flow {
        Flow {
            path: vec![LinkId(0)],
            size_bytes: size,
            remaining_bytes: remaining,
            rate_bps: rate,
            rate_cap: None,
            started_at: SimTime::ZERO,
            slot: 0,
            settled_at: SimTime::ZERO,
            armed_at: SimTime::FAR_FUTURE,
        }
    }

    #[test]
    fn progress_accounting() {
        let f = flow(1000.0, 250.0, 8000.0);
        assert_eq!(f.transferred_bytes(), 750.0);
        assert!((f.progress() - 0.75).abs() < 1e-12);
        assert!((f.eta_secs().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_has_no_eta() {
        assert_eq!(flow(10.0, 10.0, 0.0).eta_secs(), None);
    }

    #[test]
    fn zero_size_is_complete() {
        assert_eq!(flow(0.0, 0.0, 1.0).progress(), 1.0);
    }

    #[test]
    fn settlement_materializes_progress() {
        let mut f = flow(1000.0, 1000.0, 8000.0); // 1 kB/s
        f.settle_to(SimTime::from_secs(0.25));
        assert!((f.remaining_bytes - 750.0).abs() < 1e-9);
        // Settling backwards (or to the same instant) is a no-op.
        f.settle_to(SimTime::from_secs(0.25));
        assert!((f.remaining_bytes - 750.0).abs() < 1e-9);
        f.settle_to(SimTime::from_secs(10.0));
        assert_eq!(f.remaining_bytes, 0.0);
    }

    #[test]
    fn prediction_matches_eta() {
        let f = flow(1000.0, 800.0, 8000.0);
        assert_eq!(f.predicted_completion(), Some(SimTime::from_secs(0.8)));
        assert_eq!(flow(10.0, 10.0, 0.0).predicted_completion(), None);
        // Due-now flows predict their settle instant even at rate zero.
        assert_eq!(flow(10.0, 1e-4, 0.0).predicted_completion(), Some(SimTime::ZERO));
    }
}
