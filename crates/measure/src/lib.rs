//! # threegol-measure
//!
//! The §3 active-measurement methodology ("Handset experiments" in
//! Table 1), reproduced against the `threegol-radio` model.
//!
//! The paper programs up to ten Galaxy S II handsets to download and
//! upload 2 MB files (wget/iperf), activating one more device every 20
//! minutes, repeating each measurement four times, across six
//! locations and five days. The campaigns here run the same probes on
//! the simulated cellular deployment:
//!
//! * [`Campaign::aggregate_throughput`] — aggregate uplink/downlink
//!   throughput versus number of active devices (Fig 3);
//! * [`Campaign::per_device_throughput`] — per-device throughput for
//!   device clusters of 1/3/5 over the hours of the day (Fig 4,
//!   Table 3);
//! * [`Campaign::per_station_samples`] — single-device throughput
//!   attributed to the serving base station (Fig 5's violins);
//! * [`table2_row`] — DSL versus 3-device 3GOL throughput at a
//!   location (Table 2).

use threegol_radio::{CellularDeployment, Device, LocationProfile};
use threegol_simnet::dist::mix_seed;
use threegol_simnet::stats::Summary;
use threegol_simnet::{SimEvent, SimTime, Simulation};

/// Probe transfer size: "download and upload 2 MB files" (§3).
pub const PROBE_BYTES: f64 = 2e6;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// HSDPA downlink probes (the paper's wget measurements).
    Down,
    /// HSUPA uplink probes (the paper's iperf measurements).
    Up,
}

/// A measurement campaign at one location.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The location under test.
    pub location: LocationProfile,
    /// Base seed (repetitions and day offsets derive sub-seeds).
    pub seed: u64,
}

impl Campaign {
    /// Create a campaign.
    pub fn new(location: LocationProfile, seed: u64) -> Campaign {
        Campaign { location, seed }
    }

    /// Per-device probe throughputs (bits/s) with `n_devices` active
    /// simultaneously at `hour` on a given `day` (the day offsets the
    /// stochastic channel conditions like the paper's five-day runs).
    pub fn probe(&self, n_devices: usize, hour: f64, day: u64, dir: Direction) -> Vec<f64> {
        assert!(n_devices >= 1);
        let mut sim = Simulation::new();
        sim.run_until(SimTime::from_hours(day as f64 * 24.0 + hour));
        let deployment = CellularDeployment::new(self.location.clone(), mix_seed(self.seed, day));
        let mut cell = deployment.install(&mut sim);
        let mut flows = Vec::new();
        for i in 0..n_devices {
            let att = cell.attach(&mut sim, Device::galaxy_s2(format!("probe-{i}")));
            // Probes are launched back to back; the radio is warm (the
            // paper's devices were mid-campaign).
            cell.warm_up(att, sim.now());
            let path = match dir {
                Direction::Down => cell.dl_path(att),
                Direction::Up => cell.ul_path(att),
            };
            flows.push(sim.start_flow(path, PROBE_BYTES));
        }
        let t0 = sim.now();
        let mut tputs = vec![0.0; n_devices];
        let mut remaining = n_devices;
        while remaining > 0 {
            match sim.next_event() {
                Some(SimEvent::FlowCompleted { flow, time, .. }) => {
                    if let Some(idx) = flows.iter().position(|f| *f == flow) {
                        let secs = time - t0;
                        tputs[idx] = PROBE_BYTES * 8.0 / secs.max(1e-9);
                        remaining -= 1;
                    }
                }
                Some(_) => {}
                None => panic!("probe stalled"),
            }
        }
        tputs
    }

    /// Aggregate throughput (bits/s) of `n_devices` simultaneous
    /// probes, averaged over `reps` repetitions (the paper repeats each
    /// measurement four times).
    pub fn aggregate_throughput(
        &self,
        n_devices: usize,
        hour: f64,
        dir: Direction,
        reps: u64,
    ) -> Summary {
        let aggs: Vec<f64> = (0..reps)
            .map(|rep| self.probe(n_devices, hour + rep as f64 * 0.02, rep, dir).iter().sum())
            .collect();
        Summary::of(&aggs)
    }

    /// Per-device throughput samples for a cluster of `n_devices`, over
    /// the given hours and days (Fig 4 / Table 3).
    pub fn per_device_throughput(
        &self,
        n_devices: usize,
        hours: &[f64],
        days: u64,
        dir: Direction,
    ) -> Vec<f64> {
        let mut samples = Vec::new();
        for day in 0..days {
            for &hour in hours {
                samples.extend(self.probe(n_devices, hour, day, dir));
            }
        }
        samples
    }

    /// Single-device throughput samples attributed to the serving base
    /// station: `(station_index, bps)` (Fig 5).
    ///
    /// The paper's handsets report their serving cell; our model
    /// attaches a lone device to the least-loaded station, so we probe
    /// each station by attaching enough devices to reach it and keeping
    /// only the probe on the target station.
    pub fn per_station_samples(
        &self,
        hours: &[f64],
        days: u64,
        dir: Direction,
    ) -> Vec<(usize, f64)> {
        let n_stations = self.location.n_base_stations;
        let mut out = Vec::new();
        for day in 0..days {
            for &hour in hours {
                // One probe per station: attach n_stations devices; the
                // round-robin association covers every station once.
                let mut sim = Simulation::new();
                sim.run_until(SimTime::from_hours(day as f64 * 24.0 + hour));
                let deployment =
                    CellularDeployment::new(self.location.clone(), mix_seed(self.seed, day));
                let mut cell = deployment.install(&mut sim);
                // Attach one device per station first (round-robin
                // association covers every station), then probe them
                // one at a time so each probe sees an uncontended cell.
                let atts: Vec<_> = (0..n_stations)
                    .map(|i| {
                        let att = cell.attach(&mut sim, Device::galaxy_s2(format!("s{i}")));
                        cell.warm_up(att, sim.now());
                        att
                    })
                    .collect();
                for att in atts {
                    let station = cell.station_of(att);
                    let path = match dir {
                        Direction::Down => cell.dl_path(att),
                        Direction::Up => cell.ul_path(att),
                    };
                    let t0 = sim.now();
                    sim.start_flow(path, PROBE_BYTES);
                    // Sequential probes: one flow at a time per station.
                    match sim.next_event() {
                        Some(SimEvent::FlowCompleted { time, .. }) => {
                            out.push((station, PROBE_BYTES * 8.0 / (time - t0).max(1e-9)));
                        }
                        _ => panic!("station probe stalled"),
                    }
                }
            }
        }
        out
    }
}

/// One step of the §3 staggered activation ramp.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RampStep {
    /// Number of active devices at this step.
    pub n_devices: usize,
    /// Hour-of-day the step ran at.
    pub hour: f64,
    /// Aggregate throughput across active devices, bits/s.
    pub aggregate_bps: f64,
    /// Per-device throughputs, bits/s.
    pub per_device_bps: Vec<f64>,
}

impl Campaign {
    /// The §3 activation ramp: start with one device, "every 20
    /// minutes we introduce a new device and run the same measurements
    /// for all active devices in parallel", up to `max_devices`. Unlike
    /// [`Campaign::aggregate_throughput`], the deployment persists
    /// across steps, so the attach dynamics (association, per-device
    /// efficiency refresh) are exercised exactly as in the paper's
    /// protocol.
    pub fn activation_ramp(
        &self,
        max_devices: usize,
        start_hour: f64,
        dir: Direction,
    ) -> Vec<RampStep> {
        assert!(max_devices >= 1);
        let mut sim = Simulation::new();
        sim.run_until(SimTime::from_hours(start_hour));
        let deployment = CellularDeployment::new(self.location.clone(), self.seed);
        let mut cell = deployment.install(&mut sim);
        let mut attachments = Vec::new();
        let mut steps = Vec::new();
        for k in 1..=max_devices {
            let att = cell.attach(&mut sim, Device::galaxy_s2(format!("ramp-{k}")));
            cell.warm_up(att, sim.now());
            attachments.push(att);
            // All active devices probe in parallel.
            let flows: Vec<_> = attachments
                .iter()
                .map(|&a| {
                    let path = match dir {
                        Direction::Down => cell.dl_path(a),
                        Direction::Up => cell.ul_path(a),
                    };
                    sim.start_flow(path, PROBE_BYTES)
                })
                .collect();
            let t0 = sim.now();
            let mut tputs = vec![0.0; flows.len()];
            let mut remaining = flows.len();
            while remaining > 0 {
                match sim.next_event() {
                    Some(SimEvent::FlowCompleted { flow, time, .. }) => {
                        if let Some(idx) = flows.iter().position(|f| *f == flow) {
                            tputs[idx] = PROBE_BYTES * 8.0 / (time - t0).max(1e-9);
                            remaining -= 1;
                        }
                    }
                    Some(_) => {}
                    None => panic!("ramp probe stalled"),
                }
            }
            steps.push(RampStep {
                n_devices: k,
                hour: sim.now().hour_of_day(),
                aggregate_bps: tputs.iter().sum(),
                per_device_bps: tputs,
            });
            // 20 minutes until the next device joins.
            let next = sim.now() + 20.0 * 60.0;
            sim.run_until(next);
        }
        steps
    }
}

/// One row of Table 2: DSL speed, 3-device 3G throughput, and the
/// 3GOL/DSL speedup, all in bits/s, at the location's measured hour.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table2Row {
    /// Location name.
    pub name: String,
    /// Measurement hour.
    pub hour: f64,
    /// DSL downlink/uplink, bits/s.
    pub dsl_bps: (f64, f64),
    /// Measured 3-device aggregate 3G downlink/uplink, bits/s.
    pub g3_bps: (f64, f64),
    /// `(DSL + 3G) / DSL` speedup, downlink/uplink.
    pub speedup: (f64, f64),
    /// The paper's reported 3G throughputs for comparison, if any.
    pub paper_g3_bps: Option<(f64, f64)>,
}

/// Measure a Table 2 row: 3 devices at the location's measured hour.
pub fn table2_row(location: &LocationProfile, seed: u64, reps: u64) -> Table2Row {
    let hour = location.measured_hour.unwrap_or(12.0);
    let campaign = Campaign::new(location.clone(), seed);
    let dl = campaign.aggregate_throughput(3, hour, Direction::Down, reps).mean;
    let ul = campaign.aggregate_throughput(3, hour, Direction::Up, reps).mean;
    let dsl = (location.adsl_down_bps, location.adsl_up_bps);
    Table2Row {
        name: location.name.clone(),
        hour,
        dsl_bps: dsl,
        g3_bps: (dl, ul),
        speedup: ((dsl.0 + dl) / dsl.0, (dsl.1 + ul) / dsl.1),
        paper_g3_bps: location.paper_3g_3dev_bps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_radio::consts::HSUPA_MAX_BPS;

    fn loc1() -> LocationProfile {
        LocationProfile::paper_table2().remove(0)
    }

    #[test]
    fn single_probe_in_plausible_range() {
        let c = Campaign::new(loc1(), 1);
        let t = c.probe(1, 1.0, 0, Direction::Down);
        assert_eq!(t.len(), 1);
        // Loc1 is hot (calibrated ×); a single device should see
        // between 0.3 and 7 Mbit/s.
        assert!(t[0] > 0.3e6 && t[0] < 7.2e6, "tput {}", t[0]);
    }

    #[test]
    fn downlink_aggregate_grows_with_devices() {
        let c = Campaign::new(loc1(), 2);
        let a1 = c.aggregate_throughput(1, 1.0, Direction::Down, 4).mean;
        let a3 = c.aggregate_throughput(3, 1.0, Direction::Down, 4).mean;
        let a10 = c.aggregate_throughput(10, 1.0, Direction::Down, 4).mean;
        assert!(a3 > a1 * 1.5, "a1 {a1} a3 {a3}");
        assert!(a10 > a3 * 1.5, "a3 {a3} a10 {a10}");
    }

    #[test]
    fn uplink_aggregate_plateaus() {
        let c = Campaign::new(loc1(), 3);
        let a5 = c.aggregate_throughput(5, 1.0, Direction::Up, 4).mean;
        let a10 = c.aggregate_throughput(10, 1.0, Direction::Up, 4).mean;
        // Fig 3: uplink plateaus near the HSUPA ceiling; adding devices
        // past ~5 yields little.
        assert!(a10 < a5 * 1.35, "a5 {a5} a10 {a10}");
        assert!(a10 <= HSUPA_MAX_BPS * 1.05, "a10 {a10}");
    }

    #[test]
    fn table2_loc1_matches_paper_within_tolerance() {
        let row = table2_row(&loc1(), 7, 6);
        let (paper_dl, paper_ul) = row.paper_g3_bps.unwrap();
        assert!(
            (row.g3_bps.0 / paper_dl - 1.0).abs() < 0.35,
            "dl {} vs paper {paper_dl}",
            row.g3_bps.0
        );
        assert!(
            (row.g3_bps.1 / paper_ul - 1.0).abs() < 0.35,
            "ul {} vs paper {paper_ul}",
            row.g3_bps.1
        );
        // Headline: ×2.6 downlink / ×12.9 uplink with 3 devices.
        assert!(row.speedup.0 > 1.8 && row.speedup.0 < 3.5, "dl speedup {}", row.speedup.0);
        assert!(row.speedup.1 > 8.0 && row.speedup.1 < 18.0, "ul speedup {}", row.speedup.1);
    }

    #[test]
    fn per_device_declines_with_cluster_size() {
        let c = Campaign::new(loc1(), 4);
        let hours = [1.0, 13.0];
        let m1 = Summary::of(&c.per_device_throughput(1, &hours, 2, Direction::Up)).mean;
        let m5 = Summary::of(&c.per_device_throughput(5, &hours, 2, Direction::Up)).mean;
        assert!(m5 < m1, "m1 {m1} m5 {m5}");
    }

    #[test]
    fn per_station_covers_all_stations() {
        let c = Campaign::new(loc1(), 5);
        let samples = c.per_station_samples(&[2.0, 14.0], 2, Direction::Down);
        let mut stations: Vec<usize> = samples.iter().map(|&(s, _)| s).collect();
        stations.sort_unstable();
        stations.dedup();
        assert_eq!(stations.len(), c.location.n_base_stations);
        assert!(samples.iter().all(|&(_, bps)| bps > 0.0));
    }

    #[test]
    fn activation_ramp_follows_paper_protocol() {
        let c = Campaign::new(loc1(), 9);
        let steps = c.activation_ramp(5, 1.0, Direction::Down);
        assert_eq!(steps.len(), 5);
        // Devices join every 20 minutes.
        assert!((steps[1].hour - steps[0].hour - 1.0 / 3.0).abs() < 0.05);
        // Aggregate grows as devices join.
        assert!(steps[4].aggregate_bps > steps[0].aggregate_bps * 1.8);
        // Per-device vectors track the step index.
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.per_device_bps.len(), i + 1);
            assert!(s.per_device_bps.iter().all(|&t| t > 0.0));
        }
    }

    #[test]
    fn ramp_uplink_saturates() {
        let c = Campaign::new(loc1(), 10);
        let steps = c.activation_ramp(8, 1.0, Direction::Up);
        let a5 = steps[4].aggregate_bps;
        let a8 = steps[7].aggregate_bps;
        assert!(a8 < a5 * 1.4, "a5 {a5} a8 {a8}");
    }

    #[test]
    fn probes_are_deterministic() {
        let c = Campaign::new(loc1(), 6);
        assert_eq!(c.probe(3, 9.0, 1, Direction::Down), c.probe(3, 9.0, 1, Direction::Down));
    }
}
