//! The safe-allowance estimator (paper §6, "How to allocate volume
//! towards 3GOL?").
//!
//! For user `u` at month `t`, with `F_u(t−1) … F_u(t−τ)` the free
//! (unused) volume of the τ previous months:
//!
//! ```text
//! F̄u(t)    = Σ_{s=1..τ} F_u(t−s) / τ
//! 3GOLa(t) = F̄u(t) − α·σ̄u(t)
//! ```
//!
//! where σ̄ is the sample standard deviation of the same window and α a
//! tunable guard. The paper reports that τ = 5, α = 4 lets 3GOL use
//! about 65 % of the available free capacity with expected overrun time
//! under one day per month.

/// Anything that maps a window of monthly free-capacity history to a
/// safe monthly 3GOL allowance. The paper's mean-minus-guard rule is
/// [`AllowanceEstimator`]; [`QuantileEstimator`] is an alternative
/// compared in the `est06` ablation.
pub trait FreeCapacityEstimator {
    /// Monthly allowance in bytes given past months' free volume
    /// (most recent last).
    fn monthly_allowance(&self, free_history_bytes: &[f64]) -> f64;

    /// Display label.
    fn label(&self) -> String;
}

/// The paper's allowance estimator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AllowanceEstimator {
    /// History window in months (paper: 5).
    pub tau: usize,
    /// Guard multiplier on the free-capacity standard deviation
    /// (paper: 4).
    pub alpha: f64,
}

impl AllowanceEstimator {
    /// Create an estimator.
    pub fn new(tau: usize, alpha: f64) -> AllowanceEstimator {
        assert!(tau >= 1, "window must cover at least one month");
        assert!(alpha >= 0.0);
        AllowanceEstimator { tau, alpha }
    }

    /// The paper's configuration: τ = 5, α = 4.
    pub fn paper() -> AllowanceEstimator {
        AllowanceEstimator::new(5, 4.0)
    }

    /// Monthly 3GOL allowance in bytes given the user's free capacity
    /// of previous months, most recent last. Uses the last `τ` entries
    /// (or all, if fewer are available — cold start). Never negative.
    pub fn monthly_allowance(&self, free_history_bytes: &[f64]) -> f64 {
        if free_history_bytes.is_empty() {
            return 0.0;
        }
        let window = &free_history_bytes[free_history_bytes.len().saturating_sub(self.tau)..];
        let n = window.len() as f64;
        let mean = window.iter().sum::<f64>() / n;
        let sd = if window.len() > 1 {
            (window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            // One month of history: be conservative, treat the whole
            // observation as uncertainty.
            mean
        };
        (mean - self.alpha * sd).max(0.0)
    }

    /// Daily allowance: the monthly allowance spread over 30 days.
    pub fn daily_allowance(&self, free_history_bytes: &[f64]) -> f64 {
        self.monthly_allowance(free_history_bytes) / 30.0
    }
}

impl FreeCapacityEstimator for AllowanceEstimator {
    fn monthly_allowance(&self, free_history_bytes: &[f64]) -> f64 {
        AllowanceEstimator::monthly_allowance(self, free_history_bytes)
    }

    fn label(&self) -> String {
        format!("mean−{}σ (τ={})", self.alpha, self.tau)
    }
}

/// A conservative quantile rule: the allowance is the `q`-quantile of
/// the last `tau` months of free capacity (e.g. q = 0.1 ⇒ "a volume
/// that was free in 90 % of recent months").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantileEstimator {
    /// History window in months.
    pub tau: usize,
    /// Quantile in `[0, 1]` (lower = more conservative).
    pub q: f64,
}

impl QuantileEstimator {
    /// Create a quantile estimator.
    pub fn new(tau: usize, q: f64) -> QuantileEstimator {
        assert!(tau >= 1);
        assert!((0.0..=1.0).contains(&q));
        QuantileEstimator { tau, q }
    }
}

impl FreeCapacityEstimator for QuantileEstimator {
    fn monthly_allowance(&self, free_history_bytes: &[f64]) -> f64 {
        if free_history_bytes.is_empty() {
            return 0.0;
        }
        let window = &free_history_bytes[free_history_bytes.len().saturating_sub(self.tau)..];
        let mut sorted = window.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pos = self.q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        (sorted[lo] * (1.0 - w) + sorted[hi] * w).max(0.0)
    }

    fn label(&self) -> String {
        format!("P{:.0} (τ={})", self.q * 100.0, self.tau)
    }
}

/// Outcome of evaluating an estimator over a user population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct EstimatorEvaluation {
    /// Months evaluated (user-months with a full history window).
    pub months: usize,
    /// Fraction of the truly free capacity the allowance captured:
    /// `Σ min(allowance, free) / Σ free`.
    pub free_capacity_used: f64,
    /// Mean cap-overrun time, days per evaluated month.
    pub mean_overrun_days: f64,
    /// Fraction of user-months with any overrun.
    pub overrun_month_fraction: f64,
}

/// Run the §6 evaluation: for every user, roll the estimator over their
/// monthly free-capacity series and compare the allowance of month `t`
/// against the volume that was actually free in month `t`.
///
/// Overrun model: the allowance is consumed uniformly over a 30-day
/// month, so if the allowance `a` exceeds the actually free volume `f`,
/// the user's cap is exhausted after `30·f/a` days and the remaining
/// `30·(1 − f/a)` days are over cap.
pub fn evaluate_estimator<E: FreeCapacityEstimator + WindowTau>(
    est: &E,
    users_free_by_month: &[Vec<f64>],
) -> EstimatorEvaluation {
    let tau = est.window_tau();
    let mut months = 0usize;
    let mut used = 0.0;
    let mut free_total = 0.0;
    let mut overrun_days = 0.0;
    let mut overrun_months = 0usize;
    for series in users_free_by_month {
        if series.len() <= tau {
            continue;
        }
        for t in tau..series.len() {
            let allowance = est.monthly_allowance(&series[..t]);
            let free = series[t];
            months += 1;
            free_total += free;
            used += allowance.min(free);
            if allowance > free && allowance > 0.0 {
                overrun_days += 30.0 * (1.0 - free / allowance);
                overrun_months += 1;
            }
        }
    }
    EstimatorEvaluation {
        months,
        free_capacity_used: if free_total > 0.0 { used / free_total } else { 0.0 },
        mean_overrun_days: if months > 0 { overrun_days / months as f64 } else { 0.0 },
        overrun_month_fraction: if months > 0 {
            overrun_months as f64 / months as f64
        } else {
            0.0
        },
    }
}

/// The allowance estimator run *live*: one device's rolling
/// free-capacity history plus the paper rule, advanced month by month
/// as simulated time passes inside the scenario engine (DESIGN.md §14).
/// The offline [`evaluate_estimator`] replays the same rule over
/// recorded histories; `LiveAllowance` is the closed loop — each month
/// boundary pushes the month's observed free capacity and the next
/// month's daily allowance comes from the refit window.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveAllowance {
    estimator: AllowanceEstimator,
    history: Vec<f64>,
}

impl LiveAllowance {
    /// Start with an initial history (most recent month last).
    pub fn new(estimator: AllowanceEstimator, initial_history: Vec<f64>) -> LiveAllowance {
        LiveAllowance { estimator, history: initial_history }
    }

    /// The monthly allowance the current window supports.
    pub fn monthly_allowance(&self) -> f64 {
        self.estimator.monthly_allowance(&self.history)
    }

    /// The daily allowance (monthly spread over 30 days) — what the
    /// scenario engine grants each device at every day boundary.
    pub fn daily_allowance(&self) -> f64 {
        self.estimator.daily_allowance(&self.history)
    }

    /// Close a month: record its observed free capacity; subsequent
    /// allowances come from the slid window.
    pub fn finish_month(&mut self, free_bytes: f64) {
        self.history.push(free_bytes);
    }

    /// The accrued history (most recent month last).
    pub fn history(&self) -> &[f64] {
        &self.history
    }
}

/// Exposes the history-window length an estimator warms up over.
pub trait WindowTau {
    /// Months of history needed before the estimator is trusted.
    fn window_tau(&self) -> usize;
}

impl WindowTau for AllowanceEstimator {
    fn window_tau(&self) -> usize {
        self.tau
    }
}

impl WindowTau for QuantileEstimator {
    fn window_tau(&self) -> usize {
        self.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn paper_parameters() {
        let e = AllowanceEstimator::paper();
        assert_eq!(e.tau, 5);
        assert_eq!(e.alpha, 4.0);
    }

    #[test]
    fn stable_history_yields_full_mean_minus_guard() {
        let e = AllowanceEstimator::new(5, 4.0);
        // Perfectly stable free capacity: sd = 0, allowance = mean.
        let hist = vec![600.0 * MB; 5];
        assert_eq!(e.monthly_allowance(&hist), 600.0 * MB);
        assert_eq!(e.daily_allowance(&hist), 20.0 * MB);
    }

    #[test]
    fn variance_reduces_allowance() {
        let e = AllowanceEstimator::new(5, 4.0);
        let hist = vec![500.0 * MB, 700.0 * MB, 600.0 * MB, 550.0 * MB, 650.0 * MB];
        let a = e.monthly_allowance(&hist);
        assert!(a < 600.0 * MB);
        assert!(a > 0.0);
    }

    #[test]
    fn allowance_never_negative() {
        let e = AllowanceEstimator::new(5, 4.0);
        let hist = vec![0.0, 1000.0 * MB, 0.0, 1000.0 * MB, 0.0];
        assert_eq!(e.monthly_allowance(&hist), 0.0);
    }

    #[test]
    fn window_uses_only_last_tau() {
        let e = AllowanceEstimator::new(2, 0.0);
        let hist = vec![1.0, 1.0, 100.0, 200.0];
        assert_eq!(e.monthly_allowance(&hist), 150.0);
    }

    #[test]
    fn cold_start_is_conservative() {
        let e = AllowanceEstimator::new(5, 1.0);
        assert_eq!(e.monthly_allowance(&[]), 0.0);
        // One observation: mean = sd => allowance 0 with alpha >= 1.
        assert_eq!(e.monthly_allowance(&[500.0 * MB]), 0.0);
    }

    #[test]
    fn evaluation_on_stable_population() {
        let e = AllowanceEstimator::paper();
        let users: Vec<Vec<f64>> = (0..50).map(|u| vec![(300.0 + u as f64) * MB; 12]).collect();
        let ev = evaluate_estimator(&e, &users);
        assert_eq!(ev.months, 50 * 7);
        // Stable users: allowance = free every month, no overruns.
        assert!((ev.free_capacity_used - 1.0).abs() < 1e-9);
        assert_eq!(ev.mean_overrun_days, 0.0);
        assert_eq!(ev.overrun_month_fraction, 0.0);
    }

    #[test]
    fn evaluation_flags_overruns() {
        let e = AllowanceEstimator::new(3, 0.0); // no guard
                                                 // Free capacity collapses in the last month: the mean-based
                                                 // allowance overruns.
        let users = vec![vec![300.0 * MB, 300.0 * MB, 300.0 * MB, 0.0]];
        let ev = evaluate_estimator(&e, &users);
        assert_eq!(ev.months, 1);
        assert!(ev.mean_overrun_days > 29.0);
        assert_eq!(ev.overrun_month_fraction, 1.0);
    }

    #[test]
    fn live_allowance_slides_its_window() {
        let mut live = LiveAllowance::new(AllowanceEstimator::new(2, 0.0), vec![100.0, 200.0]);
        assert_eq!(live.monthly_allowance(), 150.0);
        assert_eq!(live.daily_allowance(), 5.0);
        live.finish_month(400.0);
        // Window is the last 2 months: (200 + 400) / 2.
        assert_eq!(live.monthly_allowance(), 300.0);
        assert_eq!(live.history(), &[100.0, 200.0, 400.0]);
        // The live loop matches the offline replay at every step.
        let est = AllowanceEstimator::paper();
        let series: Vec<f64> = (0..10).map(|m| (300.0 + 17.0 * (m % 4) as f64) * MB).collect();
        let mut live = LiveAllowance::new(est, series[..5].to_vec());
        for t in 5..series.len() {
            assert_eq!(live.monthly_allowance(), est.monthly_allowance(&series[..t]));
            live.finish_month(series[t]);
        }
    }

    #[test]
    fn quantile_estimator_is_conservative() {
        let e = QuantileEstimator::new(5, 0.0); // the window minimum
        let hist = vec![500.0 * MB, 700.0 * MB, 600.0 * MB, 550.0 * MB, 650.0 * MB];
        assert_eq!(FreeCapacityEstimator::monthly_allowance(&e, &hist), 500.0 * MB);
        let median = QuantileEstimator::new(5, 0.5);
        assert_eq!(FreeCapacityEstimator::monthly_allowance(&median, &hist), 600.0 * MB);
        assert_eq!(FreeCapacityEstimator::monthly_allowance(&e, &[]), 0.0);
        assert!(e.label().contains("P0"));
    }

    #[test]
    fn quantile_and_guard_estimators_both_evaluate() {
        let users: Vec<Vec<f64>> = (0..30)
            .map(|u| {
                (0..12).map(|m| (250.0 + ((u * 13 + m * 7) % 10) as f64 * 20.0) * MB).collect()
            })
            .collect();
        let guard = evaluate_estimator(&AllowanceEstimator::paper(), &users);
        let min_rule = evaluate_estimator(&QuantileEstimator::new(5, 0.0), &users);
        let median_rule = evaluate_estimator(&QuantileEstimator::new(5, 0.5), &users);
        assert_eq!(guard.months, min_rule.months);
        assert!(min_rule.free_capacity_used > 0.0);
        // Lower quantiles are more conservative than higher ones.
        assert!(min_rule.mean_overrun_days <= median_rule.mean_overrun_days + 1e-9);
        assert!(min_rule.free_capacity_used <= median_rule.free_capacity_used + 1e-9);
    }

    #[test]
    fn guard_trades_utilization_for_safety() {
        // Synthetic noisy population: larger alpha => fewer overruns,
        // lower utilization. This is the estimator's design intent.
        let mk_users = || -> Vec<Vec<f64>> {
            (0..40)
                .map(|u| {
                    (0..14)
                        .map(|m| {
                            let wob = ((u * 7 + m * 13) % 11) as f64 / 11.0;
                            (200.0 + 150.0 * wob) * MB
                        })
                        .collect()
                })
                .collect()
        };
        let loose = evaluate_estimator(&AllowanceEstimator::new(5, 0.0), &mk_users());
        let tight = evaluate_estimator(&AllowanceEstimator::new(5, 4.0), &mk_users());
        assert!(tight.mean_overrun_days <= loose.mean_overrun_days);
        assert!(tight.free_capacity_used <= loose.free_capacity_used);
    }
}
