//! # threegol-caps
//!
//! Volume-cap handling for multi-provider 3GOL (paper §6).
//!
//! When the wired and cellular operators differ, 3GOL must respect each
//! device's monthly data cap. This crate implements:
//!
//! * [`AllowanceEstimator`] — the paper's safe-allowance rule
//!   `3GOLa(t) = F̄u(t) − α·σ̄u(t)` over the last `τ` months of free
//!   (unused) capacity, with the paper's parameters τ = 5, α = 4;
//! * [`QuotaTracker`] — per-device usage tracking `U(t)` and the
//!   available quota `A(t) = 3GOLa(t) − U(t)`; a device advertises
//!   itself to the admissible set Φ only while `A(t) > 0`;
//! * [`AdmissibleSet`] — the client-side set Φ of devices currently
//!   advertising;
//! * [`evaluate_estimator`] — the §6 evaluation: the fraction of
//!   available free capacity the estimator lets 3GOL use, and the
//!   expected cap-overrun time per month.

pub mod allowance;
pub mod quota;

pub use allowance::{
    evaluate_estimator, AllowanceEstimator, EstimatorEvaluation, FreeCapacityEstimator,
    LiveAllowance, QuantileEstimator, WindowTau,
};
pub use quota::{AdmissibleSet, MonthlyUsage, QuotaTracker};
