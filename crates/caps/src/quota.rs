//! Per-device quota tracking and the advertisement/admissible-set
//! mechanics (paper §6):
//!
//! > "The component running on the cellular device can track 3GOL data
//! > usage U(t) and estimate the 3GOL allowance 3GOLa(t). If the
//! > available quota A(t) = 3GOLa(t) − U(t) is greater than zero, the
//! > device advertises itself. All devices that advertise themselves
//! > become part of the admissible set Φ."

/// One month of a subscriber's billing data.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonthlyUsage {
    /// Contracted cap, bytes.
    pub cap_bytes: f64,
    /// Volume actually used (by the user's own traffic), bytes.
    pub used_bytes: f64,
}

impl MonthlyUsage {
    /// Create a record; usage may exceed the cap (overage happens).
    pub fn new(cap_bytes: f64, used_bytes: f64) -> MonthlyUsage {
        assert!(cap_bytes > 0.0 && used_bytes >= 0.0);
        MonthlyUsage { cap_bytes, used_bytes }
    }

    /// Free (unused, already paid for) volume, bytes.
    pub fn free_bytes(&self) -> f64 {
        (self.cap_bytes - self.used_bytes).max(0.0)
    }

    /// Fraction of the cap used, possibly > 1.
    pub fn used_fraction(&self) -> f64 {
        self.used_bytes / self.cap_bytes
    }
}

/// Tracks a device's 3GOL usage against its current allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaTracker {
    allowance_bytes: f64,
    used_bytes: f64,
}

impl QuotaTracker {
    /// Create a tracker with the period's allowance (`3GOLa(t)`).
    pub fn new(allowance_bytes: f64) -> QuotaTracker {
        assert!(allowance_bytes >= 0.0);
        QuotaTracker { allowance_bytes, used_bytes: 0.0 }
    }

    /// The period's allowance, bytes.
    pub fn allowance_bytes(&self) -> f64 {
        self.allowance_bytes
    }

    /// 3GOL bytes consumed so far (`U(t)`).
    pub fn used_bytes(&self) -> f64 {
        self.used_bytes
    }

    /// Available quota `A(t) = 3GOLa(t) − U(t)`, floored at zero.
    pub fn available_bytes(&self) -> f64 {
        (self.allowance_bytes - self.used_bytes).max(0.0)
    }

    /// Whether the device should advertise itself (`A(t) > 0`).
    pub fn should_advertise(&self) -> bool {
        self.available_bytes() > 0.0
    }

    /// Record `bytes` of 3GOL traffic; returns how much fit within the
    /// quota (a scheduler should size transfers with `available_bytes`
    /// beforehand, but late accounting must not go negative).
    pub fn consume(&mut self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        let granted = bytes.min(self.available_bytes());
        self.used_bytes += bytes;
        granted
    }

    /// Reset usage for a new period with a fresh allowance.
    pub fn roll_over(&mut self, new_allowance_bytes: f64) {
        assert!(new_allowance_bytes >= 0.0);
        self.allowance_bytes = new_allowance_bytes;
        self.used_bytes = 0.0;
    }
}

/// The client's admissible set Φ: devices currently advertising.
#[derive(Debug, Clone, Default)]
pub struct AdmissibleSet {
    devices: Vec<(String, f64)>, // (name, advertised available bytes)
}

impl AdmissibleSet {
    /// An empty set.
    pub fn new() -> AdmissibleSet {
        AdmissibleSet::default()
    }

    /// Rebuild the set from device advertisements: a device appears in
    /// Φ only if its tracker authorizes it.
    pub fn refresh<'a>(&mut self, devices: impl IntoIterator<Item = (&'a str, &'a QuotaTracker)>) {
        self.devices.clear();
        for (name, tracker) in devices {
            if tracker.should_advertise() {
                self.devices.push((name.to_string(), tracker.available_bytes()));
            }
        }
    }

    /// Number of admissible devices (`|Φ|`, i.e. `N − 1` paths).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if no device is advertising.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device names in Φ.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.devices.iter().map(|(n, _)| n.as_str())
    }

    /// Total advertised available quota, bytes.
    pub fn total_available_bytes(&self) -> f64 {
        self.devices.iter().map(|(_, a)| a).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn monthly_usage_accessors() {
        let m = MonthlyUsage::new(1000.0 * MB, 150.0 * MB);
        assert_eq!(m.free_bytes(), 850.0 * MB);
        assert!((m.used_fraction() - 0.15).abs() < 1e-12);
        // Overage clamps free at zero.
        let over = MonthlyUsage::new(1000.0 * MB, 1200.0 * MB);
        assert_eq!(over.free_bytes(), 0.0);
        assert!(over.used_fraction() > 1.0);
    }

    #[test]
    fn tracker_lifecycle() {
        let mut t = QuotaTracker::new(40.0 * MB);
        assert!(t.should_advertise());
        assert_eq!(t.consume(15.0 * MB), 15.0 * MB);
        assert_eq!(t.available_bytes(), 25.0 * MB);
        // Oversized late accounting is clamped to what was available.
        assert_eq!(t.consume(30.0 * MB), 25.0 * MB);
        assert_eq!(t.available_bytes(), 0.0);
        assert!(!t.should_advertise());
        t.roll_over(20.0 * MB);
        assert_eq!(t.available_bytes(), 20.0 * MB);
        assert_eq!(t.used_bytes(), 0.0);
    }

    #[test]
    fn zero_allowance_never_advertises() {
        let t = QuotaTracker::new(0.0);
        assert!(!t.should_advertise());
    }

    #[test]
    fn admissible_set_tracks_advertisers() {
        let a = QuotaTracker::new(20.0 * MB);
        let mut b = QuotaTracker::new(10.0 * MB);
        b.consume(10.0 * MB);
        let c = QuotaTracker::new(5.0 * MB);
        let mut phi = AdmissibleSet::new();
        phi.refresh([("a", &a), ("b", &b), ("c", &c)]);
        assert_eq!(phi.len(), 2);
        assert!(!phi.is_empty());
        let names: Vec<&str> = phi.names().collect();
        assert_eq!(names, vec!["a", "c"]);
        assert_eq!(phi.total_available_bytes(), 25.0 * MB);
        // b exhausted: refreshing drops it; later roll-over re-admits.
        b.roll_over(10.0 * MB);
        phi.refresh([("a", &a), ("b", &b), ("c", &c)]);
        assert_eq!(phi.len(), 3);
    }
}
