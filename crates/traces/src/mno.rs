//! Synthetic MNO billing dataset (paper Table 1, "MNO": per-user
//! monthly data demand of ~1 M mobile-broadband customers).
//!
//! The §6 analyses only need the joint distribution of (cap, monthly
//! usage) and its month-to-month stability. The generator matches the
//! paper's Fig 10: **40 % of customers use less than 10 % of their
//! cap, 75 % use less than 50 %**, and the population average leaves
//! about 20 MB/day (~600 MB/month) of already-paid-for free volume per
//! device.

use threegol_simnet::dist::mix_seed;
use threegol_simnet::stats::Ecdf;
use threegol_simnet::SimRng;

/// Configuration of the MNO trace generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MnoConfig {
    /// Number of subscribers.
    pub n_users: usize,
    /// Months of history per subscriber.
    pub n_months: usize,
    /// Cap tiers in bytes with selection weights.
    pub cap_tiers: Vec<(f64, f64)>,
    /// Relative month-to-month noise on a user's usage (lognormal sd).
    pub monthly_noise_rel_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MnoConfig {
    fn default() -> Self {
        const GB: f64 = 1e9;
        MnoConfig {
            n_users: 20_000,
            n_months: 12,
            cap_tiers: vec![
                (0.5 * GB, 0.20),
                (1.0 * GB, 0.30),
                (2.0 * GB, 0.30),
                (5.0 * GB, 0.15),
                (10.0 * GB, 0.05),
            ],
            monthly_noise_rel_sd: 0.25,
            seed: 0x3601,
        }
    }
}

/// One subscriber's billing history.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UserBilling {
    /// Subscriber id.
    pub user_id: u64,
    /// Contracted monthly cap, bytes.
    pub cap_bytes: f64,
    /// Used volume per month, bytes (may exceed the cap).
    pub monthly_used_bytes: Vec<f64>,
}

impl UserBilling {
    /// Free (unused) volume per month, bytes.
    pub fn monthly_free_bytes(&self) -> Vec<f64> {
        self.monthly_used_bytes.iter().map(|u| (self.cap_bytes - u).max(0.0)).collect()
    }

    /// Fraction of cap used in the latest month.
    pub fn latest_used_fraction(&self) -> f64 {
        self.monthly_used_bytes.last().map(|u| u / self.cap_bytes).unwrap_or(0.0)
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct MnoTrace {
    /// Subscribers.
    pub users: Vec<UserBilling>,
    /// The configuration that produced it.
    pub config: MnoConfig,
}

/// Quantile anchors of the usage-fraction distribution, chosen to
/// reproduce Fig 10: `(quantile, used_fraction)`.
///
/// 40 % of users below 0.10, 75 % below 0.50, ~3 % above the cap.
const USAGE_FRACTION_ANCHORS: &[(f64, f64)] =
    &[(0.00, 0.005), (0.40, 0.10), (0.75, 0.50), (0.97, 1.00), (1.00, 1.30)];

/// Sample a user's *base* used-cap fraction via the piecewise-linear
/// inverse CDF above.
fn sample_used_fraction(rng: &mut SimRng) -> f64 {
    let q = rng.uniform();
    let anchors = USAGE_FRACTION_ANCHORS;
    for w in anchors.windows(2) {
        let (q0, f0) = w[0];
        let (q1, f1) = w[1];
        if q <= q1 {
            return f0 + (f1 - f0) * (q - q0) / (q1 - q0);
        }
    }
    anchors.last().expect("non-empty").1
}

impl MnoTrace {
    /// Generate the dataset.
    pub fn generate(config: MnoConfig) -> MnoTrace {
        assert!(!config.cap_tiers.is_empty());
        let weight_sum: f64 = config.cap_tiers.iter().map(|(_, w)| w).sum();
        assert!(weight_sum > 0.0);
        let mut users = Vec::with_capacity(config.n_users);
        for uid in 0..config.n_users as u64 {
            let mut rng = SimRng::seed_from_u64(mix_seed(config.seed, uid));
            // Cap tier by weighted choice.
            let mut pick = rng.uniform() * weight_sum;
            let mut cap = config.cap_tiers[0].0;
            for &(c, w) in &config.cap_tiers {
                if pick <= w {
                    cap = c;
                    break;
                }
                pick -= w;
            }
            // Stable per-user base fraction + monthly multiplicative noise.
            let base_fraction = sample_used_fraction(&mut rng);
            let monthly_used_bytes = (0..config.n_months)
                .map(|_| {
                    let noise = if config.monthly_noise_rel_sd > 0.0 {
                        rng.lognormal_mean_sd(1.0, config.monthly_noise_rel_sd)
                    } else {
                        1.0
                    };
                    base_fraction * noise * cap
                })
                .collect();
            users.push(UserBilling { user_id: uid, cap_bytes: cap, monthly_used_bytes });
        }
        MnoTrace { users, config }
    }

    /// ECDF of the latest-month used-cap fraction (the paper's Fig 10).
    pub fn used_fraction_ecdf(&self) -> Ecdf {
        Ecdf::new(self.users.iter().map(|u| u.latest_used_fraction()).collect())
    }

    /// Mean free volume per user in the latest month, bytes (the
    /// paper's "on average … 20 MB per device per day" ≈ 600 MB/month).
    pub fn mean_free_bytes(&self) -> f64 {
        let total: f64 =
            self.users.iter().map(|u| u.monthly_free_bytes().last().copied().unwrap_or(0.0)).sum();
        total / self.users.len().max(1) as f64
    }

    /// Mean *used* volume per user in the latest month, bytes (the
    /// existing cellular load in the Fig 11c adoption analysis).
    pub fn mean_used_bytes(&self) -> f64 {
        let total: f64 =
            self.users.iter().map(|u| u.monthly_used_bytes.last().copied().unwrap_or(0.0)).sum();
        total / self.users.len().max(1) as f64
    }

    /// Per-user free-capacity series (input to the allowance estimator).
    pub fn free_series(&self) -> Vec<Vec<f64>> {
        self.users.iter().map(|u| u.monthly_free_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> MnoTrace {
        MnoTrace::generate(MnoConfig { n_users: 10_000, ..MnoConfig::default() })
    }

    #[test]
    fn fig10_quantiles_match_paper() {
        let ecdf = trace().used_fraction_ecdf();
        // "40% of customers use less than 10% of their cap."
        let p10 = ecdf.eval(0.10);
        assert!((p10 - 0.40).abs() < 0.05, "P(frac<=0.1) = {p10}");
        // "75% of customers use less than 50% of the cap."
        let p50 = ecdf.eval(0.50);
        assert!((p50 - 0.75).abs() < 0.05, "P(frac<=0.5) = {p50}");
    }

    #[test]
    fn some_users_exceed_cap() {
        let t = trace();
        let over = t.users.iter().filter(|u| u.latest_used_fraction() > 1.0).count() as f64
            / t.users.len() as f64;
        assert!(over > 0.005 && over < 0.12, "overage fraction {over}");
    }

    #[test]
    fn mean_free_volume_near_600mb() {
        let free = trace().mean_free_bytes();
        // The paper works with ~20 MB/day ≈ 600 MB/month of free volume.
        assert!(free > 400e6 && free < 2.5e9, "mean free volume {free} out of plausible range");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = trace();
        let b = trace();
        assert_eq!(a.users[17], b.users[17]);
        assert_eq!(a.users.len(), b.users.len());
    }

    #[test]
    fn monthly_series_are_correlated_within_user() {
        // A user's months should hover around their base fraction —
        // the property the allowance estimator relies on.
        let t = trace();
        let mut high_cv = 0;
        for u in t.users.iter().take(500) {
            let mean = u.monthly_used_bytes.iter().sum::<f64>() / u.monthly_used_bytes.len() as f64;
            if mean <= 0.0 {
                continue;
            }
            let var = u.monthly_used_bytes.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                / (u.monthly_used_bytes.len() - 1) as f64;
            if var.sqrt() / mean > 0.6 {
                high_cv += 1;
            }
        }
        assert!(high_cv < 25, "too many wildly unstable users: {high_cv}");
    }

    #[test]
    fn free_series_shape() {
        let t = MnoTrace::generate(MnoConfig { n_users: 10, n_months: 7, ..MnoConfig::default() });
        let fs = t.free_series();
        assert_eq!(fs.len(), 10);
        assert!(fs.iter().all(|s| s.len() == 7));
        assert!(fs.iter().flatten().all(|&f| f >= 0.0));
    }
}
