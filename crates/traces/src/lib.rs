//! # threegol-traces
//!
//! Synthetic equivalents of the datasets the 3GOL paper analyzes
//! (Table 1), plus the trace-driven analyses of §6.
//!
//! | paper dataset | module | what is matched |
//! |---|---|---|
//! | "3G web traffic" (diurnal mobile load) | [`diurnal`] | normalized 24 h shapes of Fig 1, offset mobile/wired peaks |
//! | "MNO" (per-user monthly demand, ~1 M users) | [`mno`] | cap tiers; the Fig 10 usage-fraction CDF (40 % of users < 10 % of cap, 75 % < 50 %); month-to-month stability for the allowance estimator |
//! | "DSLAM" (flow records, 18 000 DSL lines, 24 h) | [`dslam`] | per-user daily video counts (mean 14.12 / median 6 / std 30.13 — an exact lognormal fit), 68 % of users with ≥ 1 video, ~50 MB mean video size, diurnal request times |
//! | "Handset experiments" | `threegol-measure` | the §3 active-measurement campaigns |
//!
//! [`analysis`] implements the §6 computations over these traces:
//! budgeted video acceleration (Fig 11a), onloaded cellular load in
//! 5-minute bins against backhaul capacity (Fig 11b), and the relative
//! traffic increase as a function of 3GOL adoption (Fig 11c).

pub mod analysis;
pub mod diurnal;
pub mod dslam;
pub mod mno;
pub mod scenario;

pub use diurnal::{mobile_diurnal_load, wired_diurnal_load};
pub use dslam::{DslamTrace, DslamTraceConfig, UserStream, VideoRequest};
pub use mno::{MnoConfig, MnoTrace, UserBilling};
pub use scenario::{
    device_free_history, home_day, HomeEvent, ScenarioConfig, ScheduledEvent, DEFAULT_SCENARIO_SEED,
};
