//! The canonical diurnal load profiles of the paper's Fig 1.
//!
//! Both curves are normalized traffic volume per hour. The load-bearing
//! facts the paper uses are (a) the cellular network has deep off-peak
//! valleys ("the cellular network is not constantly loaded") and (b)
//! the mobile and wired peaks are *not aligned*, so 3GOL demand (wired-
//! shaped) superimposes favourably on existing cellular load.

use threegol_simnet::capacity::DiurnalProfile;

/// Normalized mobile-network data-traffic profile (Fig 1, "mobile"):
/// quiet 03:00–06:00, climbing through the working day, peak
/// around 19:00.
pub fn mobile_diurnal_load() -> DiurnalProfile {
    DiurnalProfile::new([
        0.52, 0.40, 0.30, 0.22, 0.20, 0.22, // 00–05
        0.28, 0.38, 0.50, 0.60, 0.66, 0.72, // 06–11
        0.78, 0.80, 0.78, 0.76, 0.80, 0.88, // 12–17
        0.96, 1.00, 0.98, 0.92, 0.80, 0.66, // 18–23
    ])
}

/// Normalized wired (DSLAM) traffic profile (Fig 1, "wired"):
/// evening-heavy with a later peak (21:00–22:00) than mobile.
pub fn wired_diurnal_load() -> DiurnalProfile {
    DiurnalProfile::new([
        0.55, 0.38, 0.25, 0.18, 0.15, 0.16, // 00–05
        0.20, 0.26, 0.32, 0.36, 0.40, 0.44, // 06–11
        0.48, 0.50, 0.50, 0.52, 0.56, 0.60, // 12–17
        0.66, 0.74, 0.86, 1.00, 0.98, 0.80, // 18–23
    ])
}

/// The Fig 1 series: `(hour, mobile, wired)` normalized to peak 1.
pub fn fig1_series() -> Vec<(usize, f64, f64)> {
    let m = mobile_diurnal_load().normalized_peak();
    let w = wired_diurnal_load().normalized_peak();
    (0..24).map(|h| (h, m.at_hour(h as f64), w.at_hour(h as f64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_are_offset() {
        let mobile = mobile_diurnal_load().peak_hour();
        let wired = wired_diurnal_load().peak_hour();
        assert_ne!(mobile, wired, "Fig 1's key observation");
        assert!((18..=21).contains(&mobile));
        assert!((20..=23).contains(&wired));
    }

    #[test]
    fn mobile_has_deep_night_valley() {
        let m = mobile_diurnal_load().normalized_peak();
        assert!(m.at_hour(4.0) < 0.25);
        assert!(m.at_hour(19.0) >= 0.99);
    }

    #[test]
    fn fig1_series_is_normalized() {
        let s = fig1_series();
        assert_eq!(s.len(), 24);
        let max_m = s.iter().map(|&(_, m, _)| m).fold(0.0, f64::max);
        let max_w = s.iter().map(|&(_, _, w)| w).fold(0.0, f64::max);
        assert!((max_m - 1.0).abs() < 1e-12);
        assert!((max_w - 1.0).abs() < 1e-12);
    }
}
