//! Per-home multi-day scenario streams — the trace layer of the
//! scenario engine (ROADMAP "scenario engine" item, DESIGN.md §14).
//!
//! A scenario is a deterministic schedule of VoD sessions, photo-upload
//! batches and device churn for ONE home over simulated days, generated
//! lazily from `(seed, home, day)` — no fleet-wide trace is ever
//! materialized, so a million-home fleet streams these at O(own events)
//! per home exactly like [`crate::dslam::UserStream`] does for DSLAM
//! subscribers. Session times follow the wired diurnal curve of Fig 1
//! (the same hour-draw scheme as the DSLAM generator); churn windows
//! model phones leaving the home Wi-Fi during the working day.
//!
//! [`device_free_history`] is the companion series for the live
//! §6 allowance loop: the month-by-month free cellular capacity of one
//! device, prefix-stable in length so the live estimator can extend the
//! window at each simulated month boundary while the offline
//! `threegol-caps` backtest replays the identical numbers.

use threegol_simnet::dist::mix_seed;
use threegol_simnet::SimRng;

use crate::diurnal::wired_diurnal_load;
use crate::dslam::diurnal_hour;

/// Default seed of the traced scenario (`fleet --scenario week`).
pub const DEFAULT_SCENARIO_SEED: u64 = 0x3601;

/// Knobs of the per-home scenario generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Fleet-level seed; every draw mixes it with home/day/device.
    pub seed: u64,
    /// Median daily VoD sessions per home (lognormal, like the DSLAM
    /// per-user counts but at household granularity).
    pub sessions_median: f64,
    /// Lognormal sigma of the daily session count.
    pub sessions_sigma: f64,
    /// Hard cap on sessions per day (bounds the lognormal tail so one
    /// pathological home cannot dominate a fleet chunk's wall clock).
    pub max_daily_sessions: usize,
    /// Chance a day has a photo-upload batch.
    pub upload_chance: f64,
    /// Max photos per upload batch (drawn uniformly in `1..=max`).
    pub max_photos: usize,
    /// Chance a given device spends a window of the day away from the
    /// home Wi-Fi (churn: leave in the morning, rejoin hours later).
    pub leave_chance: f64,
    /// Months of free-capacity history the allowance estimator is
    /// seeded with before day 0.
    pub history_months: usize,
    /// Mean monthly free cellular capacity per device, bytes.
    pub free_mean_bytes: f64,
    /// Relative spread of the per-device mean (device heterogeneity).
    pub free_spread: f64,
    /// Relative month-to-month wobble around a device's own mean.
    pub free_wobble: f64,
}

impl ScenarioConfig {
    /// The paper-flavored default: §6 magnitudes (τ-month histories,
    /// tens of MB of monthly free capacity) scaled to the prototype's
    /// session sizes so daily allowances and daily onload are the same
    /// order — quota exhaustion happens, but not every day.
    pub fn paper(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            sessions_median: 3.0,
            sessions_sigma: 0.8,
            max_daily_sessions: 10,
            upload_chance: 0.7,
            max_photos: 6,
            leave_chance: 0.35,
            history_months: 6,
            free_mean_bytes: 45e6,
            free_spread: 0.35,
            free_wobble: 0.12,
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::paper(DEFAULT_SCENARIO_SEED)
    }
}

/// What happens at a scheduled point of a home's day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeEvent {
    /// A VoD viewing session (HLS prebuffer through the splitting proxy).
    Vod,
    /// A photo-upload batch of `photos` photos.
    Upload {
        /// Photos in the batch.
        photos: usize,
    },
    /// Device `device` leaves the home Wi-Fi (withdraws its 3G path).
    Leave {
        /// Home-local device index.
        device: usize,
    },
    /// Device `device` rejoins the home Wi-Fi.
    Join {
        /// Home-local device index.
        device: usize,
    },
}

/// An event with its time of day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledEvent {
    /// Seconds since the day's local midnight, in `[0, 86400)`.
    pub time_secs: f64,
    /// The event.
    pub event: HomeEvent,
}

/// Generate one home's schedule for one day: VoD sessions and an
/// optional upload batch on the wired diurnal curve, plus per-device
/// leave/rejoin churn windows. Sorted by time (stably, so the draw
/// order breaks ties deterministically). Pure in `(config, home,
/// devices, day)`.
pub fn home_day(
    config: &ScenarioConfig,
    home: u32,
    devices: usize,
    day: u32,
) -> Vec<ScheduledEvent> {
    let mut rng = SimRng::seed_from_u64(mix_seed(mix_seed(config.seed, home as u64), day as u64));
    let weights = *wired_diurnal_load().normalized_sum().weights();
    let mut events = Vec::new();
    // VoD sessions: lognormal count (a home can have quiet days), each
    // at a diurnal hour, uniform within the hour.
    let sessions = (rng.lognormal(config.sessions_median.ln(), config.sessions_sigma).round()
        as usize)
        .min(config.max_daily_sessions);
    for _ in 0..sessions {
        let hour = diurnal_hour(&mut rng, &weights);
        let time_secs = (hour as f64 + rng.uniform()) * 3600.0;
        events.push(ScheduledEvent { time_secs, event: HomeEvent::Vod });
    }
    // At most one upload batch per day, also diurnally placed.
    if rng.chance(config.upload_chance) {
        let photos = 1 + rng.index(config.max_photos);
        let hour = diurnal_hour(&mut rng, &weights);
        let time_secs = (hour as f64 + rng.uniform()) * 3600.0;
        events.push(ScheduledEvent { time_secs, event: HomeEvent::Upload { photos } });
    }
    // Churn: each device may spend a working-day window off the home
    // Wi-Fi (leave 08:00–17:00, return 1–6 h later, capped before
    // midnight so every day starts with the full device set).
    for device in 0..devices {
        if rng.chance(config.leave_chance) {
            let leave_h = 8.0 + rng.uniform() * 9.0;
            let span_h = 1.0 + rng.uniform() * 6.0;
            let join_h = (leave_h + span_h).min(23.9);
            events.push(ScheduledEvent {
                time_secs: leave_h * 3600.0,
                event: HomeEvent::Leave { device },
            });
            events.push(ScheduledEvent {
                time_secs: join_h * 3600.0,
                event: HomeEvent::Join { device },
            });
        }
    }
    events.sort_by(|a, b| a.time_secs.total_cmp(&b.time_secs));
    events
}

/// Month-by-month free cellular capacity of one device, bytes: a
/// per-device lognormal mean (device heterogeneity) with normal
/// month-to-month wobble, clamped non-negative. Prefix-stable: asking
/// for more months extends the same sequence, so the live allowance
/// loop (which slides its τ-window across month boundaries) and the
/// offline backtest read identical numbers.
pub fn device_free_history(
    config: &ScenarioConfig,
    home: u32,
    device: usize,
    months: usize,
) -> Vec<f64> {
    // A distinct salt stream from `home_day`: device indices are small
    // like day indices, so fold in a tag to keep the streams disjoint.
    if config.free_mean_bytes <= 0.0 {
        // A population with no free capacity at all (starvation tests):
        // the lognormal fit is undefined, the answer is plainly zero.
        return vec![0.0; months];
    }
    let mut rng = SimRng::seed_from_u64(mix_seed(
        mix_seed(config.seed, 0xF9EE_CAB5 ^ home as u64),
        device as u64,
    ));
    let mean =
        rng.lognormal_mean_sd(config.free_mean_bytes, config.free_spread * config.free_mean_bytes);
    (0..months).map(|_| (mean * (1.0 + rng.normal(0.0, config.free_wobble))).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_day_is_deterministic_and_sorted() {
        let config = ScenarioConfig::default();
        for home in [0u32, 7, 199] {
            for day in 0..4u32 {
                let a = home_day(&config, home, 3, day);
                let b = home_day(&config, home, 3, day);
                assert_eq!(a, b);
                assert!(a.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
                assert!(a.iter().all(|e| (0.0..86_400.0).contains(&e.time_secs)));
            }
        }
    }

    #[test]
    fn days_and_homes_differ() {
        let config = ScenarioConfig::default();
        let a = home_day(&config, 3, 2, 0);
        let b = home_day(&config, 3, 2, 1);
        let c = home_day(&config, 4, 2, 0);
        assert!(a != b || a != c, "distinct (home, day) should draw distinct schedules");
    }

    #[test]
    fn churn_windows_pair_up_in_order() {
        let config = ScenarioConfig { leave_chance: 1.0, ..ScenarioConfig::default() };
        let events = home_day(&config, 11, 4, 2);
        for device in 0..4 {
            let leave = events
                .iter()
                .position(|e| e.event == HomeEvent::Leave { device })
                .expect("leave scheduled");
            let join = events
                .iter()
                .position(|e| e.event == HomeEvent::Join { device })
                .expect("join scheduled");
            assert!(leave < join, "device {device} rejoins after leaving");
            assert!(events[join].time_secs < 86_400.0);
        }
    }

    #[test]
    fn sessions_follow_the_evening_peak() {
        let config = ScenarioConfig::default();
        let mut evening = 0usize;
        let mut night = 0usize;
        for home in 0..300u32 {
            for day in 0..3u32 {
                for e in home_day(&config, home, 2, day) {
                    if matches!(e.event, HomeEvent::Vod | HomeEvent::Upload { .. }) {
                        let h = e.time_secs / 3600.0;
                        if (19.0..23.0).contains(&h) {
                            evening += 1;
                        } else if (2.0..6.0).contains(&h) {
                            night += 1;
                        }
                    }
                }
            }
        }
        assert!(evening > night * 3, "evening {evening} night {night}");
    }

    #[test]
    fn free_history_is_prefix_stable_and_nonnegative() {
        let config = ScenarioConfig::default();
        let short = device_free_history(&config, 42, 1, 6);
        let long = device_free_history(&config, 42, 1, 10);
        assert_eq!(short.len(), 6);
        assert_eq!(long.len(), 10);
        for (a, b) in short.iter().zip(long.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "longer history must extend the same series");
        }
        assert!(long.iter().all(|&f| f >= 0.0));
    }

    #[test]
    fn free_histories_have_paper_magnitudes() {
        let config = ScenarioConfig::default();
        let mut means = Vec::new();
        for home in 0..200u32 {
            for device in 0..2 {
                let h = device_free_history(&config, home, device, 6);
                means.push(h.iter().sum::<f64>() / h.len() as f64);
            }
        }
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (grand / config.free_mean_bytes - 1.0).abs() < 0.25,
            "grand mean {grand:.0} vs configured {:.0}",
            config.free_mean_bytes
        );
        // Device heterogeneity: spread across devices is real.
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi > 2.0 * lo, "device means should spread ({lo:.0}..{hi:.0})");
    }
}
