//! The trace-driven analyses of §6, feeding Figs 11a–c.
//!
//! All three take the synthetic DSLAM/MNO traces and a simple fluid
//! transfer model: a video of `size` bytes downloads over ADSL at
//! `adsl_bps` assisted by an aggregate 3G bandwidth `g3_bps`; the
//! onloaded share is throttled by the remaining daily 3GOL budget.

use crate::diurnal::{mobile_diurnal_load, wired_diurnal_load};
use crate::dslam::DslamTrace;

/// Transfer-model parameters for the budgeted analyses.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BudgetModel {
    /// Subscriber ADSL downlink, bits/s (paper: 3 Mbit/s).
    pub adsl_bps: f64,
    /// Aggregate 3G bandwidth of the household's devices, bits/s
    /// (paper: two HSPA+ devices, ~2.35 Mbit/s each).
    pub g3_bps: f64,
    /// Daily 3GOL budget for the household, bytes (paper: 2 × 20 MB).
    pub daily_budget_bytes: f64,
}

impl BudgetModel {
    /// The paper's Fig 11 configuration: 3 Mbit/s ADSL, two HSPA+
    /// devices, 40 MB/day.
    pub fn paper() -> BudgetModel {
        BudgetModel { adsl_bps: 3e6, g3_bps: 2.0 * 2.35e6, daily_budget_bytes: 40e6 }
    }

    /// Bytes onloaded for one video of `size_bytes` given the remaining
    /// budget: the parallel-optimal 3G share, truncated by the budget.
    pub fn onload_bytes(&self, size_bytes: f64, budget_remaining: f64) -> f64 {
        let share = self.g3_bps / (self.g3_bps + self.adsl_bps);
        (size_bytes * share).min(budget_remaining).max(0.0)
    }

    /// Download latency of one video when `onloaded` bytes go over 3G
    /// and the rest over ADSL, both in parallel.
    pub fn latency_secs(&self, size_bytes: f64, onloaded: f64) -> f64 {
        let adsl_part = (size_bytes - onloaded).max(0.0) * 8.0 / self.adsl_bps;
        let g3_part = if onloaded > 0.0 { onloaded * 8.0 / self.g3_bps } else { 0.0 };
        adsl_part.max(g3_part)
    }

    /// DSL-only latency of one video.
    pub fn dsl_latency_secs(&self, size_bytes: f64) -> f64 {
        size_bytes * 8.0 / self.adsl_bps
    }
}

/// Fig 11a: per-user speedup `DSL latency / 3GOL latency` over the
/// day's videos, with the daily budget applied in request order.
/// Returns one ratio per video user.
pub fn budgeted_speedup_per_user(trace: &DslamTrace, model: &BudgetModel) -> Vec<f64> {
    let mut ratios = Vec::new();
    for (_, requests) in trace.by_user() {
        let mut budget = model.daily_budget_bytes;
        let mut dsl_total = 0.0;
        let mut gol_total = 0.0;
        for r in &requests {
            dsl_total += model.dsl_latency_secs(r.size_bytes);
            let o = model.onload_bytes(r.size_bytes, budget);
            budget -= o;
            gol_total += model.latency_secs(r.size_bytes, o);
        }
        if gol_total > 0.0 {
            ratios.push(dsl_total / gol_total);
        }
    }
    ratios
}

/// Result of the Fig 11b load computation.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLoad {
    /// Onloaded traffic per 5-minute bin, bits/s, under the daily budget.
    pub capped_bps: Vec<f64>,
    /// Onloaded traffic per 5-minute bin, bits/s, with no budget.
    pub uncapped_bps: Vec<f64>,
    /// The covering cellular backhaul capacity, bits/s (paper: two
    /// towers × 40 Mbit/s).
    pub backhaul_bps: f64,
    /// Mean onloaded volume per video user per day under caps, bytes
    /// (the paper reports 29.78 MB).
    pub mean_onloaded_per_user_bytes: f64,
}

/// Minimum video size worth accelerating (paper: > 750 KB, "more than
/// 2 seconds on DSL").
pub const MIN_BOOST_BYTES: f64 = 750e3;

/// Fig 11b: traffic onloaded onto the cellular network in 5-minute
/// bins. Capped mode accelerates each user's qualifying videos until
/// the daily budget runs out; uncapped mode accelerates everything.
pub fn cell_load(trace: &DslamTrace, model: &BudgetModel, backhaul_bps: f64) -> CellLoad {
    let mut capped = vec![0.0_f64; 288];
    let mut uncapped = vec![0.0_f64; 288];
    let mut onloaded_total = 0.0;
    let mut users = 0usize;
    for (_, requests) in trace.by_user() {
        users += 1;
        let mut budget = model.daily_budget_bytes;
        for r in &requests {
            if r.size_bytes < MIN_BOOST_BYTES {
                continue;
            }
            let bin = ((r.time_secs / 300.0).floor() as usize).min(287);
            let unlimited = model.onload_bytes(r.size_bytes, f64::INFINITY);
            uncapped[bin] += unlimited;
            let o = model.onload_bytes(r.size_bytes, budget);
            budget -= o;
            capped[bin] += o;
            onloaded_total += o;
        }
    }
    // bytes per 300 s bin → bits/s
    let to_bps = |v: Vec<f64>| v.into_iter().map(|b| b * 8.0 / 300.0).collect();
    CellLoad {
        capped_bps: to_bps(capped),
        uncapped_bps: to_bps(uncapped),
        backhaul_bps,
        mean_onloaded_per_user_bytes: onloaded_total / users.max(1) as f64,
    }
}

/// One point of the Fig 11c adoption analysis.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct AdoptionPoint {
    /// Fraction of 3G subscribers adopting 3GOL.
    pub adoption: f64,
    /// Relative increase of total daily 3G traffic.
    pub total_increase: f64,
    /// Relative increase of 3G traffic during the mobile peak hour.
    pub peak_increase: f64,
}

/// Fig 11c: relative 3G traffic increase as a function of adoption.
///
/// `mean_daily_used_bytes` is the average existing 3G usage per
/// subscriber per day (from the MNO trace); each adopter adds
/// `daily_budget_bytes` of 3GOL traffic, shaped like the *wired*
/// diurnal profile, while existing traffic follows the mobile profile.
pub fn adoption_increase(
    mean_daily_used_bytes: f64,
    daily_budget_bytes: f64,
    fractions: &[f64],
) -> Vec<AdoptionPoint> {
    assert!(mean_daily_used_bytes > 0.0);
    let mobile = mobile_diurnal_load().normalized_sum();
    let wired = wired_diurnal_load().normalized_sum();
    let peak_hour = mobile_diurnal_load().peak_hour();
    let mobile_peak_share = mobile.weights()[peak_hour];
    let wired_at_peak_share = wired.weights()[peak_hour];
    fractions
        .iter()
        .map(|&f| {
            let total = f * daily_budget_bytes / mean_daily_used_bytes;
            let peak = f * daily_budget_bytes * wired_at_peak_share
                / (mean_daily_used_bytes * mobile_peak_share);
            AdoptionPoint { adoption: f, total_increase: total, peak_increase: peak }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dslam::DslamTraceConfig;
    use threegol_simnet::stats::Ecdf;

    fn trace() -> DslamTrace {
        DslamTrace::generate(DslamTraceConfig { n_users: 3000, ..DslamTraceConfig::default() })
    }

    #[test]
    fn onload_respects_budget_and_share() {
        let m = BudgetModel::paper();
        let share = m.g3_bps / (m.g3_bps + m.adsl_bps);
        assert!((m.onload_bytes(10e6, f64::INFINITY) - 10e6 * share).abs() < 1.0);
        assert_eq!(m.onload_bytes(100e6, 5e6), 5e6);
        assert_eq!(m.onload_bytes(100e6, 0.0), 0.0);
    }

    #[test]
    fn latency_improves_with_onloading() {
        let m = BudgetModel::paper();
        let size = 50e6;
        let dsl = m.dsl_latency_secs(size);
        let o = m.onload_bytes(size, f64::INFINITY);
        let gol = m.latency_secs(size, o);
        // Optimal split: latency ratio equals capacity ratio.
        let expect = dsl / (1.0 + m.g3_bps / m.adsl_bps);
        assert!((gol - expect).abs() / expect < 1e-9);
        assert!(gol < dsl);
    }

    #[test]
    fn fig11a_speedups_match_paper_shape() {
        let ratios = budgeted_speedup_per_user(&trace(), &BudgetModel::paper());
        let ecdf = Ecdf::new(ratios);
        // "50% of the users can see at least 20% speedup."
        let at_least_20 = ecdf.exceed(1.2);
        assert!(at_least_20 >= 0.40, "P(speedup >= 1.2) = {at_least_20}");
        // "5% of the users can see a speedup of 2" (roughly).
        let at_least_2 = ecdf.exceed(2.0);
        assert!(at_least_2 > 0.005 && at_least_2 < 0.30, "P(>=2.0) = {at_least_2}");
        // Ratios are >= 1 (3GOL never slower) and bounded by the
        // capacity ratio 1 + g3/adsl ≈ 2.57 (Fig 11a's x-range tops
        // out near 2.6).
        assert!(ecdf.quantile(0.0) >= 1.0 - 1e-9);
        assert!(ecdf.quantile(1.0) <= 2.6 + 1e-9);
    }

    #[test]
    fn fig11b_caps_bound_the_load() {
        let t = trace();
        let load = cell_load(&t, &BudgetModel::paper(), 80e6);
        assert_eq!(load.capped_bps.len(), 288);
        // Capped load never exceeds uncapped.
        for (c, u) in load.capped_bps.iter().zip(&load.uncapped_bps) {
            assert!(c <= u);
        }
        // Uncapped load overloads the backhaul at peak; capped stays
        // in the same order of magnitude as the backhaul.
        let peak_uncapped = load.uncapped_bps.iter().cloned().fold(0.0, f64::max);
        assert!(peak_uncapped > load.backhaul_bps, "peak uncapped {peak_uncapped}");
        // Paper: "on average, a user would onload 29.78 MB per day"
        // (two devices, caps respected).
        let mb = load.mean_onloaded_per_user_bytes / 1e6;
        assert!((mb - 29.78).abs() < 8.0, "mean onloaded {mb} MB");
    }

    #[test]
    fn fig11c_adoption_scaling() {
        let pts = adoption_increase(20e6, 20e6, &[0.0, 0.25, 0.5, 1.0]);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].total_increase, 0.0);
        // Full adoption with budget == existing usage doubles traffic
        // (the paper's "increase in traffic is around 100%").
        assert!((pts[3].total_increase - 1.0).abs() < 1e-9);
        // Linear in adoption.
        assert!((pts[1].total_increase * 2.0 - pts[2].total_increase).abs() < 1e-12);
        // Peak increase below total increase (offset peaks), but close.
        for p in &pts[1..] {
            assert!(p.peak_increase < p.total_increase);
            assert!(p.peak_increase > 0.5 * p.total_increase);
        }
    }
}
