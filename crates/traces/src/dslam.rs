//! Synthetic DSLAM flow trace (paper Table 1: "flow level information
//! for all subscribers connected to one DSLAM in a major European
//! city", 18 000 DSL lines, 24 h, April 2011, 3 Mbit/s ADSL).
//!
//! The §6 analyses use three marginals, all reported in the paper and
//! matched here:
//!
//! * 68 % of subscribers request at least one video in the day;
//! * among them, the daily video count has mean 14.12, median 6 and
//!   std 30.13 — which is an (exact) lognormal fit with
//!   `μ = ln 6, σ ≈ 1.308`;
//! * video sizes average ~50 MB (the paper's YouTube reference), with
//!   a heavy right tail; request times follow the wired diurnal curve.

use threegol_simnet::dist::mix_seed;
use threegol_simnet::SimRng;

use crate::diurnal::wired_diurnal_load;

/// Configuration of the DSLAM trace generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DslamTraceConfig {
    /// Number of DSL subscribers behind the DSLAM (paper: 18 000).
    pub n_users: usize,
    /// Fraction of subscribers with at least one video (paper: 0.68).
    pub video_user_fraction: f64,
    /// Median daily videos among video users (paper: 6).
    pub videos_median: f64,
    /// Lognormal sigma of the daily video count (1.308 reproduces the
    /// paper's mean 14.12 and std 30.13 together with the median).
    pub videos_sigma: f64,
    /// Mean video size, bytes (paper/YouTube: ~50 MB).
    pub video_size_mean_bytes: f64,
    /// Std of video size, bytes.
    pub video_size_sd_bytes: f64,
    /// ADSL downlink of the subscribers, bits/s (paper: 3 Mbit/s).
    pub adsl_down_bps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DslamTraceConfig {
    fn default() -> Self {
        DslamTraceConfig {
            n_users: 18_000,
            video_user_fraction: 0.68,
            videos_median: 6.0,
            videos_sigma: 1.308,
            video_size_mean_bytes: 50e6,
            video_size_sd_bytes: 45e6,
            adsl_down_bps: 3e6,
            seed: 0xD51A,
        }
    }
}

/// One video request in the trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VideoRequest {
    /// Subscriber id.
    pub user_id: u32,
    /// Request time, seconds since midnight.
    pub time_secs: f64,
    /// Size of the requested video file, bytes.
    pub size_bytes: f64,
}

/// A generated 24-hour DSLAM trace.
#[derive(Debug, Clone)]
pub struct DslamTrace {
    /// All video requests, sorted by time.
    pub requests: Vec<VideoRequest>,
    /// The configuration that produced the trace.
    pub config: DslamTraceConfig,
}

/// Draw an hour of day from 24 normalized weights: one uniform draw,
/// cumulative subtraction — the exact scheme [`DslamTrace::generate`]
/// has always used, shared so the scenario generator's diurnal draws
/// match the DSLAM trace's bit for bit.
pub(crate) fn diurnal_hour(rng: &mut SimRng, weights: &[f64; 24]) -> usize {
    let mut pick = rng.uniform();
    let mut hour = 23usize;
    for (h, w) in weights.iter().enumerate() {
        if pick <= *w {
            hour = h;
            break;
        }
        pick -= *w;
    }
    hour
}

/// A lazily generated per-user request stream: the same draws, in the
/// same order, as the user's slice of [`DslamTrace::generate`] —
/// without materializing anyone else's requests. Seeded purely from
/// `(config.seed, user)`, so a home can stream its own subscriber's
/// day in O(own requests) while the fleet-wide batch stays a thin
/// wrapper that concatenates and sorts these streams.
#[derive(Debug, Clone)]
pub struct UserStream {
    rng: SimRng,
    user: u32,
    remaining: usize,
    hour_weights: [f64; 24],
    size_mean: f64,
    size_sd: f64,
}

impl UserStream {
    /// Start the request stream of one subscriber. A non-video user
    /// (the `1 − video_user_fraction` complement) yields nothing.
    pub fn new(config: &DslamTraceConfig, user: u32) -> UserStream {
        let mut rng = SimRng::seed_from_u64(mix_seed(config.seed, user as u64));
        // Daily video count: lognormal(ln median, sigma), rounded up
        // so every video user has >= 1 video.
        let remaining = if rng.chance(config.video_user_fraction) {
            rng.lognormal(config.videos_median.ln(), config.videos_sigma).round().max(1.0) as usize
        } else {
            0
        };
        UserStream {
            rng,
            user,
            remaining,
            hour_weights: *wired_diurnal_load().normalized_sum().weights(),
            size_mean: config.video_size_mean_bytes,
            size_sd: config.video_size_sd_bytes,
        }
    }

    /// The subscriber id this stream belongs to.
    pub fn user(&self) -> u32 {
        self.user
    }
}

impl Iterator for UserStream {
    type Item = VideoRequest;

    fn next(&mut self) -> Option<VideoRequest> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Hour by the wired diurnal distribution, uniform within.
        let hour = diurnal_hour(&mut self.rng, &self.hour_weights);
        let time_secs = (hour as f64 + self.rng.uniform()) * 3600.0;
        let size_bytes = self.rng.lognormal_mean_sd(self.size_mean, self.size_sd).max(100e3);
        Some(VideoRequest { user_id: self.user, time_secs, size_bytes })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for UserStream {}

impl DslamTrace {
    /// Stream one subscriber's requests without materializing the
    /// fleet-wide trace: `user_stream(&config, uid)` yields exactly the
    /// requests `generate(config)` would attribute to `uid`, in draw
    /// order (unsorted; `generate` sorts globally by time).
    pub fn user_stream(config: &DslamTraceConfig, user: u32) -> UserStream {
        UserStream::new(config, user)
    }

    /// Generate a trace — a thin wrapper concatenating every user's
    /// [`UserStream`] and sorting by request time.
    pub fn generate(config: DslamTraceConfig) -> DslamTrace {
        let mut requests = Vec::new();
        for uid in 0..config.n_users as u32 {
            requests.extend(DslamTrace::user_stream(&config, uid));
        }
        requests.sort_by(|a, b| a.time_secs.total_cmp(&b.time_secs));
        DslamTrace { requests, config }
    }

    /// Number of distinct subscribers with at least one video.
    pub fn video_user_count(&self) -> usize {
        let mut ids: Vec<u32> = self.requests.iter().map(|r| r.user_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Daily video counts per video user.
    pub fn per_user_counts(&self) -> Vec<usize> {
        use std::collections::HashMap;
        let mut m: HashMap<u32, usize> = HashMap::new();
        for r in &self.requests {
            *m.entry(r.user_id).or_insert(0) += 1;
        }
        let mut v: Vec<usize> = m.into_values().collect();
        v.sort_unstable();
        v
    }

    /// Requested bytes per 5-minute bin over the day (288 bins) — the
    /// wired demand curve used by Fig 11b.
    pub fn bytes_per_5min(&self) -> Vec<f64> {
        let mut bins = vec![0.0; 288];
        for r in &self.requests {
            let idx = ((r.time_secs / 300.0).floor() as usize).min(287);
            bins[idx] += r.size_bytes;
        }
        bins
    }

    /// Group requests by user (ascending user id, each user's requests
    /// in time order).
    pub fn by_user(&self) -> Vec<(u32, Vec<VideoRequest>)> {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<u32, Vec<VideoRequest>> = BTreeMap::new();
        for r in &self.requests {
            m.entry(r.user_id).or_default().push(*r);
        }
        m.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_simnet::stats::{median, Summary};

    fn small_trace() -> DslamTrace {
        DslamTrace::generate(DslamTraceConfig { n_users: 4000, ..DslamTraceConfig::default() })
    }

    #[test]
    fn video_user_fraction_matches() {
        let t = small_trace();
        let frac = t.video_user_count() as f64 / t.config.n_users as f64;
        assert!((frac - 0.68).abs() < 0.03, "video-user fraction {frac}");
    }

    #[test]
    fn per_user_counts_match_paper_moments() {
        let t = DslamTrace::generate(DslamTraceConfig {
            n_users: 18_000,
            ..DslamTraceConfig::default()
        });
        let counts: Vec<f64> = t.per_user_counts().iter().map(|&c| c as f64).collect();
        let s = Summary::of(&counts);
        let med = median(&counts);
        // Paper: mean 14.12, median 6, std 30.13.
        assert!((s.mean - 14.12).abs() < 2.0, "mean {}", s.mean);
        assert!((med - 6.0).abs() <= 1.0, "median {med}");
        assert!((s.sd - 30.13).abs() < 10.0, "std {}", s.sd);
    }

    #[test]
    fn video_sizes_average_50mb() {
        let t = small_trace();
        let sizes: Vec<f64> = t.requests.iter().map(|r| r.size_bytes).collect();
        let s = Summary::of(&sizes);
        assert!((s.mean / 50e6 - 1.0).abs() < 0.05, "mean size {}", s.mean);
        assert!(s.min >= 100e3);
    }

    #[test]
    fn requests_are_time_sorted_and_diurnal() {
        let t = small_trace();
        assert!(t.requests.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
        assert!(t.requests.iter().all(|r| (0.0..86_400.0).contains(&r.time_secs)));
        // Evening traffic dominates the night valley.
        let evening =
            t.requests.iter().filter(|r| (19.0..23.0).contains(&(r.time_secs / 3600.0))).count();
        let night =
            t.requests.iter().filter(|r| (2.0..6.0).contains(&(r.time_secs / 3600.0))).count();
        assert!(evening > night * 3, "evening {evening} night {night}");
    }

    #[test]
    fn five_minute_bins_cover_all_bytes() {
        let t = small_trace();
        let total: f64 = t.requests.iter().map(|r| r.size_bytes).sum();
        let binned: f64 = t.bytes_per_5min().iter().sum();
        assert!((total - binned).abs() < 1.0);
        assert_eq!(t.bytes_per_5min().len(), 288);
    }

    #[test]
    fn by_user_groups_consistently() {
        let t = small_trace();
        let grouped = t.by_user();
        assert_eq!(grouped.len(), t.video_user_count());
        let total: usize = grouped.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, t.requests.len());
        for (uid, reqs) in grouped.iter().take(20) {
            assert!(reqs.iter().all(|r| r.user_id == *uid));
            assert!(reqs.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
        }
    }

    #[test]
    fn user_stream_matches_generate_bitwise() {
        let config = DslamTraceConfig { n_users: 512, ..DslamTraceConfig::default() };
        let t = DslamTrace::generate(config.clone());
        let grouped = t.by_user();
        let mut streamed_users = 0usize;
        let mut streamed_total = 0usize;
        for uid in 0..config.n_users as u32 {
            let mut reqs: Vec<VideoRequest> = DslamTrace::user_stream(&config, uid).collect();
            if reqs.is_empty() {
                continue;
            }
            streamed_users += 1;
            streamed_total += reqs.len();
            reqs.sort_by(|a, b| a.time_secs.total_cmp(&b.time_secs));
            let (guid, greqs) =
                grouped.iter().find(|(u, _)| *u == uid).expect("user present in batch trace");
            assert_eq!(*guid, uid);
            // Bitwise equality: the stream replays the exact draws of
            // the batch generator, f64 bit patterns included.
            assert_eq!(reqs.len(), greqs.len(), "user {uid}");
            for (a, b) in reqs.iter().zip(greqs.iter()) {
                assert_eq!(a.time_secs.to_bits(), b.time_secs.to_bits(), "user {uid}");
                assert_eq!(a.size_bytes.to_bits(), b.size_bytes.to_bits(), "user {uid}");
            }
        }
        assert_eq!(streamed_users, grouped.len());
        assert_eq!(streamed_total, t.requests.len());
    }

    #[test]
    fn user_stream_reports_exact_size() {
        let config = DslamTraceConfig::default();
        let s = DslamTrace::user_stream(&config, 7);
        let n = s.len();
        assert_eq!(s.count(), n);
        assert_eq!(DslamTrace::user_stream(&config, 7).user(), 7);
    }

    #[test]
    fn deterministic_generation() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests[3], b.requests[3]);
    }
}
