//! Measurement and evaluation location profiles (paper Tables 2 and 4).
//!
//! A [`LocationProfile`] bundles everything location-specific: the ADSL
//! line speeds, the local cellular deployment (number of visible base
//! stations, provisioning level, signal strength) and calibration
//! factors that reproduce the 3-device aggregate 3G throughputs the
//! paper measured at each location.

use threegol_simnet::capacity::DiurnalProfile;

use crate::consts::signal_to_rate_factor;
use crate::efficiency::EfficiencyCurve;

/// Kind of area a location sits in (drives which diurnal load applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AreaKind {
    /// Densely populated residential area (city centre).
    DenseResidential,
    /// Office district.
    Office,
    /// Residential area in a tourist hotspot.
    Tourist,
    /// Sparsely populated residential suburb.
    Suburban,
}

/// How heavily loaded the local cells are at their busiest hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Provisioning {
    /// Plenty of spare capacity even at peak (paper: "even at peak hour
    /// … the cellular network seems to be well provisioned").
    Well,
    /// Noticeable but moderate peak-hour load.
    Moderate,
    /// Heavily loaded at peak.
    Congested,
}

impl Provisioning {
    /// Fraction of cell capacity consumed by background users at the
    /// diurnal peak.
    pub fn peak_utilization(self) -> f64 {
        match self {
            Provisioning::Well => 0.15,
            Provisioning::Moderate => 0.30,
            Provisioning::Congested => 0.50,
        }
    }
}

pub use threegol_traces::diurnal::{mobile_diurnal_load, wired_diurnal_load};

/// Per-location availability profile: the fraction of nominal cell
/// capacity left over for 3GOL at each hour.
pub fn availability_profile(provisioning: Provisioning) -> DiurnalProfile {
    let load = mobile_diurnal_load().normalized_peak();
    let rho = provisioning.peak_utilization();
    let mut w = [0.0; 24];
    for (h, item) in w.iter_mut().enumerate() {
        *item = 1.0 - rho * load.at_hour(h as f64);
    }
    DiurnalProfile::new(w)
}

/// Everything location-specific about a 3GOL site.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LocationProfile {
    /// Display name, e.g. `"T2-loc1"`.
    pub name: String,
    /// Area kind.
    pub area: AreaKind,
    /// ADSL downlink, bits/s.
    pub adsl_down_bps: f64,
    /// ADSL uplink, bits/s.
    pub adsl_up_bps: f64,
    /// Base stations visible from the home ("devices are associated
    /// with at least two different base stations at all locations").
    pub n_base_stations: usize,
    /// Tourist-hub style sectorized deployment with extra uplink
    /// headroom (paper's Location 3 exceeded the HSUPA single-cell cap).
    pub sectorized: bool,
    /// 3G signal strength at the home, dBm.
    pub signal_dbm: f64,
    /// Peak-hour load of the local cells.
    pub provisioning: Provisioning,
    /// Calibration multiplier on the Table 3 downlink curve.
    pub cell_factor_dl: f64,
    /// Calibration multiplier on the Table 3 uplink curve.
    pub cell_factor_ul: f64,
    /// The paper's measured 3-device 3G throughput `(dl, ul)` in bits/s,
    /// when the location comes from Table 2 (used for comparison output).
    pub paper_3g_3dev_bps: Option<(f64, f64)>,
    /// Hour-of-day at which the paper measured this location (Table 2).
    pub measured_hour: Option<f64>,
}

impl LocationProfile {
    /// Expected aggregate throughput (bps) of `n` devices spread over
    /// this location's base stations at hour `hour`, for the given curve
    /// and calibration factor. Pure mean-field computation (no noise);
    /// used for calibration and sanity checks.
    pub fn expected_aggregate(
        &self,
        curve: &EfficiencyCurve,
        factor: f64,
        n_devices: usize,
        hour: f64,
    ) -> f64 {
        if n_devices == 0 {
            return 0.0;
        }
        let avail = availability_profile(self.provisioning).at_hour(hour);
        let sig = signal_to_rate_factor(self.signal_dbm);
        let counts = split_devices(n_devices, self.n_base_stations);
        let raw: f64 = counts.iter().filter(|&&c| c > 0).map(|&c| curve.aggregate(c)).sum();
        raw * factor * avail * sig
    }

    /// Calibrate `cell_factor_dl`/`cell_factor_ul` so that the expected
    /// 3-device aggregate at `hour` matches the paper-measured targets.
    pub fn calibrate(&mut self, target_dl_bps: f64, target_ul_bps: f64, hour: f64) {
        let dl_curve = EfficiencyCurve::paper_downlink();
        let ul_curve = EfficiencyCurve::paper_uplink();
        let base_dl = self.expected_aggregate(&dl_curve, 1.0, 3, hour);
        let base_ul = self.expected_aggregate(&ul_curve, 1.0, 3, hour);
        assert!(base_dl > 0.0 && base_ul > 0.0);
        self.cell_factor_dl = target_dl_bps / base_dl;
        self.cell_factor_ul = target_ul_bps / base_ul;
        self.paper_3g_3dev_bps = Some((target_dl_bps, target_ul_bps));
        self.measured_hour = Some(hour);
    }

    /// The six measurement locations of the paper's Table 2, calibrated
    /// to the reported DSL and 3-device 3G throughputs.
    #[allow(clippy::type_complexity)] // literal table, one column per Table 2 field
    pub fn paper_table2() -> Vec<LocationProfile> {
        let mbps = 1e6;
        let rows: [(&str, AreaKind, f64, f64, f64, f64, f64, f64, Provisioning, bool); 6] = [
            // name, area, hour, dsl_d, dsl_u, 3g_d, 3g_u, signal, provisioning, sectorized
            (
                "T2-loc1 dense residential (1am)",
                AreaKind::DenseResidential,
                1.0,
                3.44,
                0.30,
                5.73,
                3.58,
                -80.0,
                Provisioning::Well,
                false,
            ),
            (
                "T2-loc2 office at rush hour (4pm)",
                AreaKind::Office,
                16.0,
                4.51,
                0.47,
                2.94,
                1.52,
                -85.0,
                Provisioning::Moderate,
                false,
            ),
            (
                "T2-loc3 tourist hotspot (10pm)",
                AreaKind::Tourist,
                22.0,
                6.72,
                0.84,
                2.08,
                1.29,
                -88.0,
                Provisioning::Congested,
                true,
            ),
            (
                "T2-loc4 suburbs (1am)",
                AreaKind::Suburban,
                1.0,
                2.84,
                0.45,
                4.55,
                2.17,
                -83.0,
                Provisioning::Well,
                false,
            ),
            (
                "T2-loc5 dense residential",
                AreaKind::DenseResidential,
                12.0,
                8.57,
                0.63,
                3.88,
                2.63,
                -82.0,
                Provisioning::Moderate,
                false,
            ),
            (
                "T2-loc6 dense residential (VDSL)",
                AreaKind::DenseResidential,
                12.0,
                55.48,
                11.35,
                2.32,
                1.52,
                -90.0,
                Provisioning::Moderate,
                false,
            ),
        ];
        rows.iter()
            .map(|&(name, area, hour, dsl_d, dsl_u, g_d, g_u, dbm, prov, sect)| {
                let mut p = LocationProfile {
                    name: name.to_string(),
                    area,
                    adsl_down_bps: dsl_d * mbps,
                    adsl_up_bps: dsl_u * mbps,
                    n_base_stations: 2,
                    sectorized: sect,
                    signal_dbm: dbm,
                    provisioning: prov,
                    cell_factor_dl: 1.0,
                    cell_factor_ul: 1.0,
                    paper_3g_3dev_bps: None,
                    measured_hour: None,
                };
                p.calibrate(g_d * mbps, g_u * mbps, hour);
                p
            })
            .collect()
    }

    /// The five residential evaluation locations of Table 4 (where the
    /// prototype was exercised "in the wild"), with the reported ADSL
    /// speeds and 3G signal strengths.
    pub fn paper_table4() -> Vec<LocationProfile> {
        let mbps = 1e6;
        let rows: [(&str, f64, f64, f64); 5] = [
            ("loc1", 6.48, 0.83, -81.0),
            ("loc2", 21.64, 2.77, -95.0),
            ("loc3", 8.67, 0.62, -97.0),
            ("loc4", 6.20, 0.65, -89.0),
            ("loc5", 6.82, 0.58, -89.0),
        ];
        rows.iter()
            .map(|&(name, dsl_d, dsl_u, dbm)| LocationProfile {
                name: name.to_string(),
                area: AreaKind::DenseResidential,
                adsl_down_bps: dsl_d * mbps,
                adsl_up_bps: dsl_u * mbps,
                n_base_stations: 2,
                sectorized: false,
                signal_dbm: dbm,
                provisioning: Provisioning::Moderate,
                // The §5 evaluation reports strong 3G gains at all five
                // locations; the in-the-wild cells were better
                // provisioned than the Table 3 reference cell.
                cell_factor_dl: 1.5,
                cell_factor_ul: 1.5,
                paper_3g_3dev_bps: None,
                measured_hour: None,
            })
            .collect()
    }

    /// A simple well-provisioned reference location (used by examples
    /// and the scheduler-comparison experiment, which ran on a 2 Mbit/s
    /// down / 0.512 Mbit/s up ADSL line at 1 am).
    pub fn reference_2mbps() -> LocationProfile {
        LocationProfile {
            name: "reference 2 Mbps ADSL".to_string(),
            area: AreaKind::DenseResidential,
            adsl_down_bps: 2.0e6,
            adsl_up_bps: 0.512e6,
            n_base_stations: 2,
            sectorized: false,
            signal_dbm: -85.0,
            provisioning: Provisioning::Well,
            cell_factor_dl: 1.25,
            cell_factor_ul: 1.25,
            paper_3g_3dev_bps: None,
            measured_hour: None,
        }
    }
}

/// Distribute `n` devices over `k` base stations, least-loaded first
/// (deterministic round-robin). Returns the per-station counts.
pub fn split_devices(n: usize, k: usize) -> Vec<usize> {
    assert!(k > 0, "need at least one base station");
    let mut counts = vec![0usize; k];
    for i in 0..n {
        counts[i % k] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_balanced() {
        assert_eq!(split_devices(3, 2), vec![2, 1]);
        assert_eq!(split_devices(10, 2), vec![5, 5]);
        assert_eq!(split_devices(1, 3), vec![1, 0, 0]);
        assert_eq!(split_devices(0, 2), vec![0, 0]);
    }

    #[test]
    fn table2_has_six_calibrated_locations() {
        let locs = LocationProfile::paper_table2();
        assert_eq!(locs.len(), 6);
        for l in &locs {
            assert!(
                l.cell_factor_dl > 0.1 && l.cell_factor_dl < 10.0,
                "{}: {}",
                l.name,
                l.cell_factor_dl
            );
            assert!(l.cell_factor_ul > 0.1 && l.cell_factor_ul < 10.0);
            assert!(l.paper_3g_3dev_bps.is_some());
        }
    }

    #[test]
    fn calibration_reproduces_targets() {
        for l in LocationProfile::paper_table2() {
            let (target_dl, target_ul) = l.paper_3g_3dev_bps.unwrap();
            let hour = l.measured_hour.unwrap();
            let dl =
                l.expected_aggregate(&EfficiencyCurve::paper_downlink(), l.cell_factor_dl, 3, hour);
            let ul =
                l.expected_aggregate(&EfficiencyCurve::paper_uplink(), l.cell_factor_ul, 3, hour);
            assert!((dl / target_dl - 1.0).abs() < 1e-9, "{}", l.name);
            assert!((ul / target_ul - 1.0).abs() < 1e-9, "{}", l.name);
        }
    }

    #[test]
    fn table4_locations_match_reported_dsl() {
        let locs = LocationProfile::paper_table4();
        assert_eq!(locs.len(), 5);
        assert_eq!(locs[1].adsl_down_bps, 21.64e6); // loc2, fastest
        assert_eq!(locs[3].adsl_down_bps, 6.20e6); // loc4, slowest
    }

    #[test]
    fn availability_dips_at_peak() {
        let a = availability_profile(Provisioning::Congested);
        let night = a.at_hour(4.0);
        let peak = a.at_hour(19.0);
        assert!(night > peak);
        assert!(peak >= 0.5 - 1e-12);
        assert!(night <= 1.0);
    }

    #[test]
    fn diurnal_peaks_are_offset() {
        // The paper's Fig 1 point: mobile and wired peaks do not align.
        let mobile = mobile_diurnal_load().peak_hour();
        let wired = wired_diurnal_load().peak_hour();
        assert_ne!(mobile, wired);
        assert!((18..=22).contains(&mobile));
        assert!((20..=23).contains(&wired));
    }

    #[test]
    fn expected_aggregate_scales_with_devices() {
        let l = &LocationProfile::paper_table2()[0];
        let dl = EfficiencyCurve::paper_downlink();
        let a1 = l.expected_aggregate(&dl, l.cell_factor_dl, 1, 1.0);
        let a3 = l.expected_aggregate(&dl, l.cell_factor_dl, 3, 1.0);
        let a10 = l.expected_aggregate(&dl, l.cell_factor_dl, 10, 1.0);
        assert!(a3 > a1 * 2.0);
        assert!(a10 > a3 * 2.0);
    }
}
