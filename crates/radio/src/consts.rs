//! Radio and network constants taken directly from the paper (§2, §3)
//! and from the UMTS/HSPA specifications the paper cites.

/// HSUPA (E-DCH) uplink channel ceiling, bits/s — "5.76 Mbps ... the
/// maximum capacity for HSUPA" (§3).
pub const HSUPA_MAX_BPS: f64 = 5.76e6;

/// Effective HSDPA (HS-DSCH) downlink cell throughput ceiling, bits/s.
///
/// The paper's Fig 3 shows aggregate downlink up to ~14 Mbit/s across
/// the ≥2 base stations covering a location, i.e. ~7 Mbit/s per cell —
/// consistent with a Category 7/8 HSDPA deployment of the era.
pub const HSDPA_CELL_MAX_BPS: f64 = 7.2e6;

/// Dedicated (non-HSPA) UMTS downlink channel under good radio
/// conditions, bits/s — the solid 360 kbit/s line in Fig 5.
pub const UMTS_DEDICATED_DL_BPS: f64 = 360e3;

/// Dedicated UMTS uplink channel, bits/s — the 64 kbit/s line in Fig 5.
pub const UMTS_DEDICATED_UL_BPS: f64 = 64e3;

/// Typical cell-tower backhaul, bits/s — "40−50 Mbps backhaul" (§2.1).
pub const CELL_BACKHAUL_BPS: f64 = 40e6;

/// Average ADSL downlink speed used in §2.1's back-of-envelope
/// calculation (Netalyzr-reported), bits/s.
pub const ADSL_AVG_DL_BPS: f64 = 6.7e6;

/// 802.11g TCP goodput ceiling on the home LAN, bits/s (§4.1).
pub const WIFI_80211G_GOODPUT_BPS: f64 = 24e6;

/// 802.11n TCP goodput ceiling on the home LAN, bits/s (§4.1).
pub const WIFI_80211N_GOODPUT_BPS: f64 = 110e6;

/// Cell coverage radius assumed in §2.1, meters.
pub const CELL_RADIUS_M: f64 = 200.0;

/// Downtown population density assumed in §2.1, inhabitants per km².
pub const POP_DENSITY_PER_KM2: f64 = 35_000.0;

/// Household size assumed in §2.1.
pub const HOUSEHOLD_SIZE: f64 = 4.0;

/// ADSL penetration assumed in §2.1.
pub const ADSL_PENETRATION: f64 = 0.8;

/// The monthly data-plan cap of the handsets used in §3, bytes.
pub const HANDSET_PLAN_CAP_BYTES: f64 = 10.0 * 1e9;

/// Map a 3G signal strength in dBm to a rate multiplier in `(0, 1]`.
///
/// Table 4 reports −81…−97 dBm across the evaluation locations; we map
/// −75 dBm or better to full rate and degrade linearly to 40 % of the
/// nominal rate at −105 dBm (deep indoor coverage).
pub fn signal_to_rate_factor(dbm: f64) -> f64 {
    let hi = -75.0; // full rate at or above this
    let lo = -105.0; // worst considered coverage
    let floor = 0.4;
    if dbm >= hi {
        1.0
    } else if dbm <= lo {
        floor
    } else {
        floor + (1.0 - floor) * (dbm - lo) / (hi - lo)
    }
}

/// Convert dBm to the Android ASU scale used in Table 4 (`asu = (dbm+113)/2`).
pub fn dbm_to_asu(dbm: f64) -> f64 {
    (dbm + 113.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_mapping_is_monotone_and_bounded() {
        assert_eq!(signal_to_rate_factor(-60.0), 1.0);
        assert_eq!(signal_to_rate_factor(-75.0), 1.0);
        assert_eq!(signal_to_rate_factor(-120.0), 0.4);
        let mid = signal_to_rate_factor(-90.0);
        assert!(mid > 0.4 && mid < 1.0);
        assert!(signal_to_rate_factor(-85.0) > signal_to_rate_factor(-95.0));
    }

    #[test]
    fn asu_matches_table4() {
        // Table 4: loc1 = -81 dBm / 16 ASU.
        assert_eq!(dbm_to_asu(-81.0), 16.0);
        // loc2 = -95 dBm / 9 ASU.
        assert_eq!(dbm_to_asu(-95.0), 9.0);
    }
}
