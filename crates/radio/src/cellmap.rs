//! The city grid: which cell serves which home, at which hour, and
//! how a measured per-cell load becomes next-pass per-phone capacity.
//!
//! The paper's §6 aggregate analysis (Fig 11) asks what a whole city's
//! worth of 3GOL homes does to the shared cells. A [`CellMap`] is the
//! deterministic half of that question: a fixed grid of
//! [`CellSite`]s cycling through the paper's area kinds and
//! provisioning levels, with *weighted* home assignment (dense
//! residential cells serve several times the households of a suburb)
//! and diurnal *hour* assignment proportional to the wired traffic
//! profile of Fig 1 — 3GOL demand is wired-shaped, so most homes run
//! their workload in the DSL evening peak.
//!
//! Both assignments are pure functions of the home index, so a
//! streamed fleet can rebuild them on any worker's stack without
//! shared state, and the coupled fleet digest stays byte-identical for
//! any worker count.
//!
//! The feedback half lives in [`CellMap::phone_share`]: given the
//! [`CellLoad`] a fleet pass measured, it computes each phone's
//! per-hour share of the cell for the *next* pass — nominal rate,
//! scaled by the cell's diurnal availability (background users first,
//! as in [`availability_profile`]), then divided down by the
//! congestion the fleet itself caused. Load rises → shares drop →
//! the greedy scheduler shifts bytes back to ADSL → load falls: the
//! outer fixed-point loop in the bench crate iterates this to
//! convergence.

use threegol_simnet::capacity::DiurnalProfile;
use threegol_traces::diurnal::wired_diurnal_load;

use crate::consts::{
    HSDPA_CELL_MAX_BPS, HSUPA_MAX_BPS, UMTS_DEDICATED_DL_BPS, UMTS_DEDICATED_UL_BPS,
};
use crate::location::{availability_profile, AreaKind, Provisioning};

/// One base station's slice of the city.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSite {
    /// Kind of area the cell covers (drives the default weight).
    pub area: AreaKind,
    /// Background load level (drives the availability profile).
    pub provisioning: Provisioning,
    /// Homes-per-cell weight tier: a weight-4 cell is assigned four
    /// times the homes of a weight-1 cell.
    pub weight: u32,
    /// Shared HSDPA downlink capacity, bits/s.
    pub dl_capacity_bps: f64,
    /// Shared HSUPA uplink capacity, bits/s.
    pub ul_capacity_bps: f64,
}

impl CellSite {
    /// The fraction of this cell's capacity left over for 3GOL at each
    /// hour, after its background users.
    pub fn availability(&self) -> DiurnalProfile {
        availability_profile(self.provisioning)
    }
}

/// The 3GOL demand one fleet pass put on one cell: onloaded bytes per
/// hour, expressed as the mean extra bits/s the cell carried that
/// hour, per direction.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLoad {
    /// The cell.
    pub cell: u32,
    /// Homes attached to the cell.
    pub homes: u64,
    /// Mean extra downlink load by hour of day, bits/s.
    pub dl_bps: [f64; 24],
    /// Mean extra uplink load by hour of day, bits/s.
    pub ul_bps: [f64; 24],
}

impl CellLoad {
    /// An unloaded cell (the first fixed-point pass starts here).
    pub fn empty(cell: u32) -> CellLoad {
        CellLoad { cell, homes: 0, dl_bps: [0.0; 24], ul_bps: [0.0; 24] }
    }

    /// The largest hourly downlink load, bits/s.
    pub fn peak_dl_bps(&self) -> f64 {
        self.dl_bps.iter().cloned().fold(0.0, f64::max)
    }

    /// The largest hourly uplink load, bits/s.
    pub fn peak_ul_bps(&self) -> f64 {
        self.ul_bps.iter().cloned().fold(0.0, f64::max)
    }

    /// The hour with the largest combined load.
    pub fn peak_hour(&self) -> usize {
        (0..24)
            .max_by(|&a, &b| {
                (self.dl_bps[a] + self.ul_bps[a]).total_cmp(&(self.dl_bps[b] + self.ul_bps[b]))
            })
            .unwrap_or(0)
    }
}

/// Golden-ratio multiplier decorrelating a home's hour slot from its
/// cell slot (both are pure functions of the index).
const HOUR_MIX: u32 = 0x9e37_79b1;

/// A deterministic city grid of shared 3G cells.
///
/// ```
/// use threegol_radio::CellMap;
///
/// let city = CellMap::city(8);
/// assert_eq!(city.cells(), 8);
/// // Assignments are pure functions of the home index...
/// assert_eq!(city.cell_of(12345), city.cell_of(12345));
/// assert!(city.cell_of(12345) < 8);
/// assert!(city.hour_of(42) < 24);
/// // ...and dense-residential cells serve more homes than suburbs.
/// let mut homes = vec![0u32; 8];
/// for h in 0..8000 {
///     homes[city.cell_of(h) as usize] += 1;
/// }
/// assert!(homes[0] > 2 * homes[3], "{homes:?}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellMap {
    sites: Vec<CellSite>,
    /// Cumulative site weights: home slot `p` maps to the first site
    /// whose cumulative weight exceeds `p`.
    weight_cum: Vec<u32>,
    /// Cumulative per-mille hour weights from the wired diurnal curve.
    hour_cum: [u32; 24],
}

impl CellMap {
    /// Default homes-per-cell weight tiers by area kind: a dense
    /// residential cell serves 4× the homes of a suburb, office and
    /// tourist cells 2×.
    pub const DEFAULT_TIERS: [u32; 4] = [4, 2, 2, 1];

    /// A city of `cells` cells cycling through the four area kinds
    /// (dense residential, office, tourist, suburban) with the
    /// [`CellMap::DEFAULT_TIERS`] homes-per-cell weights.
    pub fn city(cells: u32) -> CellMap {
        CellMap::city_with_tiers(cells, &Self::DEFAULT_TIERS)
    }

    /// A city of `cells` cells with explicit homes-per-cell weight
    /// tiers: cell `c` covers area kind `c % 4` and gets weight
    /// `tiers[c % tiers.len()]`.
    ///
    /// Provisioning follows the paper's Table 2 sketch: tourist cells
    /// are congested, suburbs well provisioned, the rest moderate.
    /// Tourist cells are sectorized (the paper's Location 3), doubling
    /// their shared capacity.
    pub fn city_with_tiers(cells: u32, tiers: &[u32]) -> CellMap {
        assert!(cells > 0, "a city needs at least one cell");
        assert!(!tiers.is_empty() && tiers.iter().all(|&w| w > 0), "weights must be positive");
        const AREAS: [AreaKind; 4] =
            [AreaKind::DenseResidential, AreaKind::Office, AreaKind::Tourist, AreaKind::Suburban];
        let sites: Vec<CellSite> = (0..cells)
            .map(|c| {
                let area = AREAS[(c % 4) as usize];
                let (provisioning, sectors) = match area {
                    AreaKind::Tourist => (Provisioning::Congested, 2.0),
                    AreaKind::Suburban => (Provisioning::Well, 1.0),
                    _ => (Provisioning::Moderate, 1.0),
                };
                CellSite {
                    area,
                    provisioning,
                    weight: tiers[(c as usize) % tiers.len()],
                    dl_capacity_bps: HSDPA_CELL_MAX_BPS * sectors,
                    ul_capacity_bps: HSUPA_MAX_BPS * sectors,
                }
            })
            .collect();
        CellMap::from_sites(sites)
    }

    /// A city from explicit sites.
    pub fn from_sites(sites: Vec<CellSite>) -> CellMap {
        assert!(!sites.is_empty(), "a city needs at least one cell");
        let mut weight_cum = Vec::with_capacity(sites.len());
        let mut acc = 0u32;
        for site in &sites {
            assert!(site.weight > 0, "cell weights must be positive");
            acc += site.weight;
            weight_cum.push(acc);
        }
        // Hour weights: the wired (DSLAM) diurnal curve in per-mille,
        // so hour assignment is pure integer arithmetic.
        let wired = wired_diurnal_load();
        let mut hour_cum = [0u32; 24];
        let mut acc = 0u32;
        for (h, slot) in hour_cum.iter_mut().enumerate() {
            acc += (wired.weights()[h] * 1000.0).round() as u32;
            *slot = acc;
        }
        CellMap { sites, weight_cum, hour_cum }
    }

    /// Number of cells.
    pub fn cells(&self) -> u32 {
        self.sites.len() as u32
    }

    /// The site of cell `cell`.
    pub fn site(&self, cell: u32) -> &CellSite {
        &self.sites[cell as usize]
    }

    /// The cell serving home `home`: home slots cycle through the
    /// cells proportionally to their weights, so consecutive indices
    /// spread over the whole city and a weight-4 cell sees 4× the
    /// homes of a weight-1 cell. Pure function of the index.
    pub fn cell_of(&self, home: u32) -> u32 {
        let total = *self.weight_cum.last().expect("at least one cell");
        let pos = home % total;
        self.weight_cum.partition_point(|&cum| cum <= pos) as u32
    }

    /// The hour of day home `home` runs its workload at, distributed
    /// over the day proportionally to the wired diurnal traffic curve
    /// (3GOL demand is DSL-shaped: Fig 1). Pure function of the index,
    /// decorrelated from the cell assignment.
    pub fn hour_of(&self, home: u32) -> u8 {
        let total = self.hour_cum[23];
        let pos = home.wrapping_mul(HOUR_MIX) % total;
        self.hour_cum.partition_point(|&cum| cum <= pos) as u8
    }

    /// Each phone's per-hour share of cell `cell` for the next fleet
    /// pass, `(downlink, uplink)` in bits/s, given the 3GOL load the
    /// cell carried in the previous pass.
    ///
    /// The share starts from the nominal per-phone rate scaled by the
    /// hour's availability (background users come first), then shrinks
    /// by the congestion ratio `load / leftover-capacity` — doubling
    /// the fleet's demand on a saturated cell halves everyone's share.
    /// Shares never drop below the dedicated-channel floors (a phone
    /// always gets *a* bearer) and never exceed the leftover capacity.
    pub fn phone_share(
        &self,
        cell: u32,
        nominal_dl_bps: f64,
        nominal_ul_bps: f64,
        load: &CellLoad,
    ) -> ([f64; 24], [f64; 24]) {
        let site = self.site(cell);
        let avail = site.availability();
        let mut dl = [0.0; 24];
        let mut ul = [0.0; 24];
        for h in 0..24 {
            let a = avail.weights()[h];
            let leftover_dl = site.dl_capacity_bps * a;
            let leftover_ul = site.ul_capacity_bps * a;
            dl[h] = (nominal_dl_bps * a / (1.0 + load.dl_bps[h] / leftover_dl))
                .clamp(UMTS_DEDICATED_DL_BPS, leftover_dl);
            ul[h] = (nominal_ul_bps * a / (1.0 + load.ul_bps[h] / leftover_ul))
                .clamp(UMTS_DEDICATED_UL_BPS, leftover_ul);
        }
        (dl, ul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_weight_proportional_and_deterministic() {
        let city = CellMap::city(8);
        let mut homes = [0u32; 8];
        for h in 0..18_000u32 {
            assert_eq!(city.cell_of(h), city.cell_of(h));
            homes[city.cell_of(h) as usize] += 1;
        }
        // Weights cycle 4,2,2,1 over 8 cells → per-cell shares of
        // 18/18k. Dense cells (0 and 4) get 4/18 each; suburbs (3, 7)
        // get 1/18.
        assert_eq!(homes[0], 18_000 * 4 / 18);
        assert_eq!(homes[3], 18_000 / 18);
        assert_eq!(homes[0], homes[4]);
        assert_eq!(homes.iter().sum::<u32>(), 18_000);
    }

    #[test]
    fn hours_follow_the_wired_curve() {
        let city = CellMap::city(4);
        let mut by_hour = [0u32; 24];
        for h in 0..100_000u32 {
            by_hour[city.hour_of(h) as usize] += 1;
        }
        // The wired curve peaks at 21:00 and bottoms out ~04:00; the
        // hour assignment must reproduce that shape.
        let peak = by_hour[21];
        let valley = by_hour[4];
        assert!(peak > 4 * valley, "peak {peak} valley {valley}");
        assert!((18..24).map(|h| by_hour[h]).sum::<u32>() > by_hour.iter().sum::<u32>() / 3);
        // Every hour gets someone.
        assert!(by_hour.iter().all(|&n| n > 0), "{by_hour:?}");
    }

    #[test]
    fn shares_shrink_under_load_and_respect_floors() {
        let city = CellMap::city(8);
        let unloaded = CellLoad::empty(2);
        let (dl0, ul0) = city.phone_share(2, 2e6, 1e6, &unloaded);
        let mut loaded = CellLoad::empty(2);
        loaded.dl_bps = [6e6; 24];
        loaded.ul_bps = [4e6; 24];
        let (dl1, ul1) = city.phone_share(2, 2e6, 1e6, &loaded);
        for h in 0..24 {
            assert!(dl1[h] < dl0[h], "hour {h}: {} !< {}", dl1[h], dl0[h]);
            assert!(ul1[h] < ul0[h]);
            assert!(dl1[h] >= UMTS_DEDICATED_DL_BPS);
            assert!(ul1[h] >= UMTS_DEDICATED_UL_BPS);
            assert!(dl0[h] <= city.site(2).dl_capacity_bps);
        }
        // Unloaded shares still dip at the mobile peak (background
        // users), most on a congested (tourist) cell.
        assert!(dl0[19] < dl0[4]);
    }

    #[test]
    fn congested_cells_give_less_at_peak_than_well_provisioned_ones() {
        let city = CellMap::city(8);
        // Cell 2 is tourist/congested, cell 3 suburban/well.
        let (dl_congested, _) = city.phone_share(2, 2e6, 1e6, &CellLoad::empty(2));
        let (dl_well, _) = city.phone_share(3, 2e6, 1e6, &CellLoad::empty(3));
        assert!(dl_congested[19] < dl_well[19]);
    }

    #[test]
    fn custom_tiers_and_single_cell_cities_work() {
        let flat = CellMap::city_with_tiers(3, &[1]);
        let mut homes = [0u32; 3];
        for h in 0..3000 {
            homes[flat.cell_of(h) as usize] += 1;
        }
        assert_eq!(homes, [1000; 3]);
        let one = CellMap::city(1);
        assert_eq!(one.cell_of(123_456_789), 0);
    }

    #[test]
    fn peak_hour_tracks_the_load() {
        let mut load = CellLoad::empty(0);
        load.dl_bps[21] = 5e6;
        load.ul_bps[21] = 1e6;
        load.dl_bps[4] = 1e6;
        assert_eq!(load.peak_hour(), 21);
        assert_eq!(load.peak_dl_bps(), 5e6);
        assert_eq!(load.peak_ul_bps(), 1e6);
    }
}
