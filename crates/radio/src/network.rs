//! The cellular deployment at a 3GOL location, installed into a
//! `threegol-simnet` [`Simulation`].
//!
//! [`CellularDeployment::install`] creates the shared-channel links
//! (one HSDPA + one HSUPA link per base station, plus a location-level
//! HSUPA noise-rise ceiling). [`InstalledCell::attach`] then associates
//! a [`Device`] with the least-loaded base station, creates its
//! per-device radio links, and refreshes every affected capacity
//! process — per-device efficiency depends on cluster size, so the
//! whole cell's links are re-derived whenever the attachment set
//! changes.

use threegol_simnet::capacity::CapacityProcess;
use threegol_simnet::dist::mix_seed;
use threegol_simnet::{LinkId, SimTime, Simulation};

use crate::basestation::BaseStation;
use crate::consts::signal_to_rate_factor;
use crate::device::Device;
use crate::location::{availability_profile, LocationProfile};
use crate::lte::RadioGeneration;

/// Handle for a device attached to an [`InstalledCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Attachment(usize);

/// Builder that turns a [`LocationProfile`] into simulation links.
#[derive(Debug, Clone)]
pub struct CellularDeployment {
    profile: LocationProfile,
    seed: u64,
    generation: RadioGeneration,
}

struct BsLinks {
    station: BaseStation,
    dl: LinkId,
    ul: LinkId,
    attached: Vec<usize>, // attachment slots
}

struct AttachedDevice {
    device: Device,
    bs: usize,
    dl: LinkId,
    ul: LinkId,
    salt: u64,
    active: bool,
}

/// A cellular deployment installed into a simulation.
pub struct InstalledCell {
    profile: LocationProfile,
    seed: u64,
    generation: RadioGeneration,
    stations: Vec<BsLinks>,
    ul_ceiling: LinkId,
    devices: Vec<AttachedDevice>,
}

impl CellularDeployment {
    /// Create a deployment for `profile`, seeded for reproducibility.
    pub fn new(profile: LocationProfile, seed: u64) -> CellularDeployment {
        assert!(profile.n_base_stations >= 1);
        CellularDeployment { profile, seed, generation: RadioGeneration::Hspa }
    }

    /// Switch the deployment to another radio generation (the paper's
    /// §2.3 LTE outlook).
    pub fn with_generation(mut self, generation: RadioGeneration) -> CellularDeployment {
        self.generation = generation;
        self
    }

    /// The location profile.
    pub fn profile(&self) -> &LocationProfile {
        &self.profile
    }

    /// Install the deployment's links into `sim`.
    pub fn install(&self, sim: &mut Simulation) -> InstalledCell {
        let avail = availability_profile(self.profile.provisioning);
        let signal_factor = signal_to_rate_factor(self.profile.signal_dbm);
        let mut stations = Vec::with_capacity(self.profile.n_base_stations);
        for i in 0..self.profile.n_base_stations {
            let station = BaseStation {
                index: i,
                dl_curve: self.generation.downlink_curve(),
                ul_curve: self.generation.uplink_curve(),
                factor_dl: self.profile.cell_factor_dl,
                factor_ul: self.profile.cell_factor_ul,
                signal_factor,
                availability: avail.clone(),
                dl_ceiling_bps: self.generation.cell_dl_max_bps(),
                ul_ceiling_bps: self.generation.cell_ul_max_bps(),
                seed: mix_seed(self.seed, 0xB5_0000 | i as u64),
            };
            let dl = sim.add_link(
                format!("{} bs{} hsdpa", self.profile.name, i),
                station.dl_cell_process(0),
            );
            let ul = sim.add_link(
                format!("{} bs{} hsupa", self.profile.name, i),
                station.ul_cell_process(0),
            );
            stations.push(BsLinks { station, dl, ul, attached: Vec::new() });
        }
        // Location-level uplink noise-rise ceiling: one HSUPA carrier's
        // worth of headroom, doubled for sectorized deployments (the
        // paper's Location 3 exceeded the single-cell limit).
        let ceiling =
            if self.profile.sectorized { 2.0 } else { 1.0 } * self.generation.cell_ul_max_bps();
        let ul_ceiling = sim.add_link(
            format!("{} ul-ceiling", self.profile.name),
            CapacityProcess::constant(ceiling),
        );
        InstalledCell {
            profile: self.profile.clone(),
            seed: self.seed,
            generation: self.generation,
            stations,
            ul_ceiling,
            devices: Vec::new(),
        }
    }
}

impl InstalledCell {
    /// The location profile this cell was built from.
    pub fn profile(&self) -> &LocationProfile {
        &self.profile
    }

    /// The deployment's radio generation.
    pub fn generation(&self) -> RadioGeneration {
        self.generation
    }

    /// A device matching this deployment's generation (Galaxy S II for
    /// HSPA, an LTE cat-3 handset for LTE).
    pub fn default_device(&self, name: impl Into<String>) -> Device {
        match self.generation {
            RadioGeneration::Hspa => Device::galaxy_s2(name),
            RadioGeneration::Lte => Device::lte(name),
        }
    }

    /// Number of currently attached devices.
    pub fn attached_count(&self) -> usize {
        self.devices.iter().filter(|d| d.active).count()
    }

    /// Attach a device to the least-loaded base station, creating its
    /// radio links and refreshing the affected capacity processes.
    pub fn attach(&mut self, sim: &mut Simulation, device: Device) -> Attachment {
        let bs = self
            .stations
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.attached.len(), *i))
            .map(|(i, _)| i)
            .expect("at least one station");
        let slot = self.devices.len();
        let salt = mix_seed(self.seed, 0xDE_0000 | slot as u64) & 0xFF;
        let station = &self.stations[bs].station;
        // Initial per-device processes; refreshed below once counts settle.
        let dl = sim.add_link(
            format!("{} dev{} dl", self.profile.name, slot),
            station.dl_device_process(1, salt, device.category.dl_max_bps()),
        );
        let ul = sim.add_link(
            format!("{} dev{} ul", self.profile.name, slot),
            station.ul_device_process(1, salt, device.category.ul_max_bps()),
        );
        self.devices.push(AttachedDevice { device, bs, dl, ul, salt, active: true });
        self.stations[bs].attached.push(slot);
        self.refresh_station(sim, bs);
        Attachment(slot)
    }

    /// Detach a device (its links stay registered but are refreshed to
    /// the idle state; simnet links are append-only by design).
    pub fn detach(&mut self, sim: &mut Simulation, att: Attachment) {
        let d = &mut self.devices[att.0];
        assert!(d.active, "detaching an inactive attachment");
        d.active = false;
        let bs = d.bs;
        self.stations[bs].attached.retain(|&s| s != att.0);
        self.refresh_station(sim, bs);
    }

    /// Re-derive the capacity processes of a station's shared links and
    /// of every device attached to it (cluster size changed).
    fn refresh_station(&mut self, sim: &mut Simulation, bs: usize) {
        let n = self.stations[bs].attached.len();
        let station = &self.stations[bs].station;
        sim.set_capacity_process(self.stations[bs].dl, station.dl_cell_process(n));
        sim.set_capacity_process(self.stations[bs].ul, station.ul_cell_process(n));
        for &slot in &self.stations[bs].attached {
            let d = &self.devices[slot];
            sim.set_capacity_process(
                d.dl,
                station.dl_device_process(n, d.salt, d.device.category.dl_max_bps()),
            );
            sim.set_capacity_process(
                d.ul,
                station.ul_device_process(n, d.salt, d.device.category.ul_max_bps()),
            );
        }
    }

    /// The links a download through this device traverses (device radio
    /// share, then the station's shared HSDPA channel).
    pub fn dl_path(&self, att: Attachment) -> Vec<LinkId> {
        let d = &self.devices[att.0];
        assert!(d.active, "path of an inactive attachment");
        vec![d.dl, self.stations[d.bs].dl]
    }

    /// The links an upload through this device traverses (device radio
    /// share, station HSUPA channel, location noise-rise ceiling).
    pub fn ul_path(&self, att: Attachment) -> Vec<LinkId> {
        let d = &self.devices[att.0];
        assert!(d.active, "path of an inactive attachment");
        vec![d.ul, self.stations[d.bs].ul, self.ul_ceiling]
    }

    /// Which base station the attachment is associated with.
    pub fn station_of(&self, att: Attachment) -> usize {
        self.devices[att.0].bs
    }

    /// The attached device (mutable; e.g., to drive its RRC machine).
    pub fn device_mut(&mut self, att: Attachment) -> &mut Device {
        &mut self.devices[att.0].device
    }

    /// The attached device.
    pub fn device(&self, att: Attachment) -> &Device {
        &self.devices[att.0].device
    }

    /// Request the radio channel for a transfer starting now: returns
    /// the RRC promotion delay in seconds (0 when already connected).
    pub fn acquire(&mut self, att: Attachment, now: SimTime) -> f64 {
        self.devices[att.0].device.rrc.acquire(now)
    }

    /// Warm a device into connected mode (the paper's `H` variants).
    pub fn warm_up(&mut self, att: Attachment, now: SimTime) {
        self.devices[att.0].device.rrc.warm_up(now);
    }

    /// Record data activity on a device (refreshes RRC timers).
    pub fn on_activity(&mut self, att: Attachment, now: SimTime) {
        self.devices[att.0].device.rrc.on_activity(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::HSUPA_MAX_BPS;
    use threegol_simnet::SimEvent;

    fn install(n_bs: usize) -> (Simulation, InstalledCell) {
        let mut profile = LocationProfile::reference_2mbps();
        profile.n_base_stations = n_bs;
        let mut sim = Simulation::new();
        let cell = CellularDeployment::new(profile, 42).install(&mut sim);
        (sim, cell)
    }

    #[test]
    fn attach_balances_across_stations() {
        let (mut sim, mut cell) = install(2);
        let a = cell.attach(&mut sim, Device::galaxy_s2("p1"));
        let b = cell.attach(&mut sim, Device::galaxy_s2("p2"));
        let c = cell.attach(&mut sim, Device::galaxy_s2("p3"));
        assert_ne!(cell.station_of(a), cell.station_of(b));
        // Third device goes to the station with fewer attachments.
        assert_eq!(cell.station_of(c), cell.station_of(a));
        assert_eq!(cell.attached_count(), 3);
    }

    #[test]
    fn detach_rebalances_counts() {
        let (mut sim, mut cell) = install(2);
        let a = cell.attach(&mut sim, Device::galaxy_s2("p1"));
        let _b = cell.attach(&mut sim, Device::galaxy_s2("p2"));
        cell.detach(&mut sim, a);
        assert_eq!(cell.attached_count(), 1);
        let c = cell.attach(&mut sim, Device::galaxy_s2("p3"));
        // Goes to the now-empty station.
        assert_eq!(cell.station_of(c), 0);
    }

    #[test]
    fn download_completes_through_cell() {
        let (mut sim, mut cell) = install(2);
        let att = cell.attach(&mut sim, Device::galaxy_s2("p1"));
        let path = cell.dl_path(att);
        sim.start_flow(path, 2_000_000.0); // the paper's 2 MB probe
        let ev = sim.next_event().expect("completion");
        match ev {
            SimEvent::FlowCompleted { time, .. } => {
                // ~2 MB at ~1.6-2 Mbit/s -> on the order of 6-16 s.
                assert!(time.secs() > 2.0 && time.secs() < 60.0, "t = {time}");
            }
            _ => panic!("expected completion"),
        }
    }

    #[test]
    fn uplink_aggregate_plateaus_at_ceiling() {
        let (mut sim, mut cell) = install(2);
        let mut paths = Vec::new();
        for i in 0..8 {
            let att = cell.attach(&mut sim, Device::galaxy_s2(format!("p{i}")));
            paths.push(cell.ul_path(att));
        }
        // Start a long upload on every device and measure aggregate rate.
        for p in paths {
            sim.start_flow(p, 50_000_000.0);
        }
        sim.run_until(SimTime::from_secs(30.0));
        let carried: f64 = sim
            .links()
            .filter(|(_, l)| l.name.contains("ul-ceiling"))
            .map(|(_, l)| l.bytes_carried)
            .sum();
        let agg_bps = carried * 8.0 / 30.0;
        assert!(agg_bps <= HSUPA_MAX_BPS * 1.01, "aggregate {agg_bps}");
        assert!(agg_bps > 0.5 * HSUPA_MAX_BPS, "aggregate {agg_bps}");
    }

    #[test]
    fn sectorized_location_exceeds_single_carrier() {
        let mut profile = LocationProfile::reference_2mbps();
        profile.sectorized = true;
        profile.cell_factor_ul = 2.0;
        let mut sim = Simulation::new();
        let mut cell = CellularDeployment::new(profile, 1).install(&mut sim);
        for i in 0..10 {
            let att = cell.attach(&mut sim, Device::galaxy_s2(format!("p{i}")));
            sim.start_flow(cell.ul_path(att), 100_000_000.0);
        }
        sim.run_until(SimTime::from_secs(30.0));
        let carried: f64 = sim
            .links()
            .filter(|(_, l)| l.name.contains("ul-ceiling"))
            .map(|(_, l)| l.bytes_carried)
            .sum();
        let agg_bps = carried * 8.0 / 30.0;
        assert!(agg_bps > HSUPA_MAX_BPS, "aggregate {agg_bps}");
    }

    #[test]
    fn rrc_round_trip_via_cell() {
        let (mut sim, mut cell) = install(2);
        let att = cell.attach(&mut sim, Device::galaxy_s2("p1"));
        let d = cell.acquire(att, sim.now());
        assert!(d > 0.0); // cold start
        cell.on_activity(att, SimTime::from_secs(3.0));
        assert_eq!(cell.acquire(att, SimTime::from_secs(4.0)), 0.0);
        // Warmed device acquires for free.
        let att2 = cell.attach(&mut sim, Device::galaxy_s2("p2"));
        cell.warm_up(att2, SimTime::from_secs(0.0));
        assert_eq!(cell.acquire(att2, SimTime::from_secs(2.5)), 0.0);
    }

    #[test]
    #[should_panic]
    fn path_of_detached_device_panics() {
        let (mut sim, mut cell) = install(2);
        let att = cell.attach(&mut sim, Device::galaxy_s2("p1"));
        cell.detach(&mut sim, att);
        let _ = cell.dl_path(att);
    }
}
