//! A single HSPA base station: shared-channel capacity processes.
//!
//! A base station produces `threegol-simnet` capacity processes for its
//! shared HSDPA (downlink) and HSUPA (uplink) channels, parameterized by
//! the number of 3GOL devices currently attached. The aggregate follows
//! the Table 3 efficiency curves (scaled by the location calibration
//! factor and signal quality, modulated by the diurnal availability of
//! leftover capacity) and is clamped to the channel ceilings.

use threegol_simnet::capacity::{CapacityProcess, DiurnalProfile};
use threegol_simnet::dist::mix_seed;

use crate::consts::{UMTS_DEDICATED_DL_BPS, UMTS_DEDICATED_UL_BPS};
use crate::efficiency::EfficiencyCurve;

pub use crate::consts::{HSDPA_CELL_MAX_BPS, HSUPA_MAX_BPS};

/// Short-term capacity redraw interval, seconds (HSPA scheduling-grain
/// variation as seen at the transport layer).
const CAPACITY_STEP_SECS: f64 = 1.0;

/// Relative std-dev of the per-device radio link's own variation (on
/// top of the cell channel's variation).
const DEVICE_REL_SD: f64 = 0.20;

/// One HSPA base station serving a 3GOL location.
#[derive(Debug, Clone)]
pub struct BaseStation {
    /// Index within the location's deployment.
    pub index: usize,
    /// Downlink efficiency curve (Table 3 calibrated).
    pub dl_curve: EfficiencyCurve,
    /// Uplink efficiency curve (Table 3 calibrated).
    pub ul_curve: EfficiencyCurve,
    /// Location calibration factor, downlink.
    pub factor_dl: f64,
    /// Location calibration factor, uplink.
    pub factor_ul: f64,
    /// Signal-strength rate multiplier in `(0, 1]`.
    pub signal_factor: f64,
    /// Hourly fraction of capacity left over for 3GOL.
    pub availability: DiurnalProfile,
    /// Downlink shared-channel ceiling, bits/s (generation dependent).
    pub dl_ceiling_bps: f64,
    /// Uplink shared-channel ceiling, bits/s (generation dependent).
    pub ul_ceiling_bps: f64,
    /// Seed for this station's capacity noise streams.
    pub seed: u64,
}

impl BaseStation {
    /// Effective mean aggregate downlink with `n` attached devices, bps
    /// (before diurnal modulation and ceiling clamp).
    fn dl_base(&self, n: usize) -> f64 {
        self.dl_curve.aggregate(n.max(1)) * self.factor_dl * self.signal_factor
    }

    fn ul_base(&self, n: usize) -> f64 {
        self.ul_curve.aggregate(n.max(1)) * self.factor_ul * self.signal_factor
    }

    /// Capacity process for the shared HSDPA downlink channel with `n`
    /// attached devices.
    pub fn dl_cell_process(&self, n: usize) -> CapacityProcess {
        CapacityProcess::stochastic(
            self.dl_base(n).min(self.dl_ceiling_bps),
            self.dl_curve.rel_sd,
            CAPACITY_STEP_SECS,
            self.availability.clone(),
            mix_seed(self.seed, 0xD1),
        )
        .with_bounds(UMTS_DEDICATED_DL_BPS * self.signal_factor, self.dl_ceiling_bps)
    }

    /// Capacity process for the shared HSUPA uplink channel with `n`
    /// attached devices.
    pub fn ul_cell_process(&self, n: usize) -> CapacityProcess {
        CapacityProcess::stochastic(
            self.ul_base(n).min(self.ul_ceiling_bps),
            self.ul_curve.rel_sd,
            CAPACITY_STEP_SECS,
            self.availability.clone(),
            mix_seed(self.seed, 0xE1),
        )
        .with_bounds(UMTS_DEDICATED_UL_BPS * self.signal_factor, self.ul_ceiling_bps)
    }

    /// Capacity process for one device's downlink radio share when `n`
    /// devices are attached. `device_salt` individualizes the noise;
    /// `category_cap_bps` is the handset's hard ceiling.
    pub fn dl_device_process(
        &self,
        n: usize,
        device_salt: u64,
        category_cap_bps: f64,
    ) -> CapacityProcess {
        let base = (self.dl_curve.per_device(n.max(1)) * self.factor_dl * self.signal_factor)
            .min(category_cap_bps);
        CapacityProcess::stochastic(
            base,
            DEVICE_REL_SD,
            CAPACITY_STEP_SECS,
            DiurnalProfile::flat(),
            mix_seed(self.seed, 0xDD00 | device_salt),
        )
        .with_bounds(UMTS_DEDICATED_DL_BPS * self.signal_factor, category_cap_bps)
    }

    /// Capacity process for one device's uplink radio share.
    pub fn ul_device_process(
        &self,
        n: usize,
        device_salt: u64,
        category_cap_bps: f64,
    ) -> CapacityProcess {
        let base = (self.ul_curve.per_device(n.max(1)) * self.factor_ul * self.signal_factor)
            .min(category_cap_bps);
        CapacityProcess::stochastic(
            base,
            DEVICE_REL_SD,
            CAPACITY_STEP_SECS,
            DiurnalProfile::flat(),
            mix_seed(self.seed, 0xEE00 | device_salt),
        )
        .with_bounds(UMTS_DEDICATED_UL_BPS * self.signal_factor, category_cap_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_simnet::SimTime;

    fn station() -> BaseStation {
        BaseStation {
            index: 0,
            dl_curve: EfficiencyCurve::paper_downlink(),
            ul_curve: EfficiencyCurve::paper_uplink(),
            factor_dl: 1.0,
            factor_ul: 1.0,
            signal_factor: 1.0,
            availability: DiurnalProfile::flat(),
            dl_ceiling_bps: crate::consts::HSDPA_CELL_MAX_BPS,
            ul_ceiling_bps: crate::consts::HSUPA_MAX_BPS,
            seed: 7,
        }
    }

    fn mean_capacity(p: &CapacityProcess, samples: usize) -> f64 {
        (0..samples).map(|i| p.capacity_at(SimTime::from_secs(i as f64))).sum::<f64>()
            / samples as f64
    }

    #[test]
    fn dl_cell_mean_tracks_curve() {
        let bs = station();
        let p1 = bs.dl_cell_process(1);
        let m1 = mean_capacity(&p1, 4000);
        assert!((m1 / 1.61e6 - 1.0).abs() < 0.1, "mean {m1}");
        let p5 = bs.dl_cell_process(5);
        let m5 = mean_capacity(&p5, 4000);
        assert!((m5 / (5.0 * 1.16e6) - 1.0).abs() < 0.1, "mean {m5}");
    }

    #[test]
    fn ul_cell_respects_hsupa_ceiling() {
        let mut bs = station();
        bs.factor_ul = 3.0; // hot location
        let p = bs.ul_cell_process(8);
        for i in 0..2000 {
            assert!(p.capacity_at(SimTime::from_secs(i as f64)) <= HSUPA_MAX_BPS + 1.0);
        }
    }

    #[test]
    fn device_process_respects_category_cap() {
        let bs = station();
        let p = bs.dl_device_process(1, 3, 1.2e6);
        for i in 0..1000 {
            assert!(p.capacity_at(SimTime::from_secs(i as f64)) <= 1.2e6 + 1.0);
        }
    }

    #[test]
    fn dedicated_floor_holds() {
        let bs = station();
        let p = bs.ul_device_process(10, 1, HSUPA_MAX_BPS);
        for i in 0..1000 {
            assert!(p.capacity_at(SimTime::from_secs(i as f64)) >= UMTS_DEDICATED_UL_BPS - 1.0);
        }
    }

    #[test]
    fn different_devices_get_different_noise() {
        let bs = station();
        let a = bs.dl_device_process(2, 1, 42e6);
        let b = bs.dl_device_process(2, 2, 42e6);
        let t = SimTime::from_secs(10.0);
        assert_ne!(a.capacity_at(t), b.capacity_at(t));
    }

    #[test]
    fn signal_scales_rates() {
        let mut weak = station();
        weak.signal_factor = 0.5;
        let strong = station();
        let mw = mean_capacity(&weak.dl_cell_process(1), 2000);
        let ms = mean_capacity(&strong.dl_cell_process(1), 2000);
        assert!(mw < ms * 0.6);
    }
}
