//! The 4G/LTE extension (paper §2.3):
//!
//! > "If 4G is available, the concept of 3GOL is even more compelling.
//! > With the reduced latency, and the large increase of bandwidth,
//! > the period of powerboosting time might be extremely short,
//! > reducing the overhead added on the cellular network."
//!
//! The paper leaves 4G as an outlook; this module implements it as a
//! drop-in alternative radio generation: an [`RadioGeneration::Lte`]
//! deployment scales the per-device efficiency curves (~5× the HSPA
//! rates of the era), raises the channel ceilings (20 MHz cat-3 LTE:
//! ~75 Mbit/s down, ~25 Mbit/s up per cell), and shrinks the RRC
//! promotion delay to ~100 ms (LTE RRC connection setup). The ablation
//! bench `abl03_ablation` quantifies the §2.3 claim.

use crate::efficiency::EfficiencyCurve;
use crate::rrc::RrcConfig;

/// Cellular radio generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RadioGeneration {
    /// UMTS/HSPA, as measured by the paper.
    Hspa,
    /// LTE (the paper's §2.3 outlook).
    Lte,
}

/// LTE cell downlink ceiling, bits/s (20 MHz, cat-3 era deployment).
pub const LTE_CELL_DL_MAX_BPS: f64 = 75e6;

/// LTE cell uplink ceiling, bits/s.
pub const LTE_CELL_UL_MAX_BPS: f64 = 25e6;

/// Rate multiplier of early LTE over the paper's HSPA measurements.
pub const LTE_RATE_MULTIPLIER: f64 = 5.0;

impl RadioGeneration {
    /// Per-device downlink efficiency curve for this generation.
    pub fn downlink_curve(self) -> EfficiencyCurve {
        match self {
            RadioGeneration::Hspa => EfficiencyCurve::paper_downlink(),
            RadioGeneration::Lte => scale_curve(EfficiencyCurve::paper_downlink()),
        }
    }

    /// Per-device uplink efficiency curve for this generation.
    pub fn uplink_curve(self) -> EfficiencyCurve {
        match self {
            RadioGeneration::Hspa => EfficiencyCurve::paper_uplink(),
            RadioGeneration::Lte => scale_curve(EfficiencyCurve::paper_uplink()),
        }
    }

    /// Downlink cell ceiling, bits/s.
    pub fn cell_dl_max_bps(self) -> f64 {
        match self {
            RadioGeneration::Hspa => crate::consts::HSDPA_CELL_MAX_BPS,
            RadioGeneration::Lte => LTE_CELL_DL_MAX_BPS,
        }
    }

    /// Uplink cell ceiling, bits/s.
    pub fn cell_ul_max_bps(self) -> f64 {
        match self {
            RadioGeneration::Hspa => crate::consts::HSUPA_MAX_BPS,
            RadioGeneration::Lte => LTE_CELL_UL_MAX_BPS,
        }
    }

    /// RRC timings for this generation: LTE connection setup is an
    /// order of magnitude faster than UMTS promotions.
    pub fn rrc_config(self) -> RrcConfig {
        match self {
            RadioGeneration::Hspa => RrcConfig::default(),
            RadioGeneration::Lte => RrcConfig {
                idle_to_dch_secs: 0.1,
                fach_to_dch_secs: 0.05,
                dch_inactivity_secs: 10.0,
                fach_inactivity_secs: 10.0,
            },
        }
    }
}

fn scale_curve(curve: EfficiencyCurve) -> EfficiencyCurve {
    let anchors = curve.anchors().iter().map(|&(n, bps)| (n, bps * LTE_RATE_MULTIPLIER)).collect();
    EfficiencyCurve::new(anchors, curve.rel_sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lte_is_faster_everywhere() {
        let hspa = RadioGeneration::Hspa;
        let lte = RadioGeneration::Lte;
        for n in [1usize, 3, 5, 8] {
            assert!(lte.downlink_curve().per_device(n) > hspa.downlink_curve().per_device(n));
            assert!(lte.uplink_curve().per_device(n) > hspa.uplink_curve().per_device(n));
        }
        assert!(lte.cell_dl_max_bps() > hspa.cell_dl_max_bps());
        assert!(lte.cell_ul_max_bps() > hspa.cell_ul_max_bps());
    }

    #[test]
    fn lte_rrc_is_an_order_of_magnitude_quicker() {
        let h = RadioGeneration::Hspa.rrc_config();
        let l = RadioGeneration::Lte.rrc_config();
        assert!(l.idle_to_dch_secs <= h.idle_to_dch_secs / 10.0);
    }

    #[test]
    fn scaling_preserves_cluster_shape() {
        let lte = RadioGeneration::Lte.downlink_curve();
        // Per-device still declines with cluster size.
        assert!(lte.per_device(1) > lte.per_device(3));
        assert!(lte.per_device(3) > lte.per_device(5));
        assert_eq!(lte.per_device(1), 1.61e6 * LTE_RATE_MULTIPLIER);
    }
}
