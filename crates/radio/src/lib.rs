//! # threegol-radio
//!
//! The HSPA (UMTS/3G) radio model behind the 3GOL reproduction.
//!
//! The paper's feasibility study (§3) drives 10 Samsung Galaxy S II
//! handsets against live base stations in a European city. This crate
//! provides the synthetic equivalent: base stations with shared
//! HSDPA/HSUPA channels, per-device throughput that degrades with the
//! number of simultaneously active devices (calibrated to the paper's
//! Table 3), dedicated-channel floors, diurnal load, multi-cell load
//! balancing, RRC state promotion delays and signal-dependent rates.
//!
//! The model plugs into `threegol-simnet`: a [`CellularDeployment`]
//! installs one shared-channel link per base station and direction, and
//! each attached [`Device`] gets its own per-device radio link. Max-min
//! fair sharing over those links then yields the cluster-size behaviour
//! the paper measures (downlink scaling with devices, uplink plateauing
//! near the 5.76 Mbit/s HSUPA ceiling).
//!
//! For the city-scale aggregate analysis (§6, Fig 11) the crate also
//! provides [`cellmap`]: a deterministic grid of shared cells under a
//! streamed fleet of homes, with weighted home→cell assignment,
//! wired-diurnal hour assignment, and the feedback law that turns a
//! measured per-cell 3GOL load into next-pass per-phone capacity
//! shares.

#![warn(missing_docs)]

pub mod basestation;
pub mod cellmap;
pub mod consts;
pub mod device;
pub mod efficiency;
pub mod location;
pub mod lte;
pub mod network;
pub mod rrc;

pub use basestation::BaseStation;
pub use cellmap::{CellLoad, CellMap, CellSite};
pub use device::{Device, DeviceCategory};
pub use efficiency::EfficiencyCurve;
pub use location::{
    availability_profile, mobile_diurnal_load, wired_diurnal_load, AreaKind, LocationProfile,
    Provisioning,
};
pub use lte::RadioGeneration;
pub use network::{Attachment, CellularDeployment, InstalledCell};
pub use rrc::{RrcConfig, RrcMachine, RrcState};
