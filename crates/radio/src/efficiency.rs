//! Per-device throughput efficiency as a function of cluster size.
//!
//! The paper's Table 3 reports the mean/max/sd of the per-device
//! throughput a single HSPA base station delivers when 1, 3 or 5 devices
//! share its channels:
//!
//! | cluster | uplink mean | downlink mean |
//! |---|---|---|
//! | 1 | 1.09 Mbit/s | 1.61 Mbit/s |
//! | 3 | 0.90 Mbit/s | 1.33 Mbit/s |
//! | 5 | 0.65 Mbit/s | 1.16 Mbit/s |
//!
//! [`EfficiencyCurve`] interpolates those anchors (and extrapolates with
//! a `1/n` tail) to give per-device and aggregate cell throughput at any
//! cluster size. Scheduling overhead and inter-device contention are why
//! the aggregate is *not* `n ×` the single-device rate.

/// Piecewise per-device throughput anchors `(cluster_size, bps)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EfficiencyCurve {
    anchors: Vec<(f64, f64)>,
    /// Relative standard deviation of short-term variation around the
    /// mean (drives the max/sd columns of Table 3).
    pub rel_sd: f64,
}

impl EfficiencyCurve {
    /// Build a curve from `(cluster_size, per_device_bps)` anchors.
    ///
    /// # Panics
    /// Panics if `anchors` is empty, unsorted, or contains non-positive
    /// cluster sizes.
    pub fn new(anchors: Vec<(f64, f64)>, rel_sd: f64) -> EfficiencyCurve {
        assert!(!anchors.is_empty());
        assert!(anchors.windows(2).all(|w| w[0].0 < w[1].0), "anchors must be sorted");
        assert!(anchors.iter().all(|&(n, r)| n >= 1.0 && r > 0.0));
        EfficiencyCurve { anchors, rel_sd }
    }

    /// The paper's Table 3 downlink curve (bits/s).
    pub fn paper_downlink() -> EfficiencyCurve {
        EfficiencyCurve::new(
            vec![(1.0, 1.61e6), (3.0, 1.33e6), (5.0, 1.16e6)],
            // sd/mean from Table 3 downlink ≈ 0.57/1.61 … 0.56/1.16.
            0.40,
        )
    }

    /// The paper's Table 3 uplink curve (bits/s).
    pub fn paper_uplink() -> EfficiencyCurve {
        EfficiencyCurve::new(
            vec![(1.0, 1.09e6), (3.0, 0.90e6), (5.0, 0.65e6)],
            // sd/mean from Table 3 uplink ≈ 0.72/1.09 … 0.50/0.65.
            0.55,
        )
    }

    /// Mean per-device throughput (bps) with `n` devices on the cell.
    ///
    /// Linear interpolation between anchors; beyond the last anchor the
    /// *aggregate* is held constant, i.e. per-device decays as `1/n`
    /// (channel fully saturated).
    pub fn per_device(&self, n: usize) -> f64 {
        assert!(n >= 1, "cluster size must be >= 1");
        let x = n as f64;
        let first = self.anchors[0];
        let last = *self.anchors.last().expect("non-empty");
        if x <= first.0 {
            return first.1;
        }
        if x >= last.0 {
            // Saturated: aggregate frozen at last anchor's aggregate.
            return last.0 * last.1 / x;
        }
        let idx = self
            .anchors
            .windows(2)
            .position(|w| x >= w[0].0 && x <= w[1].0)
            .expect("x within anchor range");
        let (x0, y0) = self.anchors[idx];
        let (x1, y1) = self.anchors[idx + 1];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Mean aggregate cell throughput (bps) with `n` active devices.
    pub fn aggregate(&self, n: usize) -> f64 {
        n as f64 * self.per_device(n)
    }

    /// The `(cluster_size, per_device_bps)` anchor points.
    pub fn anchors(&self) -> &[(f64, f64)] {
        &self.anchors
    }

    /// The largest aggregate the curve can deliver (its saturation point).
    pub fn saturated_aggregate(&self) -> f64 {
        let last = *self.anchors.last().expect("non-empty");
        last.0 * last.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_reproduced() {
        let dl = EfficiencyCurve::paper_downlink();
        assert_eq!(dl.per_device(1), 1.61e6);
        assert_eq!(dl.per_device(3), 1.33e6);
        assert_eq!(dl.per_device(5), 1.16e6);
        let ul = EfficiencyCurve::paper_uplink();
        assert_eq!(ul.per_device(1), 1.09e6);
        assert_eq!(ul.per_device(5), 0.65e6);
    }

    #[test]
    fn interpolation_between_anchors() {
        let dl = EfficiencyCurve::paper_downlink();
        let d2 = dl.per_device(2);
        assert!((d2 - 1.47e6).abs() < 1e3, "{d2}");
        let d4 = dl.per_device(4);
        assert!((d4 - 1.245e6).abs() < 1e3, "{d4}");
    }

    #[test]
    fn per_device_decreases_with_cluster_size() {
        let dl = EfficiencyCurve::paper_downlink();
        for n in 1..10 {
            assert!(dl.per_device(n) >= dl.per_device(n + 1));
        }
    }

    #[test]
    fn aggregate_increases_then_saturates() {
        let ul = EfficiencyCurve::paper_uplink();
        for n in 1..5 {
            assert!(ul.aggregate(n) < ul.aggregate(n + 1) + 1.0);
        }
        // Beyond the last anchor the aggregate is flat.
        assert!((ul.aggregate(7) - ul.saturated_aggregate()).abs() < 1.0);
        assert!((ul.aggregate(10) - ul.saturated_aggregate()).abs() < 1.0);
    }

    #[test]
    fn uplink_saturates_near_hsupa_ceiling_order() {
        // 5 × 0.65 = 3.25 Mbit/s per cell; with ≥2 visible cells the
        // location aggregate approaches the paper's ~5 Mbit/s plateau.
        let ul = EfficiencyCurve::paper_uplink();
        assert!((ul.saturated_aggregate() - 3.25e6).abs() < 1e3);
    }

    #[test]
    #[should_panic]
    fn unsorted_anchors_panic() {
        let _ = EfficiencyCurve::new(vec![(3.0, 1.0), (1.0, 2.0)], 0.1);
    }

    #[test]
    #[should_panic]
    fn zero_cluster_panics() {
        EfficiencyCurve::paper_downlink().per_device(0);
    }
}
