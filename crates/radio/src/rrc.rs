//! The UMTS RRC (Radio Resource Control) state machine.
//!
//! A 3G device idles in `IDLE`, holds a shared low-rate channel in
//! `FACH`, and holds a dedicated high-rate channel in `DCH`. Promotions
//! cost signalling round-trips — the paper's "channel acquisition delay"
//! — and demotions happen on inactivity timers. The paper's `H`
//! experiment variants warm the phones into connected mode with an ICMP
//! train before each transaction; [`RrcMachine::warm_up`] models that.

use threegol_simnet::SimTime;

/// RRC states of a UMTS handset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrcState {
    /// No radio resources held.
    Idle,
    /// Shared forward-access channel: connected, low rate.
    Fach,
    /// Dedicated channel: full HSPA rate.
    Dch,
}

/// Promotion delays and inactivity timers, in seconds.
///
/// Defaults follow the commonly measured values for European UMTS
/// deployments of the paper's era (e.g., Qian et al., "Characterizing
/// radio resource allocation for 3G networks").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RrcConfig {
    /// IDLE → DCH promotion delay (RRC connection setup), seconds.
    pub idle_to_dch_secs: f64,
    /// FACH → DCH promotion delay, seconds.
    pub fach_to_dch_secs: f64,
    /// DCH → FACH inactivity timer, seconds.
    pub dch_inactivity_secs: f64,
    /// FACH → IDLE inactivity timer, seconds.
    pub fach_inactivity_secs: f64,
}

impl Default for RrcConfig {
    fn default() -> Self {
        RrcConfig {
            idle_to_dch_secs: 2.0,
            fach_to_dch_secs: 1.5,
            dch_inactivity_secs: 5.0,
            fach_inactivity_secs: 12.0,
        }
    }
}

/// Per-device RRC state tracker.
///
/// The machine is driven by the caller's virtual clock: call
/// [`RrcMachine::acquire`] when a transfer wants to start (it returns
/// the promotion delay to wait before bytes flow and moves the machine
/// to `DCH`), and [`RrcMachine::on_activity`] whenever bytes flow, so
/// inactivity demotions are computed correctly.
#[derive(Debug, Clone)]
pub struct RrcMachine {
    config: RrcConfig,
    state: RrcState,
    last_activity: SimTime,
}

impl RrcMachine {
    /// A machine starting in `IDLE` at time zero.
    pub fn new(config: RrcConfig) -> RrcMachine {
        RrcMachine { config, state: RrcState::Idle, last_activity: SimTime::ZERO }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &RrcConfig {
        &self.config
    }

    /// The state at time `now`, applying any inactivity demotions that
    /// have elapsed since the last recorded activity.
    pub fn state_at(&self, now: SimTime) -> RrcState {
        let idle_for = now.since(self.last_activity);
        match self.state {
            RrcState::Idle => RrcState::Idle,
            RrcState::Dch => {
                if idle_for >= self.config.dch_inactivity_secs + self.config.fach_inactivity_secs {
                    RrcState::Idle
                } else if idle_for >= self.config.dch_inactivity_secs {
                    RrcState::Fach
                } else {
                    RrcState::Dch
                }
            }
            RrcState::Fach => {
                if idle_for >= self.config.fach_inactivity_secs {
                    RrcState::Idle
                } else {
                    RrcState::Fach
                }
            }
        }
    }

    /// Request the dedicated channel at time `now`.
    ///
    /// Returns the promotion delay in seconds (0 if already in `DCH`)
    /// and leaves the machine in `DCH` with its activity clock set to
    /// the promotion completion time.
    pub fn acquire(&mut self, now: SimTime) -> f64 {
        let delay = match self.state_at(now) {
            RrcState::Dch => 0.0,
            RrcState::Fach => self.config.fach_to_dch_secs,
            RrcState::Idle => self.config.idle_to_dch_secs,
        };
        self.state = RrcState::Dch;
        self.last_activity = now + delay;
        delay
    }

    /// Record data activity at `now` (refreshes inactivity timers).
    ///
    /// Data transfer at HSPA rates requires the dedicated channel, so
    /// activity also (re-)establishes `DCH`.
    pub fn on_activity(&mut self, now: SimTime) {
        self.state = RrcState::Dch;
        self.last_activity = self.last_activity.max(now);
    }

    /// Warm the device into connected mode (the paper's ICMP train):
    /// after this, the next [`RrcMachine::acquire`] costs nothing.
    pub fn warm_up(&mut self, now: SimTime) {
        let _ = self.acquire(now);
        self.on_activity(now + self.config.idle_to_dch_secs.max(0.0));
    }
}

impl Default for RrcMachine {
    fn default() -> Self {
        RrcMachine::new(RrcConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn cold_start_pays_full_promotion() {
        let mut rrc = RrcMachine::default();
        assert_eq!(rrc.state_at(t(0.0)), RrcState::Idle);
        let d = rrc.acquire(t(0.0));
        assert_eq!(d, 2.0);
        assert_eq!(rrc.state_at(t(2.0)), RrcState::Dch);
    }

    #[test]
    fn warm_device_acquires_for_free() {
        let mut rrc = RrcMachine::default();
        rrc.warm_up(t(0.0));
        assert_eq!(rrc.acquire(t(2.5)), 0.0);
    }

    #[test]
    fn demotion_chain_dch_fach_idle() {
        let mut rrc = RrcMachine::default();
        rrc.acquire(t(0.0)); // DCH from t=2
        rrc.on_activity(t(3.0));
        assert_eq!(rrc.state_at(t(4.0)), RrcState::Dch);
        assert_eq!(rrc.state_at(t(8.0)), RrcState::Fach); // 5 s inactivity
        assert_eq!(rrc.state_at(t(19.9)), RrcState::Fach);
        assert_eq!(rrc.state_at(t(20.0)), RrcState::Idle); // +12 s more
    }

    #[test]
    fn fach_reacquire_is_cheaper() {
        let mut rrc = RrcMachine::default();
        rrc.acquire(t(0.0));
        rrc.on_activity(t(2.0));
        // At t=8 the device demoted to FACH; re-acquiring costs 1.5 s.
        let d = rrc.acquire(t(8.0));
        assert_eq!(d, 1.5);
    }

    #[test]
    fn activity_refreshes_timer() {
        let mut rrc = RrcMachine::default();
        rrc.acquire(t(0.0));
        rrc.on_activity(t(4.0));
        rrc.on_activity(t(8.0));
        assert_eq!(rrc.state_at(t(12.0)), RrcState::Dch);
    }

    #[test]
    fn stale_activity_does_not_rewind_clock() {
        let mut rrc = RrcMachine::default();
        rrc.acquire(t(0.0));
        rrc.on_activity(t(10.0));
        rrc.on_activity(t(5.0)); // out-of-order report must not rewind
        assert_eq!(rrc.state_at(t(14.0)), RrcState::Dch);
    }
}
