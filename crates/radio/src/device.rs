//! Handset model: device categories and their rate ceilings.

use crate::consts;
use crate::rrc::{RrcConfig, RrcMachine};

/// HSPA device category, determining hard rate ceilings.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DeviceCategory {
    /// Samsung Galaxy S II as used in the paper's §3 measurements:
    /// "MIMO HSDPA Category 20 and HSUPA Category 6".
    GalaxyS2,
    /// A conservative older handset (HSDPA Cat 8 / HSUPA Cat 5).
    Legacy,
    /// Custom ceilings, bits/s.
    Custom {
        /// Downlink ceiling, bits/s.
        dl_max_bps: f64,
        /// Uplink ceiling, bits/s.
        ul_max_bps: f64,
    },
}

impl DeviceCategory {
    /// Hard downlink ceiling, bits/s.
    pub fn dl_max_bps(self) -> f64 {
        match self {
            // HSDPA Cat 20 (MIMO): 42 Mbit/s theoretical; real-world
            // ceiling far above anything a shared cell delivers.
            DeviceCategory::GalaxyS2 => 42.0e6,
            DeviceCategory::Legacy => 7.2e6,
            DeviceCategory::Custom { dl_max_bps, .. } => dl_max_bps,
        }
    }

    /// Hard uplink ceiling, bits/s.
    pub fn ul_max_bps(self) -> f64 {
        match self {
            // HSUPA Cat 6: 5.76 Mbit/s.
            DeviceCategory::GalaxyS2 => consts::HSUPA_MAX_BPS,
            DeviceCategory::Legacy => 2.0e6,
            DeviceCategory::Custom { ul_max_bps, .. } => ul_max_bps,
        }
    }
}

/// A 3G-capable device participating in 3GOL.
#[derive(Debug, Clone)]
pub struct Device {
    /// Display name, e.g. `"phone-1"`.
    pub name: String,
    /// HSPA category (rate ceilings).
    pub category: DeviceCategory,
    /// RRC state machine (channel-acquisition delays).
    pub rrc: RrcMachine,
}

impl Device {
    /// A Galaxy S II — the handset used throughout the paper.
    pub fn galaxy_s2(name: impl Into<String>) -> Device {
        Device {
            name: name.into(),
            category: DeviceCategory::GalaxyS2,
            rrc: RrcMachine::new(RrcConfig::default()),
        }
    }

    /// An LTE-capable handset for the §2.3 outlook experiments
    /// (category ceilings matching an early LTE cat-3 device).
    pub fn lte(name: impl Into<String>) -> Device {
        Device {
            name: name.into(),
            category: DeviceCategory::Custom { dl_max_bps: 100.0e6, ul_max_bps: 50.0e6 },
            rrc: RrcMachine::new(crate::lte::RadioGeneration::Lte.rrc_config()),
        }
    }

    /// A device with custom category and RRC timings.
    pub fn with_config(
        name: impl Into<String>,
        category: DeviceCategory,
        rrc: RrcConfig,
    ) -> Device {
        Device { name: name.into(), category, rrc: RrcMachine::new(rrc) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galaxy_s2_matches_paper_categories() {
        let d = Device::galaxy_s2("p1");
        assert_eq!(d.category.ul_max_bps(), 5.76e6);
        assert!(d.category.dl_max_bps() >= 21.0e6);
    }

    #[test]
    fn custom_category() {
        let c = DeviceCategory::Custom { dl_max_bps: 1.0, ul_max_bps: 2.0 };
        assert_eq!(c.dl_max_bps(), 1.0);
        assert_eq!(c.ul_max_bps(), 2.0);
    }

    #[test]
    fn legacy_is_slower() {
        assert!(DeviceCategory::Legacy.dl_max_bps() < DeviceCategory::GalaxyS2.dl_max_bps());
        assert!(DeviceCategory::Legacy.ul_max_bps() < DeviceCategory::GalaxyS2.ul_max_bps());
    }
}
