//! HTTP/1.1 message framing: incremental parsing and serialization.
//!
//! [`HttpStream`] wraps any `AsyncRead + AsyncWrite` transport and
//! carries the read buffer across messages, so a connection can serve
//! sequential request/response exchanges (the prototype's proxies keep
//! connections alive per transfer). The free functions are one-shot
//! conveniences over a fresh buffer.

use bytes::{Bytes, BytesMut};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

use crate::error::HttpError;
use crate::headers::Headers;
use crate::{MAX_BODY_BYTES, MAX_HEADER_BYTES};

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Method, e.g. `GET`.
    pub method: String,
    /// Request target, e.g. `/q1/seg00001.ts`.
    pub target: String,
    /// Protocol version (always `HTTP/1.1` from this crate).
    pub version: String,
    /// Header lines.
    pub headers: Headers,
    /// Body bytes (empty for bodyless methods).
    pub body: Bytes,
}

impl Request {
    /// A GET request for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: "GET".into(),
            target: target.into(),
            version: "HTTP/1.1".into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A POST request with a body.
    pub fn post(target: impl Into<String>, content_type: &str, body: Bytes) -> Request {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Request {
            method: "POST".into(),
            target: target.into(),
            version: "HTTP/1.1".into(),
            headers,
            body,
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Protocol version.
    pub version: String,
    /// Header lines.
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// A 200 response with a body.
    pub fn ok(content_type: &str, body: Bytes) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Response { status: 200, reason: "OK".into(), version: "HTTP/1.1".into(), headers, body }
    }

    /// An empty response with the given status.
    pub fn status(status: u16, reason: &str) -> Response {
        Response {
            status,
            reason: reason.into(),
            version: "HTTP/1.1".into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A 404 response.
    pub fn not_found() -> Response {
        Response::status(404, "Not Found")
    }
}

/// A buffered HTTP connection over any async transport.
#[derive(Debug)]
pub struct HttpStream<T> {
    io: T,
    buf: BytesMut,
}

impl<T: AsyncRead + AsyncWrite + Unpin> HttpStream<T> {
    /// Wrap a transport.
    pub fn new(io: T) -> HttpStream<T> {
        HttpStream { io, buf: BytesMut::with_capacity(8 * 1024) }
    }

    /// Consume the wrapper, returning the transport (leftover buffered
    /// bytes are discarded).
    pub fn into_inner(self) -> T {
        self.io
    }

    /// Read one request. `Ok(None)` on clean end-of-stream before any
    /// byte of a new message.
    pub async fn read_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_end) = self.fill_until_headers().await? else {
            return Ok(None);
        };
        let head = self.buf.split_to(head_end);
        let text = std::str::from_utf8(&head[..head.len() - 4])
            .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
        let mut lines = text.split("\r\n");
        let start = lines.next().ok_or_else(|| HttpError::Malformed("empty head".into()))?;
        let mut parts = start.split_whitespace();
        let method =
            parts.next().ok_or_else(|| HttpError::Malformed("missing method".into()))?.to_string();
        let target =
            parts.next().ok_or_else(|| HttpError::Malformed("missing target".into()))?.to_string();
        let version =
            parts.next().ok_or_else(|| HttpError::Malformed("missing version".into()))?.to_string();
        let headers = parse_headers(lines)?;
        let body = self.read_body(&headers, false).await?;
        Ok(Some(Request { method, target, version, headers, body }))
    }

    /// Read one response.
    pub async fn read_response(&mut self) -> Result<Response, HttpError> {
        let head_end = self.fill_until_headers().await?.ok_or(HttpError::UnexpectedEof)?;
        let head = self.buf.split_to(head_end);
        let text = std::str::from_utf8(&head[..head.len() - 4])
            .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
        let mut lines = text.split("\r\n");
        let start = lines.next().ok_or_else(|| HttpError::Malformed("empty head".into()))?;
        let mut parts = start.splitn(3, ' ');
        let version =
            parts.next().ok_or_else(|| HttpError::Malformed("missing version".into()))?.to_string();
        let status: u16 = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing status".into()))?
            .parse()
            .map_err(|_| HttpError::Malformed("bad status code".into()))?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        let body = self.read_body(&headers, true).await?;
        Ok(Response { status, reason, version, headers, body })
    }

    /// Serialize and send a request (Content-Length is set from the
    /// body).
    pub async fn write_request(&mut self, req: &Request) -> Result<(), HttpError> {
        let mut head = format!("{} {} {}\r\n", req.method, req.target, req.version);
        append_headers(&mut head, &req.headers, req.body.len());
        self.io.write_all(head.as_bytes()).await?;
        self.io.write_all(&req.body).await?;
        self.io.flush().await?;
        Ok(())
    }

    /// Serialize and send a response.
    pub async fn write_response(&mut self, resp: &Response) -> Result<(), HttpError> {
        let mut head = format!("{} {} {}\r\n", resp.version, resp.status, resp.reason);
        append_headers(&mut head, &resp.headers, resp.body.len());
        self.io.write_all(head.as_bytes()).await?;
        self.io.write_all(&resp.body).await?;
        self.io.flush().await?;
        Ok(())
    }

    /// Fill the buffer until a complete header block is present.
    /// Returns the offset just past `\r\n\r\n`, or `None` on clean EOF
    /// with an empty buffer.
    async fn fill_until_headers(&mut self) -> Result<Option<usize>, HttpError> {
        loop {
            if let Some(pos) = find_subsequence(&self.buf, b"\r\n\r\n") {
                return Ok(Some(pos + 4));
            }
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(HttpError::HeadersTooLarge);
            }
            let n = self.io.read_buf(&mut self.buf).await?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::UnexpectedEof);
            }
        }
    }

    /// Read exactly `n` more bytes into the buffer (beyond current len).
    async fn fill_to(&mut self, n: usize) -> Result<(), HttpError> {
        while self.buf.len() < n {
            let read = self.io.read_buf(&mut self.buf).await?;
            if read == 0 {
                return Err(HttpError::UnexpectedEof);
            }
        }
        Ok(())
    }

    async fn read_body(
        &mut self,
        headers: &Headers,
        read_to_eof_allowed: bool,
    ) -> Result<Bytes, HttpError> {
        if headers.is_chunked() {
            return self.read_chunked_body().await;
        }
        if let Some(len) = headers.content_length() {
            if len > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge);
            }
            self.fill_to(len).await?;
            return Ok(self.buf.split_to(len).freeze());
        }
        if headers.get("content-length").is_some() {
            return Err(HttpError::BodyTooLarge); // present but unparseable
        }
        if read_to_eof_allowed
            && headers.get("connection").is_some_and(|c| c.eq_ignore_ascii_case("close"))
        {
            // Old-style close-delimited body.
            loop {
                if self.buf.len() > MAX_BODY_BYTES {
                    return Err(HttpError::BodyTooLarge);
                }
                let n = self.io.read_buf(&mut self.buf).await?;
                if n == 0 {
                    break;
                }
            }
            return Ok(self.buf.split().freeze());
        }
        Ok(Bytes::new())
    }

    async fn read_chunked_body(&mut self) -> Result<Bytes, HttpError> {
        let mut body = BytesMut::new();
        loop {
            // Read the size line.
            let line_end = loop {
                if let Some(pos) = find_subsequence(&self.buf, b"\r\n") {
                    break pos;
                }
                let n = self.io.read_buf(&mut self.buf).await?;
                if n == 0 {
                    return Err(HttpError::UnexpectedEof);
                }
            };
            let line = self.buf.split_to(line_end + 2);
            let size_text = std::str::from_utf8(&line[..line_end])
                .map_err(|_| HttpError::Malformed("bad chunk size".into()))?;
            let size_text = size_text.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_text:?}")))?;
            if body.len() + size > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge);
            }
            if size == 0 {
                // Trailers: consume until the final CRLF.
                loop {
                    if let Some(pos) = find_subsequence(&self.buf, b"\r\n") {
                        let line = self.buf.split_to(pos + 2);
                        if pos == 0 {
                            return Ok(body.freeze());
                        }
                        let _ = line; // ignore trailer
                        continue;
                    }
                    let n = self.io.read_buf(&mut self.buf).await?;
                    if n == 0 {
                        return Err(HttpError::UnexpectedEof);
                    }
                }
            }
            self.fill_to(size + 2).await?;
            body.extend_from_slice(&self.buf.split_to(size));
            let crlf = self.buf.split_to(2);
            if &crlf[..] != b"\r\n" {
                return Err(HttpError::Malformed("missing chunk CRLF".into()));
            }
        }
    }
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers, HttpError> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.add(name.trim(), value.trim());
    }
    Ok(headers)
}

fn append_headers(head: &mut String, headers: &Headers, body_len: usize) {
    let mut wrote_len = false;
    for (name, value) in headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            wrote_len = true;
            head.push_str(&format!("Content-Length: {body_len}\r\n"));
        } else {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
    }
    if !wrote_len && body_len > 0 {
        head.push_str(&format!("Content-Length: {body_len}\r\n"));
    }
    head.push_str("\r\n");
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|window| window == needle)
}

/// One-shot: read a request from `reader` (fresh buffer).
pub async fn read_request<R: AsyncRead + Unpin>(reader: R) -> Result<Option<Request>, HttpError> {
    HttpStream::new(ReadOnly(reader)).read_request().await
}

/// One-shot: read a response from `reader`.
pub async fn read_response<R: AsyncRead + Unpin>(reader: R) -> Result<Response, HttpError> {
    HttpStream::new(ReadOnly(reader)).read_response().await
}

/// One-shot: write a request to `writer`.
pub async fn write_request<W: AsyncWrite + Unpin>(
    writer: W,
    req: &Request,
) -> Result<(), HttpError> {
    HttpStream::new(WriteOnly(writer)).write_request(req).await
}

/// One-shot: write a response to `writer`.
pub async fn write_response<W: AsyncWrite + Unpin>(
    writer: W,
    resp: &Response,
) -> Result<(), HttpError> {
    HttpStream::new(WriteOnly(writer)).write_response(resp).await
}

/// Adapter giving a read-only transport a no-op write half.
struct ReadOnly<R>(R);

impl<R: AsyncRead + Unpin> AsyncRead for ReadOnly<R> {
    fn poll_read(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
        buf: &mut tokio::io::ReadBuf<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.0).poll_read(cx, buf)
    }
}

impl<R: Unpin> AsyncWrite for ReadOnly<R> {
    fn poll_write(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
        _buf: &[u8],
    ) -> std::task::Poll<std::io::Result<usize>> {
        std::task::Poll::Ready(Err(std::io::Error::other("read-only transport")))
    }
    fn poll_flush(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::task::Poll::Ready(Ok(()))
    }
    fn poll_shutdown(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::task::Poll::Ready(Ok(()))
    }
}

/// Adapter giving a write-only transport an EOF read half.
struct WriteOnly<W>(W);

impl<W: Unpin> AsyncRead for WriteOnly<W> {
    fn poll_read(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
        _buf: &mut tokio::io::ReadBuf<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::task::Poll::Ready(Ok(())) // immediate EOF
    }
}

impl<W: AsyncWrite + Unpin> AsyncWrite for WriteOnly<W> {
    fn poll_write(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
        buf: &[u8],
    ) -> std::task::Poll<std::io::Result<usize>> {
        std::pin::Pin::new(&mut self.0).poll_write(cx, buf)
    }
    fn poll_flush(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.0).poll_flush(cx)
    }
    fn poll_shutdown(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.0).poll_shutdown(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn request_round_trip() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        let mut req = Request::get("/q1/index.m3u8");
        req.headers.set("Host", "origin");
        c.write_request(&req).await.unwrap();
        let got = s.read_request().await.unwrap().unwrap();
        assert_eq!(got.method, "GET");
        assert_eq!(got.target, "/q1/index.m3u8");
        assert_eq!(got.headers.get("host"), Some("origin"));
        assert!(got.body.is_empty());
    }

    #[tokio::test]
    async fn response_round_trip_with_body() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        let body = Bytes::from(vec![7u8; 100_000]);
        let resp = Response::ok("video/mp2t", body.clone());
        tokio::spawn(async move {
            s.write_response(&resp).await.unwrap();
        });
        let got = c.read_response().await.unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.headers.content_length(), Some(100_000));
        assert_eq!(got.body, body);
    }

    #[tokio::test]
    async fn post_round_trip() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        let req =
            Request::post("/upload", "application/octet-stream", Bytes::from_static(b"pixels"));
        c.write_request(&req).await.unwrap();
        let got = s.read_request().await.unwrap().unwrap();
        assert_eq!(got.method, "POST");
        assert_eq!(&got.body[..], b"pixels");
    }

    #[tokio::test]
    async fn sequential_messages_share_buffer() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        for i in 0..3 {
            c.write_request(&Request::get(format!("/seg{i}.ts"))).await.unwrap();
        }
        for i in 0..3 {
            let got = s.read_request().await.unwrap().unwrap();
            assert_eq!(got.target, format!("/seg{i}.ts"));
        }
    }

    #[tokio::test]
    async fn clean_eof_returns_none() {
        let (client, server) = tokio::io::duplex(1024);
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(s.read_request().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn truncated_message_is_an_error() {
        let (mut client, server) = tokio::io::duplex(1024);
        client.write_all(b"GET /x HTTP/1.1\r\nContent-").await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::UnexpectedEof)));
    }

    #[tokio::test]
    async fn truncated_body_is_an_error() {
        let (mut client, server) = tokio::io::duplex(1024);
        client.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::UnexpectedEof)));
    }

    #[tokio::test]
    async fn malformed_start_line_rejected() {
        let (mut client, server) = tokio::io::duplex(1024);
        client.write_all(b"GET\r\n\r\n").await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::Malformed(_))));
    }

    #[tokio::test]
    async fn chunked_response_decoded() {
        let (mut client, server) = tokio::io::duplex(1024);
        client
            .write_all(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
            )
            .await
            .unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(&resp.body[..], b"Wikipedia");
    }

    #[tokio::test]
    async fn chunked_with_extension_and_trailer() {
        let (mut client, server) = tokio::io::duplex(1024);
        client
            .write_all(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nX-T: v\r\n\r\n",
            )
            .await
            .unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(&resp.body[..], b"abc");
    }

    #[tokio::test]
    async fn close_delimited_body() {
        let (mut client, server) = tokio::io::duplex(1024);
        client
            .write_all(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nstream-until-eof")
            .await
            .unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(&resp.body[..], b"stream-until-eof");
    }

    #[tokio::test]
    async fn oversized_headers_rejected() {
        let (mut client, server) = tokio::io::duplex(256 * 1024);
        let mut msg = b"GET / HTTP/1.1\r\n".to_vec();
        msg.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        tokio::spawn(async move {
            let _ = client.write_all(&msg).await;
        });
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::HeadersTooLarge)));
    }

    #[tokio::test]
    async fn one_shot_helpers() {
        let mut buf = Vec::new();
        let req = Request::post("/p", "text/plain", Bytes::from_static(b"hi"));
        write_request(&mut buf, &req).await.unwrap();
        let got = read_request(&buf[..]).await.unwrap().unwrap();
        assert_eq!(got.body, req.body);

        let mut buf = Vec::new();
        write_response(&mut buf, &Response::not_found()).await.unwrap();
        let got = read_response(&buf[..]).await.unwrap();
        assert_eq!(got.status, 404);
    }
}
