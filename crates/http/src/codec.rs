//! HTTP/1.1 message framing: incremental parsing and serialization.
//!
//! [`HttpStream`] wraps any `AsyncRead + AsyncWrite` transport and
//! carries the read buffer across messages, so a connection can serve
//! sequential request/response exchanges (the prototype's proxies keep
//! connections alive per transfer). The free functions are one-shot
//! conveniences over a fresh buffer.
//!
//! Heads and bodies are split: `read_request_head`/`read_response_head`
//! return the parsed head plus a [`Body`] handle. The handle either
//! already holds the bytes ([`Body::Full`]) or describes how the body
//! is framed on the wire ([`Body::Stream`]); the caller then chooses to
//! materialize it ([`HttpStream::read_body`]) or to pipe it straight
//! into a downstream writer ([`HttpStream::pipe_body`]) without ever
//! buffering the whole payload — the relay path the device proxy uses.
//! Any bytes read past the head (the parse remnant) stay in the stream
//! buffer and are consumed first by either driver.

use std::fmt::Write as _;
use std::io::IoSlice;

use bytes::{Bytes, BytesMut};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

use crate::error::HttpError;
use crate::headers::Headers;
use crate::{MAX_BODY_BYTES, MAX_HEADER_BYTES};

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Method, e.g. `GET`.
    pub method: String,
    /// Request target, e.g. `/q1/seg00001.ts`.
    pub target: String,
    /// Protocol version (always `HTTP/1.1` from this crate).
    pub version: String,
    /// Header lines.
    pub headers: Headers,
    /// Body bytes (empty for bodyless methods).
    pub body: Bytes,
}

impl Request {
    /// A GET request for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: "GET".into(),
            target: target.into(),
            version: "HTTP/1.1".into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A POST request with a body.
    pub fn post(target: impl Into<String>, content_type: &str, body: Bytes) -> Request {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Request {
            method: "POST".into(),
            target: target.into(),
            version: "HTTP/1.1".into(),
            headers,
            body,
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Protocol version.
    pub version: String,
    /// Header lines.
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// A 200 response with a body.
    pub fn ok(content_type: &str, body: Bytes) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Response { status: 200, reason: "OK".into(), version: "HTTP/1.1".into(), headers, body }
    }

    /// An empty response with the given status.
    pub fn status(status: u16, reason: &str) -> Response {
        Response {
            status,
            reason: reason.into(),
            version: "HTTP/1.1".into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A 404 response.
    pub fn not_found() -> Response {
        Response::status(404, "Not Found")
    }
}

/// The head of a request: everything before the body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestHead {
    /// Method, e.g. `GET`.
    pub method: String,
    /// Request target.
    pub target: String,
    /// Protocol version.
    pub version: String,
    /// Header lines.
    pub headers: Headers,
}

impl RequestHead {
    /// Attach a materialized body, recovering a full [`Request`].
    pub fn into_request(self, body: Bytes) -> Request {
        Request {
            method: self.method,
            target: self.target,
            version: self.version,
            headers: self.headers,
            body,
        }
    }
}

/// The head of a response: everything before the body.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseHead {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Protocol version.
    pub version: String,
    /// Header lines.
    pub headers: Headers,
}

impl ResponseHead {
    /// Attach a materialized body, recovering a full [`Response`].
    pub fn into_response(self, body: Bytes) -> Response {
        Response {
            status: self.status,
            reason: self.reason,
            version: self.version,
            headers: self.headers,
            body,
        }
    }
}

/// How a message body is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// No body follows the head.
    None,
    /// `Content-Length`-delimited: exactly this many bytes follow.
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
    /// Close-delimited: the body runs until EOF (responses only).
    Eof,
}

/// A handle to a message body returned alongside a parsed head.
///
/// `Full` already carries the bytes. `Stream` describes a body still
/// (partially) on the wire: the [`HttpStream`] that produced it holds
/// the parse remnant, and exactly one of [`HttpStream::read_body`] /
/// [`HttpStream::pipe_body`] must consume the handle before the next
/// message is read from that stream.
#[derive(Debug)]
#[must_use = "an unconsumed Stream body desynchronizes the connection"]
pub enum Body {
    /// The body is fully materialized.
    Full(Bytes),
    /// The body is still on the wire, framed as described.
    Stream(BodyFraming),
}

impl Body {
    /// The framing this body had (or would have) on the wire.
    pub fn framing(&self) -> BodyFraming {
        match self {
            Body::Full(b) if b.is_empty() => BodyFraming::None,
            Body::Full(b) => BodyFraming::Length(b.len()),
            Body::Stream(f) => *f,
        }
    }
}

/// Derive the body framing from a parsed header block. Mirrors the
/// decisions the buffered reader has always made, including the error
/// cases (oversized or unparseable `Content-Length`).
fn body_framing(headers: &Headers, read_to_eof_allowed: bool) -> Result<BodyFraming, HttpError> {
    if headers.is_chunked() {
        return Ok(BodyFraming::Chunked);
    }
    if let Some(len) = headers.content_length() {
        if len > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        return Ok(BodyFraming::Length(len));
    }
    if headers.get("content-length").is_some() {
        return Err(HttpError::BodyTooLarge); // present but unparseable
    }
    if read_to_eof_allowed
        && headers.get("connection").is_some_and(|c| c.eq_ignore_ascii_case("close"))
    {
        return Ok(BodyFraming::Eof);
    }
    Ok(BodyFraming::None)
}

/// A buffered HTTP connection over any async transport.
#[derive(Debug)]
pub struct HttpStream<T> {
    io: T,
    /// Read buffer; bytes past a parsed head (the remnant) stay here
    /// and are consumed first by the body drivers.
    buf: BytesMut,
    /// Reused head-serialization buffer: heads of sequential messages
    /// on a kept-alive connection share one allocation.
    head_buf: BytesMut,
}

impl<T: AsyncRead + AsyncWrite + Unpin> HttpStream<T> {
    /// Wrap a transport. Buffers start empty and are sized lazily by
    /// the first read/write, so a one-shot exchange allocates only
    /// what it uses.
    pub fn new(io: T) -> HttpStream<T> {
        HttpStream { io, buf: BytesMut::new(), head_buf: BytesMut::new() }
    }

    /// Consume the wrapper, returning the transport (leftover buffered
    /// bytes are discarded).
    pub fn into_inner(self) -> T {
        self.io
    }

    /// The underlying transport, e.g. as the sink for another stream's
    /// [`pipe_body`](Self::pipe_body).
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.io
    }

    /// Flush the transport (the head/body writers do not flush, so a
    /// relay can push head and body before paying one flush).
    pub async fn flush(&mut self) -> Result<(), HttpError> {
        self.io.flush().await?;
        Ok(())
    }

    /// Read one request head. `Ok(None)` on clean end-of-stream before
    /// any byte of a new message. The returned [`Body`] must be
    /// consumed via [`read_body`](Self::read_body) or
    /// [`pipe_body`](Self::pipe_body) before the next read.
    pub async fn read_request_head(&mut self) -> Result<Option<(RequestHead, Body)>, HttpError> {
        let Some(head_end) = self.fill_until_headers().await? else {
            return Ok(None);
        };
        let head = {
            let text = std::str::from_utf8(&self.buf[..head_end - 4])
                .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
            let mut lines = text.split("\r\n");
            let start = lines.next().ok_or_else(|| HttpError::Malformed("empty head".into()))?;
            let mut parts = start.split_whitespace();
            let method = parts
                .next()
                .ok_or_else(|| HttpError::Malformed("missing method".into()))?
                .to_string();
            let target = parts
                .next()
                .ok_or_else(|| HttpError::Malformed("missing target".into()))?
                .to_string();
            let version = parts
                .next()
                .ok_or_else(|| HttpError::Malformed("missing version".into()))?
                .to_string();
            let headers = parse_headers(lines)?;
            RequestHead { method, target, version, headers }
        };
        self.buf.advance(head_end);
        let body = match body_framing(&head.headers, false)? {
            BodyFraming::None => Body::Full(Bytes::new()),
            framing => Body::Stream(framing),
        };
        Ok(Some((head, body)))
    }

    /// Read one response head, plus the [`Body`] handle to consume.
    pub async fn read_response_head(&mut self) -> Result<(ResponseHead, Body), HttpError> {
        let head_end = self.fill_until_headers().await?.ok_or(HttpError::UnexpectedEof)?;
        let head = {
            let text = std::str::from_utf8(&self.buf[..head_end - 4])
                .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
            let mut lines = text.split("\r\n");
            let start = lines.next().ok_or_else(|| HttpError::Malformed("empty head".into()))?;
            let mut parts = start.splitn(3, ' ');
            let version = parts
                .next()
                .ok_or_else(|| HttpError::Malformed("missing version".into()))?
                .to_string();
            let status: u16 = parts
                .next()
                .ok_or_else(|| HttpError::Malformed("missing status".into()))?
                .parse()
                .map_err(|_| HttpError::Malformed("bad status code".into()))?;
            let reason = parts.next().unwrap_or("").to_string();
            let headers = parse_headers(lines)?;
            ResponseHead { status, reason, version, headers }
        };
        self.buf.advance(head_end);
        let body = match body_framing(&head.headers, true)? {
            BodyFraming::None => Body::Full(Bytes::new()),
            framing => Body::Stream(framing),
        };
        Ok((head, body))
    }

    /// Read one request. `Ok(None)` on clean end-of-stream before any
    /// byte of a new message.
    pub async fn read_request(&mut self) -> Result<Option<Request>, HttpError> {
        let Some((head, body)) = self.read_request_head().await? else {
            return Ok(None);
        };
        let body = self.read_body(body).await?;
        Ok(Some(head.into_request(body)))
    }

    /// Read one response.
    pub async fn read_response(&mut self) -> Result<Response, HttpError> {
        let (head, body) = self.read_response_head().await?;
        let body = self.read_body(body).await?;
        Ok(head.into_response(body))
    }

    /// Materialize a [`Body`] into contiguous bytes. For
    /// `Content-Length` bodies the storage is handed over without
    /// copying the payload (only a pipelined remnant, if any, is
    /// copied back into the read buffer).
    pub async fn read_body(&mut self, body: Body) -> Result<Bytes, HttpError> {
        match body {
            Body::Full(bytes) => Ok(bytes),
            Body::Stream(BodyFraming::None) => Ok(Bytes::new()),
            Body::Stream(BodyFraming::Length(len)) => {
                if len > self.buf.len() {
                    self.buf.reserve(len - self.buf.len());
                }
                self.fill_to(len).await?;
                Ok(self.buf.freeze_to(len))
            }
            Body::Stream(BodyFraming::Chunked) => self.read_chunked_body().await,
            Body::Stream(BodyFraming::Eof) => {
                loop {
                    if self.buf.len() > MAX_BODY_BYTES {
                        return Err(HttpError::BodyTooLarge);
                    }
                    let n = self.io.read_buf(&mut self.buf).await?;
                    if n == 0 {
                        break;
                    }
                }
                let len = self.buf.len();
                Ok(self.buf.freeze_to(len))
            }
        }
    }

    /// Drive a [`Body`] into `sink` without materializing it: decoded
    /// body bytes are written as they arrive, starting with the parse
    /// remnant. Returns the number of decoded bytes forwarded. The
    /// sink is not flushed.
    pub async fn pipe_body<W: AsyncWrite + Unpin>(
        &mut self,
        body: Body,
        sink: &mut W,
    ) -> Result<u64, HttpError> {
        match body {
            Body::Full(bytes) => {
                sink.write_all(&bytes).await?;
                Ok(bytes.len() as u64)
            }
            Body::Stream(BodyFraming::None) => Ok(0),
            Body::Stream(BodyFraming::Length(len)) => {
                self.pipe_exact(len, sink).await?;
                Ok(len as u64)
            }
            Body::Stream(BodyFraming::Chunked) => {
                let mut total: u64 = 0;
                loop {
                    let size = self.read_chunk_size_line().await?;
                    if total.saturating_add(size as u64) > MAX_BODY_BYTES as u64 {
                        return Err(HttpError::BodyTooLarge);
                    }
                    if size == 0 {
                        self.consume_trailers().await?;
                        return Ok(total);
                    }
                    self.pipe_exact(size, sink).await?;
                    self.consume_chunk_crlf().await?;
                    total += size as u64;
                }
            }
            Body::Stream(BodyFraming::Eof) => {
                let mut total: u64 = 0;
                loop {
                    if self.buf.is_empty() {
                        let n = self.io.read_buf(&mut self.buf).await?;
                        if n == 0 {
                            return Ok(total);
                        }
                    }
                    let k = self.buf.len();
                    sink.write_all(&self.buf[..k]).await?;
                    self.buf.advance(k);
                    total += k as u64;
                    if total > MAX_BODY_BYTES as u64 {
                        return Err(HttpError::BodyTooLarge);
                    }
                }
            }
        }
    }

    /// Forward exactly `len` raw bytes from buffer + transport into
    /// `sink`, bounded by the read window (never the full body).
    async fn pipe_exact<W: AsyncWrite + Unpin>(
        &mut self,
        len: usize,
        sink: &mut W,
    ) -> Result<(), HttpError> {
        let mut remaining = len;
        while remaining > 0 {
            if self.buf.is_empty() {
                let n = self.io.read_buf(&mut self.buf).await?;
                if n == 0 {
                    return Err(HttpError::UnexpectedEof);
                }
            }
            let k = remaining.min(self.buf.len());
            sink.write_all(&self.buf[..k]).await?;
            self.buf.advance(k);
            remaining -= k;
        }
        Ok(())
    }

    /// Serialize and send a request (Content-Length is set from the
    /// body). Head and body leave in one gather-write.
    pub async fn write_request(&mut self, req: &Request) -> Result<(), HttpError> {
        self.head_buf.clear();
        let _ = write!(self.head_buf, "{} {} {}\r\n", req.method, req.target, req.version);
        append_headers(&mut self.head_buf, &req.headers, req.body.len());
        write_all_vectored(&mut self.io, &self.head_buf, &req.body).await?;
        self.io.flush().await?;
        Ok(())
    }

    /// Serialize and send a response. Head and body leave in one
    /// gather-write.
    pub async fn write_response(&mut self, resp: &Response) -> Result<(), HttpError> {
        self.head_buf.clear();
        let _ = write!(self.head_buf, "{} {} {}\r\n", resp.version, resp.status, resp.reason);
        append_headers(&mut self.head_buf, &resp.headers, resp.body.len());
        write_all_vectored(&mut self.io, &self.head_buf, &resp.body).await?;
        self.io.flush().await?;
        Ok(())
    }

    /// Serialize and send a request head whose body will follow with
    /// the given framing (relay use; does not flush).
    pub async fn write_request_head(
        &mut self,
        head: &RequestHead,
        framing: BodyFraming,
    ) -> Result<(), HttpError> {
        self.head_buf.clear();
        let _ = write!(self.head_buf, "{} {} {}\r\n", head.method, head.target, head.version);
        append_framed_headers(&mut self.head_buf, &head.headers, framing);
        self.io.write_all(&self.head_buf).await?;
        Ok(())
    }

    /// Serialize and send a response head whose body will follow with
    /// the given framing (relay use; does not flush).
    pub async fn write_response_head(
        &mut self,
        head: &ResponseHead,
        framing: BodyFraming,
    ) -> Result<(), HttpError> {
        self.head_buf.clear();
        let _ = write!(self.head_buf, "{} {} {}\r\n", head.version, head.status, head.reason);
        append_framed_headers(&mut self.head_buf, &head.headers, framing);
        self.io.write_all(&self.head_buf).await?;
        Ok(())
    }

    /// Fill the buffer until a complete header block is present.
    /// Returns the offset just past `\r\n\r\n`, or `None` on clean EOF
    /// with an empty buffer. Each pass scans only the new bytes plus a
    /// 3-byte overlap, so a large head is examined once, not O(n²).
    async fn fill_until_headers(&mut self) -> Result<Option<usize>, HttpError> {
        let mut scanned = 0;
        loop {
            if let Some(pos) = find_from(&self.buf, scanned, b"\r\n\r\n") {
                return Ok(Some(pos + 4));
            }
            scanned = self.buf.len();
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(HttpError::HeadersTooLarge);
            }
            let n = self.io.read_buf(&mut self.buf).await?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::UnexpectedEof);
            }
        }
    }

    /// Read exactly `n` more bytes into the buffer (beyond current len).
    async fn fill_to(&mut self, n: usize) -> Result<(), HttpError> {
        while self.buf.len() < n {
            let read = self.io.read_buf(&mut self.buf).await?;
            if read == 0 {
                return Err(HttpError::UnexpectedEof);
            }
        }
        Ok(())
    }

    /// Read and consume one chunk size line, returning the size.
    async fn read_chunk_size_line(&mut self) -> Result<usize, HttpError> {
        let mut scanned = 0;
        let line_end = loop {
            if let Some(pos) = find_from(&self.buf, scanned, b"\r\n") {
                break pos;
            }
            scanned = self.buf.len();
            let n = self.io.read_buf(&mut self.buf).await?;
            if n == 0 {
                return Err(HttpError::UnexpectedEof);
            }
        };
        let size = {
            let size_text = std::str::from_utf8(&self.buf[..line_end])
                .map_err(|_| HttpError::Malformed("bad chunk size".into()))?;
            let size_text = size_text.split(';').next().unwrap_or("").trim();
            usize::from_str_radix(size_text, 16)
                .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_text:?}")))?
        };
        self.buf.advance(line_end + 2);
        Ok(size)
    }

    /// Consume the CRLF that terminates a chunk payload.
    async fn consume_chunk_crlf(&mut self) -> Result<(), HttpError> {
        self.fill_to(2).await?;
        if &self.buf[..2] != b"\r\n" {
            return Err(HttpError::Malformed("missing chunk CRLF".into()));
        }
        self.buf.advance(2);
        Ok(())
    }

    /// Consume (and ignore) trailers after the final zero chunk, up to
    /// and including the blank line.
    async fn consume_trailers(&mut self) -> Result<(), HttpError> {
        loop {
            let mut scanned = 0;
            let pos = loop {
                if let Some(pos) = find_from(&self.buf, scanned, b"\r\n") {
                    break pos;
                }
                scanned = self.buf.len();
                let n = self.io.read_buf(&mut self.buf).await?;
                if n == 0 {
                    return Err(HttpError::UnexpectedEof);
                }
            };
            self.buf.advance(pos + 2);
            if pos == 0 {
                return Ok(());
            }
        }
    }

    async fn read_chunked_body(&mut self) -> Result<Bytes, HttpError> {
        let mut body = BytesMut::new();
        loop {
            let size = self.read_chunk_size_line().await?;
            if body.len() + size > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge);
            }
            if size == 0 {
                self.consume_trailers().await?;
                return Ok(body.freeze());
            }
            self.fill_to(size + 2).await?;
            body.reserve(size);
            body.extend_from_slice(&self.buf[..size]);
            self.buf.advance(size);
            self.consume_chunk_crlf().await?;
        }
    }
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers, HttpError> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.add(name.trim(), value.trim());
    }
    Ok(headers)
}

fn append_headers(head: &mut BytesMut, headers: &Headers, body_len: usize) {
    let mut wrote_len = false;
    for (name, value) in headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            wrote_len = true;
            let _ = write!(head, "Content-Length: {body_len}\r\n");
        } else {
            let _ = write!(head, "{name}: {value}\r\n");
        }
    }
    if !wrote_len && body_len > 0 {
        let _ = write!(head, "Content-Length: {body_len}\r\n");
    }
    head.extend_from_slice(b"\r\n");
}

/// Serialize headers for a head whose body follows with `framing`.
/// `Length` rewrites/installs `Content-Length` (and drops any stale
/// `Transfer-Encoding`, since the body is re-framed); `Chunked`/`Eof`
/// pass the headers through verbatim.
fn append_framed_headers(head: &mut BytesMut, headers: &Headers, framing: BodyFraming) {
    match framing {
        BodyFraming::None => append_headers(head, headers, 0),
        BodyFraming::Length(len) => {
            let mut wrote_len = false;
            for (name, value) in headers.iter() {
                if name.eq_ignore_ascii_case("content-length") {
                    wrote_len = true;
                    let _ = write!(head, "Content-Length: {len}\r\n");
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    continue;
                } else {
                    let _ = write!(head, "{name}: {value}\r\n");
                }
            }
            if !wrote_len {
                let _ = write!(head, "Content-Length: {len}\r\n");
            }
            head.extend_from_slice(b"\r\n");
        }
        BodyFraming::Chunked | BodyFraming::Eof => {
            for (name, value) in headers.iter() {
                let _ = write!(head, "{name}: {value}\r\n");
            }
            head.extend_from_slice(b"\r\n");
        }
    }
}

/// Write the whole of `head` then `body`, using gather-writes so both
/// land in the transport in one wakeup when it has room.
async fn write_all_vectored<W: AsyncWrite + Unpin>(
    io: &mut W,
    mut head: &[u8],
    mut body: &[u8],
) -> Result<(), HttpError> {
    while !head.is_empty() || !body.is_empty() {
        let n = if head.is_empty() {
            io.write(body).await?
        } else if body.is_empty() {
            io.write(head).await?
        } else {
            io.write_vectored(&[IoSlice::new(head), IoSlice::new(body)]).await?
        };
        if n == 0 {
            return Err(HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "wrote zero bytes of a non-empty message",
            )));
        }
        let from_head = n.min(head.len());
        head = &head[from_head..];
        body = &body[n - from_head..];
    }
    Ok(())
}

/// Incremental delimiter search: resume at `scanned` minus a
/// `needle.len() - 1` overlap, so bytes already examined are not
/// rescanned when more arrive.
fn find_from(haystack: &[u8], scanned: usize, needle: &[u8]) -> Option<usize> {
    let start = scanned.saturating_sub(needle.len() - 1);
    find_subsequence(&haystack[start..], needle).map(|pos| pos + start)
}

/// memchr-style search: skip to candidate first bytes instead of
/// comparing a window at every offset.
fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    let (&first, rest) = needle.split_first()?;
    let mut base = 0;
    while base + needle.len() <= haystack.len() {
        let pos = find_byte(&haystack[base..], first)?;
        let at = base + pos;
        if at + needle.len() > haystack.len() {
            return None;
        }
        if &haystack[at + 1..at + needle.len()] == rest {
            return Some(at);
        }
        base = at + 1;
    }
    None
}

/// First position of `byte` (`iter().position` compiles to a vectorized
/// byte scan; kept as a seam should a real memchr ever be vendored).
fn find_byte(haystack: &[u8], byte: u8) -> Option<usize> {
    haystack.iter().position(|&b| b == byte)
}

/// One-shot: read a request from `reader` (fresh buffer).
pub async fn read_request<R: AsyncRead + Unpin>(reader: R) -> Result<Option<Request>, HttpError> {
    HttpStream::new(ReadOnly(reader)).read_request().await
}

/// One-shot: read a response from `reader`.
pub async fn read_response<R: AsyncRead + Unpin>(reader: R) -> Result<Response, HttpError> {
    HttpStream::new(ReadOnly(reader)).read_response().await
}

/// One-shot: write a request to `writer`.
pub async fn write_request<W: AsyncWrite + Unpin>(
    writer: W,
    req: &Request,
) -> Result<(), HttpError> {
    HttpStream::new(WriteOnly(writer)).write_request(req).await
}

/// One-shot: write a response to `writer`.
pub async fn write_response<W: AsyncWrite + Unpin>(
    writer: W,
    resp: &Response,
) -> Result<(), HttpError> {
    HttpStream::new(WriteOnly(writer)).write_response(resp).await
}

/// Adapter giving a read-only transport a no-op write half.
struct ReadOnly<R>(R);

impl<R: AsyncRead + Unpin> AsyncRead for ReadOnly<R> {
    fn poll_read(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
        buf: &mut tokio::io::ReadBuf<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.0).poll_read(cx, buf)
    }
}

impl<R: Unpin> AsyncWrite for ReadOnly<R> {
    fn poll_write(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
        _buf: &[u8],
    ) -> std::task::Poll<std::io::Result<usize>> {
        std::task::Poll::Ready(Err(std::io::Error::other("read-only transport")))
    }
    fn poll_flush(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::task::Poll::Ready(Ok(()))
    }
    fn poll_shutdown(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::task::Poll::Ready(Ok(()))
    }
}

/// Adapter giving a write-only transport an EOF read half.
struct WriteOnly<W>(W);

impl<W: Unpin> AsyncRead for WriteOnly<W> {
    fn poll_read(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
        _buf: &mut tokio::io::ReadBuf<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::task::Poll::Ready(Ok(())) // immediate EOF
    }
}

impl<W: AsyncWrite + Unpin> AsyncWrite for WriteOnly<W> {
    fn poll_write(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
        buf: &[u8],
    ) -> std::task::Poll<std::io::Result<usize>> {
        std::pin::Pin::new(&mut self.0).poll_write(cx, buf)
    }
    fn poll_flush(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.0).poll_flush(cx)
    }
    fn poll_shutdown(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.0).poll_shutdown(cx)
    }
    fn poll_write_vectored(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
        bufs: &[IoSlice<'_>],
    ) -> std::task::Poll<std::io::Result<usize>> {
        std::pin::Pin::new(&mut self.0).poll_write_vectored(cx, bufs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn request_round_trip() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        let mut req = Request::get("/q1/index.m3u8");
        req.headers.set("Host", "origin");
        c.write_request(&req).await.unwrap();
        let got = s.read_request().await.unwrap().unwrap();
        assert_eq!(got.method, "GET");
        assert_eq!(got.target, "/q1/index.m3u8");
        assert_eq!(got.headers.get("host"), Some("origin"));
        assert!(got.body.is_empty());
    }

    #[tokio::test]
    async fn response_round_trip_with_body() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        let body = Bytes::from(vec![7u8; 100_000]);
        let resp = Response::ok("video/mp2t", body.clone());
        tokio::spawn(async move {
            s.write_response(&resp).await.unwrap();
        });
        let got = c.read_response().await.unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.headers.content_length(), Some(100_000));
        assert_eq!(got.body, body);
    }

    #[tokio::test]
    async fn post_round_trip() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        let req =
            Request::post("/upload", "application/octet-stream", Bytes::from_static(b"pixels"));
        c.write_request(&req).await.unwrap();
        let got = s.read_request().await.unwrap().unwrap();
        assert_eq!(got.method, "POST");
        assert_eq!(&got.body[..], b"pixels");
    }

    #[tokio::test]
    async fn sequential_messages_share_buffer() {
        let (client, server) = tokio::io::duplex(64 * 1024);
        let mut c = HttpStream::new(client);
        let mut s = HttpStream::new(server);
        for i in 0..3 {
            c.write_request(&Request::get(format!("/seg{i}.ts"))).await.unwrap();
        }
        for i in 0..3 {
            let got = s.read_request().await.unwrap().unwrap();
            assert_eq!(got.target, format!("/seg{i}.ts"));
        }
    }

    #[tokio::test]
    async fn clean_eof_returns_none() {
        let (client, server) = tokio::io::duplex(1024);
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(s.read_request().await.unwrap().is_none());
    }

    #[tokio::test]
    async fn truncated_message_is_an_error() {
        let (mut client, server) = tokio::io::duplex(1024);
        client.write_all(b"GET /x HTTP/1.1\r\nContent-").await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::UnexpectedEof)));
    }

    #[tokio::test]
    async fn truncated_body_is_an_error() {
        let (mut client, server) = tokio::io::duplex(1024);
        client.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::UnexpectedEof)));
    }

    #[tokio::test]
    async fn malformed_start_line_rejected() {
        let (mut client, server) = tokio::io::duplex(1024);
        client.write_all(b"GET\r\n\r\n").await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::Malformed(_))));
    }

    #[tokio::test]
    async fn chunked_response_decoded() {
        let (mut client, server) = tokio::io::duplex(1024);
        client
            .write_all(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
            )
            .await
            .unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(&resp.body[..], b"Wikipedia");
    }

    #[tokio::test]
    async fn chunked_with_extension_and_trailer() {
        let (mut client, server) = tokio::io::duplex(1024);
        client
            .write_all(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nX-T: v\r\n\r\n",
            )
            .await
            .unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(&resp.body[..], b"abc");
    }

    #[tokio::test]
    async fn close_delimited_body() {
        let (mut client, server) = tokio::io::duplex(1024);
        client
            .write_all(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nstream-until-eof")
            .await
            .unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(&resp.body[..], b"stream-until-eof");
    }

    #[tokio::test]
    async fn oversized_headers_rejected() {
        let (mut client, server) = tokio::io::duplex(256 * 1024);
        let mut msg = b"GET / HTTP/1.1\r\n".to_vec();
        msg.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        tokio::spawn(async move {
            let _ = client.write_all(&msg).await;
        });
        let mut s = HttpStream::new(server);
        assert!(matches!(s.read_request().await, Err(HttpError::HeadersTooLarge)));
    }

    #[tokio::test]
    async fn one_shot_helpers() {
        let mut buf = Vec::new();
        let req = Request::post("/p", "text/plain", Bytes::from_static(b"hi"));
        write_request(&mut buf, &req).await.unwrap();
        let got = read_request(&buf[..]).await.unwrap().unwrap();
        assert_eq!(got.body, req.body);

        let mut buf = Vec::new();
        write_response(&mut buf, &Response::not_found()).await.unwrap();
        let got = read_response(&buf[..]).await.unwrap();
        assert_eq!(got.status, 404);
    }

    #[tokio::test]
    async fn length_body_is_zero_copy_from_read_buffer() {
        let (mut client, server) = tokio::io::duplex(64 * 1024);
        let payload = vec![5u8; 10_000];
        let mut msg = b"HTTP/1.1 200 OK\r\nContent-Length: 10000\r\n\r\n".to_vec();
        msg.extend_from_slice(&payload);
        client.write_all(&msg).await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(&resp.body[..], &payload[..]);
    }

    #[tokio::test]
    async fn head_then_streamed_body_matches_buffered() {
        let (mut client, server) = tokio::io::duplex(64 * 1024);
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let mut msg = b"HTTP/1.1 200 OK\r\nContent-Length: 50000\r\n\r\n".to_vec();
        msg.extend_from_slice(&payload);
        tokio::spawn(async move {
            client.write_all(&msg).await.unwrap();
        });
        let mut s = HttpStream::new(server);
        let (head, body) = s.read_response_head().await.unwrap();
        assert_eq!(head.status, 200);
        assert!(matches!(body, Body::Stream(BodyFraming::Length(50_000))));
        let mut sink = Vec::new();
        let piped = s.pipe_body(body, &mut sink).await.unwrap();
        assert_eq!(piped, 50_000);
        assert_eq!(sink, payload);
    }

    #[tokio::test]
    async fn streamed_chunked_body_decodes_and_counts() {
        let (mut client, server) = tokio::io::duplex(1024);
        client
            .write_all(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\nX-T: v\r\n\r\n",
            )
            .await
            .unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let (_, body) = s.read_response_head().await.unwrap();
        let mut sink = Vec::new();
        let piped = s.pipe_body(body, &mut sink).await.unwrap();
        assert_eq!(piped, 9);
        assert_eq!(sink, b"Wikipedia");
    }

    #[tokio::test]
    async fn relay_heads_reframe_chunked_to_length() {
        // A chunked upstream body materialized by a relay goes back out
        // Content-Length framed, with the stale TE header dropped.
        let head = ResponseHead {
            status: 200,
            reason: "OK".into(),
            version: "HTTP/1.1".into(),
            headers: {
                let mut h = Headers::new();
                h.set("Transfer-Encoding", "chunked");
                h.set("Content-Type", "video/mp2t");
                h
            },
        };
        let (client, server) = tokio::io::duplex(4096);
        let mut c = HttpStream::new(client);
        c.write_response_head(&head, BodyFraming::Length(3)).await.unwrap();
        c.get_mut().write_all(b"abc").await.unwrap();
        c.flush().await.unwrap();
        drop(c);
        let mut s = HttpStream::new(server);
        let resp = s.read_response().await.unwrap();
        assert_eq!(resp.headers.get("transfer-encoding"), None);
        assert_eq!(resp.headers.content_length(), Some(3));
        assert_eq!(&resp.body[..], b"abc");
    }

    #[tokio::test]
    async fn pipelined_messages_survive_body_handoff() {
        // Two responses written back to back: freezing the first body
        // must leave the second message's bytes in the buffer.
        let (mut client, server) = tokio::io::duplex(64 * 1024);
        let mut msg = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nfirst".to_vec();
        msg.extend_from_slice(b"HTTP/1.1 200 OK\r\nContent-Length: 6\r\n\r\nsecond");
        client.write_all(&msg).await.unwrap();
        drop(client);
        let mut s = HttpStream::new(server);
        let a = s.read_response().await.unwrap();
        let b = s.read_response().await.unwrap();
        assert_eq!(&a.body[..], b"first");
        assert_eq!(&b.body[..], b"second");
    }
}
