//! HTTP error type.

use std::fmt;

/// Errors produced while reading or writing HTTP messages.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport error.
    Io(std::io::Error),
    /// The peer closed the connection mid-message.
    UnexpectedEof,
    /// The start line or a header could not be parsed.
    Malformed(String),
    /// Headers exceeded [`crate::MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// Body exceeded [`crate::MAX_BODY_BYTES`] or declared an invalid
    /// length.
    BodyTooLarge,
    /// A multipart body was malformed.
    BadMultipart(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "I/O error: {e}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::Malformed(s) => write!(f, "malformed HTTP message: {s}"),
            HttpError::HeadersTooLarge => write!(f, "header block too large"),
            HttpError::BodyTooLarge => write!(f, "body too large or invalid length"),
            HttpError::BadMultipart(s) => write!(f, "malformed multipart body: {s}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(HttpError::UnexpectedEof.to_string().contains("closed"));
        assert!(HttpError::Malformed("x".into()).to_string().contains("x"));
        assert!(HttpError::HeadersTooLarge.to_string().contains("header"));
        let io: HttpError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        use std::error::Error;
        assert!(io.source().is_some());
        assert!(HttpError::BodyTooLarge.source().is_none());
    }
}
