//! # threegol-http
//!
//! A minimal asynchronous HTTP/1.1 implementation for the 3GOL live
//! prototype (`threegol-proxy`), built directly on tokio's async I/O
//! traits — no external HTTP stack.
//!
//! The paper's applications are plain HTTP (§4.1): the VoD client
//! issues one GET per HLS segment, the uploader issues multipart POST
//! requests, and the device component pipes requests from the Wi-Fi
//! side to the 3G side. This crate provides exactly that subset,
//! implemented carefully:
//!
//! * request/response parsing with incremental buffered reads,
//!   case-insensitive headers, `Content-Length` and chunked bodies;
//! * serialization of requests and responses;
//! * `multipart/form-data` encoding/decoding for photo uploads.
//!
//! Hard limits guard against malformed peers: 64 KiB of headers,
//! 256 MiB bodies.

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod headers;
pub mod multipart;

pub use codec::{
    read_request, read_response, write_request, write_response, Body, BodyFraming, HttpStream,
    Request, RequestHead, Response, ResponseHead,
};
pub use error::HttpError;
pub use headers::Headers;
pub use multipart::{encode_multipart, parse_multipart, Part};

/// Maximum accepted header block, bytes.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Maximum accepted body, bytes.
pub const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;
