//! `multipart/form-data` encoding and decoding (RFC 7578 subset).
//!
//! The paper's uplink application mirrors the native Facebook / Flickr
//! / Picasa clients: "all native clients of the aforementioned
//! applications use multipart HTTP POST requests to upload the
//! pictures" (§4.1). The 3GOL uploader builds one multipart POST per
//! photo and the scheduler spreads the POSTs over the paths.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::HttpError;

/// One part of a multipart body.
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    /// Form field name.
    pub name: String,
    /// Attached filename, if any.
    pub filename: Option<String>,
    /// Content type of the part.
    pub content_type: String,
    /// Payload.
    pub data: Bytes,
}

impl Part {
    /// A JPEG photo part, as the paper's photo uploader produces.
    pub fn photo(name: impl Into<String>, filename: impl Into<String>, data: Bytes) -> Part {
        Part {
            name: name.into(),
            filename: Some(filename.into()),
            content_type: "image/jpeg".into(),
            data,
        }
    }
}

/// Encode parts into a multipart/form-data body with `boundary`.
pub fn encode_multipart(parts: &[Part], boundary: &str) -> Bytes {
    let mut out = BytesMut::new();
    for part in parts {
        out.put_slice(format!("--{boundary}\r\n").as_bytes());
        match &part.filename {
            Some(f) => out.put_slice(
                format!(
                    "Content-Disposition: form-data; name=\"{}\"; filename=\"{}\"\r\n",
                    part.name, f
                )
                .as_bytes(),
            ),
            None => out.put_slice(
                format!("Content-Disposition: form-data; name=\"{}\"\r\n", part.name).as_bytes(),
            ),
        }
        out.put_slice(format!("Content-Type: {}\r\n\r\n", part.content_type).as_bytes());
        out.put_slice(&part.data);
        out.put_slice(b"\r\n");
    }
    out.put_slice(format!("--{boundary}--\r\n").as_bytes());
    out.freeze()
}

/// The `Content-Type` header value for a multipart body.
pub fn multipart_content_type(boundary: &str) -> String {
    format!("multipart/form-data; boundary={boundary}")
}

/// Extract the boundary from a `Content-Type` header value.
pub fn boundary_from_content_type(value: &str) -> Option<&str> {
    value
        .split(';')
        .map(str::trim)
        .find_map(|attr| attr.strip_prefix("boundary="))
        .map(|b| b.trim_matches('"'))
}

/// Decode a multipart/form-data body.
pub fn parse_multipart(body: &[u8], boundary: &str) -> Result<Vec<Part>, HttpError> {
    let delim = format!("--{boundary}");
    let mut parts = Vec::new();
    let mut rest = body;

    // Skip any preamble up to the first delimiter.
    let first = find(rest, delim.as_bytes())
        .ok_or_else(|| HttpError::BadMultipart("missing first boundary".into()))?;
    rest = &rest[first + delim.len()..];

    loop {
        if rest.starts_with(b"--") {
            return Ok(parts); // closing delimiter
        }
        rest = strip_crlf(rest)?;
        // Part headers.
        let head_end = find(rest, b"\r\n\r\n")
            .ok_or_else(|| HttpError::BadMultipart("missing part header end".into()))?;
        let head = std::str::from_utf8(&rest[..head_end])
            .map_err(|_| HttpError::BadMultipart("non-UTF-8 part headers".into()))?;
        let mut name = String::new();
        let mut filename = None;
        let mut content_type = "application/octet-stream".to_string();
        for line in head.split("\r\n") {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("content-disposition:") {
                for attr in line.split(';').map(str::trim) {
                    if let Some(v) = attr.strip_prefix("name=") {
                        name = v.trim_matches('"').to_string();
                    } else if let Some(v) = attr.strip_prefix("filename=") {
                        filename = Some(v.trim_matches('"').to_string());
                    }
                }
            } else if let Some(v) = lower.strip_prefix("content-type:") {
                content_type = v.trim().to_string();
                // Preserve original casing of the value.
                if let Some(orig) = line.split_once(':').map(|(_, v)| v.trim()) {
                    content_type = orig.to_string();
                }
            }
        }
        rest = &rest[head_end + 4..];
        // Part data runs to the next delimiter preceded by CRLF.
        let marker = format!("\r\n{delim}");
        let data_end = find(rest, marker.as_bytes())
            .ok_or_else(|| HttpError::BadMultipart("unterminated part".into()))?;
        parts.push(Part {
            name,
            filename,
            content_type,
            data: Bytes::copy_from_slice(&rest[..data_end]),
        });
        rest = &rest[data_end + marker.len()..];
    }
}

fn strip_crlf(buf: &[u8]) -> Result<&[u8], HttpError> {
    buf.strip_prefix(b"\r\n")
        .ok_or_else(|| HttpError::BadMultipart("missing CRLF after boundary".into()))
}

/// First occurrence of `needle`, scanning for its first byte with the
/// vectorized `iter().position` and only then comparing the tail. The
/// naive `windows().position(|w| w == needle)` walks the haystack a
/// window at a time — ~1 ns/byte, which at a 100 kB photo body per
/// upload was the single hottest poll in fleet runs.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    let (&first, rest) = needle.split_first()?;
    let last = haystack.len().checked_sub(needle.len())?;
    let mut base = 0;
    while base <= last {
        let pos = base + haystack[base..=last].iter().position(|&b| b == first)?;
        if haystack[pos + 1..pos + needle.len()] == *rest {
            return Some(pos);
        }
        base = pos + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_photo() {
        let part = Part::photo("file", "IMG_0001.jpg", Bytes::from(vec![0xFFu8; 5000]));
        let body = encode_multipart(std::slice::from_ref(&part), "XyZ123");
        let parsed = parse_multipart(&body, "XyZ123").unwrap();
        assert_eq!(parsed, vec![part]);
    }

    #[test]
    fn round_trip_multiple_parts() {
        let parts = vec![
            Part::photo("file1", "a.jpg", Bytes::from_static(b"aaa")),
            Part {
                name: "caption".into(),
                filename: None,
                content_type: "text/plain".into(),
                data: Bytes::from_static(b"holiday"),
            },
            Part::photo("file2", "b.jpg", Bytes::from_static(b"bbbb")),
        ];
        let body = encode_multipart(&parts, "bnd");
        let parsed = parse_multipart(&body, "bnd").unwrap();
        assert_eq!(parsed, parts);
    }

    #[test]
    fn binary_data_with_crlf_survives() {
        // Data containing CRLF and dashes must not confuse the parser
        // (only CRLF + boundary terminates a part).
        let data = Bytes::from_static(b"line1\r\nline2--almost\r\n--but-not");
        let part = Part::photo("f", "x.bin", data);
        let body = encode_multipart(std::slice::from_ref(&part), "q9q9q9");
        let parsed = parse_multipart(&body, "q9q9q9").unwrap();
        assert_eq!(parsed[0].data, part.data);
    }

    #[test]
    fn content_type_helpers() {
        let ct = multipart_content_type("abc");
        assert_eq!(ct, "multipart/form-data; boundary=abc");
        assert_eq!(boundary_from_content_type(&ct), Some("abc"));
        assert_eq!(boundary_from_content_type("multipart/form-data; boundary=\"q\""), Some("q"));
        assert_eq!(boundary_from_content_type("text/plain"), None);
    }

    #[test]
    fn malformed_bodies_rejected() {
        assert!(matches!(
            parse_multipart(b"no boundary here", "b"),
            Err(HttpError::BadMultipart(_))
        ));
        assert!(matches!(
            parse_multipart(
                b"--b\r\nContent-Disposition: form-data; name=\"x\"\r\n\r\ndata-without-end",
                "b"
            ),
            Err(HttpError::BadMultipart(_))
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary binary payloads survive the multipart round
            /// trip (the photo uploader carries raw JPEG bytes).
            #[test]
            fn arbitrary_payloads_round_trip(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..2000),
                    1..5,
                ),
            ) {
                let parts: Vec<Part> = payloads
                    .into_iter()
                    .enumerate()
                    .map(|(i, data)| Part::photo(
                        format!("file{i}"),
                        format!("IMG_{i:04}.jpg"),
                        Bytes::from(data),
                    ))
                    .collect();
                let body = encode_multipart(&parts, "prop-boundary-91x");
                let parsed = parse_multipart(&body, "prop-boundary-91x").unwrap();
                prop_assert_eq!(parsed, parts);
            }
        }
    }

    #[test]
    fn empty_part_list() {
        let body = encode_multipart(&[], "b");
        let parsed = parse_multipart(&body, "b").unwrap();
        assert!(parsed.is_empty());
    }
}
