//! Case-insensitive HTTP header map (order-preserving).

/// An ordered, case-insensitive header collection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header set.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Append a header (does not replace existing values).
    pub fn add(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replace all values of `name` with one `value`.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.into()));
    }

    /// First value of `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Remove all values of `name`.
    pub fn remove(&mut self, name: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// `Content-Length`, parsed.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length").and_then(|v| v.trim().parse().ok())
    }

    /// Whether `Transfer-Encoding: chunked` applies.
    pub fn is_chunked(&self) -> bool {
        self.get("transfer-encoding").is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get() {
        let mut h = Headers::new();
        h.add("Content-Type", "text/plain");
        assert_eq!(h.get("content-type"), Some("text/plain"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/plain"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn set_replaces_add_appends() {
        let mut h = Headers::new();
        h.add("X-A", "1");
        h.add("x-a", "2");
        assert_eq!(h.len(), 2);
        h.set("X-A", "3");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("x-a"), Some("3"));
        h.remove("x-a");
        assert!(h.is_empty());
    }

    #[test]
    fn content_length_and_chunked() {
        let mut h = Headers::new();
        h.set("Content-Length", " 42 ");
        assert_eq!(h.content_length(), Some(42));
        h.set("Content-Length", "nope");
        assert_eq!(h.content_length(), None);
        h.set("Transfer-Encoding", "Chunked");
        assert!(h.is_chunked());
    }

    #[test]
    fn iteration_preserves_order() {
        let mut h = Headers::new();
        h.add("A", "1");
        h.add("B", "2");
        let v: Vec<(&str, &str)> = h.iter().collect();
        assert_eq!(v, vec![("A", "1"), ("B", "2")]);
    }
}
