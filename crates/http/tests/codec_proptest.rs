//! Property tests for the HTTP codec: arbitrary header sets and body
//! framings, delivered through adversarial read boundaries, must
//! decode to byte-identical bodies through both the buffered path
//! (`read_response`) and the streaming path (`read_response_head` +
//! `read_body` / `pipe_body`).
//!
//! The read boundaries are the point: the incremental head scan, the
//! chunk-size-line parser, and the body pipe all keep cursors across
//! partial reads, so the encoder's output is chopped into scripted
//! fragments — down to single bytes — that deliberately split the
//! `\r\n\r\n` terminator, chunk size lines, and trailer blocks.

use std::pin::Pin;
use std::task::{Context, Poll};

use proptest::prelude::*;

use bytes::Bytes;
use threegol_http::codec::{Body, BodyFraming, HttpStream};
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};

/// How the generated body is framed on the wire.
#[derive(Debug, Clone)]
enum Framing {
    /// `Content-Length: n`.
    Length,
    /// `Transfer-Encoding: chunked`, with scripted chunk sizes, an
    /// optional extension on each size line, and optional trailers.
    Chunked { chunk_sizes: Vec<usize>, extensions: bool, trailers: bool },
    /// `Connection: close`, body runs to EOF.
    Eof,
}

/// Serves scripted bytes with scripted read-boundary sizes, then EOF.
/// The write half discards (the decoder under test never writes).
struct ChoppedIo {
    data: Vec<u8>,
    pos: usize,
    cuts: Vec<usize>,
    next_cut: usize,
}

impl ChoppedIo {
    fn new(data: Vec<u8>, cuts: Vec<usize>) -> ChoppedIo {
        ChoppedIo { data, pos: 0, cuts, next_cut: 0 }
    }
}

impl AsyncRead for ChoppedIo {
    fn poll_read(
        mut self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let this = &mut *self;
        if this.pos >= this.data.len() {
            return Poll::Ready(Ok(())); // EOF
        }
        let cut = this.cuts[this.next_cut % this.cuts.len()].max(1);
        this.next_cut += 1;
        let n = cut.min(this.data.len() - this.pos).min(buf.remaining());
        buf.put_slice(&this.data[this.pos..this.pos + n]);
        this.pos += n;
        Poll::Ready(Ok(()))
    }
}

impl AsyncWrite for ChoppedIo {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        Poll::Ready(Ok(buf.len()))
    }
    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }
    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }
}

/// Encode a 200 response carrying `body` under the given framing.
fn encode(headers: &[(String, String)], body: &[u8], framing: &Framing) -> Vec<u8> {
    let mut wire = Vec::new();
    wire.extend_from_slice(b"HTTP/1.1 200 OK\r\n");
    for (name, value) in headers {
        wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    match framing {
        Framing::Length => {
            wire.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
            wire.extend_from_slice(body);
        }
        Framing::Chunked { chunk_sizes, extensions, trailers } => {
            wire.extend_from_slice(b"Transfer-Encoding: chunked\r\n\r\n");
            let mut rest = body;
            let mut k = 0usize;
            while !rest.is_empty() {
                let take = chunk_sizes[k % chunk_sizes.len()].clamp(1, rest.len());
                k += 1;
                if *extensions {
                    wire.extend_from_slice(format!("{take:x};ext=val{k}\r\n").as_bytes());
                } else {
                    wire.extend_from_slice(format!("{take:x}\r\n").as_bytes());
                }
                wire.extend_from_slice(&rest[..take]);
                wire.extend_from_slice(b"\r\n");
                rest = &rest[take..];
            }
            wire.extend_from_slice(b"0\r\n");
            if *trailers {
                wire.extend_from_slice(b"X-Checksum: deadbeef\r\nX-Seen-Chunks: many\r\n");
            }
            wire.extend_from_slice(b"\r\n");
        }
        Framing::Eof => {
            wire.extend_from_slice(b"Connection: close\r\n\r\n");
            wire.extend_from_slice(body);
        }
    }
    wire
}

/// Characters drawn for generated header names (always prefixed with
/// `x` so a name can never be empty or collide with a framing header).
const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-";
/// Characters drawn for header values: printable, no spaces, so the
/// parser's whitespace trimming cannot change the value.
const VALUE_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_./=!(),*+";

fn pick(charset: &[u8], indices: &[usize]) -> String {
    indices.iter().map(|&i| charset[i % charset.len()] as char).collect()
}

fn header_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..NAME_CHARS.len(), 1..12),
            proptest::collection::vec(0usize..VALUE_CHARS.len(), 1..24),
        ),
        0..6,
    )
    .prop_map(|hs| {
        let mut seen = std::collections::HashSet::new();
        hs.into_iter()
            .map(|(n, v)| (format!("x{}", pick(NAME_CHARS, &n)), pick(VALUE_CHARS, &v)))
            .filter(|(n, _)| seen.insert(n.to_ascii_lowercase()))
            .collect()
    })
}

fn framing_strategy() -> impl Strategy<Value = Framing> {
    (0u8..4, proptest::collection::vec(1usize..200, 1..5), any::<bool>(), any::<bool>()).prop_map(
        |(kind, chunk_sizes, extensions, trailers)| match kind {
            0 => Framing::Length,
            1 | 2 => Framing::Chunked { chunk_sizes, extensions, trailers },
            _ => Framing::Eof,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The buffered reader, the head+`read_body` pair, and the
    /// head+`pipe_body` pair all recover the exact body bytes no
    /// matter where the transport fragments the stream.
    #[test]
    fn all_paths_recover_the_exact_body(
        headers in header_strategy(),
        body in proptest::collection::vec(any::<u8>(), 0..1500),
        framing in framing_strategy(),
        cuts in proptest::collection::vec(1usize..striped_max(), 1..8),
    ) {
        let wire = encode(&headers, &body, &framing);

        // Buffered path.
        let got = tokio::runtime::block_on(async {
            let mut http = HttpStream::new(ChoppedIo::new(wire.clone(), cuts.clone()));
            http.read_response().await
        }).unwrap();
        prop_assert_eq!(got.status, 200);
        prop_assert_eq!(&got.body[..], &body[..]);
        for (name, value) in &headers {
            prop_assert_eq!(got.headers.get(name), Some(value.as_str()));
        }

        // Streaming path, materialized.
        let bytes = tokio::runtime::block_on(async {
            let mut http = HttpStream::new(ChoppedIo::new(wire.clone(), cuts.clone()));
            let (head, b) = http.read_response_head().await?;
            assert_eq!(head.status, 200);
            match (&framing, &b) {
                (Framing::Length, Body::Stream(BodyFraming::Length(n))) => {
                    assert_eq!(*n, body.len());
                }
                (Framing::Length, Body::Full(full)) => assert_eq!(full.len(), body.len()),
                (Framing::Chunked { .. }, b) => {
                    assert!(matches!(b, Body::Stream(BodyFraming::Chunked)));
                }
                (Framing::Eof, b) => assert!(matches!(b, Body::Stream(BodyFraming::Eof))),
                (f, b) => panic!("unexpected body {b:?} for framing {f:?}"),
            }
            http.read_body(b).await
        }).unwrap();
        prop_assert_eq!(&bytes[..], &body[..]);

        // Streaming path, piped into a sink.
        let (piped, count) = tokio::runtime::block_on(async {
            let mut http = HttpStream::new(ChoppedIo::new(wire.clone(), cuts.clone()));
            let (_, b) = http.read_response_head().await?;
            let mut sink: Vec<u8> = Vec::new();
            let n = http.pipe_body(b, &mut sink).await?;
            Ok::<_, threegol_http::HttpError>((sink, n))
        }).unwrap();
        prop_assert_eq!(&piped[..], &body[..]);
        prop_assert_eq!(count, body.len() as u64);
    }

    /// A `Content-Length` request survives the same fragmentation on
    /// the server side (requests never use EOF framing).
    #[test]
    fn fragmented_request_round_trips(
        body in proptest::collection::vec(any::<u8>(), 0..800),
        cuts in proptest::collection::vec(1usize..striped_max(), 1..6),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST /upload HTTP/1.1\r\n");
        wire.extend_from_slice(b"Content-Type: application/octet-stream\r\n");
        wire.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
        wire.extend_from_slice(&body);

        let got = tokio::runtime::block_on(async {
            let mut http = HttpStream::new(ChoppedIo::new(wire, cuts));
            http.read_request().await
        }).unwrap().unwrap();
        prop_assert_eq!(got.method, "POST");
        prop_assert_eq!(&got.body[..], &body[..]);
        let _ = Bytes::from(body); // keep the Bytes import honest
    }
}

/// Upper bound for scripted read sizes: a mix of 1-byte reads and
/// fragments comparable to a head or chunk line, so cuts land inside
/// `\r\n\r\n`, chunk size lines, and trailer blocks.
fn striped_max() -> usize {
    48
}
