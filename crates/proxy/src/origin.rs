//! The origin web server: HLS VoD assets, photo-upload endpoint and
//! the §3 probe files, served over plain HTTP/1.1 on a TCP listener.
//!
//! The asset tree mirrors the paper's test setup: a master playlist at
//! `/master.m3u8`, per-quality media playlists at `/q{i}/index.m3u8`,
//! segments at `/q{i}/seg00000.ts` …, a 2 MB probe at `/probe.bin`,
//! and `POST /upload` accepting multipart photo sets.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::net::{TcpListener, TcpStream};

use threegol_hls::{segment_video, MasterPlaylist, MediaPlaylist, VideoQuality, VideoSpec};
use threegol_http::codec::HttpStream;
use threegol_http::multipart::{boundary_from_content_type, parse_multipart};
use threegol_http::{Request, Response};

/// A received photo upload.
#[derive(Debug, Clone)]
pub struct ReceivedUpload {
    /// Filenames in the multipart body.
    pub filenames: Vec<String>,
    /// Total payload bytes.
    pub total_bytes: usize,
}

/// The origin server: generated in-memory assets + upload sink.
pub struct OriginServer {
    /// The asset tree, shared process-wide between every origin built
    /// from the same parameters (see [`cached_assets`]): a fleet of
    /// identical homes pays for the ~2.6 MB of playlists, segments and
    /// probe body once, not once per home.
    assets: Arc<HashMap<String, Bytes>>,
    uploads: Mutex<Vec<ReceivedUpload>>,
    requests_served: AtomicU64,
}

/// Build (or fetch) the asset tree for one parameter set. Keyed by the
/// exact bit patterns of the inputs, so only genuinely identical trees
/// are shared; bodies are `Bytes`, so concurrent servers on different
/// worker threads serve views of one allocation.
fn cached_assets(
    ladder: &[VideoQuality],
    duration_secs: f64,
    segment_secs: f64,
) -> Arc<HashMap<String, Bytes>> {
    type AssetCache = Mutex<HashMap<String, Arc<HashMap<String, Bytes>>>>;
    static CACHE: std::sync::OnceLock<AssetCache> = std::sync::OnceLock::new();
    let mut key = format!("{}:{}", duration_secs.to_bits(), segment_secs.to_bits());
    for q in ladder {
        use std::fmt::Write;
        let _ = write!(key, "|{}={}", q.label, q.bitrate_bps.to_bits());
    }
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(assets) = cache.lock().get(&key) {
        return Arc::clone(assets);
    }
    // Built outside the lock: a miss costs ~2.6 MB of memset and the
    // playlist rendering, and a racing duplicate build is benign (one
    // winner is kept).
    let built = Arc::new(build_assets(ladder, duration_secs, segment_secs));
    Arc::clone(cache.lock().entry(key).or_insert(built))
}

/// Render the asset tree: playlists, deterministic filler segments and
/// the 2 MB probe.
fn build_assets(
    ladder: &[VideoQuality],
    duration_secs: f64,
    segment_secs: f64,
) -> HashMap<String, Bytes> {
    let mut assets = HashMap::new();
    let master = MasterPlaylist::from_ladder(ladder);
    assets.insert("/master.m3u8".to_string(), Bytes::from(master.to_m3u8()));
    for (i, q) in ladder.iter().enumerate() {
        let spec = VideoSpec { duration_secs, segment_secs, quality: q.clone() };
        let segments = segment_video(&spec);
        let media = MediaPlaylist::from_segments(&segments);
        assets.insert(format!("/q{}/index.m3u8", i + 1), Bytes::from(media.to_m3u8()));
        for seg in &segments {
            // Deterministic filler payload of the right size.
            let body = vec![(seg.index % 251) as u8; seg.size_bytes as usize];
            assets.insert(format!("/q{}/{}", i + 1, seg.uri), Bytes::from(body));
        }
    }
    assets.insert("/probe.bin".to_string(), Bytes::from(vec![0xAB; 2_000_000]));
    assets
}

impl OriginServer {
    /// Serve the asset tree for the paper's test video (`duration_secs`
    /// at every quality of the ladder) plus a 2 MB probe file. The
    /// tree itself comes from a process-wide cache shared by every
    /// origin with the same parameters.
    pub fn new(ladder: &[VideoQuality], duration_secs: f64, segment_secs: f64) -> OriginServer {
        OriginServer {
            assets: cached_assets(ladder, duration_secs, segment_secs),
            uploads: Mutex::new(Vec::new()),
            requests_served: AtomicU64::new(0),
        }
    }

    /// A small origin for fast tests: short video, tiny probe.
    pub fn small_for_tests() -> OriginServer {
        let ladder = vec![VideoQuality::new("Q1", 64e3)];
        let mut o = OriginServer::new(&ladder, 10.0, 2.0);
        // This origin's tree diverges from the shared one: un-share
        // before mutating (refcount-bump copies of the bodies).
        Arc::make_mut(&mut o.assets)
            .insert("/probe.bin".to_string(), Bytes::from(vec![0xAB; 64_000]));
        o
    }

    /// Bind a listener on `addr` (use port 0 for an ephemeral port) and
    /// serve forever. Returns the bound address and the join handle.
    pub async fn spawn(
        self: Arc<Self>,
        addr: &str,
    ) -> std::io::Result<(SocketAddr, tokio::task::JoinHandle<()>)> {
        let listener = TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        let handle = tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else { break };
                let server = Arc::clone(&self);
                tokio::spawn(async move {
                    let _ = server.serve_connection(stream).await;
                });
            }
        });
        Ok((local, handle))
    }

    /// Serve one connection until the peer closes it.
    pub async fn serve_connection(
        &self,
        stream: TcpStream,
    ) -> Result<(), threegol_http::HttpError> {
        stream.set_nodelay(true).ok();
        let mut http = HttpStream::new(stream);
        while let Some(req) = http.read_request().await? {
            let resp = self.handle(&req);
            http.write_response(&resp).await?;
        }
        Ok(())
    }

    /// Route one request.
    pub fn handle(&self, req: &Request) -> Response {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        match (req.method.as_str(), req.target.as_str()) {
            ("GET", target) => match self.assets.get(target) {
                Some(body) => {
                    let ct = if target.ends_with(".m3u8") {
                        "application/vnd.apple.mpegurl"
                    } else if target.ends_with(".ts") {
                        "video/mp2t"
                    } else {
                        "application/octet-stream"
                    };
                    // `Bytes` is reference-counted: `clone`/`slice`
                    // hand out views of the stored asset, so serving a
                    // segment never copies its payload.
                    match req.headers.get("range") {
                        Some(range) => match parse_byte_range(range, body.len()) {
                            Some((start, end)) => {
                                let mut resp = Response::ok(ct, body.slice(start..=end));
                                resp.status = 206;
                                resp.reason = "Partial Content".into();
                                resp.headers.set(
                                    "Content-Range",
                                    format!("bytes {start}-{end}/{}", body.len()),
                                );
                                resp
                            }
                            None => Response::status(416, "Range Not Satisfiable"),
                        },
                        None => Response::ok(ct, body.clone()),
                    }
                }
                None => Response::not_found(),
            },
            ("POST", "/upload") => {
                let Some(ct) = req.headers.get("content-type") else {
                    return Response::status(400, "Bad Request");
                };
                let Some(boundary) = boundary_from_content_type(ct) else {
                    return Response::status(400, "Bad Request");
                };
                match parse_multipart(&req.body, boundary) {
                    Ok(parts) => {
                        let upload = ReceivedUpload {
                            filenames: parts.iter().filter_map(|p| p.filename.clone()).collect(),
                            total_bytes: parts.iter().map(|p| p.data.len()).sum(),
                        };
                        self.uploads.lock().push(upload);
                        Response::ok("text/plain", Bytes::from_static(b"stored"))
                    }
                    Err(_) => Response::status(400, "Bad Request"),
                }
            }
            _ => Response::status(405, "Method Not Allowed"),
        }
    }

    /// Uploads received so far.
    pub fn uploads(&self) -> Vec<ReceivedUpload> {
        self.uploads.lock().clone()
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Asset paths (for tests and examples).
    pub fn asset_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.assets.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Parse a single `bytes=a-b` range against a body of `len` bytes.
/// Returns the inclusive `(start, end)` byte positions, or `None` for
/// unsupported/unsatisfiable ranges (multi-range requests are not
/// supported — the prototype never issues them).
fn parse_byte_range(value: &str, len: usize) -> Option<(usize, usize)> {
    let spec = value.trim().strip_prefix("bytes=")?;
    if spec.contains(',') || len == 0 {
        return None;
    }
    let (start_s, end_s) = spec.split_once('-')?;
    match (start_s.trim(), end_s.trim()) {
        ("", suffix) => {
            // Suffix range: last N bytes.
            let n: usize = suffix.parse().ok()?;
            if n == 0 {
                return None;
            }
            Some((len.saturating_sub(n), len - 1))
        }
        (start, "") => {
            let s: usize = start.parse().ok()?;
            if s >= len {
                return None;
            }
            Some((s, len - 1))
        }
        (start, end) => {
            let s: usize = start.parse().ok()?;
            let e: usize = end.parse().ok()?;
            if s > e || s >= len {
                return None;
            }
            Some((s, e.min(len - 1)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_http::multipart::{encode_multipart, multipart_content_type, Part};

    #[test]
    fn asset_tree_shape() {
        let ladder = VideoQuality::paper_ladder();
        let o = OriginServer::new(&ladder, 200.0, 10.0);
        let paths = o.asset_paths();
        assert!(paths.contains(&"/master.m3u8".to_string()));
        assert!(paths.contains(&"/q1/index.m3u8".to_string()));
        assert!(paths.contains(&"/q4/seg00019.ts".to_string()));
        assert!(paths.contains(&"/probe.bin".to_string()));
        // 4 qualities × (20 segments + 1 playlist) + master + probe.
        assert_eq!(paths.len(), 4 * 21 + 2);
    }

    #[test]
    fn segment_sizes_match_bitrate() {
        let ladder = VideoQuality::paper_ladder();
        let o = OriginServer::new(&ladder, 200.0, 10.0);
        let resp = o.handle(&Request::get("/q1/seg00000.ts"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 250_000); // 200 kbps × 10 s / 8
        let resp4 = o.handle(&Request::get("/q4/seg00000.ts"));
        assert_eq!(resp4.body.len(), 922_500);
    }

    #[test]
    fn unknown_asset_404s() {
        let o = OriginServer::small_for_tests();
        assert_eq!(o.handle(&Request::get("/nope")).status, 404);
        assert_eq!(o.handle(&Request::post("/x", "t/p", Bytes::new())).status, 405);
    }

    #[test]
    fn upload_endpoint_parses_multipart() {
        let o = OriginServer::small_for_tests();
        let parts = vec![
            Part::photo("file1", "a.jpg", Bytes::from(vec![1u8; 1000])),
            Part::photo("file2", "b.jpg", Bytes::from(vec![2u8; 2000])),
        ];
        let body = encode_multipart(&parts, "bnd");
        let req = Request::post("/upload", &multipart_content_type("bnd"), body);
        let resp = o.handle(&req);
        assert_eq!(resp.status, 200);
        let ups = o.uploads();
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].filenames, vec!["a.jpg", "b.jpg"]);
        assert_eq!(ups[0].total_bytes, 3000);
    }

    #[test]
    fn bad_upload_rejected() {
        let o = OriginServer::small_for_tests();
        let req = Request::post("/upload", "text/plain", Bytes::from_static(b"x"));
        assert_eq!(o.handle(&req).status, 400);
        let req =
            Request::post("/upload", &multipart_content_type("b"), Bytes::from_static(b"garbage"));
        assert_eq!(o.handle(&req).status, 400);
    }

    #[test]
    fn range_requests() {
        let o = OriginServer::small_for_tests();
        let mut req = Request::get("/probe.bin");
        req.headers.set("Range", "bytes=0-99");
        let resp = o.handle(&req);
        assert_eq!(resp.status, 206);
        assert_eq!(resp.body.len(), 100);
        assert_eq!(resp.headers.get("content-range"), Some("bytes 0-99/64000"));

        req.headers.set("Range", "bytes=63900-");
        let resp = o.handle(&req);
        assert_eq!(resp.status, 206);
        assert_eq!(resp.body.len(), 100);

        req.headers.set("Range", "bytes=-50");
        let resp = o.handle(&req);
        assert_eq!(resp.status, 206);
        assert_eq!(resp.body.len(), 50);

        req.headers.set("Range", "bytes=99999-100000");
        assert_eq!(o.handle(&req).status, 416);
        req.headers.set("Range", "bytes=5-2");
        assert_eq!(o.handle(&req).status, 416);
    }

    #[test]
    fn byte_range_parser() {
        assert_eq!(parse_byte_range("bytes=0-9", 100), Some((0, 9)));
        assert_eq!(parse_byte_range("bytes=90-", 100), Some((90, 99)));
        assert_eq!(parse_byte_range("bytes=-10", 100), Some((90, 99)));
        assert_eq!(parse_byte_range("bytes=0-1000", 100), Some((0, 99)));
        assert_eq!(parse_byte_range("bytes=100-", 100), None);
        assert_eq!(parse_byte_range("bytes=0-1,5-6", 100), None);
        assert_eq!(parse_byte_range("items=0-1", 100), None);
        assert_eq!(parse_byte_range("bytes=-0", 100), None);
    }

    #[tokio::test]
    async fn serves_over_tcp() {
        let o = Arc::new(OriginServer::small_for_tests());
        let (addr, _h) = o.clone().spawn("127.0.0.1:0").await.unwrap();
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut http = HttpStream::new(stream);
        http.write_request(&Request::get("/master.m3u8")).await.unwrap();
        let resp = http.read_response().await.unwrap();
        assert_eq!(resp.status, 200);
        assert!(std::str::from_utf8(&resp.body).unwrap().contains("#EXTM3U"));
        // Sequential request on the same connection.
        http.write_request(&Request::get("/probe.bin")).await.unwrap();
        let probe = http.read_response().await.unwrap();
        assert_eq!(probe.body.len(), 64_000);
        assert_eq!(o.requests_served(), 2);
    }
}
