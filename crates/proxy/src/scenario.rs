//! The scenario engine: trace-driven multi-day homes (DESIGN.md §14).
//!
//! [`crate::Scenario::Traced`] replaces the fixed VoD-prebuffer +
//! photo-upload script with days of virtual time driven from the
//! per-home stream in `threegol-traces::scenario`: VoD sessions and
//! upload batches land on the wired diurnal curve, phones leave and
//! rejoin the home Wi-Fi mid-day (churn), and the §6 safe-allowance
//! estimator runs *live* — each simulated day grants every phone its
//! `3GOLa(t)/30` daily allowance, an exhausted phone stops announcing
//! until the next day boundary (transfers degrade gracefully to
//! ADSL-only), and every 30-day month boundary refits the estimator
//! from the accrued free-capacity history.
//!
//! Three design points keep a week of virtual time as cheap as the
//! single-shot script, and byte-reproducible:
//!
//! * **Announce-on-demand.** The paper path's free-running 100 ms
//!   announcers would emit ~10⁶ beacons per simulated week. The engine
//!   instead beacons once per present, quota-positive phone right
//!   before each session; the 3 s discovery TTL expires the entries in
//!   the (hours-long) gaps between sessions, which is exactly how a
//!   departed or exhausted phone withdraws its path.
//! * **Events over polling.** The virtual clock jumps straight to the
//!   next scheduled event, so wall cost is O(sessions), not O(days).
//! * **Fixed-point accounting.** Per-day and per-hour onload lands in
//!   `i64` fixed-point slots ([`crate::home::SCENARIO_FP_SCALE`]) so
//!   the fleet digest merges them exactly associatively.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use tokio::time::Instant;

use threegol_caps::{AllowanceEstimator, LiveAllowance};
use threegol_hls::VideoQuality;
use threegol_http::HttpError;
use threegol_traces::scenario::{device_free_history, home_day, HomeEvent, ScenarioConfig};

use crate::capacity::CapacitySource;
use crate::client::{PathTarget, ThreegolClient};
use crate::device::DeviceProxy;
use crate::discovery::{Advertisement, Announcer, Discovery};
use crate::home::{
    photo_body, HomeNet, HomeReport, HomeSpec, MAX_SCENARIO_DAYS, NO_CELL, SCENARIO_FP_SCALE,
};
use crate::origin::OriginServer;
use crate::throttle::SharedRateLimit;

const DAY_SECS: f64 = 86_400.0;

/// Bytes → the report's fixed-point representation.
fn fp(bytes: f64) -> i64 {
    (bytes * SCENARIO_FP_SCALE).round() as i64
}

/// Entry point for [`crate::Scenario::Traced`]: the paper-flavored
/// [`ScenarioConfig`] at `seed`.
pub(crate) async fn run_traced(
    spec: &HomeSpec,
    days: u16,
    seed: u64,
) -> Result<HomeReport, HttpError> {
    run_with_config(spec, days, &ScenarioConfig::paper(seed)).await
}

/// Advance the virtual clock to `offset_secs` past `epoch` (no-op if
/// already there — day-0 events before the start hour are skipped by
/// the caller, so offsets are otherwise monotone).
async fn advance_to(epoch: &Instant, offset_secs: f64) {
    let elapsed = epoch.elapsed().as_secs_f64();
    if offset_secs > elapsed {
        tokio::time::sleep(Duration::from_secs_f64(offset_secs - elapsed)).await;
    }
}

/// Close one device's day: credit the consumed allowance
/// (`min(used, granted)`) and count an overrun if a positive grant was
/// fully exhausted. Called at every day boundary *before* the roll-over
/// wipes the day's usage, and once more after the final day.
fn close_device_day(report: &mut HomeReport, device: &DeviceProxy, granted: f64) {
    report.used_allowance_fp += fp(device.used_bytes().min(granted));
    if granted > 0.0 && !device.should_advertise() {
        report.overrun_device_days += 1;
    }
}

/// Run a traced scenario with an explicit config (tests tighten the
/// churn and allowance knobs; `fleet --scenario` uses the default).
pub async fn run_with_config(
    spec: &HomeSpec,
    days: u16,
    config: &ScenarioConfig,
) -> Result<HomeReport, HttpError> {
    assert!(
        (1..=MAX_SCENARIO_DAYS as u16).contains(&days),
        "scenario must run 1..={MAX_SCENARIO_DAYS} days, got {days}"
    );
    let net = HomeNet::new((spec.index % (1 << 16)) as u16);

    // Origin and discovery, exactly like the paper script.
    let ladder = vec![VideoQuality::new("Q1", spec.video_bps)];
    let origin = Arc::new(OriginServer::new(&ladder, spec.video_secs, spec.segment_secs));
    let (origin_addr, _origin_task) = origin.clone().spawn(&net.origin().to_string()).await?;
    let discovery = Discovery::bind(&net.discovery().to_string()).await?;
    let discovery_addr = discovery.local_addr()?;

    // Phones. Each starts with the live estimator's day-1 allowance
    // fit on its seeded free-capacity history; the months the run will
    // live through are pre-drawn from the same prefix-stable series so
    // month-boundary refits replay numbers the offline backtest can
    // reproduce exactly.
    let estimator = AllowanceEstimator::paper();
    let lived_months = days as usize / 30 + 1;
    let (g3_down0, g3_up0) = spec.g3.phone_limits(spec.hour as f64);
    let mut devices: Vec<Arc<DeviceProxy>> = Vec::with_capacity(spec.devices);
    let mut lan_addrs: Vec<SocketAddr> = Vec::with_capacity(spec.devices);
    let mut announcers: Vec<Announcer> = Vec::with_capacity(spec.devices);
    let mut allowances: Vec<LiveAllowance> = Vec::with_capacity(spec.devices);
    let mut future_months: Vec<Vec<f64>> = Vec::with_capacity(spec.devices);
    for i in 0..spec.devices {
        let full = device_free_history(config, spec.index, i, config.history_months + lived_months);
        let live = LiveAllowance::new(estimator, full[..config.history_months].to_vec());
        let device = Arc::new(DeviceProxy::new(
            format!("home{}-phone-{i}", spec.index),
            origin_addr,
            g3_down0,
            g3_up0,
            live.daily_allowance(),
        ));
        let (lan_addr, _task) = device.clone().spawn(&net.device(i).to_string()).await?;
        devices.push(device);
        lan_addrs.push(lan_addr);
        announcers.push(Announcer::bind(discovery_addr).await?);
        future_months.push(full[config.history_months..].to_vec());
        allowances.push(live);
    }

    // The home's shared media (one pair of ADSL buckets, one Wi-Fi
    // medium for the whole run — links persist across days).
    let wifi = SharedRateLimit::from_bps(spec.wifi_bps as u64);
    let adsl_down = SharedRateLimit::from_bps(spec.adsl_down_bps as u64);
    let adsl_up = SharedRateLimit::from_bps(spec.adsl_up_bps as u64);

    let mut report = HomeReport::empty(spec.index);
    report.cell = spec.g3.cell().unwrap_or(NO_CELL);
    report.hour = spec.hour;
    report.days = days;
    report.device_days = spec.devices as u32 * days as u32;

    // Virtual t = 0 is `spec.hour` o'clock of day 0: local time of
    // virtual offset `t` is `spec.hour·3600 + t`, so scenarios advance
    // the hour from the clock while `spec.hour` stays the start offset.
    let epoch = Instant::now();
    let start_offset_secs = spec.hour as f64 * 3600.0;

    let mut present = vec![true; spec.devices];
    let mut granted_today: Vec<f64> = allowances.iter().map(|a| a.daily_allowance()).collect();
    report.granted_allowance_fp += granted_today.iter().map(|&g| fp(g)).sum::<i64>();
    let mut month_cursor = 0usize;
    let mut vod_baseline_secs = 0.0;
    let mut upload_baseline_secs = 0.0;

    for day in 0..days as u32 {
        if day > 0 {
            // Reach the boundary in virtual time, then close books:
            // credit yesterday's consumption, refit on month ends, and
            // grant today's allowance (re-arming exhausted phones).
            advance_to(&epoch, day as f64 * DAY_SECS - start_offset_secs).await;
            let month_end = day % 30 == 0;
            for i in 0..spec.devices {
                close_device_day(&mut report, &devices[i], granted_today[i]);
                if month_end {
                    allowances[i].finish_month(future_months[i][month_cursor]);
                }
                granted_today[i] = allowances[i].daily_allowance();
                report.granted_allowance_fp += fp(granted_today[i]);
                devices[i].roll_over(granted_today[i]);
            }
            if month_end {
                month_cursor += 1;
            }
        }

        for ev in home_day(config, spec.index, spec.devices, day) {
            let offset = day as f64 * DAY_SECS + ev.time_secs - start_offset_secs;
            if offset < 0.0 {
                continue; // day-0 events before the start hour
            }
            advance_to(&epoch, offset).await;
            match ev.event {
                HomeEvent::Leave { device } => present[device] = false,
                HomeEvent::Join { device } => present[device] = true,
                HomeEvent::Vod => {
                    let day_idx = day as usize;
                    let hour_idx = ((ev.time_secs / 3600.0) as usize).min(23);
                    let paths = session_paths(
                        spec,
                        ev.time_secs / 3600.0,
                        origin_addr,
                        &adsl_down,
                        &adsl_up,
                        &devices,
                        &lan_addrs,
                        &announcers,
                        &present,
                        &discovery,
                    )
                    .await;
                    report.sessions += 1;
                    if paths.len() == 1 {
                        report.adsl_only_sessions += 1;
                    }
                    let client = ThreegolClient::new(paths).with_wifi(wifi.clone());
                    let t0 = Instant::now();
                    let (_playlist, bodies, tr) = client.fetch_hls("/q1/index.m3u8").await?;
                    let secs = t0.elapsed().as_secs_f64();
                    let bytes: f64 = bodies.iter().map(|b| b.len() as f64).sum();
                    report.vod_bytes += bytes;
                    report.vod_secs += secs;
                    vod_baseline_secs += bytes * 8.0 / spec.adsl_down_bps;
                    let onload: f64 = tr.bytes_per_path.iter().skip(1).sum();
                    report.vod_device_bytes += onload;
                    report.day_dl_fp[day_idx] += fp(onload);
                    report.hour_dl_fp[hour_idx] += fp(onload);
                }
                HomeEvent::Upload { photos } => {
                    let day_idx = day as usize;
                    let hour_idx = ((ev.time_secs / 3600.0) as usize).min(23);
                    let paths = session_paths(
                        spec,
                        ev.time_secs / 3600.0,
                        origin_addr,
                        &adsl_down,
                        &adsl_up,
                        &devices,
                        &lan_addrs,
                        &announcers,
                        &present,
                        &discovery,
                    )
                    .await;
                    report.sessions += 1;
                    if paths.len() == 1 {
                        report.adsl_only_sessions += 1;
                    }
                    let client = ThreegolClient::new(paths).with_wifi(wifi.clone());
                    let batch: Vec<(String, Bytes)> = (0..photos)
                        .map(|i| {
                            (
                                format!("home{}-d{day}-IMG_{i:04}.jpg", spec.index),
                                photo_body(i, spec.photo_bytes),
                            )
                        })
                        .collect();
                    let bytes: f64 = batch.iter().map(|(_, d)| d.len() as f64).sum();
                    let t0 = Instant::now();
                    let tr = client.upload_photos(batch).await?;
                    let secs = t0.elapsed().as_secs_f64();
                    report.upload_bytes += bytes;
                    report.upload_secs += secs;
                    upload_baseline_secs += bytes * 8.0 / spec.adsl_up_bps;
                    let onload: f64 = tr.bytes_per_path.iter().skip(1).sum();
                    report.upload_device_bytes += onload;
                    report.upload_wasted_bytes += tr.wasted_bytes;
                    report.day_ul_fp[day_idx] += fp(onload);
                    report.hour_ul_fp[hour_idx] += fp(onload);
                }
            }
        }
    }

    // The last day's books (no further roll-over to trigger them).
    for i in 0..spec.devices {
        close_device_day(&mut report, &devices[i], granted_today[i]);
    }

    // Gains against the ADSL line carrying the same bytes alone,
    // aggregated over every session; 1.0 (neutral) for a home whose
    // schedule happened to be empty.
    report.vod_gain = if report.vod_secs > 0.0 { vod_baseline_secs / report.vod_secs } else { 1.0 };
    report.upload_gain =
        if report.upload_secs > 0.0 { upload_baseline_secs / report.upload_secs } else { 1.0 };
    Ok(report)
}

/// Build a session's path set: retune the 3G bearers to this hour's
/// cell share, beacon for every present, quota-positive phone, give the
/// datagrams a beat to land, and read the admissible set Φ. A phone
/// that left the Wi-Fi or exhausted its allowance simply isn't
/// announced, so its discovery entry ages out (3 s TTL) and transfers
/// degrade to the remaining paths — ADSL-only in the worst case.
#[allow(clippy::too_many_arguments)]
async fn session_paths(
    spec: &HomeSpec,
    hour_frac: f64,
    origin_addr: SocketAddr,
    adsl_down: &SharedRateLimit,
    adsl_up: &SharedRateLimit,
    devices: &[Arc<DeviceProxy>],
    lan_addrs: &[SocketAddr],
    announcers: &[Announcer],
    present: &[bool],
    discovery: &Discovery,
) -> Vec<PathTarget> {
    let (g3_down, g3_up) = spec.g3.phone_limits(hour_frac);
    for device in devices {
        device.set_rates(g3_down, g3_up);
    }
    for i in 0..devices.len() {
        if present[i] && devices[i].should_advertise() {
            let ad = Advertisement {
                name: devices[i].name.clone(),
                proxy_addr: lan_addrs[i],
                available_bytes: devices[i].available_bytes(),
            };
            let _ = announcers[i].announce(&ad).await;
        }
    }
    tokio::time::sleep(Duration::from_millis(10)).await;
    let mut paths = vec![PathTarget::SharedGateway {
        origin: origin_addr,
        down: adsl_down.clone(),
        up: adsl_up.clone(),
    }];
    paths.extend(
        discovery.admissible().into_iter().map(|ad| PathTarget::Device { addr: ad.proxy_addr }),
    );
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::{Home, Scenario, Tier};
    use crate::throttle::RateLimit;
    use threegol_http::codec::HttpStream;
    use threegol_http::Request;
    use tokio::net::TcpStream;

    fn run_traced_home(spec: HomeSpec) -> HomeReport {
        tokio::runtime::block_on(Home::run(&spec)).unwrap()
    }

    #[test]
    fn traced_week_runs_and_accounts() {
        let spec = HomeSpec::tier(Tier::Standard).index(5).hour(0).traced(7, 0x3601);
        let report = run_traced_home(spec);
        assert_eq!(report.days, 7);
        assert_eq!(report.device_days, 14);
        assert!(report.sessions > 0, "a week should schedule sessions");
        assert!(report.vod_bytes > 0.0 || report.upload_bytes > 0.0);
        // Onload accumulators tie out with the totals they bucket.
        let day_dl: i64 = report.day_dl_fp.iter().sum();
        let day_ul: i64 = report.day_ul_fp.iter().sum();
        assert_eq!(day_dl, report.hour_dl_fp.iter().sum::<i64>());
        assert_eq!(day_ul, report.hour_ul_fp.iter().sum::<i64>());
        assert!((day_dl as f64 / SCENARIO_FP_SCALE - report.vod_device_bytes).abs() < 1.0);
        assert!((day_ul as f64 / SCENARIO_FP_SCALE - report.upload_device_bytes).abs() < 1.0);
        // Consumption never exceeds what the live estimator granted.
        assert!(report.used_allowance_fp <= report.granted_allowance_fp);
        assert!(report.vod_gain.is_finite() && report.upload_gain.is_finite());
    }

    #[test]
    fn traced_runs_are_bitwise_repeatable() {
        let spec = HomeSpec::tier(Tier::Fast).index(11).hour(0).traced(3, 7);
        let a = run_traced_home(spec);
        let b = run_traced_home(spec);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_default_is_untouched_by_the_scenario_field() {
        // The dispatch seam must be invisible: a spec that never asks
        // for a scenario runs the exact original script.
        let spec = HomeSpec::paper_default(3);
        assert_eq!(spec.scenario, Scenario::PaperDefault);
        let a = tokio::runtime::block_on(Home::run(&spec)).unwrap();
        assert_eq!(a.days, 0);
        assert_eq!(a.sessions, 0);
        assert_eq!(a.granted_allowance_fp, 0);
        assert!(a.day_dl_fp.iter().all(|&v| v == 0));
        assert_eq!(a.vod_bytes, 500_000.0);
    }

    #[test]
    fn quota_exhaustion_withdraws_then_reannounces() {
        // The churn loop at component level: a phone exhausts its daily
        // allowance mid-upload — the in-flight transfer completes, the
        // phone stops advertising (its discovery entry ages out), and
        // the next day's roll-over re-arms it.
        tokio::runtime::block_on(async {
            let origin = Arc::new(OriginServer::small_for_tests());
            let (origin_addr, _h) = origin.clone().spawn("127.0.0.1:0").await.unwrap();
            let discovery = Discovery::bind("127.0.0.1:0").await.unwrap();
            let discovery_addr = discovery.local_addr().unwrap();
            // 40 kB daily allowance, exhausted mid-way by a 64 kB probe.
            let device = Arc::new(DeviceProxy::new(
                "phone-0",
                origin_addr,
                RateLimit::unlimited(),
                RateLimit::unlimited(),
                40_000.0,
            ));
            let (lan_addr, _h2) = device.clone().spawn("127.0.0.1:0").await.unwrap();
            let announcer = Announcer::bind(discovery_addr).await.unwrap();

            let ad = |device: &DeviceProxy| Advertisement {
                name: device.name.clone(),
                proxy_addr: lan_addr,
                available_bytes: device.available_bytes(),
            };
            announcer.announce(&ad(&device)).await.unwrap();
            tokio::time::sleep(Duration::from_millis(10)).await;
            assert_eq!(discovery.admissible().len(), 1, "armed phone advertises");

            // Mid-transfer exhaustion: the 64 kB body still arrives in
            // full even though the 40 kB quota runs dry along the way.
            let stream = TcpStream::connect(lan_addr).await.unwrap();
            let mut http = HttpStream::new(stream);
            http.write_request(&Request::get("/probe.bin")).await.unwrap();
            let resp = http.read_response().await.unwrap();
            assert_eq!(resp.body.len(), 64_000, "in-flight transfer completes");
            assert!(!device.should_advertise(), "exhausted phone withdraws");
            assert!(device.used_bytes() > 40_000.0, "overrun is recorded, not clipped");

            // The engine never beacons for an exhausted phone, so its
            // entry ages out of Φ within the TTL.
            tokio::time::sleep(Duration::from_secs(4)).await;
            assert!(discovery.admissible().is_empty(), "entry expired after TTL");

            // Day boundary: a fresh grant re-arms announcements.
            device.roll_over(40_000.0);
            assert!(device.should_advertise());
            announcer.announce(&ad(&device)).await.unwrap();
            tokio::time::sleep(Duration::from_millis(10)).await;
            assert_eq!(discovery.admissible().len(), 1, "re-announced next day");
        });
    }

    #[test]
    fn exhausted_fleet_degrades_to_adsl_only() {
        // Starve the allowance loop entirely: zero free capacity means
        // zero granted allowance, phones never advertise, and every
        // session runs ADSL-only — gracefully, with gain ≈ 1.
        let config =
            ScenarioConfig { free_mean_bytes: 0.0, leave_chance: 0.0, ..ScenarioConfig::paper(42) };
        let spec = HomeSpec::tier(Tier::Standard).index(8).hour(0).traced(2, 42);
        let report = tokio::runtime::block_on(run_with_config(&spec, 2, &config)).unwrap();
        assert!(report.sessions > 0);
        assert_eq!(report.adsl_only_sessions, report.sessions);
        assert_eq!(report.vod_device_bytes, 0.0);
        assert_eq!(report.upload_device_bytes, 0.0);
        assert_eq!(report.granted_allowance_fp, 0);
        // Zero granted allowance is absence, not overrun.
        assert_eq!(report.overrun_device_days, 0);
    }

    #[test]
    fn churny_scenario_still_onloads_between_absences() {
        // Constant churn (every device leaves every day) with real
        // allowances: sessions during presence windows still onload.
        let config = ScenarioConfig { leave_chance: 1.0, ..ScenarioConfig::paper(0x3601) };
        let spec = HomeSpec::tier(Tier::Premium).index(2).devices(3).hour(0).traced(5, 0x3601);
        let report = tokio::runtime::block_on(run_with_config(&spec, 5, &config)).unwrap();
        assert!(report.sessions > 0);
        assert!(
            report.vod_device_bytes + report.upload_device_bytes > 0.0,
            "presence windows should still onload"
        );
        let b = tokio::runtime::block_on(run_with_config(&spec, 5, &config)).unwrap();
        assert_eq!(report, b, "churn must stay deterministic");
    }
}
