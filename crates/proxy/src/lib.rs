//! # threegol-proxy
//!
//! The live 3GOL prototype (paper §4.1), on tokio over the vendored
//! runtime's in-process **virtual network** — every listener, stream
//! and datagram lives inside the runtime, under virtual time, so whole
//! fleets of households run deterministically in one process without
//! opening a single kernel socket.
//!
//! The paper's deployment has three processes: an **origin** web
//! server; a **device component** on each phone (an HTTP proxy piping
//! Wi-Fi-side requests through the 3G interface, advertising itself
//! only while it has quota/permits); and a **client component** (an
//! HLS-aware proxy plus an HTTP uploader, both feeding a multipath
//! scheduler). This crate reproduces all three:
//!
//! * [`throttle::ThrottledStream`] — token-bucket rate limiting that
//!   stands in for the ADSL line and each phone's 3G bearer (the
//!   substitution for real access links; rates are taken from the same
//!   location profiles the simulator uses); [`throttle::SharedRateLimit`]
//!   makes a bucket a shared medium several streams contend for;
//! * [`capacity::CapacitySource`] — the seam between a home and
//!   whatever provides its 3G: private per-phone rates
//!   ([`capacity::Isolated`]) or a per-phone share of a shared cell
//!   ([`capacity::CellProfile`]), folded into the `Copy`
//!   [`home::HomeSpec`] so a whole fleet can couple through shared
//!   cells without sharing mutable state;
//! * [`origin::OriginServer`] — serves generated HLS playlists and
//!   segments, accepts multipart photo uploads, and serves the 2 MB
//!   probe files of §3;
//! * [`device::DeviceProxy`] — the phone-side component with quota
//!   tracking and discovery announcements;
//! * [`discovery::Discovery`] — UDP announce/browse inside the home's
//!   subnet (the prototype's stand-in for Bonjour);
//! * [`client::ThreegolClient`] — playlist interception, parallel
//!   segment prefetch and parallel multipart uploads, driven by the
//!   *same* `threegol-sched` schedulers the simulator uses;
//! * [`hlsproxy::HlsProxy`] — the local HTTP proxy a stock video
//!   player points at: playlists are intercepted, segments prefetched
//!   multipath and served from cache, transparently;
//! * [`home::Home`] — a household as a first-class unit: its own
//!   address namespace ([`home::HomeNet`]), discovery domain, shared
//!   ADSL/Wi-Fi media, and a workload reporting the per-home gain over
//!   ADSL alone — either the fixed VoD + photo-upload script
//!   ([`home::Scenario::PaperDefault`]) or a trace-driven multi-day
//!   scenario with device churn and the live §6 allowance loop
//!   ([`home::Scenario::Traced`], run by [`scenario`]).

#![warn(missing_docs)]

pub mod capacity;
pub mod client;
pub mod device;
pub mod discovery;
pub mod hlsproxy;
pub mod home;
pub mod origin;
pub mod scenario;
pub mod throttle;

pub use capacity::{CapacitySource, CellProfile, G3Source, Isolated};
pub use client::{PathTarget, ThreegolClient, TransferReport};
pub use device::DeviceProxy;
pub use discovery::{Advertisement, Discovery};
pub use hlsproxy::HlsProxy;
pub use home::{
    Home, HomeNet, HomeReport, HomeSpec, Scenario, Tier, MAX_SCENARIO_DAYS, NO_CELL,
    SCENARIO_FP_SCALE,
};
pub use origin::OriginServer;
pub use throttle::{RateLimit, SharedRateLimit, ThrottledStream};
