//! The capacity seam between a home and whatever provides its 3G.
//!
//! The paper's prototype treats each phone's 3G bearer as a private
//! pipe; §6 asks what happens when thousands of homes onload onto the
//! *shared* cells of a city. This module is the API that lets both
//! worlds coexist: [`Home::run`](crate::Home::run) asks a
//! [`CapacitySource`] for its phones' rate limits instead of owning
//! raw bits-per-second fields, and the source either hands out a fixed
//! private rate ([`Isolated`] — the pre-coupling behaviour, bit for
//! bit) or samples a per-phone *share* of one shared cell at the
//! home's hour of day ([`CellProfile`]).
//!
//! Everything here is plain `Copy` data on purpose: a
//! [`HomeSpec`](crate::HomeSpec) must stay a stack-built pure function
//! of the home index for the streamed fleet, so a capacity source
//! carries no handles, no `Arc`s, and no references — a cell's diurnal
//! share curve is folded into 24 hourly floats computed *outside* the
//! fleet pass (by `threegol-radio`'s cell map) and fed back in on the
//! next pass. The fleet never shares mutable state across homes; the
//! coupling lives entirely in this data.

use crate::throttle::RateLimit;

/// Where a phone's 3G capacity comes from.
///
/// Implementors answer one question: at hour-of-day `hour`, what rate
/// limits does one phone of this home get? [`Home::run`](crate::Home::run)
/// consumes the answer when it builds its device proxies.
pub trait CapacitySource {
    /// Per-phone downlink and uplink limits at hour-of-day `hour`
    /// (`[0, 24)`, wrapped otherwise).
    fn phone_limits(&self, hour: f64) -> (RateLimit, RateLimit);

    /// The shared cell this source draws from, if any. `None` for
    /// private capacity.
    fn cell(&self) -> Option<u32> {
        None
    }
}

/// Private per-phone 3G rates — each phone owns its pipe, no cell is
/// shared, the hour of day is irrelevant. This reproduces the
/// uncoupled prototype exactly.
///
/// ```
/// use threegol_proxy::{CapacitySource, Isolated};
/// let g3 = Isolated { down_bps: 2e6, up_bps: 1e6 };
/// let (down, up) = g3.phone_limits(19.0);
/// assert_eq!(down.rate_bps, 2e6);
/// assert_eq!(up.rate_bps, 1e6);
/// assert_eq!(g3.cell(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Isolated {
    /// Each phone's 3G downlink, bits/s.
    pub down_bps: f64,
    /// Each phone's 3G uplink, bits/s.
    pub up_bps: f64,
}

impl CapacitySource for Isolated {
    fn phone_limits(&self, _hour: f64) -> (RateLimit, RateLimit) {
        (RateLimit::new(self.down_bps), RateLimit::new(self.up_bps))
    }
}

/// A per-phone share of one shared 3G cell, as a diurnal curve: 24
/// hourly downlink/uplink rates computed from the cell's capacity,
/// its background load (`threegol-radio`'s availability profile) and
/// the 3GOL load the fleet itself put on the cell in the previous
/// pass.
///
/// Rates are sampled at the *whole* hour (no interpolation): the fleet
/// digest buckets onloaded bytes per `(cell, hour)`, and the feedback
/// algebra stays exact when a home's whole workload runs under one
/// hourly rate.
///
/// ```
/// use threegol_proxy::{CapacitySource, CellProfile};
/// let share = CellProfile::flat(3, 1.5e6, 0.8e6);
/// assert_eq!(share.cell(), Some(3));
/// let (down, _up) = share.phone_limits(21.9);
/// assert_eq!(down.rate_bps, 1.5e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellProfile {
    /// The cell this share draws from.
    pub cell: u32,
    /// Per-phone downlink share by hour of day, bits/s (all > 0).
    pub down_bps: [f64; 24],
    /// Per-phone uplink share by hour of day, bits/s (all > 0).
    pub up_bps: [f64; 24],
}

impl CellProfile {
    /// A share that does not vary with the hour — useful as a starting
    /// point and in tests.
    pub fn flat(cell: u32, down_bps: f64, up_bps: f64) -> CellProfile {
        CellProfile { cell, down_bps: [down_bps; 24], up_bps: [up_bps; 24] }
    }

    /// The `(down, up)` share at hour-of-day `hour`, bits/s.
    pub fn at_hour(&self, hour: f64) -> (f64, f64) {
        let h = hour.rem_euclid(24.0).floor() as usize % 24;
        (self.down_bps[h], self.up_bps[h])
    }
}

impl CapacitySource for CellProfile {
    fn phone_limits(&self, hour: f64) -> (RateLimit, RateLimit) {
        let (down, up) = self.at_hour(hour);
        (RateLimit::new(down), RateLimit::new(up))
    }

    fn cell(&self) -> Option<u32> {
        Some(self.cell)
    }
}

/// The capacity source a [`HomeSpec`](crate::HomeSpec) carries:
/// a closed `Copy` sum of the two implementations, so a spec stays a
/// fixed-size value that can be built on a worker's stack from an
/// index alone.
// The variant sizes differ wildly (16 bytes vs a 392-byte share
// curve), but boxing the big one would defeat the type's purpose:
// specs must be `Copy` values built on worker stacks with no heap.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum G3Source {
    /// Private per-phone rates (the uncoupled prototype).
    Isolated(Isolated),
    /// A per-phone share of a shared cell.
    Cell(CellProfile),
}

impl G3Source {
    /// Private `down`/`up` bits-per-second rates per phone.
    pub fn isolated(down_bps: f64, up_bps: f64) -> G3Source {
        G3Source::Isolated(Isolated { down_bps, up_bps })
    }
}

impl CapacitySource for G3Source {
    fn phone_limits(&self, hour: f64) -> (RateLimit, RateLimit) {
        match self {
            G3Source::Isolated(source) => source.phone_limits(hour),
            G3Source::Cell(source) => source.phone_limits(hour),
        }
    }

    fn cell(&self) -> Option<u32> {
        match self {
            G3Source::Isolated(source) => source.cell(),
            G3Source::Cell(source) => source.cell(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_ignores_the_hour() {
        let g3 = G3Source::isolated(2e6, 1e6);
        for hour in [0.0, 11.5, 23.99, -3.0, 36.0] {
            let (down, up) = g3.phone_limits(hour);
            assert_eq!(down, RateLimit::new(2e6));
            assert_eq!(up, RateLimit::new(1e6));
        }
        assert_eq!(g3.cell(), None);
    }

    #[test]
    fn cell_profile_samples_whole_hours() {
        let mut profile = CellProfile::flat(7, 1e6, 5e5);
        profile.down_bps[19] = 4e5;
        let g3 = G3Source::Cell(profile);
        assert_eq!(g3.cell(), Some(7));
        assert_eq!(g3.phone_limits(19.0).0, RateLimit::new(4e5));
        assert_eq!(g3.phone_limits(19.999).0, RateLimit::new(4e5));
        assert_eq!(g3.phone_limits(20.0).0, RateLimit::new(1e6));
        // Hours wrap: 43 ≡ 19, −5 ≡ 19.
        assert_eq!(g3.phone_limits(43.0).0, RateLimit::new(4e5));
        assert_eq!(g3.phone_limits(-5.0).0, RateLimit::new(4e5));
    }

    #[test]
    fn sources_are_copy_and_comparable() {
        let a = G3Source::Cell(CellProfile::flat(1, 1e6, 5e5));
        let b = a; // Copy
        assert_eq!(a, b);
        assert_ne!(a, G3Source::isolated(1e6, 5e5));
    }
}
