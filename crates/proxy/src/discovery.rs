//! UDP announce/browse discovery on the home LAN (a per-home subnet
//! of the virtual network).
//!
//! The paper's device component "advertises the device availability
//! through a discovery protocol like Bonjour only if the device has an
//! active permission by the cellular network" (§2.4) — and, in the
//! multi-provider mode, only while its quota `A(t) > 0` (§6). The
//! client builds the admissible set Φ from the advertisements it
//! hears; stale entries (no announcement within the TTL) drop out.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::time::Instant;

use parking_lot::Mutex;
use tokio::net::UdpSocket;

/// One device advertisement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Advertisement {
    /// Device name, e.g. `"phone-1"`.
    pub name: String,
    /// TCP address of the device's proxy on the LAN side.
    pub proxy_addr: SocketAddr,
    /// Advertised available quota, bytes (`A(t)`).
    pub available_bytes: f64,
}

impl Advertisement {
    /// Encode for the wire. Like the repository's JSON artifacts, the
    /// datagram format is explicit formatting code rather than a
    /// serializer (the vendored `serde_json` is an offline stub): a
    /// version tag, the proxy address, the quota, then the free-form
    /// device name — name last so it may contain any byte, including
    /// the `\n` field separator.
    fn encode(&self) -> Vec<u8> {
        format!("3gol-ad/1\n{}\n{}\n{}", self.proxy_addr, self.available_bytes, self.name)
            .into_bytes()
    }

    /// Parse a datagram produced by [`Advertisement::encode`];
    /// `None` for foreign or malformed traffic.
    fn parse(payload: &[u8]) -> Option<Advertisement> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut fields = text.splitn(4, '\n');
        if fields.next()? != "3gol-ad/1" {
            return None;
        }
        let proxy_addr = fields.next()?.parse().ok()?;
        let available_bytes = fields.next()?.parse().ok()?;
        let name = fields.next()?.to_string();
        Some(Advertisement { name, proxy_addr, available_bytes })
    }
}

/// Advertisement freshness window.
pub const TTL: Duration = Duration::from_secs(3);

/// The client-side discovery listener.
pub struct Discovery {
    socket: Arc<UdpSocket>,
    seen: Arc<Mutex<HashMap<String, (Advertisement, Instant)>>>,
}

impl Discovery {
    /// Bind a listener on `addr` (port 0 for ephemeral) and start
    /// collecting announcements.
    pub async fn bind(addr: &str) -> std::io::Result<Discovery> {
        let socket = Arc::new(UdpSocket::bind(addr).await?);
        let seen: Arc<Mutex<HashMap<String, (Advertisement, Instant)>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let rx_socket = Arc::clone(&socket);
        let rx_seen = Arc::clone(&seen);
        tokio::spawn(async move {
            let mut buf = vec![0u8; 4096];
            loop {
                let Ok((n, _peer)) = rx_socket.recv_from(&mut buf).await else { break };
                if let Some(ad) = Advertisement::parse(&buf[..n]) {
                    rx_seen.lock().insert(ad.name.clone(), (ad, Instant::now()));
                }
            }
        });
        Ok(Discovery { socket, seen })
    }

    /// The address announcers should send to.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The current admissible set Φ: fresh advertisements, sorted by
    /// device name for deterministic path numbering.
    pub fn admissible(&self) -> Vec<Advertisement> {
        let now = Instant::now();
        let mut seen = self.seen.lock();
        seen.retain(|_, (_, at)| now.duration_since(*at) < TTL);
        let mut ads: Vec<Advertisement> = seen.values().map(|(ad, _)| ad.clone()).collect();
        ads.sort_by(|a, b| a.name.cmp(&b.name));
        ads
    }
}

/// A reusable announcement sender: one bound socket for many beacons.
/// A periodic announcer sends every ~100 ms for its whole lifetime;
/// binding a fresh socket per beacon (what [`announce`] does) pays
/// ephemeral-port assignment and socket teardown every tick.
pub struct Announcer {
    socket: UdpSocket,
    to: SocketAddr,
}

impl Announcer {
    /// Bind a sender toward `to`, on an ephemeral port of the
    /// listener's own IP so beacons stay inside that home's subnet.
    pub async fn bind(to: SocketAddr) -> std::io::Result<Announcer> {
        Ok(Announcer { socket: UdpSocket::bind((to.ip(), 0)).await?, to })
    }

    /// Send one announcement datagram.
    pub async fn announce(&self, ad: &Advertisement) -> std::io::Result<()> {
        self.socket.send_to(&ad.encode(), self.to).await?;
        Ok(())
    }
}

/// Send one announcement datagram to the discovery listener through a
/// freshly bound socket (see [`Announcer`] for the repeated case).
pub async fn announce(to: SocketAddr, ad: &Advertisement) -> std::io::Result<()> {
    Announcer::bind(to).await?.announce(ad).await
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ad(name: &str, avail: f64) -> Advertisement {
        Advertisement {
            name: name.to_string(),
            proxy_addr: "127.0.0.1:9999".parse().unwrap(),
            available_bytes: avail,
        }
    }

    #[tokio::test]
    async fn announce_and_browse() {
        let disc = Discovery::bind("127.0.0.1:0").await.unwrap();
        let addr = disc.local_addr().unwrap();
        announce(addr, &ad("phone-2", 10e6)).await.unwrap();
        announce(addr, &ad("phone-1", 20e6)).await.unwrap();
        // Give the listener a moment to process the datagrams.
        tokio::time::sleep(Duration::from_millis(100)).await;
        let ads = disc.admissible();
        assert_eq!(ads.len(), 2);
        // Deterministic ordering by name.
        assert_eq!(ads[0].name, "phone-1");
        assert_eq!(ads[1].name, "phone-2");
        assert_eq!(ads[0].available_bytes, 20e6);
    }

    #[tokio::test]
    async fn reannouncement_updates_quota() {
        let disc = Discovery::bind("127.0.0.1:0").await.unwrap();
        let addr = disc.local_addr().unwrap();
        announce(addr, &ad("phone-1", 20e6)).await.unwrap();
        tokio::time::sleep(Duration::from_millis(50)).await;
        announce(addr, &ad("phone-1", 5e6)).await.unwrap();
        tokio::time::sleep(Duration::from_millis(100)).await;
        let ads = disc.admissible();
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].available_bytes, 5e6);
    }

    #[tokio::test(start_paused = true)]
    async fn stale_entries_expire() {
        let disc = Discovery::bind("127.0.0.1:0").await.unwrap();
        // Insert directly (paused time makes real UDP awkward).
        disc.seen.lock().insert("phone-1".into(), (ad("phone-1", 1e6), Instant::now()));
        assert_eq!(disc.admissible().len(), 1);
        tokio::time::advance(Duration::from_secs(4)).await;
        assert!(disc.admissible().is_empty());
    }
}
