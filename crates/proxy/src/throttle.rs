//! Token-bucket throttling for async streams.
//!
//! [`ThrottledStream`] caps the read and write rates of any
//! `AsyncRead + AsyncWrite` transport. It is the prototype's stand-in
//! for the real access links: the client wraps its origin connections
//! with the ADSL profile, each device proxy wraps its upstream
//! connection with its 3G profile.
//!
//! A bucket can also be **shared**: [`SharedRateLimit`] is a cloneable
//! handle to one token bucket, so several streams drawing from the
//! same physical medium (all connections crossing one home's Wi-Fi,
//! both directions of one ADSL line) contend for the same tokens, the
//! way they would on the real link.

use std::future::Future;
use std::io::IoSlice;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;

use parking_lot::Mutex;
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};
use tokio::time::{sleep_until, Instant, Sleep};

/// A direction's rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained rate, bits per second.
    pub rate_bps: f64,
    /// Bucket depth (burst), bytes.
    pub burst_bytes: f64,
}

impl RateLimit {
    /// A limit with a default burst of 64 KiB or 50 ms of data,
    /// whichever is larger.
    pub fn new(rate_bps: f64) -> RateLimit {
        assert!(rate_bps > 0.0);
        let burst = (rate_bps / 8.0 * 0.05).max(16.0 * 1024.0);
        RateLimit { rate_bps, burst_bytes: burst }
    }

    /// Effectively unlimited.
    pub fn unlimited() -> RateLimit {
        RateLimit { rate_bps: f64::MAX / 8.0, burst_bytes: f64::MAX / 8.0 }
    }
}

/// A cloneable handle to one token bucket. Every clone draws from the
/// same token balance, modeling a shared medium: give each stream that
/// crosses a home's Wi-Fi a clone of the home's bucket and their
/// aggregate rate — not each individual rate — is capped.
#[derive(Debug, Clone)]
pub struct SharedRateLimit {
    bucket: Arc<Mutex<Bucket>>,
}

impl SharedRateLimit {
    /// A shared bucket sustaining `bps` bits per second with the
    /// default burst (see [`RateLimit::new`]). Together with
    /// [`SharedRateLimit::unlimited`] this is the whole constructor
    /// surface — a limit with a custom burst converts via
    /// `From<RateLimit>`.
    pub fn from_bps(bps: u64) -> SharedRateLimit {
        SharedRateLimit::from(RateLimit::new(bps as f64))
    }

    /// A shared bucket that never throttles.
    pub fn unlimited() -> SharedRateLimit {
        SharedRateLimit::from(RateLimit::unlimited())
    }

    fn available(&self) -> usize {
        self.bucket.lock().available()
    }

    fn consume(&self, bytes: usize) {
        self.bucket.lock().consume(bytes);
    }

    fn ready_at(&self, bytes: usize) -> Instant {
        self.bucket.lock().ready_at(bytes)
    }

    /// Fire-time re-check for a dry-bucket wait (see
    /// [`ThrottleWait`]): `None` when at least `need` bytes are now
    /// available (wake the waiter), otherwise the re-arm deadline.
    /// Runs the same `available()`-then-`ready_at()` arithmetic the
    /// woken stream would run at this same virtual instant.
    fn gate_check(&self, need: usize) -> Option<Instant> {
        let mut bucket = self.bucket.lock();
        if bucket.available() >= need {
            None
        } else {
            Some(bucket.ready_at(need))
        }
    }

    /// This bucket's scheduling quantum: [`QUANTUM`] capped at the
    /// bucket depth. A dry wait must never target more tokens than the
    /// bucket can hold, or it would sleep forever; shallow buckets
    /// simply schedule at their full depth.
    fn scheduling_quantum(&self) -> usize {
        let bucket = self.bucket.lock();
        (bucket.limit.burst_bytes.min(QUANTUM as f64) as usize).max(1)
    }
}

impl From<RateLimit> for SharedRateLimit {
    /// Wrap a fully specified limit (custom burst included) in a fresh
    /// shared bucket.
    fn from(limit: RateLimit) -> SharedRateLimit {
        SharedRateLimit { bucket: Arc::new(Mutex::new(Bucket::new(limit))) }
    }
}

#[derive(Debug)]
struct Bucket {
    limit: RateLimit,
    tokens: f64,
    last_refill: Instant,
}

impl Bucket {
    fn new(limit: RateLimit) -> Bucket {
        Bucket { limit, tokens: limit.burst_bytes, last_refill: Instant::now() }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.limit.rate_bps / 8.0).min(self.limit.burst_bytes);
        self.last_refill = now;
    }

    /// Bytes that may pass now (0 if the bucket is dry).
    fn available(&mut self) -> usize {
        self.refill(Instant::now());
        self.tokens.max(0.0) as usize
    }

    fn consume(&mut self, bytes: usize) {
        self.tokens -= bytes as f64;
    }

    /// Instant at which at least `bytes` tokens will be available.
    ///
    /// Never earlier than 1 ms past the last refill: `available()`
    /// truncates the float balance, so the deficit can be a fraction
    /// of a byte whose drain time rounds to zero — an already-expired
    /// sleep would make `poll_read` spin without yielding.
    fn ready_at(&self, bytes: usize) -> Instant {
        let deficit = (bytes as f64 - self.tokens).max(0.0);
        let secs = deficit / (self.limit.rate_bps / 8.0);
        self.last_refill + Duration::from_secs_f64(secs.clamp(1e-3, 3600.0))
    }
}

/// Scheduling quantum, bytes: how many tokens a dry stream waits for
/// before it wakes and moves data. Waking for single bytes would
/// thrash the timer wheel; waking per KiB costs one full task poll
/// cycle per KiB transferred, which dominates fleet-scale runs.
///
/// Coarsening the quantum does **not** change modeled transfer times:
/// a stream always consumes *all* available tokens when it runs, and a
/// wait's deadline is the exact fluid-model instant the bucket covers
/// the deficit — so each transfer's completion instant is a function
/// of the token integral, not of the wake granularity. Only the
/// intra-transfer arrival pattern coarsens (16 KiB bursts instead of
/// 1 KiB). Buckets shallower than a quantum schedule at their full
/// depth instead (see [`SharedRateLimit::scheduling_quantum`]).
const QUANTUM: usize = 16 * 1024;

/// One direction's dry-bucket wait: a single `Sleep` created on the
/// first wait and **reset in place** for every wait after it. A busy
/// throttled stream waits once per quantum for its whole life — the
/// old `Option<Pin<Box<Sleep>>>` slot allocated a boxed timer for each
/// of those waits; this allocates once (the timer entry inside the
/// `Sleep`) and re-arms it, which is why the vendored `Sleep` grew
/// `reset` in the first place.
#[derive(Debug, Default)]
struct ThrottleWait {
    sleep: Option<Sleep>,
    /// True while a wait is armed and not yet observed `Ready`. The
    /// `Sleep` itself can't answer this: after a wait completes it
    /// stays elapsed until the next `arm` re-arms it.
    armed: bool,
    /// The byte count the current wait is for, read by the sleep's
    /// fire-time gate (shared because the gate closure lives inside
    /// the timer entry).
    want: Arc<AtomicUsize>,
}

impl ThrottleWait {
    /// Arm (or re-arm) the wait until `bucket` can cover `want` bytes.
    ///
    /// The sleep carries a fire-time gate ([`Sleep::gate`]): when the
    /// deadline arrives, the runtime re-checks the bucket *in the
    /// timer dispatch path* and silently re-arms if the tokens were
    /// consumed by a sibling stream in the meantime. Contending
    /// streams on one shared medium would otherwise stampede — every
    /// refill waking every waiter, one of them progressing, the rest
    /// paying a full task poll just to re-arm.
    fn arm(&mut self, bucket: &SharedRateLimit, want: usize) {
        let at = bucket.ready_at(want);
        self.want.store(want, Ordering::Relaxed);
        match &mut self.sleep {
            Some(sleep) => sleep.reset(at),
            None => {
                let mut sleep = sleep_until(at);
                let gate_bucket = bucket.clone();
                let gate_want = Arc::clone(&self.want);
                sleep.gate(move || gate_bucket.gate_check(gate_want.load(Ordering::Relaxed)));
                self.sleep = Some(sleep);
            }
        }
        self.armed = true;
    }

    /// Wait out the armed sleep; immediately `Ready` when disarmed.
    fn poll_wait(&mut self, cx: &mut Context<'_>) -> Poll<()> {
        if !self.armed {
            return Poll::Ready(());
        }
        let sleep = self.sleep.as_mut().expect("armed ThrottleWait without a Sleep");
        match Pin::new(sleep).poll(cx) {
            Poll::Ready(()) => {
                self.armed = false;
                Poll::Ready(())
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

/// A rate-limited wrapper around an async transport. The read and
/// write buckets are shared handles, so independent streams can be
/// made to contend for one medium (see [`SharedRateLimit`]); the plain
/// constructors create private buckets and behave like before.
#[derive(Debug)]
pub struct ThrottledStream<T> {
    inner: T,
    read_bucket: SharedRateLimit,
    write_bucket: SharedRateLimit,
    read_wait: ThrottleWait,
    write_wait: ThrottleWait,
    /// Cached [`SharedRateLimit::scheduling_quantum`] per direction —
    /// bucket depth never changes after construction, so these are
    /// computed once instead of locking the bucket every poll.
    read_quantum: usize,
    write_quantum: usize,
}

impl<T> ThrottledStream<T> {
    /// Wrap `inner` with independent, private read/write limits.
    pub fn new(inner: T, read: RateLimit, write: RateLimit) -> ThrottledStream<T> {
        ThrottledStream::with_shared(inner, read.into(), write.into())
    }

    /// Wrap with a symmetric private limit.
    pub fn symmetric(inner: T, limit: RateLimit) -> ThrottledStream<T> {
        ThrottledStream::new(inner, limit, limit)
    }

    /// Wrap `inner` drawing read and write tokens from shared buckets.
    pub fn with_shared(
        inner: T,
        read: SharedRateLimit,
        write: SharedRateLimit,
    ) -> ThrottledStream<T> {
        let read_quantum = read.scheduling_quantum();
        let write_quantum = write.scheduling_quantum();
        ThrottledStream {
            inner,
            read_bucket: read,
            write_bucket: write,
            read_wait: ThrottleWait::default(),
            write_wait: ThrottleWait::default(),
            read_quantum,
            write_quantum,
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &T {
        &self.inner
    }
}

impl<T: AsyncRead + Unpin> AsyncRead for ThrottledStream<T> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let this = self.get_mut();
        loop {
            // Wait out any pending throttle sleep.
            if this.read_wait.poll_wait(cx).is_pending() {
                return Poll::Pending;
            }
            let available = this.read_bucket.available();
            if available < this.read_quantum.min(buf.remaining()) {
                let want = this.read_quantum.min(buf.remaining()).max(1);
                this.read_wait.arm(&this.read_bucket, want);
                continue;
            }
            let allowed = available.min(buf.remaining());
            let mut limited = buf.take(allowed);
            return match Pin::new(&mut this.inner).poll_read(cx, &mut limited) {
                Poll::Ready(Ok(())) => {
                    let n = limited.filled().len();
                    let filled_total = buf.filled().len() + n;
                    // Safety-free accounting: `take` borrows the same
                    // backing buffer, so we only need to advance the
                    // original's cursor.
                    unsafe { buf.assume_init(n) };
                    buf.set_filled(filled_total);
                    this.read_bucket.consume(n);
                    Poll::Ready(Ok(()))
                }
                other => other,
            };
        }
    }
}

impl<T: AsyncWrite + Unpin> AsyncWrite for ThrottledStream<T> {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        data: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        let this = self.get_mut();
        loop {
            if this.write_wait.poll_wait(cx).is_pending() {
                return Poll::Pending;
            }
            let available = this.write_bucket.available();
            if available < this.write_quantum.min(data.len()).max(1) {
                let want = this.write_quantum.min(data.len()).max(1);
                this.write_wait.arm(&this.write_bucket, want);
                continue;
            }
            let allowed = available.min(data.len());
            return match Pin::new(&mut this.inner).poll_write(cx, &data[..allowed]) {
                Poll::Ready(Ok(n)) => {
                    this.write_bucket.consume(n);
                    Poll::Ready(Ok(n))
                }
                other => other,
            };
        }
    }

    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[IoSlice<'_>],
    ) -> Poll<std::io::Result<usize>> {
        let this = self.get_mut();
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Pin::new(&mut this.inner).poll_write_vectored(cx, bufs);
        }
        loop {
            if this.write_wait.poll_wait(cx).is_pending() {
                return Poll::Pending;
            }
            let available = this.write_bucket.available();
            if available < this.write_quantum.min(total).max(1) {
                let want = this.write_quantum.min(total).max(1);
                this.write_wait.arm(&this.write_bucket, want);
                continue;
            }
            let allowed = available.min(total);
            // Tokens cover the whole gather-write: pass the caller's
            // slices straight through, allocation-free.
            if allowed >= total {
                return match Pin::new(&mut this.inner).poll_write_vectored(cx, bufs) {
                    Poll::Ready(Ok(n)) => {
                        this.write_bucket.consume(n);
                        Poll::Ready(Ok(n))
                    }
                    other => other,
                };
            }
            // The token cap applies to the gather-write as a whole:
            // truncate the slice list at `allowed` bytes so a head+body
            // pair still drains the bucket at the configured rate.
            let mut capped: Vec<IoSlice<'_>> = Vec::with_capacity(bufs.len());
            let mut budget = allowed;
            for b in bufs {
                if budget == 0 {
                    break;
                }
                let take = b.len().min(budget);
                capped.push(IoSlice::new(&b[..take]));
                budget -= take;
            }
            return match Pin::new(&mut this.inner).poll_write_vectored(cx, &capped) {
                Poll::Ready(Ok(n)) => {
                    this.write_bucket.consume(n);
                    Poll::Ready(Ok(n))
                }
                other => other,
            };
        }
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut self.get_mut().inner).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut self.get_mut().inner).poll_shutdown(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};

    #[tokio::test]
    async fn read_rate_is_enforced() {
        let (mut tx, rx) = tokio::io::duplex(1024 * 1024);
        // 800 kbit/s = 100 kB/s.
        let mut throttled = ThrottledStream::new(
            rx,
            RateLimit { rate_bps: 800_000.0, burst_bytes: 16.0 * 1024.0 },
            RateLimit::unlimited(),
        );
        let payload = vec![1u8; 100_000];
        tokio::spawn(async move {
            tx.write_all(&payload).await.unwrap();
        });
        let start = tokio::time::Instant::now();
        let mut buf = vec![0u8; 100_000];
        throttled.read_exact(&mut buf).await.unwrap();
        let secs = start.elapsed().as_secs_f64();
        // 100 kB minus 16 kB burst at 100 kB/s ≈ 0.84 s.
        assert!(secs > 0.6 && secs < 1.6, "took {secs}");
    }

    #[tokio::test]
    async fn write_rate_is_enforced() {
        let (tx, mut rx) = tokio::io::duplex(1024 * 1024);
        let mut throttled = ThrottledStream::new(
            tx,
            RateLimit::unlimited(),
            RateLimit { rate_bps: 1_600_000.0, burst_bytes: 16.0 * 1024.0 },
        );
        let reader = tokio::spawn(async move {
            let mut buf = vec![0u8; 100_000];
            rx.read_exact(&mut buf).await.unwrap();
        });
        let start = tokio::time::Instant::now();
        throttled.write_all(&vec![2u8; 100_000]).await.unwrap();
        throttled.flush().await.unwrap();
        reader.await.unwrap();
        let secs = start.elapsed().as_secs_f64();
        // 100 kB minus burst at 200 kB/s ≈ 0.42 s.
        assert!(secs > 0.3 && secs < 1.0, "took {secs}");
    }

    #[tokio::test]
    async fn unlimited_is_fast() {
        let (mut tx, rx) = tokio::io::duplex(1024 * 1024);
        let mut throttled = ThrottledStream::symmetric(rx, RateLimit::unlimited());
        tokio::spawn(async move {
            tx.write_all(&vec![3u8; 500_000]).await.unwrap();
        });
        let start = tokio::time::Instant::now();
        let mut buf = vec![0u8; 500_000];
        throttled.read_exact(&mut buf).await.unwrap();
        assert!(start.elapsed().as_secs_f64() < 0.5);
    }

    #[tokio::test]
    async fn burst_passes_immediately() {
        let (mut tx, rx) = tokio::io::duplex(1024 * 1024);
        let mut throttled = ThrottledStream::new(
            rx,
            RateLimit { rate_bps: 80_000.0, burst_bytes: 64.0 * 1024.0 },
            RateLimit::unlimited(),
        );
        tokio::spawn(async move {
            tx.write_all(&vec![4u8; 32 * 1024]).await.unwrap();
        });
        let start = tokio::time::Instant::now();
        let mut buf = vec![0u8; 32 * 1024];
        throttled.read_exact(&mut buf).await.unwrap();
        // Fits within the burst: no throttling delay.
        assert!(start.elapsed().as_secs_f64() < 0.2);
    }

    #[tokio::test]
    async fn shared_bucket_halves_per_stream_rate() {
        // Two streams drawing from one 100 kB/s bucket: 50 kB each
        // takes ~1 s in aggregate, vs ~0.5 s if the buckets were
        // private. The assertion window distinguishes the two.
        let medium = SharedRateLimit::from(RateLimit { rate_bps: 800_000.0, burst_bytes: 1024.0 });
        let mut handles = Vec::new();
        let start = tokio::time::Instant::now();
        for _ in 0..2 {
            let (mut tx, rx) = tokio::io::duplex(1024 * 1024);
            let mut throttled =
                ThrottledStream::with_shared(rx, medium.clone(), SharedRateLimit::unlimited());
            handles.push(tokio::spawn(async move {
                tokio::spawn(async move {
                    tx.write_all(&vec![9u8; 50_000]).await.unwrap();
                });
                let mut buf = vec![0u8; 50_000];
                throttled.read_exact(&mut buf).await.unwrap();
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        let secs = start.elapsed().as_secs_f64();
        // 100 kB total at 100 kB/s ≈ 1 s; private buckets would finish
        // in ≈ 0.5 s.
        assert!(secs > 0.8 && secs < 1.6, "took {secs}");
    }

    #[test]
    fn rate_limit_constructor() {
        let r = RateLimit::new(8e6); // 1 MB/s -> 50 ms burst = 50 kB
        assert_eq!(r.rate_bps, 8e6);
        assert!((r.burst_bytes - 50_000.0).abs() < 1.0);
        let slow = RateLimit::new(8_000.0);
        assert_eq!(slow.burst_bytes, 16.0 * 1024.0); // floor
    }
}
