//! The device component: the phone-side HTTP proxy (paper §4.1).
//!
//! "We implement the mobile component as an Android application that
//! includes a basic HTTP proxy to serve the requests coming from the
//! Wi-Fi using the 3G interface." Here the Wi-Fi side is a TCP
//! listener on the home's virtual-network subnet and the 3G interface
//! is a throttled upstream connection. The §6 quota tracker gates discovery announcements:
//! the device only advertises while `A(t) > 0`.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tokio::net::{TcpListener, TcpStream};

use threegol_caps::QuotaTracker;
use threegol_http::codec::{Body, BodyFraming, HttpStream};
use tokio::io::AsyncWriteExt;

use crate::discovery::{Advertisement, Announcer};
use crate::throttle::{RateLimit, ThrottledStream};

/// The phone-side proxy.
pub struct DeviceProxy {
    /// Device name (used in discovery).
    pub name: String,
    upstream: SocketAddr,
    /// Current 3G (down, up) rates. Behind a lock so the scenario
    /// engine can retune them as the simulated hour advances (cell
    /// shares vary diurnally); each new upstream connection snapshots
    /// the rates at connect time, like a phone renegotiating its bearer.
    rates: Mutex<(RateLimit, RateLimit)>,
    quota: Mutex<QuotaTracker>,
}

impl DeviceProxy {
    /// Create a device proxying to `upstream` through a 3G bearer with
    /// the given downlink/uplink rates and a 3GOL allowance.
    pub fn new(
        name: impl Into<String>,
        upstream: SocketAddr,
        g3_down: RateLimit,
        g3_up: RateLimit,
        allowance_bytes: f64,
    ) -> DeviceProxy {
        DeviceProxy {
            name: name.into(),
            upstream,
            rates: Mutex::new((g3_down, g3_up)),
            quota: Mutex::new(QuotaTracker::new(allowance_bytes)),
        }
    }

    /// Retune the 3G bearer (applies to connections opened afterwards).
    pub fn set_rates(&self, g3_down: RateLimit, g3_up: RateLimit) {
        *self.rates.lock() = (g3_down, g3_up);
    }

    /// Remaining quota, bytes.
    pub fn available_bytes(&self) -> f64 {
        self.quota.lock().available_bytes()
    }

    /// Bytes consumed against the current allowance (may exceed it:
    /// an in-flight transfer completes even when it overruns).
    pub fn used_bytes(&self) -> f64 {
        self.quota.lock().used_bytes()
    }

    /// Whether the device should currently advertise itself.
    pub fn should_advertise(&self) -> bool {
        self.quota.lock().should_advertise()
    }

    /// Day boundary: grant a fresh daily allowance and forget the old
    /// day's usage. An exhausted device becomes advertisable again —
    /// the §6 loop's "stops announcing until the next day".
    pub fn roll_over(&self, allowance_bytes: f64) {
        self.quota.lock().roll_over(allowance_bytes);
    }

    /// Listen on `lan_addr` (port 0 for ephemeral) and serve LAN
    /// connections. Returns the bound address and the accept-loop task.
    pub async fn spawn(
        self: Arc<Self>,
        lan_addr: &str,
    ) -> std::io::Result<(SocketAddr, tokio::task::JoinHandle<()>)> {
        let listener = TcpListener::bind(lan_addr).await?;
        let local = listener.local_addr()?;
        let handle = tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else { break };
                let device = Arc::clone(&self);
                tokio::spawn(async move {
                    let _ = device.serve_lan_connection(stream).await;
                });
            }
        });
        Ok((local, handle))
    }

    /// Pipe one LAN connection through the 3G bearer: each request is
    /// forwarded upstream and the response relayed back; transferred
    /// body bytes are charged to the quota.
    ///
    /// Bodies with known length stream through bounded-window piping —
    /// a segment or photo is never materialized on the device, matching
    /// the phone proxy's memory budget. Chunked/close-delimited bodies
    /// (which the prototype's peers never send) fall back to buffering
    /// and are re-framed with a Content-Length.
    pub async fn serve_lan_connection(
        &self,
        lan: TcpStream,
    ) -> Result<(), threegol_http::HttpError> {
        lan.set_nodelay(true).ok();
        let upstream_tcp = TcpStream::connect(self.upstream).await?;
        upstream_tcp.set_nodelay(true).ok();
        let (g3_down, g3_up) = *self.rates.lock();
        let mut upstream = HttpStream::new(ThrottledStream::new(upstream_tcp, g3_down, g3_up));
        let mut lan = HttpStream::new(lan);
        while let Some((head, body)) = lan.read_request_head().await? {
            let up_bytes = match body {
                Body::Stream(BodyFraming::Length(len)) => {
                    upstream.write_request_head(&head, BodyFraming::Length(len)).await?;
                    lan.pipe_body(body, upstream.get_mut()).await?
                }
                body => {
                    let bytes = lan.read_body(body).await?;
                    let framing = if bytes.is_empty() {
                        BodyFraming::None
                    } else {
                        BodyFraming::Length(bytes.len())
                    };
                    upstream.write_request_head(&head, framing).await?;
                    upstream.get_mut().write_all(&bytes).await?;
                    bytes.len() as u64
                }
            };
            upstream.flush().await?;

            let (resp_head, resp_body) = upstream.read_response_head().await?;
            let down_bytes = match resp_body {
                Body::Stream(BodyFraming::Length(len)) => {
                    lan.write_response_head(&resp_head, BodyFraming::Length(len)).await?;
                    upstream.pipe_body(resp_body, lan.get_mut()).await?
                }
                resp_body => {
                    let bytes = upstream.read_body(resp_body).await?;
                    let framing = if bytes.is_empty() {
                        BodyFraming::None
                    } else {
                        BodyFraming::Length(bytes.len())
                    };
                    lan.write_response_head(&resp_head, framing).await?;
                    lan.get_mut().write_all(&bytes).await?;
                    bytes.len() as u64
                }
            };
            lan.flush().await?;
            self.quota.lock().consume((up_bytes + down_bytes) as f64);
        }
        Ok(())
    }

    /// Announce to the client's discovery listener every `interval`,
    /// while quota remains (paper: the device withdraws itself when
    /// `A(t)` hits zero). The task ends when the discovery socket is
    /// unreachable or the proxy is dropped elsewhere.
    pub fn spawn_announcer(
        self: Arc<Self>,
        discovery_addr: SocketAddr,
        lan_addr: SocketAddr,
        interval: Duration,
    ) -> tokio::task::JoinHandle<()> {
        tokio::spawn(async move {
            // One socket for the announcer's lifetime, bound lazily on
            // the first beacon (a quota-less device never binds at all).
            let mut announcer = None;
            loop {
                if self.should_advertise() {
                    let ad = Advertisement {
                        name: self.name.clone(),
                        proxy_addr: lan_addr,
                        available_bytes: self.available_bytes(),
                    };
                    let sender = match &announcer {
                        Some(sender) => sender,
                        None => match Announcer::bind(discovery_addr).await {
                            Ok(sender) => announcer.insert(sender),
                            Err(_) => break,
                        },
                    };
                    if sender.announce(&ad).await.is_err() {
                        break;
                    }
                }
                tokio::time::sleep(interval).await;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::OriginServer;
    use threegol_http::Request;

    async fn setup(allowance: f64) -> (Arc<DeviceProxy>, SocketAddr, Arc<OriginServer>) {
        let origin = Arc::new(OriginServer::small_for_tests());
        let (origin_addr, _h) = origin.clone().spawn("127.0.0.1:0").await.unwrap();
        let device = Arc::new(DeviceProxy::new(
            "phone-1",
            origin_addr,
            RateLimit::unlimited(),
            RateLimit::unlimited(),
            allowance,
        ));
        let (lan_addr, _h2) = device.clone().spawn("127.0.0.1:0").await.unwrap();
        (device, lan_addr, origin)
    }

    #[tokio::test]
    async fn proxies_get_requests() {
        let (device, lan_addr, _origin) = setup(10e6).await;
        let stream = TcpStream::connect(lan_addr).await.unwrap();
        let mut http = HttpStream::new(stream);
        http.write_request(&Request::get("/probe.bin")).await.unwrap();
        let resp = http.read_response().await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 64_000);
        // Quota charged for the relayed body.
        assert!((device.available_bytes() - (10e6 - 64_000.0)).abs() < 1.0);
    }

    #[tokio::test]
    async fn sequential_requests_on_one_connection() {
        let (_device, lan_addr, _origin) = setup(10e6).await;
        let stream = TcpStream::connect(lan_addr).await.unwrap();
        let mut http = HttpStream::new(stream);
        for _ in 0..3 {
            http.write_request(&Request::get("/master.m3u8")).await.unwrap();
            let resp = http.read_response().await.unwrap();
            assert_eq!(resp.status, 200);
        }
    }

    #[tokio::test]
    async fn quota_exhaustion_stops_advertising() {
        let (device, lan_addr, _origin) = setup(100_000.0).await;
        assert!(device.should_advertise());
        let stream = TcpStream::connect(lan_addr).await.unwrap();
        let mut http = HttpStream::new(stream);
        // Two 64 kB probes blow through the 100 kB allowance.
        for _ in 0..2 {
            http.write_request(&Request::get("/probe.bin")).await.unwrap();
            let resp = http.read_response().await.unwrap();
            assert_eq!(resp.status, 200);
        }
        assert!(!device.should_advertise());
        assert_eq!(device.available_bytes(), 0.0);
    }

    #[tokio::test]
    async fn throttled_device_is_slower() {
        let origin = Arc::new(OriginServer::small_for_tests());
        let (origin_addr, _h) = origin.clone().spawn("127.0.0.1:0").await.unwrap();
        // 512 kbit/s downlink: the 64 kB probe takes ≈ 0.75 s beyond
        // the burst.
        let device = Arc::new(DeviceProxy::new(
            "slow",
            origin_addr,
            RateLimit { rate_bps: 512_000.0, burst_bytes: 16_384.0 },
            RateLimit::unlimited(),
            10e6,
        ));
        let (lan_addr, _h2) = device.clone().spawn("127.0.0.1:0").await.unwrap();
        let stream = TcpStream::connect(lan_addr).await.unwrap();
        let mut http = HttpStream::new(stream);
        let start = tokio::time::Instant::now();
        http.write_request(&Request::get("/probe.bin")).await.unwrap();
        let resp = http.read_response().await.unwrap();
        assert_eq!(resp.body.len(), 64_000);
        let secs = start.elapsed().as_secs_f64();
        assert!(secs > 0.4, "took {secs}");
    }
}
