//! The HLS-aware client proxy (paper §4.1):
//!
//! > "The client component intercepts the extended M3U (m3u8)
//! > playlist, and using the scheduler it pre-fetches the segments by
//! > performing parallel downloads."
//!
//! [`HlsProxy`] is what the video player actually talks to: a local
//! HTTP proxy. A playlist request is forwarded upstream over the
//! gateway path; the moment the playlist is parsed, a background task
//! prefetches every segment over all available paths, and subsequent
//! segment requests are served from the prefetch cache (blocking until
//! the segment lands). The player is completely unaware of 3GOL — the
//! paper's transparency requirement (§4.1: "this implementation is
//! completely transparent to the residential gateway" and needs no
//! server changes).

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, Notify};

use threegol_hls::MediaPlaylist;
use threegol_http::codec::HttpStream;
use threegol_http::{HttpError, Request, Response};

use crate::client::{ThreegolClient, TransferReport};

/// Prefetch cache state. Targets are interned `Arc<str>`s: each
/// segment path is built exactly once per prefetch round and every
/// map, set, in-flight fetch and eviction shares that one allocation
/// (lookups by `&str` still work — `Arc<str>: Borrow<str>`).
#[derive(Default)]
struct Cache {
    /// Segment target → body, once fetched and not yet served.
    ready: HashMap<Arc<str>, Bytes>,
    /// Targets currently being prefetched.
    pending: HashSet<Arc<str>>,
    /// Targets already handed to the player and evicted from `ready`
    /// (a VoD player requests each segment once, so holding served
    /// bodies would only grow the cache for the length of the video).
    /// Consulted by prefetch so a playlist re-intercept does not
    /// refetch them.
    served: HashSet<Arc<str>>,
}

/// Per-path byte tallies across every transfer this proxy issued,
/// plus the number of prefetch transfers still settling their books.
#[derive(Default)]
struct PathStats {
    /// Bytes that crossed each path index (0 = gateway, 1.. = phones),
    /// aborted partials included — the load the access links saw.
    bytes: Vec<f64>,
    /// Prefetch transfers in flight (fetch kicked off, report not yet
    /// folded in).
    in_flight: usize,
}

impl PathStats {
    fn note(&mut self, report: &TransferReport) {
        if self.bytes.len() < report.bytes_per_path.len() {
            self.bytes.resize(report.bytes_per_path.len(), 0.0);
        }
        for (acc, v) in self.bytes.iter_mut().zip(&report.bytes_per_path) {
            *acc += *v;
        }
    }
}

/// The HLS-aware local proxy.
pub struct HlsProxy {
    client: Arc<ThreegolClient>,
    cache: Arc<Mutex<Cache>>,
    arrived: Arc<Notify>,
    stats: Arc<Mutex<PathStats>>,
    idle: Arc<Notify>,
}

impl HlsProxy {
    /// Create a proxy multiplexing over `client`'s paths.
    pub fn new(client: ThreegolClient) -> HlsProxy {
        HlsProxy {
            client: Arc::new(client),
            cache: Arc::new(Mutex::new(Cache::default())),
            arrived: Arc::new(Notify::new()),
            stats: Arc::new(Mutex::new(PathStats::default())),
            idle: Arc::new(Notify::new()),
        }
    }

    /// Listen on `addr` (port 0 for ephemeral) and serve players.
    pub async fn spawn(
        self: Arc<Self>,
        addr: &str,
    ) -> std::io::Result<(SocketAddr, tokio::task::JoinHandle<()>)> {
        let listener = TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        let handle = tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else { break };
                let proxy = Arc::clone(&self);
                tokio::spawn(async move {
                    let _ = proxy.serve_connection(stream).await;
                });
            }
        });
        Ok((local, handle))
    }

    /// Serve one player connection.
    pub async fn serve_connection(&self, stream: TcpStream) -> Result<(), HttpError> {
        stream.set_nodelay(true).ok();
        let mut http = HttpStream::new(stream);
        while let Some(req) = http.read_request().await? {
            let resp = self.handle(&req).await?;
            http.write_response(&resp).await?;
        }
        Ok(())
    }

    /// Handle one player request.
    pub async fn handle(&self, req: &Request) -> Result<Response, HttpError> {
        if req.method != "GET" {
            return Ok(Response::status(405, "Method Not Allowed"));
        }
        if req.target.ends_with(".m3u8") {
            self.handle_playlist(&req.target).await
        } else {
            self.handle_segment(&req.target).await
        }
    }

    /// Intercept a playlist: forward it, then kick off the multipath
    /// prefetch of all its segments. Master playlists pass through
    /// untouched — the player picks a variant and requests its media
    /// playlist next, which triggers the prefetch.
    async fn handle_playlist(&self, target: &str) -> Result<Response, HttpError> {
        let (bodies, report) = self.client.fetch(vec![Arc::from(target)], None).await?;
        self.stats.lock().note(&report);
        let body = bodies.into_iter().next().expect("one body");
        if let Ok(text) = std::str::from_utf8(&body) {
            if let Ok(playlist) = MediaPlaylist::parse(text) {
                if !playlist.entries.is_empty() {
                    self.start_prefetch(target, &playlist);
                }
            }
        }
        Ok(Response::ok("application/vnd.apple.mpegurl", body))
    }

    /// Begin prefetching every segment of `playlist` not already cached
    /// or in flight. Each target string is built exactly once here;
    /// the pending set, the fetch jobs and the arrival bookkeeping all
    /// share it as an `Arc<str>` (the old code cloned every URI 2-3
    /// times per round).
    fn start_prefetch(&self, playlist_target: &str, playlist: &MediaPlaylist) {
        let base = playlist_target.rsplit_once('/').map(|(dir, _)| dir).unwrap_or("");
        let fresh: Vec<Arc<str>> = {
            let mut cache = self.cache.lock();
            let mut fresh = Vec::new();
            for (_, uri) in &playlist.entries {
                let t: Arc<str> = if uri.starts_with('/') {
                    Arc::from(uri.as_str())
                } else {
                    Arc::from(format!("{base}/{uri}"))
                };
                if !cache.ready.contains_key(&*t)
                    && !cache.pending.contains(&*t)
                    && !cache.served.contains(&*t)
                {
                    cache.pending.insert(Arc::clone(&t));
                    fresh.push(t);
                }
            }
            fresh
        };
        if fresh.is_empty() {
            return;
        }
        let client = Arc::clone(&self.client);
        let cache = Arc::clone(&self.cache);
        let arrived = Arc::clone(&self.arrived);
        let stats = Arc::clone(&self.stats);
        let idle = Arc::clone(&self.idle);
        let (tx, mut rx) = mpsc::unbounded_channel::<(usize, Bytes)>();
        // Both tasks below share one target list; the fetch call gets
        // its own Vec of refcount bumps, not string copies.
        let targets: Arc<[Arc<str>]> = fresh.into();
        let fetch_targets: Vec<Arc<str>> = targets.to_vec();
        stats.lock().in_flight += 1;
        tokio::spawn(async move {
            let report = client.fetch_streaming(fetch_targets, tx).await;
            let mut s = stats.lock();
            if let Ok(report) = report {
                s.note(&report);
            }
            s.in_flight -= 1;
            let now_idle = s.in_flight == 0;
            drop(s);
            if now_idle {
                idle.notify_waiters();
            }
        });
        tokio::spawn(async move {
            while let Some((idx, body)) = rx.recv().await {
                let mut c = cache.lock();
                let t = &targets[idx];
                c.pending.remove(&**t);
                c.ready.insert(Arc::clone(t), body);
                drop(c);
                arrived.notify_waiters();
            }
            // Fetch task ended: clear any leftovers so segment requests
            // fall back to direct fetches instead of waiting forever.
            let mut c = cache.lock();
            for t in targets.iter() {
                c.pending.remove(&**t);
            }
            drop(c);
            arrived.notify_waiters();
        });
    }

    /// Serve a segment from the prefetch cache, waiting for it to land
    /// if the prefetch is still in flight; falls back to a direct
    /// multipath fetch for never-prefetched targets. Serving evicts
    /// the body from the cache — the `Bytes` handle moves to the
    /// response without copying, and the ready cache stays bounded by
    /// the prefetch window instead of the whole video.
    async fn handle_segment(&self, target: &str) -> Result<Response, HttpError> {
        loop {
            let notified = self.arrived.notified();
            let in_flight = {
                let mut cache = self.cache.lock();
                // `remove_entry` recovers the interned key so the
                // served set reuses it instead of re-allocating.
                if let Some((key, body)) = cache.ready.remove_entry(target) {
                    cache.served.insert(key);
                    return Ok(Response::ok("video/mp2t", body));
                }
                cache.pending.contains(target)
            };
            if !in_flight {
                // Not part of any intercepted playlist: fetch directly.
                let interned: Arc<str> = Arc::from(target);
                let (bodies, report) = self.client.fetch(vec![Arc::clone(&interned)], None).await?;
                self.stats.lock().note(&report);
                let body = bodies.into_iter().next().expect("one body");
                self.cache.lock().served.insert(interned);
                return Ok(Response::ok("video/mp2t", body));
            }
            notified.await;
        }
    }

    /// Wait until no prefetch transfer is settling its books, so the
    /// per-path tallies below are complete. Returns immediately when
    /// nothing is in flight.
    pub async fn wait_idle(&self) {
        loop {
            let notified = self.idle.notified();
            if self.stats.lock().in_flight == 0 {
                return;
            }
            notified.await;
        }
    }

    /// Bytes this proxy's transfers moved per path index (0 = the
    /// gateway, 1.. = device paths), aborted partials included.
    pub fn path_bytes(&self) -> Vec<f64> {
        self.stats.lock().bytes.clone()
    }

    /// Bytes this proxy's transfers moved over device (3G) paths —
    /// the downlink burden the phones' cells carried.
    pub fn device_bytes(&self) -> f64 {
        self.stats.lock().bytes.iter().skip(1).sum()
    }

    /// Number of cached (fetched, not yet served) segments.
    pub fn cached_segments(&self) -> usize {
        self.cache.lock().ready.len()
    }

    /// Number of segments already served (and evicted).
    pub fn served_segments(&self) -> usize {
        self.cache.lock().served.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::OriginServer;
    use crate::throttle::RateLimit;
    use crate::PathTarget;
    use threegol_hls::VideoQuality;

    async fn setup() -> (Arc<HlsProxy>, SocketAddr, Arc<OriginServer>) {
        let ladder = vec![VideoQuality::new("Q1", 64e3)];
        let origin = Arc::new(OriginServer::new(&ladder, 10.0, 2.0));
        let (origin_addr, _t) = origin.clone().spawn("127.0.0.1:0").await.unwrap();
        let client = ThreegolClient::new(vec![PathTarget::Gateway {
            origin: origin_addr,
            down: RateLimit::new(8e6),
            up: RateLimit::new(2e6),
        }]);
        let proxy = Arc::new(HlsProxy::new(client));
        let (addr, _t2) = proxy.clone().spawn("127.0.0.1:0").await.unwrap();
        (proxy, addr, origin)
    }

    async fn player_get(addr: SocketAddr, target: &str) -> Response {
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut http = HttpStream::new(stream);
        http.write_request(&Request::get(target)).await.unwrap();
        http.read_response().await.unwrap()
    }

    #[tokio::test]
    async fn player_flow_playlist_then_segments() {
        let (proxy, addr, _origin) = setup().await;
        // The player asks for the playlist — prefetch starts behind it.
        let pl = player_get(addr, "/q1/index.m3u8").await;
        assert_eq!(pl.status, 200);
        let text = std::str::from_utf8(&pl.body).unwrap();
        assert!(text.contains("#EXTM3U"));
        // The player then requests segments in order; the proxy serves
        // them from the prefetch cache (possibly waiting for arrival).
        for i in 0..5 {
            let seg = player_get(addr, &format!("/q1/seg{i:05}.ts")).await;
            assert_eq!(seg.status, 200);
            assert_eq!(seg.body.len(), 16_000, "segment {i}");
        }
        // Served segments are evicted from the ready cache.
        assert_eq!(proxy.cached_segments(), 0);
        assert_eq!(proxy.served_segments(), 5);
    }

    #[tokio::test]
    async fn served_segments_are_not_refetched_on_replaylist() {
        let (proxy, addr, origin) = setup().await;
        let _ = player_get(addr, "/q1/index.m3u8").await;
        for i in 0..5 {
            let seg = player_get(addr, &format!("/q1/seg{i:05}.ts")).await;
            assert_eq!(seg.status, 200);
        }
        assert_eq!(proxy.cached_segments(), 0);
        let served_before = origin.requests_served();
        // Re-intercepting the playlist must not refetch evicted
        // segments the player already consumed.
        let _ = player_get(addr, "/q1/index.m3u8").await;
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        assert_eq!(origin.requests_served(), served_before + 1);
    }

    #[tokio::test]
    async fn master_playlist_passes_through() {
        let (proxy, addr, _origin) = setup().await;
        let master = player_get(addr, "/master.m3u8").await;
        assert_eq!(master.status, 200);
        assert!(std::str::from_utf8(&master.body).unwrap().contains("STREAM-INF"));
        // A master playlist must not trigger segment prefetch.
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        assert_eq!(proxy.cached_segments(), 0);
    }

    #[tokio::test]
    async fn direct_segment_fetch_without_playlist() {
        let (_proxy, addr, _origin) = setup().await;
        let seg = player_get(addr, "/q1/seg00002.ts").await;
        assert_eq!(seg.status, 200);
        assert_eq!(seg.body.len(), 16_000);
    }

    #[tokio::test]
    async fn repeated_playlist_requests_do_not_refetch() {
        let (proxy, addr, origin) = setup().await;
        let _ = player_get(addr, "/q1/index.m3u8").await;
        // Wait for the prefetch to finish.
        for _ in 0..100 {
            if proxy.cached_segments() == 5 {
                break;
            }
            tokio::time::sleep(std::time::Duration::from_millis(20)).await;
        }
        let served_before = origin.requests_served();
        let _ = player_get(addr, "/q1/index.m3u8").await;
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        // Only the playlist itself is refetched, not the segments.
        assert_eq!(origin.requests_served(), served_before + 1);
    }

    #[tokio::test]
    async fn non_get_rejected() {
        let (_proxy, addr, _origin) = setup().await;
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut http = HttpStream::new(stream);
        http.write_request(&Request::post("/x", "t/p", Bytes::new())).await.unwrap();
        let resp = http.read_response().await.unwrap();
        assert_eq!(resp.status, 405);
    }
}
