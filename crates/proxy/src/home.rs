//! A **home** as a first-class unit of the live prototype.
//!
//! The paper's deployment unit is a household: one ADSL line, one
//! Wi-Fi medium, a handful of phones with 3G quota, and the client
//! component running next to the player (§2, §4.1). This module wires
//! those pieces together on the virtual network so a whole home — and
//! a whole *fleet* of homes — runs inside one process under virtual
//! time:
//!
//! * [`HomeNet`] gives each home its own `10.x.y.0/24`-style address
//!   namespace, so any number of homes coexist in one runtime without
//!   colliding and a captured address is attributable to its home;
//! * [`HomeSpec`] bundles the link profiles (shared ADSL buckets,
//!   shared Wi-Fi medium, per-phone 3G rates, 3GOL allowance) and the
//!   workload (VoD prebuffer + concurrent photo upload);
//! * [`Home::run`] spins up the origin, the device proxies (with
//!   discovery announcers), and the client-side HLS proxy, drives the
//!   workload, and reports the per-home speedups over ADSL alone.
//!
//! Every throttle a home's transfers cross is *shared*: the ADSL
//! down/up buckets are one pair per home ([`PathTarget::SharedGateway`])
//! and the Wi-Fi medium is one bucket both directions of every
//! connection draw from ([`ThreegolClient::with_wifi`]) — concurrent
//! transactions inside a home contend the way they would on the real
//! links.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use tokio::net::TcpStream;
use tokio::time::Instant;

use threegol_hls::{MediaPlaylist, VideoQuality};
use threegol_http::codec::HttpStream;
use threegol_http::{HttpError, Request};

use crate::client::{PathTarget, ThreegolClient};
use crate::device::DeviceProxy;
use crate::discovery::Discovery;
use crate::hlsproxy::HlsProxy;
use crate::origin::OriginServer;
use crate::throttle::{RateLimit, SharedRateLimit};

/// A home's private corner of the virtual network.
///
/// Home `h` owns the subnet `10.(h >> 8).(h & 0xff).0/24`; well-known
/// hosts live at fixed final octets so an address appearing in a
/// deadlock diagnostic or a packet trace identifies both the home and
/// the role.
///
/// The namespace index is 16 bits — the 10.x.y.0/24 plan has exactly
/// 65 536 subnets — while [`HomeSpec::index`] is 32 bits so a fleet
/// can hold millions of homes. [`Home::run`] folds the spec index into
/// this space with `index % 65536`: two homes alias the same subnet
/// only if they run in the *same* runtime, and the fleet harness gives
/// every home its own runtime, so fleets larger than 65 536 homes
/// never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeNet {
    /// Home index (the `h` in `10.(h >> 8).(h & 0xff).x`).
    pub index: u16,
}

impl HomeNet {
    /// The namespace of home `index`.
    pub fn new(index: u16) -> HomeNet {
        HomeNet { index }
    }

    fn host(&self, last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, (self.index >> 8) as u8, (self.index & 0xff) as u8, last))
    }

    /// The origin server, as seen from this home: `.1:8080`.
    pub fn origin(&self) -> SocketAddr {
        SocketAddr::new(self.host(1), 8080)
    }

    /// The client's discovery listener (the home's broadcast domain):
    /// `.2:5353`.
    pub fn discovery(&self) -> SocketAddr {
        SocketAddr::new(self.host(2), 5353)
    }

    /// The client-side HLS proxy the player talks to: `.3:8088`.
    pub fn client_proxy(&self) -> SocketAddr {
        SocketAddr::new(self.host(3), 8088)
    }

    /// Device proxy `i`'s LAN listener: `.(10 + i):3128`.
    pub fn device(&self, i: usize) -> SocketAddr {
        assert!(i < 246, "at most 245 devices per home");
        SocketAddr::new(self.host(10 + i as u8), 3128)
    }
}

/// Link profiles and workload for one home.
///
/// Plain scalars only — the spec is `Copy`, costs nothing to build
/// from an index on a worker's stack, and a million-home fleet never
/// needs to materialize a single one on the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomeSpec {
    /// Home index (selects the [`HomeNet`] namespace, modulo 2^16).
    pub index: u32,
    /// Number of device proxies (phones with quota).
    pub devices: usize,
    /// ADSL downlink, bits/s — one shared bucket for the whole home.
    pub adsl_down_bps: f64,
    /// ADSL uplink, bits/s — one shared bucket for the whole home.
    pub adsl_up_bps: f64,
    /// Each phone's 3G downlink, bits/s.
    pub g3_down_bps: f64,
    /// Each phone's 3G uplink, bits/s.
    pub g3_up_bps: f64,
    /// The Wi-Fi medium, bits/s — one shared bucket every connection
    /// in the home crosses, both directions.
    pub wifi_bps: f64,
    /// Each phone's 3GOL allowance `A(0)`, bytes.
    pub allowance_bytes: f64,
    /// VoD bitrate, bits/s.
    pub video_bps: f64,
    /// VoD duration to prebuffer, seconds.
    pub video_secs: f64,
    /// HLS segment duration, seconds.
    pub segment_secs: f64,
    /// Photos in the concurrent upload batch.
    pub photos: usize,
    /// Bytes per photo.
    pub photo_bytes: usize,
}

impl HomeSpec {
    /// A paper-flavoured default: 4/0.5 Mbit/s ADSL, two phones on
    /// 2/1 Mbit/s 3G, 30 Mbit/s Wi-Fi, a 10 s × 400 kbit/s VoD
    /// prebuffer racing a 3 × 100 kB photo upload.
    pub fn paper_default(index: u32) -> HomeSpec {
        HomeSpec {
            index,
            devices: 2,
            adsl_down_bps: 4e6,
            adsl_up_bps: 0.5e6,
            g3_down_bps: 2e6,
            g3_up_bps: 1e6,
            wifi_bps: 30e6,
            allowance_bytes: 50e6,
            video_bps: 400e3,
            video_secs: 10.0,
            segment_secs: 2.0,
            photos: 3,
            photo_bytes: 100_000,
        }
    }
}

/// What one home's workload achieved.
///
/// Like [`HomeSpec`] this is a fixed-size `Copy` record: a fleet
/// aggregates reports into a digest as they are produced instead of
/// holding a vector of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomeReport {
    /// Home index.
    pub index: u32,
    /// VoD prebuffer bytes fetched.
    pub vod_bytes: f64,
    /// VoD prebuffer wall time (virtual seconds).
    pub vod_secs: f64,
    /// Speedup of the prebuffer over ADSL alone
    /// (`bytes / adsl_down` vs measured).
    pub vod_gain: f64,
    /// Upload batch bytes.
    pub upload_bytes: f64,
    /// Upload batch wall time (virtual seconds).
    pub upload_secs: f64,
    /// Speedup of the upload over ADSL alone.
    pub upload_gain: f64,
    /// Upload bytes that crossed 3G paths (path 1..).
    pub upload_device_bytes: f64,
    /// Upload bytes moved by aborted duplicates.
    pub upload_wasted_bytes: f64,
}

/// One home, ready to run its workload. See [`Home::run`].
pub struct Home;

impl Home {
    /// Bring up the home and drive its workload: a VoD prebuffer
    /// through the client-side HLS proxy, concurrent with a photo
    /// upload — both multipath over the gateway and every discovered
    /// device, all sharing the home's ADSL and Wi-Fi media.
    ///
    /// Must run inside a `tokio` runtime; any number of homes may run
    /// in the same runtime (distinct [`HomeNet`] namespaces) or in
    /// separate runtimes on separate threads.
    pub async fn run(spec: &HomeSpec) -> Result<HomeReport, HttpError> {
        let net = HomeNet::new((spec.index % (1 << 16)) as u16);

        // Origin, behind the home's view of the WAN.
        let ladder = vec![VideoQuality::new("Q1", spec.video_bps)];
        let origin = Arc::new(OriginServer::new(&ladder, spec.video_secs, spec.segment_secs));
        let (origin_addr, _origin_task) = origin.clone().spawn(&net.origin().to_string()).await?;

        // The home's broadcast domain: a discovery listener the
        // announcers inside this subnet reach, and nobody else.
        let discovery = Discovery::bind(&net.discovery().to_string()).await?;
        let discovery_addr = discovery.local_addr()?;

        // Device proxies with quota-gated announcers.
        for i in 0..spec.devices {
            let device = Arc::new(DeviceProxy::new(
                format!("home{}-phone-{i}", spec.index),
                origin_addr,
                RateLimit::new(spec.g3_down_bps),
                RateLimit::new(spec.g3_up_bps),
                spec.allowance_bytes,
            ));
            let (lan_addr, _task) = device.clone().spawn(&net.device(i).to_string()).await?;
            device.spawn_announcer(discovery_addr, lan_addr, Duration::from_millis(100));
        }

        // Browse until every phone has advertised (quota > 0 at start,
        // so all of them will; virtual time makes this deterministic).
        while discovery.admissible().len() < spec.devices {
            tokio::time::sleep(Duration::from_millis(10)).await;
        }

        // The home's shared media.
        let wifi = SharedRateLimit::new(RateLimit::new(spec.wifi_bps));
        let adsl_down = SharedRateLimit::new(RateLimit::new(spec.adsl_down_bps));
        let adsl_up = SharedRateLimit::new(RateLimit::new(spec.adsl_up_bps));
        let make_paths = || -> Vec<PathTarget> {
            let mut paths = vec![PathTarget::SharedGateway {
                origin: origin_addr,
                down: adsl_down.clone(),
                up: adsl_up.clone(),
            }];
            paths.extend(
                discovery
                    .admissible()
                    .into_iter()
                    .map(|ad| PathTarget::Device { addr: ad.proxy_addr }),
            );
            paths
        };

        // The client-side HLS proxy the player points at.
        let hls =
            Arc::new(HlsProxy::new(ThreegolClient::new(make_paths()).with_wifi(wifi.clone())));
        let (proxy_addr, _proxy_task) = hls.clone().spawn(&net.client_proxy().to_string()).await?;

        // The uploader is a second client-component app in the same
        // home: its own scheduler, but the same shared media.
        let uploader = ThreegolClient::new(make_paths()).with_wifi(wifi.clone());

        // Drive the two transactions concurrently: the upload runs as
        // its own task while this task plays the VoD prebuffer.
        let photos: Vec<(String, Bytes)> = (0..spec.photos)
            .map(|i| {
                let body = vec![(i % 251) as u8; spec.photo_bytes];
                (format!("home{}-IMG_{i:04}.jpg", spec.index), Bytes::from(body))
            })
            .collect();
        let upload_bytes: f64 = photos.iter().map(|(_, d)| d.len() as f64).sum();
        let upload_task = tokio::spawn(async move {
            let t0 = Instant::now();
            let report = uploader.upload_photos(photos).await?;
            Ok::<_, HttpError>((t0.elapsed().as_secs_f64(), report))
        });

        let t0 = Instant::now();
        let vod_bytes = prebuffer_vod(proxy_addr, "/q1/index.m3u8").await?;
        let vod_secs = t0.elapsed().as_secs_f64();
        let (upload_secs, upload_report) = upload_task
            .await
            .map_err(|e| HttpError::Malformed(format!("upload task died: {e}")))??;

        // Gains against the home's ADSL line carrying the same bytes
        // alone (the paper's "power boost" ratio).
        let vod_baseline = vod_bytes * 8.0 / spec.adsl_down_bps;
        let upload_baseline = upload_bytes * 8.0 / spec.adsl_up_bps;
        Ok(HomeReport {
            index: spec.index,
            vod_bytes,
            vod_secs,
            vod_gain: vod_baseline / vod_secs,
            upload_bytes,
            upload_secs,
            upload_gain: upload_baseline / upload_secs,
            upload_device_bytes: upload_report.bytes_per_path.iter().skip(1).sum(),
            upload_wasted_bytes: upload_report.wasted_bytes,
        })
    }
}

/// Play the prebuffer phase of a VoD session against the home's HLS
/// proxy: fetch the media playlist, then every segment in order (the
/// proxy serves them from its multipath prefetch as they land).
/// Returns the total segment bytes received.
async fn prebuffer_vod(proxy_addr: SocketAddr, playlist: &str) -> Result<f64, HttpError> {
    let stream = TcpStream::connect(proxy_addr).await.map_err(HttpError::Io)?;
    let mut http = HttpStream::new(stream);
    http.write_request(&Request::get(playlist)).await?;
    let resp = http.read_response().await?;
    if resp.status != 200 {
        return Err(HttpError::Malformed(format!("playlist fetch failed: {}", resp.status)));
    }
    let text = std::str::from_utf8(&resp.body)
        .map_err(|_| HttpError::Malformed("non-UTF-8 playlist".into()))?;
    let media = MediaPlaylist::parse(text)
        .map_err(|e| HttpError::Malformed(format!("bad playlist: {e}")))?;
    let base = playlist.rsplit_once('/').map(|(dir, _)| dir).unwrap_or("");
    let mut bytes = 0.0;
    for (_, uri) in &media.entries {
        let target = if uri.starts_with('/') { uri.clone() } else { format!("{base}/{uri}") };
        http.write_request(&Request::get(target)).await?;
        let seg = http.read_response().await?;
        if seg.status != 200 {
            return Err(HttpError::Malformed(format!("segment fetch failed: {}", seg.status)));
        }
        bytes += seg.body.len() as f64;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_do_not_collide() {
        let a = HomeNet::new(0);
        let b = HomeNet::new(1);
        let c = HomeNet::new(256);
        assert_eq!(a.origin().to_string(), "10.0.0.1:8080");
        assert_eq!(b.origin().to_string(), "10.0.1.1:8080");
        assert_eq!(c.origin().to_string(), "10.1.0.1:8080");
        assert_eq!(b.device(3).to_string(), "10.0.1.13:3128");
        assert_ne!(a.discovery(), b.discovery());
    }

    #[tokio::test]
    async fn one_home_end_to_end() {
        let report = Home::run(&HomeSpec::paper_default(7)).await.unwrap();
        assert_eq!(report.index, 7);
        // 10 s × 400 kbit/s = 500 kB of video; 3 × 100 kB of photos.
        assert_eq!(report.vod_bytes, 500_000.0);
        assert_eq!(report.upload_bytes, 300_000.0);
        assert!(report.vod_secs > 0.0 && report.vod_secs.is_finite());
        // The 0.5 Mbit/s ADSL uplink alone would need 4.8 s; two
        // 1 Mbit/s phones must beat that comfortably.
        assert!(report.upload_gain > 1.2, "upload gain {}", report.upload_gain);
        assert!(report.upload_device_bytes > 0.0);
    }

    #[tokio::test]
    async fn home_without_devices_still_works() {
        let spec = HomeSpec { devices: 0, ..HomeSpec::paper_default(9) };
        let report = Home::run(&spec).await.unwrap();
        // ADSL-only: no 3G bytes, gain near 1 (bounded by bursts).
        assert_eq!(report.upload_device_bytes, 0.0);
        assert!(report.vod_gain < 1.5, "vod gain {}", report.vod_gain);
    }

    #[test]
    fn repeated_runs_are_identical() {
        // Fresh runtime per run: the same home index is reusable and
        // every event plays out at the same *relative* virtual time,
        // so measured durations must match bit for bit.
        let run = || tokio::runtime::block_on(Home::run(&HomeSpec::paper_default(3))).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.vod_secs, b.vod_secs);
        assert_eq!(a.upload_secs, b.upload_secs);
        assert_eq!(a.upload_device_bytes, b.upload_device_bytes);
        assert_eq!(a.upload_wasted_bytes, b.upload_wasted_bytes);
    }
}
