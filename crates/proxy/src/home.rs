//! A **home** as a first-class unit of the live prototype.
//!
//! The paper's deployment unit is a household: one ADSL line, one
//! Wi-Fi medium, a handful of phones with 3G quota, and the client
//! component running next to the player (§2, §4.1). This module wires
//! those pieces together on the virtual network so a whole home — and
//! a whole *fleet* of homes — runs inside one process under virtual
//! time:
//!
//! * [`HomeNet`] gives each home its own `10.x.y.0/24`-style address
//!   namespace, so any number of homes coexist in one runtime without
//!   colliding and a captured address is attributable to its home;
//! * [`HomeSpec`] bundles the link profiles (shared ADSL buckets,
//!   shared Wi-Fi medium, per-phone 3G rates, 3GOL allowance) and the
//!   workload (VoD prebuffer + concurrent photo upload);
//! * [`Home::run`] spins up the origin, the device proxies (with
//!   discovery announcers), and the client-side HLS proxy, drives the
//!   workload, and reports the per-home speedups over ADSL alone.
//!
//! Every throttle a home's transfers cross is *shared*: the ADSL
//! down/up buckets are one pair per home ([`PathTarget::SharedGateway`])
//! and the Wi-Fi medium is one bucket both directions of every
//! connection draw from ([`ThreegolClient::with_wifi`]) — concurrent
//! transactions inside a home contend the way they would on the real
//! links.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use tokio::net::TcpStream;
use tokio::time::Instant;

use threegol_hls::{MediaPlaylist, VideoQuality};
use threegol_http::codec::HttpStream;
use threegol_http::{HttpError, Request};

use crate::capacity::{CapacitySource, CellProfile, G3Source};
use crate::client::{PathTarget, ThreegolClient};
use crate::device::DeviceProxy;
use crate::discovery::Discovery;
use crate::hlsproxy::HlsProxy;
use crate::origin::OriginServer;
use crate::throttle::SharedRateLimit;

/// A home's private corner of the virtual network.
///
/// Home `h` owns the subnet `10.(h >> 8).(h & 0xff).0/24`; well-known
/// hosts live at fixed final octets so an address appearing in a
/// deadlock diagnostic or a packet trace identifies both the home and
/// the role.
///
/// The namespace index is 16 bits — the 10.x.y.0/24 plan has exactly
/// 65 536 subnets — while [`HomeSpec::index`] is 32 bits so a fleet
/// can hold millions of homes. [`Home::run`] folds the spec index into
/// this space with `index % 65536`: two homes alias the same subnet
/// only if they run in the *same* runtime, and the fleet harness gives
/// every home its own runtime, so fleets larger than 65 536 homes
/// never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeNet {
    /// Home index (the `h` in `10.(h >> 8).(h & 0xff).x`).
    pub index: u16,
}

impl HomeNet {
    /// The namespace of home `index`.
    pub fn new(index: u16) -> HomeNet {
        HomeNet { index }
    }

    fn host(&self, last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, (self.index >> 8) as u8, (self.index & 0xff) as u8, last))
    }

    /// The origin server, as seen from this home: `.1:8080`.
    pub fn origin(&self) -> SocketAddr {
        SocketAddr::new(self.host(1), 8080)
    }

    /// The client's discovery listener (the home's broadcast domain):
    /// `.2:5353`.
    pub fn discovery(&self) -> SocketAddr {
        SocketAddr::new(self.host(2), 5353)
    }

    /// The client-side HLS proxy the player talks to: `.3:8088`.
    pub fn client_proxy(&self) -> SocketAddr {
        SocketAddr::new(self.host(3), 8088)
    }

    /// Device proxy `i`'s LAN listener: `.(10 + i):3128`.
    pub fn device(&self, i: usize) -> SocketAddr {
        assert!(i < 246, "at most 245 devices per home");
        SocketAddr::new(self.host(10 + i as u8), 3128)
    }
}

/// The cell index a [`HomeReport`] carries when the home's 3G is
/// private ([`G3Source::Isolated`]): the all-ones sentinel, never a
/// valid cell.
pub const NO_CELL: u32 = u32::MAX;

/// Longest scenario a [`HomeReport`] can account per-day: five weeks,
/// enough to cross one 30-day billing-month boundary with margin. The
/// per-day accumulator arrays are this long so the report stays a
/// fixed-size `Copy` record.
pub const MAX_SCENARIO_DAYS: usize = 35;

/// Fixed-point scale of the scenario byte accumulators in
/// [`HomeReport`] (and the fleet digest that merges them): 2^10 units
/// per byte, giving sub-byte precision with ~2^53 bytes of headroom in
/// an `i64` slot — integer adds merge exactly associatively.
pub const SCENARIO_FP_SCALE: f64 = 1024.0;

/// How a home's workload is driven (DESIGN.md §14).
///
/// `PaperDefault` is the original fixed script — one VoD prebuffer
/// racing one photo-upload batch at [`HomeSpec::hour`] — preserved
/// operation-for-operation, so a fleet of `PaperDefault` homes
/// reproduces the pre-scenario digest bit for bit. `Traced` drives the
/// home from the per-home trace stream in `threegol-traces::scenario`
/// over simulated days of virtual time, with device churn and the §6
/// allowance loop run live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The fixed single-shot script (the pre-scenario prototype).
    PaperDefault,
    /// Trace-driven multi-day scenario.
    Traced {
        /// Simulated days, `1..=MAX_SCENARIO_DAYS`.
        days: u16,
        /// Scenario seed (mixed with the home index per draw).
        seed: u64,
    },
}

/// An ADSL service tier: the four paper-flavoured line speeds a street
/// of homes cycles through. The tier — together with the cell
/// assignment and the index — is the single source of truth a
/// [`HomeSpec`] is built from; see [`HomeSpec::tier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// 2 / 0.3 Mbit/s ADSL.
    Basic,
    /// 4 / 0.5 Mbit/s ADSL — the paper-default line.
    Standard,
    /// 6 / 0.7 Mbit/s ADSL.
    Fast,
    /// 8 / 1.0 Mbit/s ADSL.
    Premium,
}

impl Tier {
    /// Every tier, slowest first.
    pub const ALL: [Tier; 4] = [Tier::Basic, Tier::Standard, Tier::Fast, Tier::Premium];

    /// The tier of home `index` in a heterogeneous street: indices
    /// cycle through [`Tier::ALL`].
    pub fn of_index(index: u32) -> Tier {
        Tier::ALL[(index % 4) as usize]
    }

    /// The tier's ADSL downlink, bits/s.
    pub fn adsl_down_bps(self) -> f64 {
        match self {
            Tier::Basic => 2e6,
            Tier::Standard => 4e6,
            Tier::Fast => 6e6,
            Tier::Premium => 8e6,
        }
    }

    /// The tier's ADSL uplink, bits/s.
    pub fn adsl_up_bps(self) -> f64 {
        match self {
            Tier::Basic => 0.3e6,
            Tier::Standard => 0.5e6,
            Tier::Fast => 0.7e6,
            Tier::Premium => 1.0e6,
        }
    }
}

/// Link profiles and workload for one home.
///
/// Plain `Copy` data only — the spec costs nothing to build from an
/// index on a worker's stack, and a million-home fleet never needs to
/// materialize a single one on the heap. Built with the consuming
/// builder starting at [`HomeSpec::tier`]:
///
/// ```
/// use threegol_proxy::{CellProfile, HomeSpec, Tier};
///
/// let home = HomeSpec::tier(Tier::Fast)
///     .devices(3)
///     .cell(CellProfile::flat(2, 1.5e6, 0.8e6))
///     .hour(21)
///     .index(42);
/// assert_eq!(home.adsl_down_bps, 6e6);
/// assert_eq!(home.index, 42);
/// let copy = home; // still Copy
/// assert_eq!(copy, home);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomeSpec {
    /// Home index (selects the [`HomeNet`] namespace, modulo 2^16).
    pub index: u32,
    /// Number of device proxies (phones with quota).
    pub devices: usize,
    /// ADSL downlink, bits/s — one shared bucket for the whole home.
    pub adsl_down_bps: f64,
    /// ADSL uplink, bits/s — one shared bucket for the whole home.
    pub adsl_up_bps: f64,
    /// Where the phones' 3G capacity comes from: private rates or a
    /// per-phone share of a shared cell (see [`G3Source`]).
    pub g3: G3Source,
    /// Hour of day `[0, 24)` the run *starts* at. The paper-default
    /// script runs entirely at this hour (it samples the cell share
    /// here and buckets the home's onloaded bytes in the fleet digest);
    /// a [`Scenario::Traced`] run treats it as the start-of-run offset
    /// and advances the hour from the virtual clock as simulated days
    /// pass.
    pub hour: u8,
    /// The Wi-Fi medium, bits/s — one shared bucket every connection
    /// in the home crosses, both directions.
    pub wifi_bps: f64,
    /// Each phone's 3GOL allowance `A(0)`, bytes.
    pub allowance_bytes: f64,
    /// VoD bitrate, bits/s.
    pub video_bps: f64,
    /// VoD duration to prebuffer, seconds.
    pub video_secs: f64,
    /// HLS segment duration, seconds.
    pub segment_secs: f64,
    /// Photos in the concurrent upload batch.
    pub photos: usize,
    /// Bytes per photo.
    pub photo_bytes: usize,
    /// How the workload is driven: the fixed paper script or a traced
    /// multi-day scenario.
    pub scenario: Scenario,
}

impl HomeSpec {
    /// Start building a spec from an ADSL tier: the tier's line speeds
    /// plus the paper-flavoured defaults — two phones on private
    /// 2/1 Mbit/s 3G, 30 Mbit/s Wi-Fi, a 10 s × 400 kbit/s VoD
    /// prebuffer racing a 3 × 100 kB photo upload, index 0, noon.
    /// Chain [`HomeSpec::index`], [`HomeSpec::devices`],
    /// [`HomeSpec::cell`] and [`HomeSpec::hour`] to finish.
    pub fn tier(tier: Tier) -> HomeSpec {
        HomeSpec {
            index: 0,
            devices: 2,
            adsl_down_bps: tier.adsl_down_bps(),
            adsl_up_bps: tier.adsl_up_bps(),
            g3: G3Source::isolated(2e6, 1e6),
            hour: 12,
            wifi_bps: 30e6,
            allowance_bytes: 50e6,
            video_bps: 400e3,
            video_secs: 10.0,
            segment_secs: 2.0,
            photos: 3,
            photo_bytes: 100_000,
            scenario: Scenario::PaperDefault,
        }
    }

    /// The paper-default household: the [`Tier::Standard`] line with
    /// every builder default, at `index`.
    pub fn paper_default(index: u32) -> HomeSpec {
        HomeSpec::tier(Tier::Standard).index(index)
    }

    /// Set the home index.
    pub fn index(mut self, index: u32) -> HomeSpec {
        self.index = index;
        self
    }

    /// Set the number of phones.
    pub fn devices(mut self, devices: usize) -> HomeSpec {
        self.devices = devices;
        self
    }

    /// Draw the phones' 3G from a shared cell's per-phone share.
    pub fn cell(mut self, profile: CellProfile) -> HomeSpec {
        self.g3 = G3Source::Cell(profile);
        self
    }

    /// Give the phones private 3G rates (the uncoupled default).
    pub fn isolated(mut self, down_bps: f64, up_bps: f64) -> HomeSpec {
        self.g3 = G3Source::isolated(down_bps, up_bps);
        self
    }

    /// Set the hour of day `[0, 24)` the run starts at (the whole run
    /// for the paper script; the day-0 offset for a traced scenario).
    pub fn hour(mut self, hour: u8) -> HomeSpec {
        assert!(hour < 24, "hour of day must be in [0, 24), got {hour}");
        self.hour = hour;
        self
    }

    /// Choose how the workload is driven.
    pub fn scenario(mut self, scenario: Scenario) -> HomeSpec {
        if let Scenario::Traced { days, .. } = scenario {
            assert!(
                (1..=MAX_SCENARIO_DAYS as u16).contains(&days),
                "traced scenario must run 1..={MAX_SCENARIO_DAYS} days, got {days}"
            );
        }
        self.scenario = scenario;
        self
    }

    /// Shorthand for a [`Scenario::Traced`] run of `days` days.
    pub fn traced(self, days: u16, seed: u64) -> HomeSpec {
        self.scenario(Scenario::Traced { days, seed })
    }
}

/// What one home's workload achieved.
///
/// Like [`HomeSpec`] this is a fixed-size `Copy` record: a fleet
/// aggregates reports into a digest as they are produced instead of
/// holding a vector of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomeReport {
    /// Home index.
    pub index: u32,
    /// The shared cell the home's phones drew from, or [`NO_CELL`]
    /// for private 3G.
    pub cell: u32,
    /// Hour of day the workload ran at (from [`HomeSpec::hour`]).
    pub hour: u8,
    /// VoD prebuffer bytes fetched.
    pub vod_bytes: f64,
    /// VoD prebuffer wall time (virtual seconds).
    pub vod_secs: f64,
    /// Speedup of the prebuffer over ADSL alone
    /// (`bytes / adsl_down` vs measured).
    pub vod_gain: f64,
    /// Upload batch bytes.
    pub upload_bytes: f64,
    /// Upload batch wall time (virtual seconds).
    pub upload_secs: f64,
    /// Speedup of the upload over ADSL alone.
    pub upload_gain: f64,
    /// VoD bytes the HLS proxy pulled over 3G paths (path 1..) —
    /// downlink onload, the cell's downlink burden.
    pub vod_device_bytes: f64,
    /// Upload bytes that crossed 3G paths (path 1..) — uplink onload.
    pub upload_device_bytes: f64,
    /// Upload bytes moved by aborted duplicates.
    pub upload_wasted_bytes: f64,
    /// Simulated days a [`Scenario::Traced`] run covered; 0 for the
    /// paper-default script (every field below is then zero too, and
    /// the fleet digest skips them so paper-default digests are
    /// byte-identical to the pre-scenario prototype's).
    pub days: u16,
    /// VoD + upload sessions the scenario executed.
    pub sessions: u32,
    /// Sessions that ran ADSL-only (no admissible 3G path at session
    /// start: every phone away, exhausted, or the home has none).
    pub adsl_only_sessions: u32,
    /// Device-days that ended with a positive granted allowance fully
    /// exhausted — the live-estimator overrun counter.
    pub overrun_device_days: u32,
    /// Device-days simulated (`devices × days`).
    pub device_days: u32,
    /// Daily allowance granted, summed over device-days, fixed-point
    /// bytes at [`SCENARIO_FP_SCALE`].
    pub granted_allowance_fp: i64,
    /// Allowance actually consumed (`min(used, granted)` per
    /// device-day), fixed-point bytes — captured-fraction numerator.
    pub used_allowance_fp: i64,
    /// Downlink onload (3G path bytes toward the home) per scenario
    /// day, fixed-point bytes.
    pub day_dl_fp: [i64; MAX_SCENARIO_DAYS],
    /// Uplink onload per scenario day, fixed-point bytes.
    pub day_ul_fp: [i64; MAX_SCENARIO_DAYS],
    /// Downlink onload per hour of day (all days folded), fixed-point.
    pub hour_dl_fp: [i64; 24],
    /// Uplink onload per hour of day, fixed-point.
    pub hour_ul_fp: [i64; 24],
}

impl HomeReport {
    /// An all-zero report for home `index` (cell [`NO_CELL`]): the base
    /// the paper script and the scenario engine both fill in, and a
    /// convenient struct-update base for tests.
    pub fn empty(index: u32) -> HomeReport {
        HomeReport {
            index,
            cell: NO_CELL,
            hour: 0,
            vod_bytes: 0.0,
            vod_secs: 0.0,
            vod_gain: 0.0,
            upload_bytes: 0.0,
            upload_secs: 0.0,
            upload_gain: 0.0,
            vod_device_bytes: 0.0,
            upload_device_bytes: 0.0,
            upload_wasted_bytes: 0.0,
            days: 0,
            sessions: 0,
            adsl_only_sessions: 0,
            overrun_device_days: 0,
            device_days: 0,
            granted_allowance_fp: 0,
            used_allowance_fp: 0,
            day_dl_fp: [0; MAX_SCENARIO_DAYS],
            day_ul_fp: [0; MAX_SCENARIO_DAYS],
            hour_dl_fp: [0; 24],
            hour_ul_fp: [0; 24],
        }
    }
}

/// One home, ready to run its workload. See [`Home::run`].
pub struct Home;

impl Home {
    /// Bring up the home and drive its workload: a VoD prebuffer
    /// through the client-side HLS proxy, concurrent with a photo
    /// upload — both multipath over the gateway and every discovered
    /// device, all sharing the home's ADSL and Wi-Fi media.
    ///
    /// Must run inside a `tokio` runtime; any number of homes may run
    /// in the same runtime (distinct [`HomeNet`] namespaces) or in
    /// separate runtimes on separate threads.
    pub async fn run(spec: &HomeSpec) -> Result<HomeReport, HttpError> {
        match spec.scenario {
            Scenario::PaperDefault => Home::run_paper(spec).await,
            Scenario::Traced { days, seed } => crate::scenario::run_traced(spec, days, seed).await,
        }
    }

    /// The original fixed script (see [`Scenario::PaperDefault`]).
    async fn run_paper(spec: &HomeSpec) -> Result<HomeReport, HttpError> {
        let net = HomeNet::new((spec.index % (1 << 16)) as u16);

        // Origin, behind the home's view of the WAN.
        let ladder = vec![VideoQuality::new("Q1", spec.video_bps)];
        let origin = Arc::new(OriginServer::new(&ladder, spec.video_secs, spec.segment_secs));
        let (origin_addr, _origin_task) = origin.clone().spawn(&net.origin().to_string()).await?;

        // The home's broadcast domain: a discovery listener the
        // announcers inside this subnet reach, and nobody else.
        let discovery = Discovery::bind(&net.discovery().to_string()).await?;
        let discovery_addr = discovery.local_addr()?;

        // Device proxies with quota-gated announcers: every phone's 3G
        // rates come from the spec's capacity source at the home's
        // hour — a private pipe or a per-phone share of a shared cell.
        let (g3_down, g3_up) = spec.g3.phone_limits(spec.hour as f64);
        for i in 0..spec.devices {
            let device = Arc::new(DeviceProxy::new(
                format!("home{}-phone-{i}", spec.index),
                origin_addr,
                g3_down,
                g3_up,
                spec.allowance_bytes,
            ));
            let (lan_addr, _task) = device.clone().spawn(&net.device(i).to_string()).await?;
            device.spawn_announcer(discovery_addr, lan_addr, Duration::from_millis(100));
        }

        // Browse until every phone has advertised (quota > 0 at start,
        // so all of them will; virtual time makes this deterministic).
        while discovery.admissible().len() < spec.devices {
            tokio::time::sleep(Duration::from_millis(10)).await;
        }

        // The home's shared media.
        let wifi = SharedRateLimit::from_bps(spec.wifi_bps as u64);
        let adsl_down = SharedRateLimit::from_bps(spec.adsl_down_bps as u64);
        let adsl_up = SharedRateLimit::from_bps(spec.adsl_up_bps as u64);
        let make_paths = || -> Vec<PathTarget> {
            let mut paths = vec![PathTarget::SharedGateway {
                origin: origin_addr,
                down: adsl_down.clone(),
                up: adsl_up.clone(),
            }];
            paths.extend(
                discovery
                    .admissible()
                    .into_iter()
                    .map(|ad| PathTarget::Device { addr: ad.proxy_addr }),
            );
            paths
        };

        // The client-side HLS proxy the player points at.
        let hls =
            Arc::new(HlsProxy::new(ThreegolClient::new(make_paths()).with_wifi(wifi.clone())));
        let (proxy_addr, _proxy_task) = hls.clone().spawn(&net.client_proxy().to_string()).await?;

        // The uploader is a second client-component app in the same
        // home: its own scheduler, but the same shared media.
        let uploader = ThreegolClient::new(make_paths()).with_wifi(wifi.clone());

        // Drive the two transactions concurrently: the upload runs as
        // its own task while this task plays the VoD prebuffer.
        let photos: Vec<(String, Bytes)> = (0..spec.photos)
            .map(|i| {
                (format!("home{}-IMG_{i:04}.jpg", spec.index), photo_body(i, spec.photo_bytes))
            })
            .collect();
        let upload_bytes: f64 = photos.iter().map(|(_, d)| d.len() as f64).sum();
        let upload_task = tokio::spawn(async move {
            let t0 = Instant::now();
            let report = uploader.upload_photos(photos).await?;
            Ok::<_, HttpError>((t0.elapsed().as_secs_f64(), report))
        });

        let t0 = Instant::now();
        let vod_bytes = prebuffer_vod(proxy_addr, "/q1/index.m3u8").await?;
        let vod_secs = t0.elapsed().as_secs_f64();
        let (upload_secs, upload_report) = upload_task
            .await
            .map_err(|e| HttpError::Malformed(format!("upload task died: {e}")))??;

        // The prefetch transfer may still be settling its books (abort
        // accounting for duplicate stragglers) when the player has the
        // last segment: wait for the proxy to go idle so the per-path
        // byte tallies are complete — free under virtual time.
        hls.wait_idle().await;

        // Gains against the home's ADSL line carrying the same bytes
        // alone (the paper's "power boost" ratio).
        let vod_baseline = vod_bytes * 8.0 / spec.adsl_down_bps;
        let upload_baseline = upload_bytes * 8.0 / spec.adsl_up_bps;
        Ok(HomeReport {
            cell: spec.g3.cell().unwrap_or(NO_CELL),
            hour: spec.hour,
            vod_bytes,
            vod_secs,
            vod_gain: vod_baseline / vod_secs,
            upload_bytes,
            upload_secs,
            upload_gain: upload_baseline / upload_secs,
            vod_device_bytes: hls.device_bytes(),
            upload_device_bytes: upload_report.bytes_per_path.iter().skip(1).sum(),
            upload_wasted_bytes: upload_report.wasted_bytes,
            ..HomeReport::empty(spec.index)
        })
    }
}

/// Play the prebuffer phase of a VoD session against the home's HLS
/// proxy: fetch the media playlist, then every segment in order (the
/// proxy serves them from its multipath prefetch as they land).
/// Returns the total segment bytes received.
/// Deterministic filler body for photo `i`, shared process-wide: every
/// home with the same photo size uploads views of one allocation
/// instead of re-filling `photo_bytes` per photo per home (the upload
/// path never mutates its payload — multipart encoding copies it into
/// the request body).
pub(crate) fn photo_body(i: usize, photo_bytes: usize) -> Bytes {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), Bytes>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    Bytes::clone(
        cache
            .lock()
            .unwrap()
            .entry((i, photo_bytes))
            .or_insert_with(|| Bytes::from(vec![(i % 251) as u8; photo_bytes])),
    )
}

async fn prebuffer_vod(proxy_addr: SocketAddr, playlist: &str) -> Result<f64, HttpError> {
    let stream = TcpStream::connect(proxy_addr).await.map_err(HttpError::Io)?;
    let mut http = HttpStream::new(stream);
    http.write_request(&Request::get(playlist)).await?;
    let resp = http.read_response().await?;
    if resp.status != 200 {
        return Err(HttpError::Malformed(format!("playlist fetch failed: {}", resp.status)));
    }
    let text = std::str::from_utf8(&resp.body)
        .map_err(|_| HttpError::Malformed("non-UTF-8 playlist".into()))?;
    let media = MediaPlaylist::parse(text)
        .map_err(|e| HttpError::Malformed(format!("bad playlist: {e}")))?;
    let base = playlist.rsplit_once('/').map(|(dir, _)| dir).unwrap_or("");
    let mut bytes = 0.0;
    for (_, uri) in &media.entries {
        let target = if uri.starts_with('/') { uri.clone() } else { format!("{base}/{uri}") };
        http.write_request(&Request::get(target)).await?;
        let seg = http.read_response().await?;
        if seg.status != 200 {
            return Err(HttpError::Malformed(format!("segment fetch failed: {}", seg.status)));
        }
        bytes += seg.body.len() as f64;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_do_not_collide() {
        let a = HomeNet::new(0);
        let b = HomeNet::new(1);
        let c = HomeNet::new(256);
        assert_eq!(a.origin().to_string(), "10.0.0.1:8080");
        assert_eq!(b.origin().to_string(), "10.0.1.1:8080");
        assert_eq!(c.origin().to_string(), "10.1.0.1:8080");
        assert_eq!(b.device(3).to_string(), "10.0.1.13:3128");
        assert_ne!(a.discovery(), b.discovery());
    }

    #[tokio::test]
    async fn one_home_end_to_end() {
        let report = Home::run(&HomeSpec::paper_default(7)).await.unwrap();
        assert_eq!(report.index, 7);
        // 10 s × 400 kbit/s = 500 kB of video; 3 × 100 kB of photos.
        assert_eq!(report.vod_bytes, 500_000.0);
        assert_eq!(report.upload_bytes, 300_000.0);
        assert!(report.vod_secs > 0.0 && report.vod_secs.is_finite());
        // The 0.5 Mbit/s ADSL uplink alone would need 4.8 s; two
        // 1 Mbit/s phones must beat that comfortably.
        assert!(report.upload_gain > 1.2, "upload gain {}", report.upload_gain);
        assert!(report.upload_device_bytes > 0.0);
    }

    #[tokio::test]
    async fn home_without_devices_still_works() {
        let spec = HomeSpec::paper_default(9).devices(0);
        let report = Home::run(&spec).await.unwrap();
        // ADSL-only: no 3G bytes, gain near 1 (bounded by bursts).
        assert_eq!(report.upload_device_bytes, 0.0);
        assert_eq!(report.vod_device_bytes, 0.0);
        assert!(report.vod_gain < 1.5, "vod gain {}", report.vod_gain);
    }

    #[test]
    fn cell_coupled_home_reports_its_cell_and_hour() {
        // Fresh runtime per run (same index, same virtual epoch). A
        // congested evening share vs a generous one: both homes
        // complete, report their cell/hour, and the starved one is
        // slower — the knob the fleet's fixed-point loop turns.
        let run = |spec: HomeSpec| tokio::runtime::block_on(Home::run(&spec)).unwrap();
        let a = run(HomeSpec::paper_default(21).cell(CellProfile::flat(4, 2e6, 1e6)).hour(4));
        let b = run(HomeSpec::paper_default(21).cell(CellProfile::flat(4, 360e3, 64e3)).hour(19));
        assert_eq!((a.cell, a.hour), (4, 4));
        assert_eq!((b.cell, b.hour), (4, 19));
        assert!(a.upload_secs < b.upload_secs, "{} !< {}", a.upload_secs, b.upload_secs);
        // The paper-default isolated home matches the equal-rate cell
        // share bit for bit: the seam changed, the physics did not.
        let isolated = run(HomeSpec::paper_default(21));
        assert_eq!(isolated.upload_secs, a.upload_secs);
        assert_eq!(isolated.vod_secs, a.vod_secs);
    }

    #[test]
    fn repeated_runs_are_identical() {
        // Fresh runtime per run: the same home index is reusable and
        // every event plays out at the same *relative* virtual time,
        // so measured durations must match bit for bit.
        let run = || tokio::runtime::block_on(Home::run(&HomeSpec::paper_default(3))).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.vod_secs, b.vod_secs);
        assert_eq!(a.upload_secs, b.upload_secs);
        assert_eq!(a.upload_device_bytes, b.upload_device_bytes);
        assert_eq!(a.upload_wasted_bytes, b.upload_wasted_bytes);
    }
}
