//! The 3GOL client component (paper §4.1): an HLS-aware fetcher and a
//! multipart uploader, both driving the multipath scheduler over real
//! tokio connections.
//!
//! The client owns `N` [`PathTarget`]s — path 0 the residential
//! gateway (an origin connection throttled to the ADSL profile), paths
//! `1..N` the discovered device proxies. Scheduler [`Command`]s map to
//! spawned transfer tasks; aborting a duplicate cancels its task and
//! the bytes it moved are accounted as waste, mirroring the simulator
//! driver in `threegol-core`.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;
use tokio::time::Instant;

use bytes::Bytes;
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};
use tokio::net::TcpStream;
use tokio::sync::mpsc;

use threegol_hls::MediaPlaylist;
use threegol_http::codec::HttpStream;
use threegol_http::multipart::{encode_multipart, multipart_content_type, Part};
use threegol_http::{HttpError, Request};
use threegol_sched::{build, Command, Policy, TransactionSpec};

use crate::throttle::{RateLimit, SharedRateLimit, ThrottledStream};

/// Any bidirectional async byte stream.
pub trait AsyncStream: AsyncRead + AsyncWrite + Unpin + Send {}
impl<T: AsyncRead + AsyncWrite + Unpin + Send> AsyncStream for T {}

/// Where a path's transfers go.
#[derive(Debug, Clone)]
pub enum PathTarget {
    /// Straight to the origin through the residential gateway; the
    /// client applies the ADSL rate profile itself.
    Gateway {
        /// Origin address.
        origin: SocketAddr,
        /// ADSL downlink profile.
        down: RateLimit,
        /// ADSL uplink profile.
        up: RateLimit,
    },
    /// Straight to the origin through the residential gateway, drawing
    /// tokens from *shared* ADSL buckets — every connection a home
    /// opens over its DSL line contends for the same capacity, the way
    /// a real line behaves when several transfers cross it at once.
    SharedGateway {
        /// Origin address.
        origin: SocketAddr,
        /// The home's shared ADSL downlink bucket.
        down: SharedRateLimit,
        /// The home's shared ADSL uplink bucket.
        up: SharedRateLimit,
    },
    /// Through a device proxy (which applies its own 3G throttling).
    Device {
        /// The device proxy's LAN address.
        addr: SocketAddr,
    },
}

impl PathTarget {
    /// Open a connection for this path. When `wifi` is set, the whole
    /// stream additionally draws both directions from that shared
    /// bucket: the home's Wi-Fi medium, which every path of a 3GOL
    /// client crosses before reaching the gateway or a phone.
    async fn connect(
        &self,
        wifi: Option<&SharedRateLimit>,
    ) -> std::io::Result<Box<dyn AsyncStream>> {
        let stream: Box<dyn AsyncStream> = match self {
            PathTarget::Gateway { origin, down, up } => {
                let tcp = TcpStream::connect(*origin).await?;
                tcp.set_nodelay(true).ok();
                Box::new(ThrottledStream::new(tcp, *down, *up))
            }
            PathTarget::SharedGateway { origin, down, up } => {
                let tcp = TcpStream::connect(*origin).await?;
                tcp.set_nodelay(true).ok();
                Box::new(ThrottledStream::with_shared(tcp, down.clone(), up.clone()))
            }
            PathTarget::Device { addr } => {
                let tcp = TcpStream::connect(*addr).await?;
                tcp.set_nodelay(true).ok();
                Box::new(tcp)
            }
        };
        Ok(match wifi {
            Some(medium) => {
                Box::new(ThrottledStream::with_shared(stream, medium.clone(), medium.clone()))
            }
            None => stream,
        })
    }
}

/// Timing and accounting for one multipath transaction.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Total transaction time, seconds.
    pub total_secs: f64,
    /// Per-item completion time, seconds from transaction start.
    pub item_secs: Vec<f64>,
    /// Bytes that crossed each path (including aborted partials).
    pub bytes_per_path: Vec<f64>,
    /// Bytes moved by aborted duplicates.
    pub wasted_bytes: f64,
    /// Transfers started / aborted.
    pub starts: usize,
    /// Aborts issued.
    pub aborts: usize,
}

/// One transfer job. Cloned once per transfer attempt, so the fetch
/// target is a shared `Arc<str>` — cloning bumps a refcount instead of
/// copying the path.
#[derive(Debug, Clone)]
enum Job {
    /// `GET {target}` and return the body.
    Fetch(Arc<str>),
    /// `POST /upload` with a single-photo multipart body.
    Upload { filename: String, data: Bytes },
}

/// Per-transfer timeout: a wedged path must not hang the transaction.
const TRANSFER_TIMEOUT: Duration = Duration::from_secs(60);

/// The 3GOL client.
pub struct ThreegolClient {
    /// Available paths; index 0 should be the gateway.
    pub paths: Vec<PathTarget>,
    /// Scheduling policy (the paper deploys [`Policy::Greedy`]).
    pub policy: Policy,
    /// Shared Wi-Fi medium every connection crosses (None = ideal LAN).
    pub wifi: Option<SharedRateLimit>,
}

impl ThreegolClient {
    /// A client over the given paths using the greedy scheduler.
    pub fn new(paths: Vec<PathTarget>) -> ThreegolClient {
        ThreegolClient { paths, policy: Policy::Greedy, wifi: None }
    }

    /// Route every connection through the given shared Wi-Fi bucket.
    pub fn with_wifi(mut self, medium: SharedRateLimit) -> ThreegolClient {
        self.wifi = Some(medium);
        self
    }

    /// Fetch `targets` (absolute request paths) in parallel. Returns
    /// the bodies in target order plus the transfer report. Targets
    /// are shared `Arc<str>`s so callers that already intern them (the
    /// HLS proxy's prefetch cache) hand them over without copying;
    /// `"/path".into()` still works for one-off fetches.
    pub async fn fetch(
        &self,
        targets: Vec<Arc<str>>,
        expected_sizes: Option<Vec<f64>>,
    ) -> Result<(Vec<Bytes>, TransferReport), HttpError> {
        let jobs: Vec<Job> = targets.into_iter().map(Job::Fetch).collect();
        self.run(jobs, expected_sizes, None).await
    }

    /// Like [`ThreegolClient::fetch`], but additionally delivers each
    /// item's body through `ready_tx` the moment it completes — the
    /// HLS-aware proxy serves segments to the player as they land
    /// rather than waiting for the whole transaction.
    pub async fn fetch_streaming(
        &self,
        targets: Vec<Arc<str>>,
        ready_tx: mpsc::UnboundedSender<(usize, Bytes)>,
    ) -> Result<TransferReport, HttpError> {
        let jobs: Vec<Job> = targets.into_iter().map(Job::Fetch).collect();
        let (_, report) = self.run(jobs, None, Some(ready_tx)).await?;
        Ok(report)
    }

    /// HLS-aware fetch (the paper's client component): download the
    /// media playlist over the gateway path, then prefetch every
    /// segment in parallel. Returns `(playlist, segment bodies,
    /// report)`.
    pub async fn fetch_hls(
        &self,
        playlist_target: &str,
    ) -> Result<(MediaPlaylist, Vec<Bytes>, TransferReport), HttpError> {
        // Playlist interception happens before multipath kicks in.
        let io = self.paths[0].connect(self.wifi.as_ref()).await.map_err(HttpError::Io)?;
        let mut http = HttpStream::new(io);
        http.write_request(&Request::get(playlist_target)).await?;
        let resp = http.read_response().await?;
        if resp.status != 200 {
            return Err(HttpError::Malformed(format!("playlist fetch failed: {}", resp.status)));
        }
        let text = std::str::from_utf8(&resp.body)
            .map_err(|_| HttpError::Malformed("non-UTF-8 playlist".into()))?;
        let playlist = MediaPlaylist::parse(text)
            .map_err(|e| HttpError::Malformed(format!("bad playlist: {e}")))?;
        let base = playlist_target.rsplit_once('/').map(|(dir, _)| dir).unwrap_or("");
        let targets: Vec<Arc<str>> = playlist
            .entries
            .iter()
            .map(|(_, uri)| {
                if uri.starts_with('/') {
                    Arc::from(uri.as_str())
                } else {
                    Arc::from(format!("{base}/{uri}"))
                }
            })
            .collect();
        let (bodies, report) = self.fetch(targets, None).await?;
        Ok((playlist, bodies, report))
    }

    /// Upload photos (one multipart POST per photo, like the native
    /// Flickr/Facebook clients, but spread over the paths).
    pub async fn upload_photos(
        &self,
        photos: Vec<(String, Bytes)>,
    ) -> Result<TransferReport, HttpError> {
        let sizes: Vec<f64> = photos.iter().map(|(_, d)| d.len() as f64).collect();
        let jobs: Vec<Job> =
            photos.into_iter().map(|(filename, data)| Job::Upload { filename, data }).collect();
        let (_, report) = self.run(jobs, Some(sizes), None).await?;
        Ok(report)
    }

    /// Drive the scheduler over real connections.
    async fn run(
        &self,
        jobs: Vec<Job>,
        sizes: Option<Vec<f64>>,
        ready_tx: Option<mpsc::UnboundedSender<(usize, Bytes)>>,
    ) -> Result<(Vec<Bytes>, TransferReport), HttpError> {
        assert!(!jobs.is_empty());
        let n_paths = self.paths.len();
        let sizes = sizes.unwrap_or_else(|| vec![1.0; jobs.len()]);
        let mut sched = build(self.policy, TransactionSpec::new(sizes, n_paths));

        let started = Instant::now();
        let (tx, mut rx) = mpsc::unbounded_channel::<(usize, usize, Result<Bytes, String>, f64)>();

        struct Running {
            handle: tokio::task::JoinHandle<()>,
            moved: Arc<AtomicU64>,
        }
        let mut inflight: HashMap<(usize, usize), Running> = HashMap::new();
        let mut bodies: Vec<Bytes> = vec![Bytes::new(); jobs.len()];
        let mut item_secs = vec![f64::NAN; jobs.len()];
        let mut bytes_per_path = vec![0.0_f64; n_paths];
        let mut wasted = 0.0_f64;
        let mut starts = 0usize;
        let mut aborts = 0usize;
        let mut failures: HashMap<usize, usize> = HashMap::new();

        let spawn_transfer =
            |path: usize,
             item: usize,
             tx: mpsc::UnboundedSender<(usize, usize, Result<Bytes, String>, f64)>|
             -> Running {
                let target = self.paths[path].clone();
                let wifi = self.wifi.clone();
                let job = jobs[item].clone();
                let moved = Arc::new(AtomicU64::new(0));
                let counter = Arc::clone(&moved);
                let handle = tokio::spawn(async move {
                    let t0 = Instant::now();
                    let outcome =
                        tokio::time::timeout(TRANSFER_TIMEOUT, perform(target, wifi, job, counter))
                            .await
                            .map_err(|_| "transfer timeout".to_string())
                            .and_then(|r| r.map_err(|e| e.to_string()));
                    let _ = tx.send((path, item, outcome, t0.elapsed().as_secs_f64()));
                });
                Running { handle, moved }
            };

        macro_rules! exec {
            ($cmds:expr) => {
                for cmd in $cmds {
                    match cmd {
                        Command::Start { path, item } => {
                            starts += 1;
                            let r = spawn_transfer(path, item, tx.clone());
                            inflight.insert((path, item), r);
                        }
                        Command::Abort { path, item } => {
                            aborts += 1;
                            if let Some(r) = inflight.remove(&(path, item)) {
                                r.handle.abort();
                                let moved = r.moved.load(Ordering::Relaxed) as f64;
                                wasted += moved;
                                bytes_per_path[path] += moved;
                            }
                        }
                    }
                }
            };
        }

        exec!(sched.start());

        while !sched.is_done() {
            let Some((path, item, outcome, elapsed)) = rx.recv().await else {
                return Err(HttpError::Malformed("transfer channel closed".into()));
            };
            let Some(r) = inflight.remove(&(path, item)) else {
                continue; // completed after its abort raced it
            };
            let moved = r.moved.load(Ordering::Relaxed) as f64;
            bytes_per_path[path] += moved;
            let now = started.elapsed().as_secs_f64();
            match outcome {
                Ok(body) => {
                    if item_secs[item].is_nan() {
                        item_secs[item] = now;
                        if let Some(tx) = &ready_tx {
                            let _ = tx.send((item, body.clone()));
                        }
                        bodies[item] = body;
                    }
                    let len = bodies[item].len().max(1) as f64;
                    exec!(sched.on_complete(path, item, now, len, elapsed));
                }
                Err(msg) => {
                    let count = failures.entry(item).or_insert(0);
                    *count += 1;
                    if *count > 3 * n_paths {
                        return Err(HttpError::Malformed(format!(
                            "item {item} failed repeatedly: {msg}"
                        )));
                    }
                    exec!(sched.on_failed(path, item, now));
                }
            }
        }

        // Cancel stragglers (duplicates whose abort command raced).
        // Sorted: HashMap iteration order is randomized per process,
        // and f64 accumulation is order-sensitive, so an unsorted
        // drain would make the report nondeterministic across runs.
        let mut stragglers: Vec<((usize, usize), Running)> = inflight.drain().collect();
        stragglers.sort_by_key(|((path, item), _)| (*path, *item));
        for ((path, _), r) in stragglers {
            r.handle.abort();
            let moved = r.moved.load(Ordering::Relaxed) as f64;
            wasted += moved;
            bytes_per_path[path] += moved;
        }

        let total = item_secs.iter().cloned().fold(0.0, f64::max);
        Ok((
            bodies,
            TransferReport {
                total_secs: total,
                item_secs,
                bytes_per_path,
                wasted_bytes: wasted,
                starts,
                aborts,
            },
        ))
    }
}

/// Execute one job over a fresh connection.
async fn perform(
    target: PathTarget,
    wifi: Option<SharedRateLimit>,
    job: Job,
    counter: Arc<AtomicU64>,
) -> Result<Bytes, HttpError> {
    let io = target.connect(wifi.as_ref()).await?;
    let mut http = HttpStream::new(CountingStream { inner: io, counter });
    match job {
        Job::Fetch(t) => {
            http.write_request(&Request::get(&*t)).await?;
            let resp = http.read_response().await?;
            if resp.status == 200 {
                Ok(resp.body)
            } else {
                Err(HttpError::Malformed(format!("GET failed: {}", resp.status)))
            }
        }
        Job::Upload { filename, data } => {
            let part = Part::photo("file", filename, data);
            let boundary = "threegol-boundary-7f3a";
            let body = encode_multipart(std::slice::from_ref(&part), boundary);
            let req = Request::post("/upload", &multipart_content_type(boundary), body);
            http.write_request(&req).await?;
            let resp = http.read_response().await?;
            if resp.status == 200 {
                Ok(Bytes::new())
            } else {
                Err(HttpError::Malformed(format!("POST failed: {}", resp.status)))
            }
        }
    }
}

/// Counts every byte read or written (for waste accounting on abort).
struct CountingStream<T> {
    inner: T,
    counter: Arc<AtomicU64>,
}

impl<T: AsyncRead + Unpin> AsyncRead for CountingStream<T> {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let before = buf.filled().len();
        let res = Pin::new(&mut self.inner).poll_read(cx, buf);
        if let Poll::Ready(Ok(())) = res {
            let n = buf.filled().len() - before;
            self.counter.fetch_add(n as u64, Ordering::Relaxed);
        }
        res
    }
}

impl<T: AsyncWrite + Unpin> AsyncWrite for CountingStream<T> {
    fn poll_write(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        let res = Pin::new(&mut self.inner).poll_write(cx, buf);
        if let Poll::Ready(Ok(n)) = res {
            self.counter.fetch_add(n as u64, Ordering::Relaxed);
        }
        res
    }
    fn poll_write_vectored(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[std::io::IoSlice<'_>],
    ) -> Poll<std::io::Result<usize>> {
        let res = Pin::new(&mut self.inner).poll_write_vectored(cx, bufs);
        if let Poll::Ready(Ok(n)) = res {
            self.counter.fetch_add(n as u64, Ordering::Relaxed);
        }
        res
    }
    fn poll_flush(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut self.inner).poll_flush(cx)
    }
    fn poll_shutdown(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut self.inner).poll_shutdown(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProxy;
    use crate::origin::OriginServer;

    async fn setup(adsl_bps: f64, phone_bps: Vec<f64>) -> (ThreegolClient, Arc<OriginServer>) {
        let origin = Arc::new(OriginServer::small_for_tests());
        let (origin_addr, _h) = origin.clone().spawn("127.0.0.1:0").await.unwrap();
        let mut paths = vec![PathTarget::Gateway {
            origin: origin_addr,
            down: RateLimit { rate_bps: adsl_bps, burst_bytes: 8192.0 },
            up: RateLimit { rate_bps: adsl_bps / 4.0, burst_bytes: 8192.0 },
        }];
        for (i, bps) in phone_bps.into_iter().enumerate() {
            let device = Arc::new(DeviceProxy::new(
                format!("phone-{i}"),
                origin_addr,
                RateLimit { rate_bps: bps, burst_bytes: 8192.0 },
                RateLimit { rate_bps: bps, burst_bytes: 8192.0 },
                1e9,
            ));
            let (lan_addr, _h2) = device.clone().spawn("127.0.0.1:0").await.unwrap();
            paths.push(PathTarget::Device { addr: lan_addr });
        }
        (ThreegolClient::new(paths), origin)
    }

    #[tokio::test]
    async fn hls_fetch_end_to_end() {
        let (client, _origin) = setup(4e6, vec![4e6]).await;
        let (playlist, bodies, report) = client.fetch_hls("/q1/index.m3u8").await.unwrap();
        assert_eq!(playlist.entries.len(), 5); // 10 s / 2 s segments
        assert_eq!(bodies.len(), 5);
        // 64 kbps × 2 s / 8 = 16 kB per segment.
        assert!(bodies.iter().all(|b| b.len() == 16_000));
        assert!(report.item_secs.iter().all(|t| t.is_finite()));
        // Both paths moved bytes.
        assert!(report.bytes_per_path[0] > 0.0);
    }

    #[tokio::test]
    async fn multipath_beats_single_path() {
        // 8 probe fetches over 1.6 Mbit/s ADSL alone vs ADSL + two
        // 1.6 Mbit/s phones.
        let targets: Vec<Arc<str>> = (0..6).map(|_| Arc::from("/probe.bin")).collect();
        let (single, _o1) = setup(1.6e6, vec![]).await;
        let t0 = Instant::now();
        let (_, r1) = single.fetch(targets.clone(), None).await.unwrap();
        let solo = t0.elapsed().as_secs_f64();
        assert!(r1.bytes_per_path.len() == 1);

        let (multi, _o2) = setup(1.6e6, vec![1.6e6, 1.6e6]).await;
        let t0 = Instant::now();
        let (bodies, r2) = multi.fetch(targets, None).await.unwrap();
        let gol = t0.elapsed().as_secs_f64();
        assert!(bodies.iter().all(|b| b.len() == 64_000));
        assert!(gol < solo * 0.75, "3GOL {gol:.2}s vs ADSL {solo:.2}s (report {r2:?})");
    }

    #[tokio::test]
    async fn upload_photos_arrive_intact() {
        // The gateway uplink (adsl/4 = 250 kbit/s) is far slower than
        // the phone, so when the greedy scheduler duplicates the
        // gateway's photo onto the phone, the duplicate wins by a wide
        // margin and the abort truncates the original well before the
        // origin commits it — each photo is recorded exactly once.
        let (client, origin) = setup(1e6, vec![8e6]).await;
        let photos: Vec<(String, Bytes)> = (0..4)
            .map(|i| (format!("IMG_{i:04}.jpg"), Bytes::from(vec![i as u8; 20_000])))
            .collect();
        let report = client.upload_photos(photos).await.unwrap();
        assert_eq!(report.item_secs.len(), 4);
        let ups = origin.uploads();
        assert_eq!(ups.len(), 4);
        let mut names: Vec<String> = ups.iter().flat_map(|u| u.filenames.clone()).collect();
        names.sort();
        assert_eq!(names, vec!["IMG_0000.jpg", "IMG_0001.jpg", "IMG_0002.jpg", "IMG_0003.jpg"]);
        assert!(ups.iter().all(|u| u.total_bytes == 20_000));
    }

    #[tokio::test]
    async fn missing_asset_fails_cleanly() {
        let (client, _origin) = setup(8e6, vec![]).await;
        let err = client.fetch(vec!["/does-not-exist".into()], None).await.unwrap_err();
        assert!(err.to_string().contains("failed"), "{err}");
    }

    #[tokio::test]
    async fn greedy_duplicates_tail_on_slow_path() {
        // One very slow phone: the gateway should duplicate-and-abort.
        let (client, _origin) = setup(8e6, vec![64_000.0]).await;
        let targets: Vec<Arc<str>> = (0..3).map(|_| Arc::from("/probe.bin")).collect();
        let (bodies, report) = client.fetch(targets, None).await.unwrap();
        assert!(bodies.iter().all(|b| b.len() == 64_000));
        assert!(report.aborts >= 1, "{report:?}");
    }
}
