//! The VoD player model.
//!
//! The paper measures two things on the downlink (§5.2):
//!
//! * **pre-buffering time** — "the measured delay from the initial
//!   request of the video to the first frame displayed by the player";
//!   playback starts once the first `K` segments are buffered, where
//!   the pre-buffer amount is varied from 20 % to 100 % of the video
//!   length;
//! * **total download time** of the whole video.
//!
//! Given the per-segment download completion times produced by any
//! transport (fluid simulation, toy executor or the live prototype),
//! [`PlayerModel`] computes both, plus a playout stall analysis.

/// A VoD player with a pre-buffer threshold.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlayerModel {
    /// Fraction of the video that must be buffered before playback
    /// starts, in `(0, 1]`. The paper sweeps 0.2, 0.4, 0.6, 0.8, 1.0.
    pub prebuffer_fraction: f64,
}

impl PlayerModel {
    /// Create a player with the given pre-buffer fraction.
    pub fn new(prebuffer_fraction: f64) -> PlayerModel {
        assert!(
            prebuffer_fraction > 0.0 && prebuffer_fraction <= 1.0,
            "pre-buffer fraction must be in (0, 1]"
        );
        PlayerModel { prebuffer_fraction }
    }

    /// Number of segments that must be buffered before playback starts
    /// (at least one).
    pub fn prebuffer_segments(&self, n_segments: usize) -> usize {
        if n_segments == 0 {
            return 0;
        }
        ((self.prebuffer_fraction * n_segments as f64).ceil() as usize).clamp(1, n_segments)
    }

    /// Pre-buffering time: when the first `K` segments have all
    /// completed. `completion_secs[i]` is the download completion time
    /// of segment `i` relative to the initial request.
    pub fn prebuffer_time_secs(&self, completion_secs: &[f64]) -> f64 {
        let k = self.prebuffer_segments(completion_secs.len());
        completion_secs[..k].iter().cloned().fold(0.0, f64::max)
    }

    /// Full playout analysis: startup delay, stalls, and total time to
    /// play the video end to end.
    pub fn playout(&self, completion_secs: &[f64], segment_durations: &[f64]) -> PlayoutReport {
        assert_eq!(completion_secs.len(), segment_durations.len());
        let startup = self.prebuffer_time_secs(completion_secs);
        let mut clock = startup;
        let mut stalls = Vec::new();
        let mut total_stall = 0.0;
        for (i, (&done_at, &dur)) in completion_secs.iter().zip(segment_durations).enumerate() {
            if done_at > clock {
                // The player drained its buffer: stall until segment i
                // finishes downloading.
                let stall = done_at - clock;
                stalls.push((i, clock, stall));
                total_stall += stall;
                clock = done_at;
            }
            clock += dur;
        }
        PlayoutReport {
            startup_secs: startup,
            stalls,
            total_stall_secs: total_stall,
            finish_secs: clock,
        }
    }
}

/// Result of playing a video against a download schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayoutReport {
    /// Startup (pre-buffering) delay, seconds.
    pub startup_secs: f64,
    /// `(segment_index, stall_start_secs, stall_duration_secs)` events.
    pub stalls: Vec<(usize, f64, f64)>,
    /// Total stalled time, seconds.
    pub total_stall_secs: f64,
    /// Wall-clock time at which the last frame plays, seconds.
    pub finish_secs: f64,
}

impl PlayoutReport {
    /// True if playback never stalled after startup.
    pub fn smooth(&self) -> bool {
        self.stalls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prebuffer_segment_counts() {
        let p = PlayerModel::new(0.2);
        assert_eq!(p.prebuffer_segments(20), 4); // the paper's minimum (4 segments)
        assert_eq!(PlayerModel::new(1.0).prebuffer_segments(20), 20);
        assert_eq!(PlayerModel::new(0.01).prebuffer_segments(20), 1);
        assert_eq!(PlayerModel::new(0.5).prebuffer_segments(0), 0);
    }

    #[test]
    fn prebuffer_time_is_max_of_first_k() {
        let p = PlayerModel::new(0.5);
        // 4 segments, K = 2; out-of-order completion (parallel fetch).
        let completion = [3.0, 1.0, 9.0, 2.0];
        assert_eq!(p.prebuffer_time_secs(&completion), 3.0);
    }

    #[test]
    fn smooth_playout_when_downloads_keep_up() {
        let p = PlayerModel::new(0.25);
        let completion = [1.0, 2.0, 3.0, 4.0];
        let durs = [10.0; 4];
        let rep = p.playout(&completion, &durs);
        assert_eq!(rep.startup_secs, 1.0);
        assert!(rep.smooth());
        assert_eq!(rep.total_stall_secs, 0.0);
        assert_eq!(rep.finish_secs, 41.0);
    }

    #[test]
    fn stall_when_segment_late() {
        let p = PlayerModel::new(0.25);
        // Segment 2 only arrives at t=30 but would be needed at t=21.
        let completion = [1.0, 5.0, 30.0, 31.0];
        let durs = [10.0; 4];
        let rep = p.playout(&completion, &durs);
        assert_eq!(rep.startup_secs, 1.0);
        assert_eq!(rep.stalls.len(), 1);
        let (idx, at, stall) = rep.stalls[0];
        assert_eq!(idx, 2);
        assert_eq!(at, 21.0);
        assert_eq!(stall, 9.0);
        assert_eq!(rep.total_stall_secs, 9.0);
        assert_eq!(rep.finish_secs, 50.0);
    }

    #[test]
    fn full_prebuffer_never_stalls() {
        let p = PlayerModel::new(1.0);
        let completion = [40.0, 10.0, 90.0, 70.0];
        let durs = [10.0; 4];
        let rep = p.playout(&completion, &durs);
        assert_eq!(rep.startup_secs, 90.0);
        assert!(rep.smooth());
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_rejected() {
        PlayerModel::new(0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        PlayerModel::new(0.5).playout(&[1.0], &[1.0, 2.0]);
    }
}
