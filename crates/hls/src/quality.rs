//! Video quality ladder.

/// A video quality rendition.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VideoQuality {
    /// Display label, e.g. `"Q3"`.
    pub label: String,
    /// Average video bitrate, bits/second.
    pub bitrate_bps: f64,
}

impl VideoQuality {
    /// Create a quality level.
    pub fn new(label: impl Into<String>, bitrate_bps: f64) -> VideoQuality {
        assert!(bitrate_bps > 0.0);
        VideoQuality { label: label.into(), bitrate_bps }
    }

    /// The paper's ladder: "the original qualities of the video
    /// (Q1 = 200 kbps, Q2 = 311 kbps, Q3 = 484 kbps, Q4 = 738 kbps) as
    /// they reflect commonly used bitrates" (§5.1).
    pub fn paper_ladder() -> Vec<VideoQuality> {
        vec![
            VideoQuality::new("Q1", 200e3),
            VideoQuality::new("Q2", 311e3),
            VideoQuality::new("Q3", 484e3),
            VideoQuality::new("Q4", 738e3),
        ]
    }

    /// Bytes of media per second of video.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bitrate_bps / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_matches() {
        let l = VideoQuality::paper_ladder();
        assert_eq!(l.len(), 4);
        assert_eq!(l[0].bitrate_bps, 200e3);
        assert_eq!(l[3].bitrate_bps, 738e3);
        assert_eq!(l[1].label, "Q2");
    }

    #[test]
    fn segment_sizes_match_paper_range() {
        // Paper §5.2: segments from min 0.2 MB (Q1) to max ~0.95 MB (Q4)
        // at 10 s segment duration.
        let l = VideoQuality::paper_ladder();
        let q1 = l[0].bytes_per_sec() * 10.0;
        let q4 = l[3].bytes_per_sec() * 10.0;
        assert!((q1 - 250e3).abs() < 1e-9);
        assert!((q4 - 922.5e3).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bitrate_rejected() {
        VideoQuality::new("bad", 0.0);
    }
}
