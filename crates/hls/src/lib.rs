//! # threegol-hls
//!
//! HTTP Live Streaming substrate for the 3GOL reproduction.
//!
//! The paper's downlink application is VoD over Apple HLS (§4.1): the
//! player fetches an extended M3U (m3u8) playlist, then requests the
//! listed segments sequentially; playback starts once an
//! application-dependent pre-buffer is filled. 3GOL's client component
//! intercepts the playlist and prefetches segments in parallel over the
//! available paths.
//!
//! This crate provides:
//!
//! * [`VideoQuality`] — the paper's quality ladder (Q1–Q4, i.e.
//!   200/311/484/738 kbit/s, from the bipbop sample and the YouTube
//!   study the paper cites);
//! * [`segmenter`] — cut a video into fixed-duration segments with
//!   bitrate-determined sizes;
//! * [`playlist`] — generate and parse media and master m3u8 playlists
//!   (the subset of the HLS draft the prototype needs);
//! * [`player`] — the VoD player model: pre-buffering time and playout
//!   stall analysis given per-segment download-completion times.

pub mod player;
pub mod playlist;
pub mod quality;
pub mod segmenter;

pub use player::{PlayerModel, PlayoutReport};
pub use playlist::{MasterPlaylist, MediaPlaylist, PlaylistError};
pub use quality::VideoQuality;
pub use segmenter::{segment_video, Segment, VideoSpec};
