//! Extended-M3U (m3u8) playlist generation and parsing.
//!
//! Implements the subset of the HTTP Live Streaming draft
//! (draft-pantos-http-live-streaming, cited by the paper) the 3GOL
//! prototype needs: VoD media playlists (`#EXTINF` + `#EXT-X-ENDLIST`)
//! and master playlists (`#EXT-X-STREAM-INF` variants).

use std::fmt;

use crate::quality::VideoQuality;
use crate::segmenter::Segment;

/// Errors produced while parsing a playlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaylistError {
    /// The document does not start with `#EXTM3U`.
    MissingHeader,
    /// A directive could not be parsed.
    BadDirective(String),
    /// An `#EXTINF` was not followed by a segment URI.
    DanglingExtinf,
}

impl fmt::Display for PlaylistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaylistError::MissingHeader => write!(f, "missing #EXTM3U header"),
            PlaylistError::BadDirective(d) => write!(f, "unparseable directive: {d}"),
            PlaylistError::DanglingExtinf => write!(f, "#EXTINF without a segment URI"),
        }
    }
}

impl std::error::Error for PlaylistError {}

/// A VoD media playlist: an ordered list of segments.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaPlaylist {
    /// `#EXT-X-TARGETDURATION` value, seconds.
    pub target_duration_secs: f64,
    /// `(duration_secs, uri)` pairs in playout order.
    pub entries: Vec<(f64, String)>,
    /// Whether `#EXT-X-ENDLIST` was present (always true for VoD).
    pub ended: bool,
}

impl MediaPlaylist {
    /// Build a VoD playlist from segments.
    pub fn from_segments(segments: &[Segment]) -> MediaPlaylist {
        let target = segments.iter().map(|s| s.duration_secs).fold(0.0, f64::max).ceil();
        MediaPlaylist {
            target_duration_secs: target,
            entries: segments.iter().map(|s| (s.duration_secs, s.uri.clone())).collect(),
            ended: true,
        }
    }

    /// Render to m3u8 text.
    pub fn to_m3u8(&self) -> String {
        let mut out = String::new();
        out.push_str("#EXTM3U\n");
        out.push_str("#EXT-X-VERSION:3\n");
        out.push_str(&format!("#EXT-X-TARGETDURATION:{}\n", self.target_duration_secs as u64));
        out.push_str("#EXT-X-MEDIA-SEQUENCE:0\n");
        out.push_str("#EXT-X-PLAYLIST-TYPE:VOD\n");
        for (dur, uri) in &self.entries {
            out.push_str(&format!("#EXTINF:{dur:.3},\n{uri}\n"));
        }
        if self.ended {
            out.push_str("#EXT-X-ENDLIST\n");
        }
        out
    }

    /// Parse m3u8 text.
    pub fn parse(text: &str) -> Result<MediaPlaylist, PlaylistError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("#EXTM3U") {
            return Err(PlaylistError::MissingHeader);
        }
        let mut target = 0.0;
        let mut entries = Vec::new();
        let mut pending: Option<f64> = None;
        let mut ended = false;
        for line in lines {
            if let Some(rest) = line.strip_prefix("#EXT-X-TARGETDURATION:") {
                target = rest
                    .parse::<f64>()
                    .map_err(|_| PlaylistError::BadDirective(line.to_string()))?;
            } else if let Some(rest) = line.strip_prefix("#EXTINF:") {
                let dur_text = rest.split(',').next().unwrap_or(rest);
                let dur = dur_text
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| PlaylistError::BadDirective(line.to_string()))?;
                pending = Some(dur);
            } else if line == "#EXT-X-ENDLIST" {
                ended = true;
            } else if line.starts_with('#') {
                // Unknown/irrelevant directive: ignored (per spec).
            } else {
                let dur = pending.take().ok_or(PlaylistError::DanglingExtinf)?;
                entries.push((dur, line.to_string()));
            }
        }
        if pending.is_some() {
            return Err(PlaylistError::DanglingExtinf);
        }
        Ok(MediaPlaylist { target_duration_secs: target, entries, ended })
    }

    /// Total media duration, seconds.
    pub fn duration_secs(&self) -> f64 {
        self.entries.iter().map(|(d, _)| d).sum()
    }
}

/// A master playlist: variant renditions with bandwidth attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterPlaylist {
    /// `(bandwidth_bps, uri)` per variant, in ladder order.
    pub variants: Vec<(u64, String)>,
}

impl MasterPlaylist {
    /// Build a master playlist from a quality ladder; variant `i` points
    /// to `"q{i+1}/index.m3u8"`.
    pub fn from_ladder(ladder: &[VideoQuality]) -> MasterPlaylist {
        MasterPlaylist {
            variants: ladder
                .iter()
                .enumerate()
                .map(|(i, q)| (q.bitrate_bps as u64, format!("q{}/index.m3u8", i + 1)))
                .collect(),
        }
    }

    /// Render to m3u8 text.
    pub fn to_m3u8(&self) -> String {
        let mut out = String::from("#EXTM3U\n#EXT-X-VERSION:3\n");
        for (bw, uri) in &self.variants {
            out.push_str(&format!("#EXT-X-STREAM-INF:BANDWIDTH={bw}\n{uri}\n"));
        }
        out
    }

    /// Parse m3u8 text.
    pub fn parse(text: &str) -> Result<MasterPlaylist, PlaylistError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("#EXTM3U") {
            return Err(PlaylistError::MissingHeader);
        }
        let mut variants = Vec::new();
        let mut pending_bw: Option<u64> = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("#EXT-X-STREAM-INF:") {
                let bw = rest
                    .split(',')
                    .find_map(|attr| attr.trim().strip_prefix("BANDWIDTH="))
                    .ok_or_else(|| PlaylistError::BadDirective(line.to_string()))?
                    .parse::<u64>()
                    .map_err(|_| PlaylistError::BadDirective(line.to_string()))?;
                pending_bw = Some(bw);
            } else if line.starts_with('#') {
                // ignore
            } else if let Some(bw) = pending_bw.take() {
                variants.push((bw, line.to_string()));
            }
        }
        Ok(MasterPlaylist { variants })
    }

    /// The variant with the highest bandwidth not exceeding `bps`, or
    /// the lowest variant if none fits.
    pub fn select(&self, bps: f64) -> Option<&(u64, String)> {
        self.variants
            .iter()
            .filter(|(bw, _)| (*bw as f64) <= bps)
            .max_by_key(|(bw, _)| *bw)
            .or_else(|| self.variants.iter().min_by_key(|(bw, _)| *bw))
    }

    /// True if `text` looks like a master playlist (has STREAM-INF).
    pub fn looks_like_master(text: &str) -> bool {
        text.contains("#EXT-X-STREAM-INF:")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmenter::{segment_video, VideoSpec};

    fn paper_segments() -> Vec<Segment> {
        let q = VideoQuality::paper_ladder().remove(0);
        segment_video(&VideoSpec::paper_video(q))
    }

    #[test]
    fn media_round_trip() {
        let pl = MediaPlaylist::from_segments(&paper_segments());
        let text = pl.to_m3u8();
        let parsed = MediaPlaylist::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 20);
        assert_eq!(parsed.target_duration_secs, 10.0);
        assert!(parsed.ended);
        assert!((parsed.duration_secs() - 200.0).abs() < 1e-6);
        assert_eq!(parsed.entries[0].1, "seg00000.ts");
    }

    #[test]
    fn media_parse_rejects_garbage() {
        assert_eq!(MediaPlaylist::parse("not a playlist"), Err(PlaylistError::MissingHeader));
        assert!(matches!(
            MediaPlaylist::parse("#EXTM3U\n#EXTINF:abc,\nseg.ts\n"),
            Err(PlaylistError::BadDirective(_))
        ));
        assert_eq!(
            MediaPlaylist::parse("#EXTM3U\n#EXTINF:10,\n"),
            Err(PlaylistError::DanglingExtinf)
        );
    }

    #[test]
    fn media_parse_ignores_unknown_directives() {
        let text = "#EXTM3U\n#EXT-X-FOO:bar\n#EXTINF:10.0,\nseg0.ts\n#EXT-X-ENDLIST\n";
        let pl = MediaPlaylist::parse(text).unwrap();
        assert_eq!(pl.entries, vec![(10.0, "seg0.ts".to_string())]);
    }

    #[test]
    fn master_round_trip() {
        let master = MasterPlaylist::from_ladder(&VideoQuality::paper_ladder());
        let text = master.to_m3u8();
        assert!(MasterPlaylist::looks_like_master(&text));
        let parsed = MasterPlaylist::parse(&text).unwrap();
        assert_eq!(parsed.variants.len(), 4);
        assert_eq!(parsed.variants[0].0, 200_000);
        assert_eq!(parsed.variants[3].1, "q4/index.m3u8");
    }

    #[test]
    fn master_variant_selection() {
        let master = MasterPlaylist::from_ladder(&VideoQuality::paper_ladder());
        assert_eq!(master.select(500e3).unwrap().0, 484_000);
        assert_eq!(master.select(5e6).unwrap().0, 738_000);
        // Below the lowest variant: fall back to the lowest.
        assert_eq!(master.select(50e3).unwrap().0, 200_000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any synthetic segment list round-trips through m3u8 text.
            #[test]
            fn media_round_trips(
                durs in proptest::collection::vec(0.5f64..30.0, 1..40),
            ) {
                let segments: Vec<Segment> = durs
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| Segment {
                        index: i,
                        duration_secs: d,
                        size_bytes: d * 1000.0,
                        uri: format!("seg{i:05}.ts"),
                    })
                    .collect();
                let pl = MediaPlaylist::from_segments(&segments);
                let parsed = MediaPlaylist::parse(&pl.to_m3u8()).unwrap();
                prop_assert_eq!(parsed.entries.len(), segments.len());
                for ((d, uri), seg) in parsed.entries.iter().zip(&segments) {
                    prop_assert!((d - seg.duration_secs).abs() < 1e-3);
                    prop_assert_eq!(uri, &seg.uri);
                }
                prop_assert!(parsed.ended);
                prop_assert!(parsed.target_duration_secs >= durs.iter().cloned().fold(0.0, f64::max));
            }

            /// Any bandwidth ladder round-trips through a master playlist.
            #[test]
            fn master_round_trips(
                bws in proptest::collection::vec(10_000u64..10_000_000, 1..8),
            ) {
                let ladder: Vec<VideoQuality> = bws
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| VideoQuality::new(format!("V{i}"), b as f64))
                    .collect();
                let master = MasterPlaylist::from_ladder(&ladder);
                let parsed = MasterPlaylist::parse(&master.to_m3u8()).unwrap();
                prop_assert_eq!(parsed.variants.len(), ladder.len());
                for ((bw, _), q) in parsed.variants.iter().zip(&ladder) {
                    prop_assert_eq!(*bw, q.bitrate_bps as u64);
                }
            }
        }
    }

    #[test]
    fn media_is_not_master() {
        let pl = MediaPlaylist::from_segments(&paper_segments());
        assert!(!MasterPlaylist::looks_like_master(&pl.to_m3u8()));
    }
}
