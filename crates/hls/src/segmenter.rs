//! Cutting a video into HLS segments.

use crate::quality::VideoQuality;

/// Specification of a VoD asset.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VideoSpec {
    /// Total duration, seconds. The paper uses 200 s ("the median video
    /// length of a YouTube video").
    pub duration_secs: f64,
    /// Target segment duration, seconds. The paper keeps the bipbop
    /// sample's 10 s segmentation.
    pub segment_secs: f64,
    /// Quality rendition.
    pub quality: VideoQuality,
}

impl VideoSpec {
    /// The paper's test video (bipbop, 200 s, 10 s segments) at the
    /// given quality.
    pub fn paper_video(quality: VideoQuality) -> VideoSpec {
        VideoSpec { duration_secs: 200.0, segment_secs: 10.0, quality }
    }

    /// Total media bytes.
    pub fn total_bytes(&self) -> f64 {
        self.quality.bytes_per_sec() * self.duration_secs
    }
}

/// One HLS media segment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Segment {
    /// Zero-based index in playout order.
    pub index: usize,
    /// Media duration, seconds (the final segment may be shorter).
    pub duration_secs: f64,
    /// Payload size, bytes.
    pub size_bytes: f64,
    /// Relative URI as it would appear in the playlist.
    pub uri: String,
}

/// Cut `spec` into segments.
///
/// Sizes follow the rendition bitrate exactly (constant-bitrate model);
/// the final segment carries the remainder of the duration.
pub fn segment_video(spec: &VideoSpec) -> Vec<Segment> {
    assert!(spec.duration_secs > 0.0 && spec.segment_secs > 0.0);
    let mut segments = Vec::new();
    let mut t = 0.0;
    let mut index = 0;
    while t < spec.duration_secs - 1e-9 {
        let dur = spec.segment_secs.min(spec.duration_secs - t);
        segments.push(Segment {
            index,
            duration_secs: dur,
            size_bytes: spec.quality.bytes_per_sec() * dur,
            uri: format!("seg{index:05}.ts"),
        });
        t += dur;
        index += 1;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> VideoQuality {
        VideoQuality::paper_ladder().remove(0)
    }

    #[test]
    fn paper_video_has_20_segments() {
        let segs = segment_video(&VideoSpec::paper_video(q1()));
        assert_eq!(segs.len(), 20);
        assert!(segs.iter().all(|s| (s.duration_secs - 10.0).abs() < 1e-9));
        assert!(segs.iter().all(|s| (s.size_bytes - 250e3).abs() < 1e-9));
        assert_eq!(segs[7].uri, "seg00007.ts");
        assert_eq!(segs[7].index, 7);
    }

    #[test]
    fn ragged_tail_segment() {
        let spec = VideoSpec { duration_secs: 25.0, segment_secs: 10.0, quality: q1() };
        let segs = segment_video(&spec);
        assert_eq!(segs.len(), 3);
        assert!((segs[2].duration_secs - 5.0).abs() < 1e-9);
        assert!((segs[2].size_bytes - 125e3).abs() < 1e-9);
    }

    #[test]
    fn total_bytes_consistent() {
        let spec = VideoSpec::paper_video(q1());
        let segs = segment_video(&spec);
        let sum: f64 = segs.iter().map(|s| s.size_bytes).sum();
        assert!((sum - spec.total_bytes()).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn zero_duration_rejected() {
        segment_video(&VideoSpec { duration_secs: 0.0, segment_secs: 10.0, quality: q1() });
    }
}
