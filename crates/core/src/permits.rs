//! Network-integrated admission control (paper §2.4).
//!
//! > "Each device receives the permission to transmit from the 3GOL
//! > backend server […] The backend server interfaces with the 3G
//! > network monitoring system and checks whether utilization in the
//! > affected area is below an acceptance threshold. If it is, the
//! > transmission is authorized and a permit is cached for a certain
//! > duration (few minutes). Else, the transmission is denied, and the
//! > cellular device does not advertise its availability on the Wi-Fi
//! > network."

use threegol_radio::location::mobile_diurnal_load;
use threegol_radio::Provisioning;
use threegol_simnet::SimTime;

/// A cached transmission permit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Permit {
    /// When the permit was granted.
    pub granted_at: SimTime,
    /// When it expires (the device must re-request afterwards).
    pub valid_until: SimTime,
}

impl Permit {
    /// Whether the permit is still valid at `now`.
    pub fn is_valid(&self, now: SimTime) -> bool {
        now >= self.granted_at && now < self.valid_until
    }
}

/// The operator-side permit backend for one cell area.
#[derive(Debug, Clone)]
pub struct PermitBackend {
    /// Peak background utilization of the covering cells.
    provisioning: Provisioning,
    /// Utilization above which permits are denied.
    pub acceptance_threshold: f64,
    /// Permit cache duration, seconds ("few minutes").
    pub cache_secs: f64,
}

impl PermitBackend {
    /// Create a backend; the paper suggests caching permits for a few
    /// minutes, so the default is 300 s.
    pub fn new(provisioning: Provisioning, acceptance_threshold: f64) -> PermitBackend {
        assert!((0.0..=1.0).contains(&acceptance_threshold));
        PermitBackend { provisioning, acceptance_threshold, cache_secs: 300.0 }
    }

    /// Current background utilization of the cell area in `[0, 1]`
    /// (diurnal load scaled by the area's peak utilization).
    pub fn utilization(&self, now: SimTime) -> f64 {
        let load = mobile_diurnal_load().normalized_peak().at(now);
        self.provisioning.peak_utilization() * load
    }

    /// Request a transmission permit at `now`.
    pub fn request_permit(&self, now: SimTime) -> Option<Permit> {
        if self.utilization(now) < self.acceptance_threshold {
            Some(Permit { granted_at: now, valid_until: now + self.cache_secs })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permit_validity_window() {
        let backend = PermitBackend::new(Provisioning::Well, 0.5);
        let now = SimTime::from_hours(3.0);
        let p = backend.request_permit(now).expect("off-peak permit");
        assert!(p.is_valid(now));
        assert!(p.is_valid(now + 299.0));
        assert!(!p.is_valid(now + 300.0));
        assert!(!p.is_valid(SimTime::from_hours(2.9)));
    }

    #[test]
    fn congested_peak_denies() {
        // A congested area at peak hour exceeds a 40 % threshold.
        let backend = PermitBackend::new(Provisioning::Congested, 0.4);
        let peak = SimTime::from_hours(19.0);
        assert!(backend.request_permit(peak).is_none());
        // The same area grants permits at night.
        let night = SimTime::from_hours(4.0);
        assert!(backend.request_permit(night).is_some());
    }

    #[test]
    fn well_provisioned_grants_even_at_peak() {
        // The paper's observation: some cells have leftover capacity
        // even during peak hours.
        let backend = PermitBackend::new(Provisioning::Well, 0.4);
        assert!(backend.request_permit(SimTime::from_hours(19.0)).is_some());
    }

    #[test]
    fn utilization_tracks_diurnal_load() {
        let backend = PermitBackend::new(Provisioning::Moderate, 0.5);
        let night = backend.utilization(SimTime::from_hours(4.0));
        let peak = backend.utilization(SimTime::from_hours(19.0));
        assert!(night < peak);
        assert!((peak - 0.30).abs() < 1e-9);
    }
}
