//! # threegol-core
//!
//! The 3GOL service itself: the paper's primary contribution, built on
//! the substrates in this workspace.
//!
//! 3GOL ("3G OnLoading") assists a bottlenecked ADSL line with the 3G
//! connectivity of devices already present in the home, implementing a
//! PowerBoost-like service Over The Top (paper §2.4): a client
//! component discovers admissible 3G devices on the home Wi-Fi and a
//! multipath scheduler spreads a transaction's items over the ADSL
//! gateway path plus one path per device.
//!
//! This crate wires everything together for the *simulated* deployment
//! (the live tokio prototype is `threegol-proxy`):
//!
//! * [`HomeNetwork`] — the simulation topology of one household:
//!   origin server, ADSL line, Wi-Fi LAN and the local cellular
//!   deployment with attached phones;
//! * [`TransactionRunner`] — drives a `threegol-sched` scheduler over
//!   the fluid simulation, with per-request overheads and RRC startup
//!   delays;
//! * [`VodExperiment`] / [`UploadExperiment`] — the §5 evaluation
//!   harnesses (pre-buffering, full-download and photo-upload timing,
//!   with/without 3GOL, warm/cold radio, 1–2 phones);
//! * [`permits`] — the network-integrated admission control sketched in
//!   §2.4 (permits granted while cell utilization is below threshold);
//! * [`capacity`] — the §2.1 back-of-the-envelope capacity comparison.

pub mod capacity;
pub mod home;
pub mod metrics;
pub mod mptcp;
pub mod permits;
pub mod runner;
pub mod service;
pub mod upload;
pub mod vod;

pub use home::{HomeNetwork, WifiStandard};
pub use metrics::{reduction_percent, speedup};
pub use mptcp::mptcp_vod_download_secs;
pub use permits::{Permit, PermitBackend};
pub use runner::{PathSpec, TransactionResult, TransactionRunner};
pub use service::{BoostedVideo, DayOfVideos, Mode, ServicePolicy};
pub use upload::{UploadExperiment, UploadOutcome};
pub use vod::{RadioStart, VodExperiment, VodOutcome};
