//! The §5.2 video-on-demand experiment harness.
//!
//! Reproduces the paper's downlink methodology: an HLS video (the
//! bipbop sample, 200 s, 10 s segments) is downloaded with ADSL alone
//! and with 3GOL enabled (1 or 2 phones, starting from idle `3G` or
//! connected `H` mode), sweeping quality Q1–Q4 and the pre-buffer
//! amount from 20 % to 100 % of the video length. Each configuration
//! is repeated with fresh stochastic conditions and averaged.

use threegol_hls::{segment_video, PlayerModel, PlayoutReport, VideoQuality, VideoSpec};
use threegol_radio::{LocationProfile, RadioGeneration};
use threegol_sched::{build, MultipathScheduler, PlayoutAware, Policy, TransactionSpec};
use threegol_simnet::dist::mix_seed;
use threegol_simnet::stats::Summary;
use threegol_simnet::{SimTime, Simulation};

use crate::home::{request_overhead_secs, HomeNetwork, WifiStandard, ADSL_EFFICIENCY};
use crate::runner::{PathSpec, TransactionRunner};

/// Radio state at transaction start (the paper's `3G` vs `H` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RadioStart {
    /// Phones start from RRC idle and pay the channel-acquisition delay.
    Cold,
    /// Phones were warmed into connected mode by an ICMP train.
    Warm,
}

impl RadioStart {
    /// The paper's label for this variant.
    pub fn label(self) -> &'static str {
        match self {
            RadioStart::Cold => "3G",
            RadioStart::Warm => "H",
        }
    }
}

/// One VoD experiment configuration.
#[derive(Debug, Clone)]
pub struct VodExperiment {
    /// Where the household is.
    pub location: LocationProfile,
    /// Number of assisting phones (0 = ADSL alone).
    pub n_phones: usize,
    /// Multipath scheduling policy.
    pub policy: Policy,
    /// Video rendition.
    pub quality: VideoQuality,
    /// Video duration and segmentation.
    pub video: VideoSpec,
    /// Pre-buffer amount as a fraction of the video length.
    pub prebuffer_fraction: f64,
    /// Cold (`3G`) or warm (`H`) radio start.
    pub radio_start: RadioStart,
    /// Hour of day the experiment runs at.
    pub hour: f64,
    /// Home Wi-Fi standard.
    pub wifi: WifiStandard,
    /// Base seed; repetitions derive sub-seeds.
    pub seed: u64,
    /// Radio generation of the assisting phones (paper: HSPA; §2.3
    /// outlook: LTE).
    pub generation: RadioGeneration,
}

impl VodExperiment {
    /// The paper's default downlink experiment at a location: greedy
    /// scheduler, Q-quality paper video, 20 % pre-buffer, 9 am
    /// weekday start ("starting each one around 9.00 am").
    pub fn paper_default(
        location: LocationProfile,
        quality: VideoQuality,
        n_phones: usize,
    ) -> VodExperiment {
        let video = VideoSpec::paper_video(quality.clone());
        VodExperiment {
            location,
            n_phones,
            policy: Policy::Greedy,
            quality,
            video,
            prebuffer_fraction: 0.2,
            radio_start: RadioStart::Cold,
            hour: 9.0,
            wifi: WifiStandard::N,
            seed: 0x90D,
            generation: RadioGeneration::Hspa,
        }
    }

    /// Run one repetition; `rep` perturbs the stochastic conditions.
    pub fn run_once(&self, rep: u64) -> VodOutcome {
        self.run_once_inner(rep, None)
    }

    /// Run one repetition with the playout-aware scheduler (the
    /// paper's §4.1.1 future-work extension): segments past the
    /// pre-buffer are fetched just-in-time, `horizon_secs` ahead of
    /// their playout deadline, assuming playback starts after
    /// `startup_estimate_secs`.
    pub fn run_once_playout_aware(
        &self,
        rep: u64,
        horizon_secs: f64,
        startup_estimate_secs: f64,
    ) -> VodOutcome {
        self.run_once_inner(rep, Some((horizon_secs, startup_estimate_secs)))
    }

    fn run_once_inner(&self, rep: u64, playout: Option<(f64, f64)>) -> VodOutcome {
        let seed = mix_seed(self.seed, rep);
        let mut sim = Simulation::new();
        sim.run_until(SimTime::from_hours(self.hour));
        let mut home = HomeNetwork::build_with_generation(
            &mut sim,
            self.location.clone(),
            self.n_phones,
            self.wifi,
            self.generation,
            seed,
        );

        let segments = segment_video(&self.video);
        let sizes: Vec<f64> = segments.iter().map(|s| s.size_bytes).collect();
        let durations: Vec<f64> = segments.iter().map(|s| s.duration_secs).collect();

        // Path 0: ADSL. Paths 1..: phones with their RRC startup delay.
        let adsl_overhead = request_overhead_secs(self.location.adsl_down_bps * ADSL_EFFICIENCY);
        let phone_overhead = request_overhead_secs(
            self.generation.downlink_curve().per_device(1) * self.location.cell_factor_dl,
        );
        let mut paths = vec![PathSpec::new(home.adsl_download_path(), adsl_overhead, 0.0)];
        for i in 0..self.n_phones {
            let startup = match self.radio_start {
                RadioStart::Warm => {
                    home.warm_phone(i, sim.now());
                    0.0
                }
                RadioStart::Cold => home.acquire_phone(i, sim.now()),
            };
            paths.push(PathSpec::new(home.phone_download_path(i), phone_overhead, startup));
        }

        let spec = TransactionSpec::new(sizes.clone(), paths.len());
        let mut sched: Box<dyn MultipathScheduler> = match playout {
            None => build(self.policy, spec),
            Some((horizon_secs, startup_estimate_secs)) => {
                let player = PlayerModel::new(self.prebuffer_fraction);
                let k = player.prebuffer_segments(segments.len());
                let deadlines = PlayoutAware::vod_deadlines(
                    segments.len(),
                    self.video.segment_secs,
                    k,
                    startup_estimate_secs,
                );
                Box::new(PlayoutAware::new(spec, deadlines, horizon_secs))
            }
        };
        let result = TransactionRunner::new(paths, sizes)
            .run(&mut sim, sched.as_mut())
            .expect("VoD transaction must complete");

        // The playlist fetch precedes segment downloads.
        let playlist_secs = adsl_overhead;
        let player = PlayerModel::new(self.prebuffer_fraction);
        let completion: Vec<f64> =
            result.item_completion_secs.iter().map(|t| t + playlist_secs).collect();
        let playout = player.playout(&completion, &durations);
        VodOutcome {
            prebuffer_secs: player.prebuffer_time_secs(&completion),
            download_secs: result.total_secs + playlist_secs,
            wasted_bytes: result.wasted_bytes,
            bytes_per_path: result.bytes_per_path,
            playout,
        }
    }

    /// Run `reps` repetitions and summarize pre-buffering and download
    /// times.
    pub fn run_mean(&self, reps: u64) -> VodSummary {
        let outcomes: Vec<VodOutcome> = (0..reps).map(|r| self.run_once(r)).collect();
        VodSummary::from_outcomes(&outcomes)
    }

    /// The same experiment without 3GOL (ADSL alone).
    pub fn adsl_only(&self) -> VodExperiment {
        let mut e = self.clone();
        e.n_phones = 0;
        e
    }
}

/// Result of one VoD repetition.
#[derive(Debug, Clone)]
pub struct VodOutcome {
    /// Pre-buffering time (request → first frame), seconds.
    pub prebuffer_secs: f64,
    /// Total video download time, seconds.
    pub download_secs: f64,
    /// Duplicate bytes discarded by the greedy scheduler.
    pub wasted_bytes: f64,
    /// Payload bytes moved per path (path 0 = ADSL).
    pub bytes_per_path: Vec<f64>,
    /// Playout analysis (stalls, finish time).
    pub playout: PlayoutReport,
}

/// Mean/σ summary across repetitions.
#[derive(Debug, Clone)]
pub struct VodSummary {
    /// Summary of pre-buffering times.
    pub prebuffer: Summary,
    /// Summary of full download times.
    pub download: Summary,
    /// Summary of wasted bytes.
    pub wasted: Summary,
    /// Mean bytes onloaded to phones (paths 1..) per repetition.
    pub mean_onloaded_bytes: f64,
}

impl VodSummary {
    /// Summarize a repetition block. `run_mean(n)` is exactly
    /// `from_outcomes` over `run_once(0..n)` in repetition order, so
    /// callers that shard repetitions across workers can rebuild the
    /// identical summary from the collected outcomes.
    pub fn from_outcomes(outcomes: &[VodOutcome]) -> VodSummary {
        let pre: Vec<f64> = outcomes.iter().map(|o| o.prebuffer_secs).collect();
        let dl: Vec<f64> = outcomes.iter().map(|o| o.download_secs).collect();
        let waste: Vec<f64> = outcomes.iter().map(|o| o.wasted_bytes).collect();
        let onloaded: f64 =
            outcomes.iter().map(|o| o.bytes_per_path.iter().skip(1).sum::<f64>()).sum::<f64>()
                / outcomes.len().max(1) as f64;
        VodSummary {
            prebuffer: Summary::of(&pre),
            download: Summary::of(&dl),
            wasted: Summary::of(&waste),
            mean_onloaded_bytes: onloaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(idx: usize) -> VideoQuality {
        VideoQuality::paper_ladder().swap_remove(idx)
    }

    fn reference(n_phones: usize, quality: VideoQuality) -> VodExperiment {
        VodExperiment::paper_default(LocationProfile::reference_2mbps(), quality, n_phones)
    }

    #[test]
    fn adsl_only_q1_near_paper_fig6() {
        // Fig 6 top: ADSL alone downloads the Q1 200 s video in ~41 s
        // on the 2 Mbit/s line.
        let out = reference(0, q(0)).run_once(0);
        assert!(
            out.download_secs > 30.0 && out.download_secs < 52.0,
            "Q1 ADSL download {}",
            out.download_secs
        );
    }

    #[test]
    fn adsl_only_q4_near_paper_fig6() {
        // Fig 6: ADSL alone, Q4 ≈ 127 s.
        let out = reference(0, q(3)).run_once(0);
        assert!(
            out.download_secs > 100.0 && out.download_secs < 150.0,
            "Q4 ADSL download {}",
            out.download_secs
        );
    }

    #[test]
    fn one_phone_speeds_up_substantially() {
        let adsl = reference(0, q(0)).run_mean(3);
        let gol = reference(1, q(0)).run_mean(3);
        let speedup = adsl.download.mean / gol.download.mean;
        // Fig 6: GRD with one phone cuts Q1 from 41 s to ~11-17 s.
        assert!(speedup > 1.5, "speedup {speedup}");
        assert!(gol.mean_onloaded_bytes > 0.0);
    }

    #[test]
    fn second_phone_helps_but_sublinearly() {
        let one = reference(1, q(2)).run_mean(3);
        let two = reference(2, q(2)).run_mean(3);
        assert!(two.download.mean < one.download.mean);
        // Not a 2× improvement (the paper: "the benefit does not
        // linearly scale with the number of phones").
        assert!(two.download.mean > one.download.mean * 0.5);
    }

    #[test]
    fn warm_start_no_slower_than_cold() {
        let mut cold = reference(1, q(0));
        cold.prebuffer_fraction = 0.2;
        let mut warm = cold.clone();
        warm.radio_start = RadioStart::Warm;
        let c = cold.run_mean(3);
        let w = warm.run_mean(3);
        // Warm start skips the acquisition delay; with short transactions
        // the gain is small but must not be negative on average.
        assert!(w.prebuffer.mean <= c.prebuffer.mean + 0.5);
    }

    #[test]
    fn prebuffer_grows_with_fraction() {
        let mut e = reference(1, q(1));
        e.prebuffer_fraction = 0.2;
        let small = e.run_mean(3);
        e.prebuffer_fraction = 1.0;
        let full = e.run_mean(3);
        assert!(small.prebuffer.mean < full.prebuffer.mean);
        // Full pre-buffer equals the whole download.
        assert!((full.prebuffer.mean - full.download.mean).abs() < 1e-6);
    }

    #[test]
    fn greedy_beats_min_on_average() {
        let mut grd = reference(1, q(1));
        grd.policy = Policy::Greedy;
        let mut min = grd.clone();
        min.policy = Policy::min_time_paper();
        let g = grd.run_mean(5);
        let m = min.run_mean(5);
        assert!(
            g.download.mean <= m.download.mean * 1.05,
            "GRD {} vs MIN {}",
            g.download.mean,
            m.download.mean
        );
    }

    #[test]
    fn outcomes_are_reproducible() {
        let e = reference(2, q(2));
        let a = e.run_once(7);
        let b = e.run_once(7);
        assert_eq!(a.download_secs, b.download_secs);
        assert_eq!(a.prebuffer_secs, b.prebuffer_secs);
    }
}
