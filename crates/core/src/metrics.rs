//! Gain metrics the paper reports.

/// Multiplicative speedup of `new` over `base` (e.g. "×2.6 downlink").
pub fn speedup(base_secs: f64, new_secs: f64) -> f64 {
    assert!(base_secs >= 0.0 && new_secs > 0.0);
    base_secs / new_secs
}

/// Percentage reduction of `new` relative to `base` (e.g. "download
/// time reduced by 47 %").
pub fn reduction_percent(base_secs: f64, new_secs: f64) -> f64 {
    assert!(base_secs > 0.0);
    (base_secs - new_secs) / base_secs * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_reduction_agree() {
        assert_eq!(speedup(40.0, 10.0), 4.0);
        assert_eq!(reduction_percent(40.0, 10.0), 75.0);
        assert_eq!(reduction_percent(40.0, 40.0), 0.0);
        // A ×2 speedup is a 50 % reduction.
        let s = speedup(30.0, 15.0);
        let r = reduction_percent(30.0, 15.0);
        assert_eq!(s, 2.0);
        assert_eq!(r, 50.0);
    }

    #[test]
    fn regression_shows_as_negative_reduction() {
        assert!(reduction_percent(10.0, 12.0) < 0.0);
        assert!(speedup(10.0, 12.0) < 1.0);
    }
}
