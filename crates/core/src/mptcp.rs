//! The MP-TCP comparison point (paper §5.2):
//!
//! > "We experimented with MP-TCP and it provided no benefit due to
//! > the issues probably related to the Coupled Congestion Control
//! > (CCC) algorithm of MP-TCP that is not optimized for wireless use
//! > yet."
//!
//! MPTCP with coupled congestion control (LIA) is designed to be no
//! more aggressive than a single TCP flow on the best path; over
//! heterogeneous, highly variable wireless subflows of the paper's era
//! it collapses to roughly best-single-path throughput. We model a
//! coupled-MPTCP video download as the whole transaction carried as
//! one connection on whichever single path would finish it fastest,
//! with a small coupling penalty — deliberately *optimistic* for
//! MPTCP, which only strengthens the reproduced conclusion that
//! application-layer 3GOL aggregation wins.

use threegol_sched::{build, Policy, TransactionSpec};
use threegol_simnet::dist::mix_seed;
use threegol_simnet::{SimTime, Simulation};

use crate::home::{request_overhead_secs, HomeNetwork, ADSL_EFFICIENCY};
use crate::runner::{PathSpec, TransactionRunner};
use crate::vod::VodExperiment;

/// Throughput penalty of coupled congestion control relative to a
/// plain single-path TCP flow (window coupling across lossy subflows).
pub const COUPLING_PENALTY: f64 = 1.05;

/// Download time of the experiment's video over coupled MPTCP: the
/// best single path carries everything sequentially, slowed by the
/// coupling penalty.
pub fn mptcp_vod_download_secs(e: &VodExperiment, rep: u64) -> f64 {
    let n_paths = e.n_phones + 1;
    let mut best = f64::INFINITY;
    for path_idx in 0..n_paths {
        let seed = mix_seed(e.seed, rep);
        let mut sim = Simulation::new();
        sim.run_until(SimTime::from_hours(e.hour));
        let mut home = HomeNetwork::build_with_generation(
            &mut sim,
            e.location.clone(),
            e.n_phones,
            e.wifi,
            e.generation,
            seed,
        );
        let segments = threegol_hls::segment_video(&e.video);
        let sizes: Vec<f64> = segments.iter().map(|s| s.size_bytes).collect();
        let (links, startup, overhead) = if path_idx == 0 {
            (
                home.adsl_download_path(),
                0.0,
                request_overhead_secs(e.location.adsl_down_bps * ADSL_EFFICIENCY),
            )
        } else {
            let i = path_idx - 1;
            let startup = home.acquire_phone(i, sim.now());
            (
                home.phone_download_path(i),
                startup,
                request_overhead_secs(
                    e.generation.downlink_curve().per_device(1) * e.location.cell_factor_dl,
                ),
            )
        };
        let paths = vec![PathSpec::new(links, overhead, startup)];
        let mut sched = build(Policy::Greedy, TransactionSpec::new(sizes.clone(), 1));
        if let Ok(result) = TransactionRunner::new(paths, sizes).run(&mut sim, sched.as_mut()) {
            best = best.min(result.total_secs);
        }
    }
    best * COUPLING_PENALTY
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_hls::VideoQuality;
    use threegol_radio::LocationProfile;

    fn experiment() -> VodExperiment {
        VodExperiment::paper_default(
            LocationProfile::reference_2mbps(),
            VideoQuality::paper_ladder().swap_remove(1),
            2,
        )
    }

    #[test]
    fn coupled_mptcp_is_single_path_bound() {
        let e = experiment();
        let mptcp = mptcp_vod_download_secs(&e, 0);
        let adsl = e.adsl_only().run_once(0).download_secs;
        // MPTCP can at best match its best subflow (here within the
        // coupling penalty of the ADSL-alone time, or a single phone).
        assert!(mptcp > adsl * 0.4, "mptcp {mptcp} suspiciously fast vs adsl {adsl}");
        assert!(mptcp < adsl * 1.2, "mptcp {mptcp} should not be far above best path");
    }

    #[test]
    fn threegol_aggregation_beats_coupled_mptcp() {
        // The paper's conclusion: app-layer onloading aggregates where
        // coupled MPTCP cannot.
        let e = experiment();
        let mptcp: f64 = (0..3).map(|r| mptcp_vod_download_secs(&e, r)).sum::<f64>() / 3.0;
        let gol = e.run_mean(3).download.mean;
        assert!(gol < mptcp * 0.8, "3GOL {gol} should clearly beat coupled MPTCP {mptcp}");
    }
}
