//! The simulated household: origin server, ADSL line, Wi-Fi LAN and
//! the local cellular deployment.
//!
//! The paper's prototype setup (§4.1/§5): all devices join the
//! residential gateway's Wi-Fi (worst case — every byte crosses the
//! wireless LAN), the origin is a dedicated well-provisioned web server
//! (100 Mbit/s down / 40 Mbit/s up), and up to two phones assist the
//! ADSL line.

use threegol_radio::{CellularDeployment, InstalledCell, LocationProfile, RadioGeneration};
use threegol_simnet::capacity::CapacityProcess;
use threegol_simnet::{LinkId, SimTime, Simulation};

/// The home Wi-Fi standard, bounding LAN goodput (paper §4.1: ~24
/// Mbit/s for 802.11g, ~110 Mbit/s for 802.11n TCP goodput).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WifiStandard {
    /// 802.11g (24 Mbit/s TCP goodput).
    G,
    /// 802.11n (110 Mbit/s TCP goodput) — what the paper's evaluation
    /// uses ("we use 802.11n compliant devices").
    N,
}

impl WifiStandard {
    /// TCP goodput ceiling of the shared medium, bits/s.
    pub fn goodput_bps(self) -> f64 {
        match self {
            WifiStandard::G => threegol_radio::consts::WIFI_80211G_GOODPUT_BPS,
            WifiStandard::N => threegol_radio::consts::WIFI_80211N_GOODPUT_BPS,
        }
    }
}

/// Effective throughput efficiency of the ADSL line for HTTP transfers.
///
/// ATM framing (~10 %), PPP/TCP/IP overhead and interleaving put the
/// achieved ADSL goodput well below sync rate; calibrated jointly with
/// [`request_overhead_secs`] against the paper's Fig 6 ADSL-only
/// download times (41 s / 127 s for Q1 / Q4 on the 2 Mbit/s line).
pub const ADSL_EFFICIENCY: f64 = 0.63;

/// Flat per-HTTP-request overhead used where a single number is needed
/// (the value [`request_overhead_secs`] yields on a ~1.3 Mbit/s
/// effective path).
pub const PER_REQUEST_OVERHEAD_SECS: f64 = 0.45;

/// Per-HTTP-request overhead (seconds) on a path of nominal goodput
/// `rate_bps`: request/response RTT plus the TCP slow-start ramp each
/// fresh sequential GET pays. The ramp term grows logarithmically with
/// the path rate — on fast lines most of a short object's transfer
/// happens below line rate, which is exactly the serialized cost
/// 3GOL's parallel fetches hide. Calibrated so the 2 Mbit/s line of
/// Fig 6 sees ~0.45 s/request.
pub fn request_overhead_secs(rate_bps: f64) -> f64 {
    const RTT_SECS: f64 = 0.1;
    const MSS_BITS: f64 = 11_680.0; // 1460-byte segments
    let ramp_rounds = (rate_bps * RTT_SECS / MSS_BITS).max(1.0).log2();
    0.08 + RTT_SECS * ramp_rounds
}

/// One household's network, installed into a simulation.
pub struct HomeNetwork {
    /// The location profile the home was built from.
    pub profile: LocationProfile,
    /// Shared Wi-Fi LAN link (every 3GOL byte crosses it).
    pub wifi: LinkId,
    /// ADSL downlink (effective goodput).
    pub adsl_down: LinkId,
    /// ADSL uplink (effective goodput).
    pub adsl_up: LinkId,
    /// Origin server downlink capacity (server → clients).
    pub server_down: LinkId,
    /// Origin server uplink capacity (clients → server).
    pub server_up: LinkId,
    /// The local cellular deployment.
    pub cell: InstalledCell,
    /// Attached phones, in attachment order.
    pub phones: Vec<threegol_radio::Attachment>,
}

impl HomeNetwork {
    /// Build the home topology for `profile` with `n_phones` attached
    /// Galaxy S II devices.
    pub fn build(
        sim: &mut Simulation,
        profile: LocationProfile,
        n_phones: usize,
        wifi: WifiStandard,
        seed: u64,
    ) -> HomeNetwork {
        Self::build_with_generation(sim, profile, n_phones, wifi, RadioGeneration::Hspa, seed)
    }

    /// Build the home with phones of a specific radio generation (the
    /// paper's §2.3 LTE outlook uses [`RadioGeneration::Lte`]).
    pub fn build_with_generation(
        sim: &mut Simulation,
        profile: LocationProfile,
        n_phones: usize,
        wifi: WifiStandard,
        generation: RadioGeneration,
        seed: u64,
    ) -> HomeNetwork {
        let wifi_link = sim.add_link(
            format!("{} wifi", profile.name),
            CapacityProcess::constant(wifi.goodput_bps()),
        );
        let adsl_down = sim.add_link(
            format!("{} adsl-down", profile.name),
            CapacityProcess::constant(profile.adsl_down_bps * ADSL_EFFICIENCY),
        );
        let adsl_up = sim.add_link(
            format!("{} adsl-up", profile.name),
            CapacityProcess::constant(profile.adsl_up_bps * ADSL_EFFICIENCY),
        );
        // "A dedicated well provisioned web server, featuring a stable
        // bandwidth of 100 Mbps in download and 40 Mbps in upload" (§5).
        let server_down = sim.add_link("origin down", CapacityProcess::constant(100e6));
        let server_up = sim.add_link("origin up", CapacityProcess::constant(40e6));
        let mut cell =
            CellularDeployment::new(profile.clone(), seed).with_generation(generation).install(sim);
        let phones = (0..n_phones)
            .map(|i| {
                let device = cell.default_device(format!("phone-{}", i + 1));
                cell.attach(sim, device)
            })
            .collect();
        HomeNetwork {
            profile,
            wifi: wifi_link,
            adsl_down,
            adsl_up,
            server_down,
            server_up,
            cell,
            phones,
        }
    }

    /// Download path through the residential gateway.
    pub fn adsl_download_path(&self) -> Vec<LinkId> {
        vec![self.server_down, self.adsl_down, self.wifi]
    }

    /// Upload path through the residential gateway.
    pub fn adsl_upload_path(&self) -> Vec<LinkId> {
        vec![self.wifi, self.adsl_up, self.server_up]
    }

    /// Download path through phone `i` (origin → cell → device → Wi-Fi).
    pub fn phone_download_path(&self, i: usize) -> Vec<LinkId> {
        let mut p = vec![self.server_down];
        p.extend(self.cell.dl_path(self.phones[i]));
        p.push(self.wifi);
        p
    }

    /// Upload path through phone `i`.
    pub fn phone_upload_path(&self, i: usize) -> Vec<LinkId> {
        let mut p = vec![self.wifi];
        p.extend(self.cell.ul_path(self.phones[i]));
        p.push(self.server_up);
        p
    }

    /// All download paths: index 0 is the ADSL/gateway path, 1.. the
    /// phones (the scheduler's path numbering).
    pub fn download_paths(&self) -> Vec<Vec<LinkId>> {
        let mut paths = vec![self.adsl_download_path()];
        for i in 0..self.phones.len() {
            paths.push(self.phone_download_path(i));
        }
        paths
    }

    /// All upload paths, same numbering as [`HomeNetwork::download_paths`].
    pub fn upload_paths(&self) -> Vec<Vec<LinkId>> {
        let mut paths = vec![self.adsl_upload_path()];
        for i in 0..self.phones.len() {
            paths.push(self.phone_upload_path(i));
        }
        paths
    }

    /// RRC channel-acquisition delay for phone `i` at `now` (paper's
    /// cold-start `3G` variants), leaving the radio connected.
    pub fn acquire_phone(&mut self, i: usize, now: SimTime) -> f64 {
        self.cell.acquire(self.phones[i], now)
    }

    /// Warm phone `i` into connected mode (the paper's `H` variants —
    /// an ICMP train issued right before the transaction).
    pub fn warm_phone(&mut self, i: usize, now: SimTime) {
        self.cell.warm_up(self.phones[i], now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_simnet::SimEvent;

    fn build(n_phones: usize) -> (Simulation, HomeNetwork) {
        let mut sim = Simulation::new();
        let home = HomeNetwork::build(
            &mut sim,
            LocationProfile::reference_2mbps(),
            n_phones,
            WifiStandard::N,
            7,
        );
        (sim, home)
    }

    #[test]
    fn paths_have_expected_shape() {
        let (_, home) = build(2);
        assert_eq!(home.download_paths().len(), 3);
        assert_eq!(home.upload_paths().len(), 3);
        // Every path crosses the Wi-Fi LAN (worst-case OTT deployment).
        for p in home.download_paths().iter().chain(home.upload_paths().iter()) {
            assert!(p.contains(&home.wifi));
        }
        // Phone paths don't use the ADSL line and vice versa.
        assert!(!home.phone_download_path(0).contains(&home.adsl_down));
        assert!(home.adsl_download_path().contains(&home.wifi));
    }

    #[test]
    fn adsl_download_rate_is_derated() {
        let (mut sim, home) = build(0);
        // 2 Mbit/s line at 65 % efficiency = 1.3 Mbit/s; 1 MB transfer
        // ≈ 6.15 s.
        sim.start_flow(home.adsl_download_path(), 1_000_000.0);
        match sim.next_event().unwrap() {
            SimEvent::FlowCompleted { time, .. } => {
                let expect = 8_000_000.0 / (2e6 * ADSL_EFFICIENCY);
                assert!((time.secs() - expect).abs() < 1e-6, "t = {time}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn phone_download_completes() {
        let (mut sim, home) = build(1);
        sim.start_flow(home.phone_download_path(0), 2_000_000.0);
        match sim.next_event().unwrap() {
            SimEvent::FlowCompleted { time, .. } => {
                assert!(time.secs() > 2.0 && time.secs() < 60.0, "t = {time}");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parallel_paths_do_not_throttle_each_other() {
        // ADSL and phone transfers should proceed concurrently — the
        // only shared medium is the (fast) Wi-Fi LAN.
        let (mut sim, home) = build(1);
        let adsl_secs = 325_000.0 * 8.0 / (2e6 * ADSL_EFFICIENCY);
        sim.start_flow(home.adsl_download_path(), 325_000.0);
        sim.start_flow(home.phone_download_path(0), 250_000.0);
        let t1 = sim.next_event().unwrap().time().secs();
        let t2 = sim.next_event().unwrap().time().secs();
        // The ADSL flow's completion must be unaffected by the phone
        // flow (one of the events lands exactly at the solo ADSL time).
        assert!(
            (t1 - adsl_secs).abs() < 1e-6 || (t2 - adsl_secs).abs() < 1e-6,
            "t1 {t1}, t2 {t2}, expected {adsl_secs}"
        );
    }

    #[test]
    fn rrc_warm_vs_cold() {
        let (sim, mut home) = build(1);
        let cold = home.acquire_phone(0, sim.now());
        assert!(cold > 0.0);
        // Second acquire right after: already connected.
        assert_eq!(home.acquire_phone(0, sim.now() + 0.1), 0.0);
        let (mut sim2, mut home2) = build(1);
        home2.warm_phone(0, sim2.now());
        sim2.run_until(SimTime::from_secs(2.5));
        assert_eq!(home2.acquire_phone(0, sim2.now()), 0.0);
    }

    #[test]
    fn wifi_standards_differ() {
        assert!(WifiStandard::N.goodput_bps() > WifiStandard::G.goodput_bps());
        assert_eq!(WifiStandard::G.goodput_bps(), 24e6);
    }
}
