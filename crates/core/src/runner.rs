//! Driving a multipath scheduler over the fluid simulation.
//!
//! [`TransactionRunner`] is the simulation-side twin of the live
//! prototype's transport layer: it executes the scheduler's
//! [`Command`]s as fluid flows, injects per-request overheads and RRC
//! startup delays, measures per-item completion times, and accounts
//! wasted (aborted-duplicate) bytes.

use std::collections::HashMap;

use threegol_sched::{Command, MultipathScheduler};
use threegol_simnet::{FlowId, LinkId, SimEvent, SimTime, Simulation, WakeToken};

/// One path available to a transaction.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Links a transfer on this path traverses.
    pub links: Vec<LinkId>,
    /// Fixed overhead before each item's bytes start flowing (HTTP
    /// request RTT + server latency), seconds.
    pub per_item_overhead_secs: f64,
    /// One-time delay before this path's *first* transfer (RRC channel
    /// acquisition for cellular paths; 0 when warm), seconds.
    pub startup_delay_secs: f64,
}

impl PathSpec {
    /// A path with the given links and overheads.
    pub fn new(links: Vec<LinkId>, per_item_overhead_secs: f64, startup_delay_secs: f64) -> Self {
        PathSpec { links, per_item_overhead_secs, startup_delay_secs }
    }
}

/// Result of a completed transaction.
#[derive(Debug, Clone)]
pub struct TransactionResult {
    /// Total transaction time (from start to last item completion),
    /// seconds.
    pub total_secs: f64,
    /// Completion time of each item relative to transaction start
    /// (first copy to finish), seconds.
    pub item_completion_secs: Vec<f64>,
    /// Bytes transferred by aborted duplicate copies.
    pub wasted_bytes: f64,
    /// Payload bytes moved per path (completed + partial aborted).
    pub bytes_per_path: Vec<f64>,
    /// Start commands executed.
    pub starts: usize,
    /// Abort commands executed.
    pub aborts: usize,
}

/// Errors the runner can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerError {
    /// The simulation can make no further progress but the transaction
    /// is incomplete (e.g., a zero-capacity path with no alternatives).
    Stalled,
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::Stalled => write!(f, "transaction stalled: no progress possible"),
        }
    }
}

impl std::error::Error for RunnerError {}

struct InFlight {
    path: usize,
    item: usize,
    issued_at: SimTime,
}

/// Executes one transaction on a [`Simulation`].
pub struct TransactionRunner {
    paths: Vec<PathSpec>,
    item_sizes: Vec<f64>,
}

impl TransactionRunner {
    /// Create a runner for `item_sizes` over `paths` (path order must
    /// match the scheduler's [`threegol_sched::TransactionSpec`]).
    pub fn new(paths: Vec<PathSpec>, item_sizes: Vec<f64>) -> TransactionRunner {
        assert!(!paths.is_empty());
        TransactionRunner { paths, item_sizes }
    }

    /// Run `sched` to completion on `sim`, starting at the simulation's
    /// current time.
    pub fn run(
        &self,
        sim: &mut Simulation,
        sched: &mut dyn MultipathScheduler,
    ) -> Result<TransactionResult, RunnerError> {
        let t0 = sim.now();
        let mut flows: HashMap<FlowId, InFlight> = HashMap::new();
        let mut pending: HashMap<u64, InFlight> = HashMap::new();
        let mut path_flow: Vec<Option<FlowId>> = vec![None; self.paths.len()];
        let mut path_started: Vec<bool> = vec![false; self.paths.len()];
        let mut next_token = 0u64;
        let mut completion = vec![f64::NAN; self.item_sizes.len()];
        let mut wasted = 0.0;
        let mut bytes_per_path = vec![0.0; self.paths.len()];
        let mut starts = 0usize;
        let mut aborts = 0usize;
        // Earliest scheduler tick already queued (absolute sim time).
        let mut tick_scheduled: Option<SimTime> = None;
        /// High bit distinguishes scheduler-tick wakeups from
        /// transfer-start wakeups.
        const TICK_BIT: u64 = 1 << 63;

        // Execute a batch of scheduler commands.
        macro_rules! exec {
            ($cmds:expr) => {
                for cmd in $cmds {
                    match cmd {
                        Command::Start { path, item } => {
                            starts += 1;
                            let spec = &self.paths[path];
                            let mut delay = spec.per_item_overhead_secs;
                            if !path_started[path] {
                                delay += spec.startup_delay_secs;
                                path_started[path] = true;
                            }
                            let token = next_token;
                            next_token += 1;
                            pending.insert(token, InFlight { path, item, issued_at: sim.now() });
                            sim.schedule_wakeup_in(delay, WakeToken(token));
                        }
                        Command::Abort { path, item } => {
                            aborts += 1;
                            if let Some(fid) = path_flow[path].take() {
                                let rec = sim.cancel_flow(fid).expect("flow active");
                                let inflight = flows.remove(&fid).expect("tracked");
                                debug_assert_eq!(inflight.item, item);
                                wasted += rec.transferred_bytes();
                                bytes_per_path[path] += rec.transferred_bytes();
                            } else {
                                // The transfer had not yet started (still in
                                // its overhead window): drop the pending start.
                                pending.retain(|_, p| !(p.path == path && p.item == item));
                            }
                        }
                    }
                }
            };
        }

        // Arm a scheduler tick if the policy is time-driven (e.g. the
        // playout-aware scheduler's deadline gates).
        macro_rules! arm_tick {
            () => {
                if let Some(at_rel) = sched.next_wakeup() {
                    let at = t0 + at_rel.max(0.0);
                    // Strictly-future fire time so tick storms cannot
                    // freeze virtual time at one instant.
                    let due = at.max(sim.now() + 1e-6);
                    if tick_scheduled.map_or(true, |t| due < t) {
                        sim.schedule_wakeup(due, WakeToken(TICK_BIT | next_token));
                        tick_scheduled = Some(due);
                        next_token += 1;
                    }
                }
            };
        }

        exec!(sched.start());
        arm_tick!();

        let mut loop_guard: u64 = 0;
        while !sched.is_done() {
            loop_guard += 1;
            if loop_guard > 5_000_000 {
                panic!(
                    "runner stuck at t={}: pending={}, ticks={:?}, flows={}, starts={starts}, aborts={aborts}",
                    sim.now(),
                    pending.len(),
                    tick_scheduled,
                    flows.len(),
                );
            }
            let ev = sim.next_event().ok_or(RunnerError::Stalled)?;
            match ev {
                SimEvent::Wakeup { token, time } if token.0 & TICK_BIT != 0 => {
                    if tick_scheduled == Some(time) {
                        tick_scheduled = None;
                    }
                    exec!(sched.on_tick(time - t0));
                    arm_tick!();
                }
                SimEvent::Wakeup { token, .. } => {
                    let Some(inflight) = pending.remove(&token.0) else {
                        continue; // start was aborted before it began
                    };
                    if sched.is_done() {
                        continue;
                    }
                    let fid = sim.start_flow(
                        self.paths[inflight.path].links.clone(),
                        self.item_sizes[inflight.item],
                    );
                    path_flow[inflight.path] = Some(fid);
                    flows.insert(fid, inflight);
                }
                SimEvent::FlowCompleted { flow, record, time } => {
                    let Some(inflight) = flows.remove(&flow) else {
                        continue; // not ours (caller may run other flows)
                    };
                    path_flow[inflight.path] = None;
                    bytes_per_path[inflight.path] += record.size_bytes;
                    if completion[inflight.item].is_nan() {
                        completion[inflight.item] = time - t0;
                    }
                    let elapsed = time - inflight.issued_at;
                    exec!(sched.on_complete(
                        inflight.path,
                        inflight.item,
                        time - t0,
                        record.size_bytes,
                        elapsed,
                    ));
                    arm_tick!();
                }
            }
        }

        // Defensive cleanup: cancel any stragglers (e.g. duplicates the
        // scheduler forgot to abort) and charge them as waste.
        for (path, slot) in path_flow.iter_mut().enumerate() {
            if let Some(fid) = slot.take() {
                if let Ok(rec) = sim.cancel_flow(fid) {
                    wasted += rec.transferred_bytes();
                    bytes_per_path[path] += rec.transferred_bytes();
                }
            }
        }

        let total = completion.iter().cloned().fold(0.0, f64::max);
        Ok(TransactionResult {
            total_secs: total,
            item_completion_secs: completion,
            wasted_bytes: wasted,
            bytes_per_path,
            starts,
            aborts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_sched::{build, Policy, TransactionSpec};
    use threegol_simnet::CapacityProcess;

    fn mbps(x: f64) -> f64 {
        x * 1e6
    }

    fn run(
        policy: Policy,
        sizes: Vec<f64>,
        rates_mbps: Vec<f64>,
        overhead: f64,
        startup: Vec<f64>,
    ) -> TransactionResult {
        let mut sim = Simulation::new();
        let paths: Vec<PathSpec> = rates_mbps
            .iter()
            .zip(&startup)
            .map(|(&r, &s)| {
                let l = sim.add_link(format!("p{r}"), CapacityProcess::constant(mbps(r)));
                PathSpec::new(vec![l], overhead, s)
            })
            .collect();
        let mut sched = build(policy, TransactionSpec::new(sizes.clone(), paths.len()));
        TransactionRunner::new(paths, sizes).run(&mut sim, sched.as_mut()).unwrap()
    }

    #[test]
    fn single_path_sequential_with_overhead() {
        // 3 items of 1 Mbit at 1 Mbps with 0.5 s per-request overhead:
        // 3 × (0.5 + 1.0) = 4.5 s.
        let r = run(Policy::Greedy, vec![125_000.0; 3], vec![1.0], 0.5, vec![0.0]);
        assert!((r.total_secs - 4.5).abs() < 1e-6, "{r:?}");
        assert_eq!(r.starts, 3);
        assert_eq!(r.aborts, 0);
        assert_eq!(r.wasted_bytes, 0.0);
    }

    #[test]
    fn startup_delay_applies_once() {
        // One path with 2 s RRC startup: 2 items take 2 + 2×1 = 4 s.
        let r = run(Policy::Greedy, vec![125_000.0; 2], vec![1.0], 0.0, vec![2.0]);
        assert!((r.total_secs - 4.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn two_paths_parallelize() {
        let r = run(Policy::Greedy, vec![125_000.0; 4], vec![1.0, 1.0], 0.0, vec![0.0, 0.0]);
        assert!((r.total_secs - 2.0).abs() < 1e-6, "{r:?}");
        // Work split evenly.
        assert!((r.bytes_per_path[0] - 250_000.0).abs() < 1.0);
        assert!((r.bytes_per_path[1] - 250_000.0).abs() < 1.0);
    }

    #[test]
    fn greedy_tail_duplication_counts_waste() {
        // Two items, second path 10× slower: greedy duplicates the tail
        // item on the fast path and aborts the slow copy.
        let r = run(Policy::Greedy, vec![125_000.0; 2], vec![1.0, 0.1], 0.0, vec![0.0, 0.0]);
        assert!(r.aborts >= 1, "{r:?}");
        assert!(r.wasted_bytes > 0.0);
        assert!((r.total_secs - 2.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn completion_times_recorded_per_item() {
        let r = run(Policy::RoundRobin, vec![125_000.0; 4], vec![1.0, 0.5], 0.0, vec![0.0, 0.0]);
        assert!(r.item_completion_secs.iter().all(|t| t.is_finite()));
        // Items 0,2 on the 1 Mbps path complete at 1 s and 2 s; items
        // 1,3 on the 0.5 Mbps path at 2 s and 4 s.
        assert!((r.item_completion_secs[0] - 1.0).abs() < 1e-6);
        assert!((r.item_completion_secs[1] - 2.0).abs() < 1e-6);
        assert!((r.item_completion_secs[2] - 2.0).abs() < 1e-6);
        assert!((r.item_completion_secs[3] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn stalled_transaction_is_an_error() {
        let mut sim = Simulation::new();
        let dead = sim.add_link("dead", CapacityProcess::constant(0.0));
        let paths = vec![PathSpec::new(vec![dead], 0.0, 0.0)];
        let sizes = vec![100.0];
        let mut sched = build(Policy::Greedy, TransactionSpec::new(sizes.clone(), 1));
        let err = TransactionRunner::new(paths, sizes).run(&mut sim, sched.as_mut()).unwrap_err();
        assert_eq!(err, RunnerError::Stalled);
    }

    #[test]
    fn min_scheduler_runs_end_to_end() {
        let r =
            run(Policy::min_time_paper(), vec![125_000.0; 6], vec![1.0, 0.5], 0.1, vec![0.0, 0.0]);
        assert!(r.item_completion_secs.iter().all(|t| t.is_finite()));
        assert!(r.total_secs > 0.0);
    }

    #[test]
    fn abort_before_start_cancels_pending() {
        // A fast path finishes both items while the slow path's
        // duplicate is still inside its overhead window; the pending
        // start must be dropped, not executed.
        let r = run(
            Policy::Greedy,
            vec![125_000.0; 2],
            vec![10.0, 0.01],
            0.0,
            vec![0.0, 5.0], // slow path also has a long startup
        );
        assert!((r.total_secs - 0.2).abs() < 1e-6, "{r:?}");
        // The slow path never moved a byte.
        assert_eq!(r.bytes_per_path[1], 0.0);
    }
}
