//! The 3GOL service policy layer: who may assist, and with how much.
//!
//! The paper describes two deployment modes:
//!
//! * **Network-integrated** (§2.4): one operator owns both networks;
//!   devices ask the 3GOL backend for transmission permits, which are
//!   granted only while cell utilization is below an acceptance
//!   threshold ("offered only when the cellular infrastructure is
//!   lightly utilized"). No metering against the user's data plan.
//! * **Multi-provider** (§6): no operator cooperation; each device
//!   gates itself on its remaining volume-cap quota `A(t)` from the
//!   allowance estimator.
//!
//! [`ServicePolicy`] decides, at a given instant, which of a
//! household's phones may join the admissible set Φ, and
//! [`DayOfVideos`] simulates a subscriber's day — every video boosted
//! through the policy, quotas depleting, permits granted and denied as
//! cell load moves through the diurnal cycle.

use threegol_caps::QuotaTracker;
use threegol_hls::VideoQuality;
use threegol_radio::{LocationProfile, Provisioning};
use threegol_simnet::SimTime;

use crate::permits::PermitBackend;
use crate::vod::{VodExperiment, VodOutcome};

/// Deployment mode of the 3GOL service.
#[derive(Debug, Clone)]
pub enum Mode {
    /// One operator, permit-gated, unmetered (§2.4).
    NetworkIntegrated {
        /// Cell-utilization threshold above which permits are denied.
        acceptance_threshold: f64,
    },
    /// Separate operators; each device spends its own cap quota (§6).
    MultiProvider {
        /// Daily 3GOL allowance per device, bytes (paper: 20 MB).
        daily_budget_bytes: f64,
    },
}

/// The policy deciding which phones may assist a transaction.
#[derive(Debug, Clone)]
pub struct ServicePolicy {
    /// Deployment mode.
    pub mode: Mode,
}

impl ServicePolicy {
    /// The paper's network-integrated configuration: permits while
    /// utilization is below 40 %.
    pub fn network_integrated() -> ServicePolicy {
        ServicePolicy { mode: Mode::NetworkIntegrated { acceptance_threshold: 0.40 } }
    }

    /// The paper's multi-provider configuration: 20 MB/device/day.
    pub fn multi_provider() -> ServicePolicy {
        ServicePolicy { mode: Mode::MultiProvider { daily_budget_bytes: 20e6 } }
    }

    /// Which phones (tracker indices) may assist at `now`, at a
    /// location with the given provisioning.
    ///
    /// Network-integrated mode grants all-or-nothing (one permit check
    /// covers the cell area); multi-provider mode admits exactly the
    /// phones with positive quota.
    pub fn admissible_indices(
        &self,
        provisioning: Provisioning,
        now: SimTime,
        trackers: &[QuotaTracker],
    ) -> Vec<usize> {
        match &self.mode {
            Mode::NetworkIntegrated { acceptance_threshold } => {
                let backend = PermitBackend::new(provisioning, *acceptance_threshold);
                if backend.request_permit(now).is_some() {
                    (0..trackers.len()).collect()
                } else {
                    Vec::new()
                }
            }
            Mode::MultiProvider { .. } => trackers
                .iter()
                .enumerate()
                .filter(|(_, t)| t.should_advertise())
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Convenience: how many phones may assist (see
    /// [`ServicePolicy::admissible_indices`]).
    pub fn admissible_count(
        &self,
        provisioning: Provisioning,
        now: SimTime,
        trackers: &[QuotaTracker],
    ) -> usize {
        self.admissible_indices(provisioning, now, trackers).len()
    }

    /// Fresh per-phone quota trackers for a new day.
    pub fn day_trackers(&self, n_phones: usize) -> Vec<QuotaTracker> {
        let allowance = match &self.mode {
            // Unmetered: effectively unlimited for a day's use.
            Mode::NetworkIntegrated { .. } => f64::INFINITY,
            Mode::MultiProvider { daily_budget_bytes } => *daily_budget_bytes,
        };
        (0..n_phones).map(|_| QuotaTracker::new(allowance)).collect()
    }
}

/// One boosted video within a [`DayOfVideos`].
#[derive(Debug, Clone)]
pub struct BoostedVideo {
    /// Hour-of-day the video started.
    pub hour: f64,
    /// Phones that were admissible for this video.
    pub phones_used: usize,
    /// The video outcome.
    pub outcome: VodOutcome,
    /// ADSL-only baseline download time, seconds.
    pub adsl_secs: f64,
}

impl BoostedVideo {
    /// Download speedup over ADSL alone.
    pub fn speedup(&self) -> f64 {
        self.adsl_secs / self.outcome.download_secs
    }
}

/// Simulate a subscriber's day: `hours` video requests, each boosted
/// through `policy`, phone quotas carrying over between videos.
pub struct DayOfVideos {
    /// Household location.
    pub location: LocationProfile,
    /// Video rendition watched.
    pub quality: VideoQuality,
    /// Number of phones in the home.
    pub n_phones: usize,
    /// The service policy.
    pub policy: ServicePolicy,
    /// Base seed.
    pub seed: u64,
}

impl DayOfVideos {
    /// Run the day: one video starting at each hour in `hours`.
    pub fn run(&self, hours: &[f64]) -> Vec<BoostedVideo> {
        let mut trackers = self.policy.day_trackers(self.n_phones);
        let mut out = Vec::new();
        for (k, &hour) in hours.iter().enumerate() {
            let mut e = VodExperiment::paper_default(
                self.location.clone(),
                self.quality.clone(),
                self.n_phones,
            );
            e.hour = hour;
            e.seed = self.seed ^ 0xDA1;
            let admissible = self.policy.admissible_indices(
                self.location.provisioning,
                SimTime::from_hours(hour),
                &trackers,
            );
            e.n_phones = admissible.len();
            let adsl_secs = e.adsl_only().run_once(k as u64).download_secs;
            let outcome = if admissible.is_empty() {
                e.adsl_only().run_once(k as u64)
            } else {
                e.run_once(k as u64)
            };
            // Charge onloaded bytes to the phones that actually
            // assisted: transaction path `1 + k` is admissible phone `k`.
            for (path_bytes, &tracker_idx) in outcome.bytes_per_path.iter().skip(1).zip(&admissible)
            {
                trackers[tracker_idx].consume(*path_bytes);
            }
            out.push(BoostedVideo { hour, phones_used: admissible.len(), outcome, adsl_secs });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trackers(n: usize, allowance: f64) -> Vec<QuotaTracker> {
        (0..n).map(|_| QuotaTracker::new(allowance)).collect()
    }

    #[test]
    fn integrated_mode_gates_on_cell_load() {
        let policy = ServicePolicy::network_integrated();
        let t = trackers(2, 1e9);
        // Congested cell at peak: denied; at night: granted.
        let peak = SimTime::from_hours(19.0);
        let night = SimTime::from_hours(4.0);
        assert_eq!(policy.admissible_count(Provisioning::Congested, peak, &t), 0);
        assert_eq!(policy.admissible_count(Provisioning::Congested, night, &t), 2);
        // Well-provisioned cell: granted even at peak (the paper's
        // "some cells have left over capacity even during peak hours").
        assert_eq!(policy.admissible_count(Provisioning::Well, peak, &t), 2);
    }

    #[test]
    fn multi_provider_gates_on_quota() {
        let policy = ServicePolicy::multi_provider();
        let mut t = trackers(3, 10e6);
        let now = SimTime::from_hours(19.0); // peak is irrelevant here
        assert_eq!(policy.admissible_count(Provisioning::Congested, now, &t), 3);
        t[0].consume(10e6);
        t[2].consume(10e6);
        assert_eq!(policy.admissible_count(Provisioning::Congested, now, &t), 1);
    }

    #[test]
    fn integrated_day_trackers_are_unmetered() {
        let t = ServicePolicy::network_integrated().day_trackers(2);
        assert!(t.iter().all(|t| t.available_bytes() > 1e15));
        let t = ServicePolicy::multi_provider().day_trackers(2);
        assert!(t.iter().all(|t| t.available_bytes() == 20e6));
    }

    #[test]
    fn day_quota_depletes_and_boost_degrades() {
        let day = DayOfVideos {
            location: LocationProfile::reference_2mbps(),
            quality: VideoQuality::paper_ladder().swap_remove(3),
            n_phones: 2,
            policy: ServicePolicy::multi_provider(),
            seed: 11,
        };
        // Q4 video ≈ 18.4 MB; phones carry most of it, so a 20 MB/phone
        // budget is exhausted within a few videos.
        let videos = day.run(&[9.0, 10.0, 11.0, 12.0, 13.0, 14.0]);
        assert_eq!(videos.len(), 6);
        assert!(videos[0].phones_used == 2);
        assert!(videos[0].speedup() > 1.3, "first video speedup {}", videos[0].speedup());
        let last = videos.last().unwrap();
        assert_eq!(last.phones_used, 0, "quota should be exhausted by the last video");
        assert!(last.speedup() <= 1.05);
        // Monotone depletion: phones_used never increases.
        for w in videos.windows(2) {
            assert!(w[1].phones_used <= w[0].phones_used);
        }
    }

    #[test]
    fn integrated_day_follows_diurnal_permits() {
        let mut location = LocationProfile::reference_2mbps();
        location.provisioning = Provisioning::Congested;
        let day = DayOfVideos {
            location,
            quality: VideoQuality::paper_ladder().swap_remove(1),
            n_phones: 2,
            policy: ServicePolicy::network_integrated(),
            seed: 13,
        };
        let videos = day.run(&[4.0, 19.0]);
        assert_eq!(videos[0].phones_used, 2, "night permit expected");
        assert_eq!(videos[1].phones_used, 0, "peak denial expected");
        assert!(videos[0].speedup() > videos[1].speedup());
    }
}
