//! The §2.1 back-of-the-envelope capacity comparison.
//!
//! "If we assume that one cellular tower provides coverage to an area
//! of 200 meters radius, and a typical population density of 35000
//! inhabitants per km², then each cell offers services to 4375
//! subscribers. If we assume that each household has 4 people and that
//! we have 80% penetration of ADSL connectivity, then each cell covers
//! 875 ADSL connections. […] the overall ADSL downlink capacity for
//! the cell area would be 5.863 Gbps. The same area is covered by a
//! cell tower with a typical 40−50 Mbps backhaul."

use threegol_radio::consts;

/// Inputs to the back-of-the-envelope comparison.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacityModel {
    /// Cell coverage radius, meters.
    pub cell_radius_m: f64,
    /// Population density, inhabitants per km².
    pub pop_density_per_km2: f64,
    /// People per household.
    pub household_size: f64,
    /// Fraction of households with ADSL.
    pub adsl_penetration: f64,
    /// Average ADSL downlink per line, bits/s.
    pub adsl_avg_dl_bps: f64,
    /// Cell backhaul capacity, bits/s.
    pub cell_backhaul_bps: f64,
    /// ADSL uplink/downlink asymmetry (paper: "1/10 asymmetry").
    pub adsl_ul_dl_ratio: f64,
}

impl CapacityModel {
    /// The paper's §2.1 parameters.
    pub fn paper() -> CapacityModel {
        CapacityModel {
            cell_radius_m: consts::CELL_RADIUS_M,
            pop_density_per_km2: consts::POP_DENSITY_PER_KM2,
            household_size: consts::HOUSEHOLD_SIZE,
            adsl_penetration: consts::ADSL_PENETRATION,
            adsl_avg_dl_bps: consts::ADSL_AVG_DL_BPS,
            cell_backhaul_bps: consts::CELL_BACKHAUL_BPS,
            adsl_ul_dl_ratio: 0.1,
        }
    }

    /// Coverage area of the cell, km².
    pub fn cell_area_km2(&self) -> f64 {
        std::f64::consts::PI * (self.cell_radius_m / 1000.0).powi(2)
    }

    /// Subscribers (people) in the cell area.
    pub fn subscribers(&self) -> f64 {
        self.cell_area_km2() * self.pop_density_per_km2
    }

    /// ADSL lines in the cell area.
    pub fn adsl_lines(&self) -> f64 {
        self.subscribers() / self.household_size * self.adsl_penetration
    }

    /// Aggregate ADSL downlink capacity in the area, bits/s.
    pub fn adsl_aggregate_dl_bps(&self) -> f64 {
        self.adsl_lines() * self.adsl_avg_dl_bps
    }

    /// Aggregate ADSL uplink capacity in the area, bits/s.
    pub fn adsl_aggregate_ul_bps(&self) -> f64 {
        self.adsl_aggregate_dl_bps() * self.adsl_ul_dl_ratio
    }

    /// Wired/cellular downlink capacity ratio (the "1–2 orders of
    /// magnitude").
    pub fn dl_ratio(&self) -> f64 {
        self.adsl_aggregate_dl_bps() / self.cell_backhaul_bps
    }

    /// Wired/cellular uplink capacity ratio (smaller, because of ADSL's
    /// uplink asymmetry).
    pub fn ul_ratio(&self) -> f64 {
        self.adsl_aggregate_ul_bps() / self.cell_backhaul_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduced() {
        let m = CapacityModel::paper();
        // "each cell offers services to 4375 subscribers" (the paper
        // rounds; the exact area computation gives ~4398).
        assert!((m.subscribers() - 4375.0).abs() < 50.0, "{}", m.subscribers());
        // "each cell covers 875 ADSL connections"
        assert!((m.adsl_lines() - 875.0).abs() < 10.0, "{}", m.adsl_lines());
        // "the overall ADSL downlink capacity … would be 5.863 Gbps"
        assert!(
            (m.adsl_aggregate_dl_bps() / 5.863e9 - 1.0).abs() < 0.02,
            "{}",
            m.adsl_aggregate_dl_bps()
        );
    }

    #[test]
    fn wired_exceeds_cellular_by_one_to_two_orders() {
        let m = CapacityModel::paper();
        let r = m.dl_ratio();
        assert!((10.0..=1000.0).contains(&r), "ratio {r}");
        // With the paper's numbers specifically, ~147×.
        assert!((r - 147.0).abs() < 10.0, "ratio {r}");
    }

    #[test]
    fn uplink_gap_is_smaller() {
        let m = CapacityModel::paper();
        assert!(m.ul_ratio() < m.dl_ratio());
        assert!((m.ul_ratio() - m.dl_ratio() * 0.1).abs() < 1e-9);
    }
}
