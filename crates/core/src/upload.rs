//! The §5.2 multimedia-upload experiment harness.
//!
//! "We repeatedly upload a set of 30 pictures with average size of
//! 2.5 MB and standard deviation of 0.74 MB" (sizes matching photos
//! from the iPhone 4S/5, the devices most used on Flickr). Uploads are
//! multipart HTTP POSTs; without 3GOL they go sequentially over the
//! thin ADSL uplink, with 3GOL the multipath scheduler spreads them
//! over the uplink plus 1–2 phones.

use threegol_radio::{LocationProfile, RadioGeneration};
use threegol_sched::{build, Policy, TransactionSpec};
use threegol_simnet::dist::mix_seed;
use threegol_simnet::stats::Summary;
use threegol_simnet::{SimRng, SimTime, Simulation};

use crate::home::{request_overhead_secs, HomeNetwork, WifiStandard, ADSL_EFFICIENCY};
use crate::runner::{PathSpec, TransactionRunner};
use crate::vod::RadioStart;

/// One upload experiment configuration.
#[derive(Debug, Clone)]
pub struct UploadExperiment {
    /// Where the household is.
    pub location: LocationProfile,
    /// Number of assisting phones (0 = ADSL alone).
    pub n_phones: usize,
    /// Multipath scheduling policy.
    pub policy: Policy,
    /// Number of photos per transaction (paper: 30).
    pub n_photos: usize,
    /// Mean photo size, bytes (paper: 2.5 MB).
    pub photo_mean_bytes: f64,
    /// Std of photo size, bytes (paper: 0.74 MB).
    pub photo_sd_bytes: f64,
    /// Cold (`3G`) or warm (`H`) radio start.
    pub radio_start: RadioStart,
    /// Hour of day.
    pub hour: f64,
    /// Home Wi-Fi standard.
    pub wifi: WifiStandard,
    /// Base seed.
    pub seed: u64,
    /// Radio generation of the assisting phones.
    pub generation: RadioGeneration,
}

impl UploadExperiment {
    /// The paper's §5.2 upload configuration at a location.
    pub fn paper_default(location: LocationProfile, n_phones: usize) -> UploadExperiment {
        UploadExperiment {
            location,
            n_phones,
            policy: Policy::Greedy,
            n_photos: 30,
            photo_mean_bytes: 2.5e6,
            photo_sd_bytes: 0.74e6,
            radio_start: RadioStart::Cold,
            hour: 9.0,
            wifi: WifiStandard::N,
            seed: 0x0b1,
            generation: RadioGeneration::Hspa,
        }
    }

    /// The photo set for repetition `rep` (lognormal sizes matching the
    /// paper's mean/σ; deterministic given the seed).
    pub fn photo_sizes(&self, rep: u64) -> Vec<f64> {
        let mut rng = SimRng::seed_from_u64(mix_seed(self.seed, rep ^ 0xF070));
        (0..self.n_photos)
            .map(|_| rng.lognormal_mean_sd(self.photo_mean_bytes, self.photo_sd_bytes).max(100e3))
            .collect()
    }

    /// Run one repetition.
    pub fn run_once(&self, rep: u64) -> UploadOutcome {
        let seed = mix_seed(self.seed, rep);
        let mut sim = Simulation::new();
        sim.run_until(SimTime::from_hours(self.hour));
        let mut home = HomeNetwork::build_with_generation(
            &mut sim,
            self.location.clone(),
            self.n_phones,
            self.wifi,
            self.generation,
            seed,
        );

        let sizes = self.photo_sizes(rep);
        let adsl_overhead = request_overhead_secs(self.location.adsl_up_bps * ADSL_EFFICIENCY);
        let phone_overhead = request_overhead_secs(
            self.generation.uplink_curve().per_device(1) * self.location.cell_factor_ul,
        );
        let mut paths = vec![PathSpec::new(home.adsl_upload_path(), adsl_overhead, 0.0)];
        for i in 0..self.n_phones {
            let startup = match self.radio_start {
                RadioStart::Warm => {
                    home.warm_phone(i, sim.now());
                    0.0
                }
                RadioStart::Cold => home.acquire_phone(i, sim.now()),
            };
            paths.push(PathSpec::new(home.phone_upload_path(i), phone_overhead, startup));
        }

        let mut sched = build(self.policy, TransactionSpec::new(sizes.clone(), paths.len()));
        let result = TransactionRunner::new(paths, sizes.clone())
            .run(&mut sim, sched.as_mut())
            .expect("upload transaction must complete");
        UploadOutcome {
            total_secs: result.total_secs,
            total_bytes: sizes.iter().sum(),
            wasted_bytes: result.wasted_bytes,
            bytes_per_path: result.bytes_per_path,
        }
    }

    /// Run `reps` repetitions and summarize.
    pub fn run_mean(&self, reps: u64) -> UploadSummary {
        let outs: Vec<UploadOutcome> = (0..reps).map(|r| self.run_once(r)).collect();
        let times: Vec<f64> = outs.iter().map(|o| o.total_secs).collect();
        let onloaded =
            outs.iter().map(|o| o.bytes_per_path.iter().skip(1).sum::<f64>()).sum::<f64>()
                / outs.len().max(1) as f64;
        UploadSummary { total: Summary::of(&times), mean_onloaded_bytes: onloaded }
    }

    /// The same experiment without 3GOL.
    pub fn adsl_only(&self) -> UploadExperiment {
        let mut e = self.clone();
        e.n_phones = 0;
        e
    }
}

/// Result of one upload repetition.
#[derive(Debug, Clone)]
pub struct UploadOutcome {
    /// Total upload time, seconds.
    pub total_secs: f64,
    /// Total payload uploaded, bytes.
    pub total_bytes: f64,
    /// Duplicate bytes discarded.
    pub wasted_bytes: f64,
    /// Payload bytes per path (path 0 = ADSL uplink).
    pub bytes_per_path: Vec<f64>,
}

/// Mean/σ summary across repetitions.
#[derive(Debug, Clone)]
pub struct UploadSummary {
    /// Summary of total upload times.
    pub total: Summary,
    /// Mean bytes onloaded to phones per repetition.
    pub mean_onloaded_bytes: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use threegol_simnet::stats::Summary;

    fn reference(n_phones: usize) -> UploadExperiment {
        UploadExperiment::paper_default(LocationProfile::paper_table4().remove(0), n_phones)
    }

    #[test]
    fn photo_sizes_match_paper_moments() {
        let e = reference(0);
        let sizes: Vec<f64> = (0..30).flat_map(|r| e.photo_sizes(r)).collect();
        let s = Summary::of(&sizes);
        assert!((s.mean / 2.5e6 - 1.0).abs() < 0.05, "mean {}", s.mean);
        assert!((s.sd / 0.74e6 - 1.0).abs() < 0.25, "sd {}", s.sd);
    }

    #[test]
    fn adsl_uplink_is_the_bottleneck() {
        // loc1: 0.83 Mbit/s uplink; 30 × 2.5 MB = 75 MB = 600 Mbit →
        // ~19 min sequential (paper Fig 9 reports 664 s at loc1; our
        // derated line is in the same range).
        let out = reference(0).run_once(0);
        assert!(
            out.total_secs > 500.0 && out.total_secs < 1700.0,
            "ADSL upload {}",
            out.total_secs
        );
    }

    #[test]
    fn one_phone_reduces_upload_30_to_75_percent() {
        let adsl = reference(0).run_mean(3);
        let gol = reference(1).run_mean(3);
        let reduction = (adsl.total.mean - gol.total.mean) / adsl.total.mean;
        // Paper: "using one device the total upload time is reduced
        // from 31% up to 75%".
        assert!(reduction > 0.25 && reduction < 0.85, "reduction {reduction}");
    }

    #[test]
    fn two_phones_reduce_further() {
        let one = reference(1).run_mean(3);
        let two = reference(2).run_mean(3);
        assert!(two.total.mean < one.total.mean);
        let adsl = reference(0).run_mean(3);
        let reduction = (adsl.total.mean - two.total.mean) / adsl.total.mean;
        // Paper: two devices cut 54–84 %.
        assert!(reduction > 0.4 && reduction < 0.9, "reduction {reduction}");
    }

    #[test]
    fn onloaded_bytes_dominate_with_thin_uplink() {
        // With a ~0.5 Mbit/s effective uplink and ~2 Mbit/s of 3G, most
        // bytes should ride the phones.
        let gol = reference(2).run_mean(3);
        let total = 30.0 * 2.5e6;
        assert!(gol.mean_onloaded_bytes > total * 0.5, "{}", gol.mean_onloaded_bytes);
    }

    #[test]
    fn deterministic_runs() {
        let e = reference(1);
        assert_eq!(e.run_once(3).total_secs, e.run_once(3).total_secs);
    }
}
