//! Reproduction binary for experiment `cap02` (see DESIGN.md §6).
//!
//! Usage: `cap02_backofenvelope [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("cap02");
}
