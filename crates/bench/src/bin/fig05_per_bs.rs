//! Reproduction binary for experiment `fig05` (see DESIGN.md §6).
//!
//! Usage: `fig05_per_bs [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("fig05");
}
