//! Run a fleet of live-prototype households, streamed through the
//! worker pool, and print the fleet digest.
//!
//! Every home is a full `threegol-proxy` household — origin, device
//! proxies with quota-gated discovery, client-side HLS proxy, and a
//! concurrent VoD prebuffer + photo upload — on its own virtual
//! network under virtual time. Homes stream through the workers in
//! chunks and fold into a mergeable digest, so memory stays flat in
//! the fleet size (a million homes run in tens of megabytes) and the
//! digest is byte-identical for any worker count or chunk size.
//!
//! ```text
//! cargo run -p threegol-bench --release --bin fleet \
//!     [homes] [workers] [chunk] [--cells N] [--scenario week|DAYS] [--seed S]
//! ```
//!
//! With `--cells N` the homes share `N` 3G cells through the
//! fixed-point cellular coupling (paper §6 / Fig 11): the fleet runs
//! repeatedly, each pass's per-cell onload feeding back as the next
//! pass's per-phone capacity shares, until the shares settle. The
//! printed digest is the converged pass's — still byte-identical
//! across worker counts and chunk sizes.
//!
//! With `--scenario week` (or `--scenario DAYS` for 1..=35 days) each
//! home runs the trace-driven multi-day scenario engine instead of the
//! fixed paper script: diurnal VoD/upload schedules, device churn, and
//! the live §6 allowance loop debiting daily 3GOLa(t) grants. The
//! digest grows per-day/per-hour onload rows and overrun counters, and
//! stays byte-identical across worker counts, chunk sizes, and runtime
//! modes. `--seed S` reseeds the whole street.

use threegol_bench::fleet::{
    peak_rss_bytes, run_cell_fleet, run_fleet, run_scenario_fleet, take_home_cost, CellFleetConfig,
    DEFAULT_CHUNK, MAX_CELLS,
};
use threegol_bench::{resolve_workers, Pool};
use threegol_proxy::MAX_SCENARIO_DAYS;
use threegol_traces::DEFAULT_SCENARIO_SEED;

fn parse_positive(raw: &str, what: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("invalid {what} {raw:?}: expected a positive integer");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut positional = Vec::new();
    let mut cells: Option<u32> = None;
    let mut scenario_days: Option<u16> = None;
    let mut seed = DEFAULT_SCENARIO_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(raw) = args.next() {
        if raw == "--cells" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--cells needs a value (1..={MAX_CELLS})");
                std::process::exit(2);
            });
            let n = parse_positive(&value, "cell count");
            if n > MAX_CELLS {
                eprintln!("invalid cell count {n}: the digest tracks at most {MAX_CELLS} cells");
                std::process::exit(2);
            }
            cells = Some(n as u32);
        } else if raw == "--scenario" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--scenario needs a value: week, or a day count 1..={MAX_SCENARIO_DAYS}");
                std::process::exit(2);
            });
            let days =
                if value == "week" { 7 } else { parse_positive(&value, "scenario day count") };
            if days > MAX_SCENARIO_DAYS {
                eprintln!("invalid scenario length {days}: at most {MAX_SCENARIO_DAYS} days");
                std::process::exit(2);
            }
            scenario_days = Some(days as u16);
        } else if raw == "--seed" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--seed needs a value");
                std::process::exit(2);
            });
            seed = value.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("invalid seed {value:?}: expected a u64");
                std::process::exit(2);
            });
        } else {
            positional.push(raw);
        }
    }
    if scenario_days.is_some() && cells.is_some() {
        eprintln!("--scenario and --cells are separate modes; pick one");
        std::process::exit(2);
    }
    let mut positional = positional.into_iter();
    let homes = positional.next().map_or(100, |raw| parse_positive(&raw, "home count"));
    let workers_arg = positional.next().map(|raw| parse_positive(&raw, "worker count"));
    let chunk = positional.next().map_or(DEFAULT_CHUNK, |raw| parse_positive(&raw, "chunk size"));
    let workers = resolve_workers(workers_arg).min(homes);

    let start = std::time::Instant::now();
    let (digest, cell_run) = Pool::with(workers, |pool| match (cells, scenario_days) {
        (Some(cells), _) => {
            let config = CellFleetConfig { cells, ..CellFleetConfig::default() };
            let run = run_cell_fleet(homes, chunk, pool, &config);
            (run.digest, Some(run))
        }
        (None, Some(days)) => (run_scenario_fleet(homes, days, seed, chunk, pool), None),
        (None, None) => (run_fleet(homes, chunk, pool), None),
    });
    let wall = start.elapsed().as_secs_f64();

    print!("{}", digest.render());
    if let Some(run) = &cell_run {
        print!("{}", run.render());
    }
    println!(
        "{homes} homes on {workers} worker(s), chunk {chunk}: {wall:.2} s wall \
         ({:.0} homes/s, {:.0} net events/s); report digest {:016x}",
        homes as f64 / wall,
        digest.net_events as f64 / wall,
        digest.digest()
    );
    if let Some(rss) = peak_rss_bytes() {
        println!("peak RSS {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    let cost = take_home_cost();
    println!(
        "per-home cost: {:.1} µs setup + {:.1} µs workload + {:.1} µs teardown",
        cost.setup_us(),
        cost.workload_us(),
        cost.teardown_us()
    );
}
