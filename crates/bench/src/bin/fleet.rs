//! Run a fleet of live-prototype households, streamed through the
//! worker pool, and print the fleet digest.
//!
//! Every home is a full `threegol-proxy` household — origin, device
//! proxies with quota-gated discovery, client-side HLS proxy, and a
//! concurrent VoD prebuffer + photo upload — on its own virtual
//! network under virtual time. Homes stream through the workers in
//! chunks and fold into a mergeable digest, so memory stays flat in
//! the fleet size (a million homes run in tens of megabytes) and the
//! digest is byte-identical for any worker count or chunk size.
//!
//! ```text
//! cargo run -p threegol-bench --release --bin fleet [homes] [workers] [chunk]
//! ```

use threegol_bench::fleet::{peak_rss_bytes, run_fleet, DEFAULT_CHUNK};
use threegol_bench::{resolve_workers, Pool};

fn parse_positive(raw: &str, what: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("invalid {what} {raw:?}: expected a positive integer");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let homes = args.next().map_or(100, |raw| parse_positive(&raw, "home count"));
    let workers_arg = args.next().map(|raw| parse_positive(&raw, "worker count"));
    let chunk = args.next().map_or(DEFAULT_CHUNK, |raw| parse_positive(&raw, "chunk size"));
    let workers = resolve_workers(workers_arg).min(homes);

    let start = std::time::Instant::now();
    let digest = Pool::with(workers, |pool| run_fleet(homes, chunk, pool));
    let wall = start.elapsed().as_secs_f64();

    print!("{}", digest.render());
    println!(
        "{homes} homes on {workers} worker(s), chunk {chunk}: {wall:.2} s wall \
         ({:.0} homes/s, {:.0} net events/s); report digest {:016x}",
        homes as f64 / wall,
        digest.net_events as f64 / wall,
        digest.digest()
    );
    if let Some(rss) = peak_rss_bytes() {
        println!("peak RSS {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
}
