//! Run a fleet of live-prototype households, streamed through the
//! worker pool, and print the fleet digest.
//!
//! Every home is a full `threegol-proxy` household — origin, device
//! proxies with quota-gated discovery, client-side HLS proxy, and a
//! concurrent VoD prebuffer + photo upload — on its own virtual
//! network under virtual time. Homes stream through the workers in
//! chunks and fold into a mergeable digest, so memory stays flat in
//! the fleet size (a million homes run in tens of megabytes) and the
//! digest is byte-identical for any worker count or chunk size.
//!
//! ```text
//! cargo run -p threegol-bench --release --bin fleet [homes] [workers] [chunk] [--cells N]
//! ```
//!
//! With `--cells N` the homes share `N` 3G cells through the
//! fixed-point cellular coupling (paper §6 / Fig 11): the fleet runs
//! repeatedly, each pass's per-cell onload feeding back as the next
//! pass's per-phone capacity shares, until the shares settle. The
//! printed digest is the converged pass's — still byte-identical
//! across worker counts and chunk sizes.

use threegol_bench::fleet::{
    peak_rss_bytes, run_cell_fleet, run_fleet, take_home_cost, CellFleetConfig, DEFAULT_CHUNK,
    MAX_CELLS,
};
use threegol_bench::{resolve_workers, Pool};

fn parse_positive(raw: &str, what: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("invalid {what} {raw:?}: expected a positive integer");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut positional = Vec::new();
    let mut cells: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(raw) = args.next() {
        if raw == "--cells" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("--cells needs a value (1..={MAX_CELLS})");
                std::process::exit(2);
            });
            let n = parse_positive(&value, "cell count");
            if n > MAX_CELLS {
                eprintln!("invalid cell count {n}: the digest tracks at most {MAX_CELLS} cells");
                std::process::exit(2);
            }
            cells = Some(n as u32);
        } else {
            positional.push(raw);
        }
    }
    let mut positional = positional.into_iter();
    let homes = positional.next().map_or(100, |raw| parse_positive(&raw, "home count"));
    let workers_arg = positional.next().map(|raw| parse_positive(&raw, "worker count"));
    let chunk = positional.next().map_or(DEFAULT_CHUNK, |raw| parse_positive(&raw, "chunk size"));
    let workers = resolve_workers(workers_arg).min(homes);

    let start = std::time::Instant::now();
    let (digest, cell_run) = Pool::with(workers, |pool| match cells {
        Some(cells) => {
            let config = CellFleetConfig { cells, ..CellFleetConfig::default() };
            let run = run_cell_fleet(homes, chunk, pool, &config);
            (run.digest, Some(run))
        }
        None => (run_fleet(homes, chunk, pool), None),
    });
    let wall = start.elapsed().as_secs_f64();

    print!("{}", digest.render());
    if let Some(run) = &cell_run {
        print!("{}", run.render());
    }
    println!(
        "{homes} homes on {workers} worker(s), chunk {chunk}: {wall:.2} s wall \
         ({:.0} homes/s, {:.0} net events/s); report digest {:016x}",
        homes as f64 / wall,
        digest.net_events as f64 / wall,
        digest.digest()
    );
    if let Some(rss) = peak_rss_bytes() {
        println!("peak RSS {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    let cost = take_home_cost();
    println!(
        "per-home cost: {:.1} µs setup + {:.1} µs workload + {:.1} µs teardown",
        cost.setup_us(),
        cost.workload_us(),
        cost.teardown_us()
    );
}
