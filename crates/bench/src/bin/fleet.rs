//! Run a fleet of live-prototype households and print the per-home
//! gain distributions.
//!
//! Every home is a full `threegol-proxy` household — origin, device
//! proxies with quota-gated discovery, client-side HLS proxy, and a
//! concurrent VoD prebuffer + photo upload — on its own virtual
//! network under virtual time. Homes shard across the worker pool; the
//! report (and its digest) is byte-identical for any worker count.
//!
//! ```text
//! cargo run -p threegol-bench --release --bin fleet [homes] [workers]
//! ```

use threegol_bench::fleet::{digest, run_fleet, summarize};
use threegol_bench::{resolve_workers, Pool};

fn main() {
    let mut args = std::env::args().skip(1);
    let homes = match args.next() {
        None => 100,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("invalid home count {raw:?}: expected a positive integer");
                std::process::exit(2);
            }
        },
    };
    let workers_arg = match args.next() {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(w) if w >= 1 => Some(w),
            _ => {
                eprintln!("invalid worker count {raw:?}: expected a positive integer");
                std::process::exit(2);
            }
        },
    };
    let workers = resolve_workers(workers_arg).min(homes);

    let start = std::time::Instant::now();
    let reports = Pool::with(workers, |pool| run_fleet(homes, pool));
    let wall = start.elapsed().as_secs_f64();

    print!("{}", summarize(&reports).render());
    let virtual_secs: f64 =
        reports.iter().map(|r| r.vod_secs.max(r.upload_secs)).fold(0.0, f64::max);
    println!(
        "{homes} homes on {workers} worker(s): {wall:.2} s wall for {virtual_secs:.1} s \
         of (slowest-home) virtual time; report digest {:016x}",
        digest(&reports)
    );
}
