//! Reproduction binary for experiment `fig01` (see DESIGN.md §6).
//!
//! Usage: `fig01_diurnal [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("fig01");
}
