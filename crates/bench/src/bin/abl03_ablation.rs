//! Reproduction binary for experiment `abl03` (see DESIGN.md §6).
//!
//! Usage: `abl03_ablation [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("abl03");
}
