//! Reproduction binary for experiment `abl04` (see DESIGN.md §6).
//!
//! Usage: `abl04_ablation [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("abl04");
}
