//! Reproduction binary for experiment `tab02` (see DESIGN.md §6).
//!
//! Usage: `tab02_locations [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("tab02");
}
