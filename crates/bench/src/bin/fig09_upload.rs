//! Reproduction binary for experiment `fig09` (see DESIGN.md §6).
//!
//! Usage: `fig09_upload [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("fig09");
}
