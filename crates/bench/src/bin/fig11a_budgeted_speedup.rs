//! Reproduction binary for experiment `fig11a` (see DESIGN.md §6).
//!
//! Usage: `fig11a_budgeted_speedup [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("fig11a");
}
