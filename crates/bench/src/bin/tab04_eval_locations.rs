//! Reproduction binary for experiment `tab04` (see DESIGN.md §6).
fn main() {
    let report = threegol_bench::run_experiment("tab04", 1.0);
    print!("{}", report.render());
    if !report.all_ok() {
        std::process::exit(1);
    }
}
