//! Tracked performance numbers for the simnet hot path.
//!
//! Runs the fig06-shaped workloads (one ADSL home with two onloading
//! phones; a street of such homes; the full fig06 scheduler sweep with
//! flow churn; the bare fair-share solver) against the current engine,
//! plus a live-prototype fleet on the virtual-net tokio runtime, and
//! writes `BENCH_simnet.json` to the repo root
//! with the measured numbers next to the recorded pre-optimization
//! baseline, plus the resulting speedups.
//!
//! ```text
//! cargo run -p threegol-bench --release --bin bench_summary
//! cargo run -p threegol-bench --release --bin bench_summary -- \
//!     --only live_fleet_50_homes,live_fleet_200_homes
//! ```
//!
//! `--only` measures just the named rows (comma-separated) and gates
//! them against the committed `BENCH_simnet.json` without rewriting
//! it — the CI perf-smoke mode: a fast subset instead of the full
//! multi-minute sweep.
//!
//! The baseline constants below were measured on the same machine from
//! the tree immediately before the allocation-free/incremental hot
//! path landed (reference `max_min_fair` in the event loop, per-event
//! Vec churn). Re-measure them by checking out that commit and running
//! this binary; the `current` section is always measured live.

use std::time::Instant;

use threegol_bench::{fleet, registry, relay, Pool, Scale};
use threegol_simnet::capacity::DiurnalProfile;
use threegol_simnet::fairshare::{
    max_min_fair, max_min_fair_into, FairShareScratch, FlowDemand, FlowTable,
};
use threegol_simnet::{CapacityProcess, SimEvent, SimTime, Simulation};

/// One measured workload: median wall-clock over `REPS` runs.
struct Sample {
    name: &'static str,
    /// What one run simulates.
    what: &'static str,
    median_ms: f64,
    /// Live-measured "before" (overrides the recorded baseline).
    live_before_ms: Option<f64>,
    events: u64,
    /// Extra raw-JSON fields for this row (e.g. the million-home row's
    /// homes/sec and peak RSS), spliced into the object verbatim.
    extra: Option<String>,
}

const REPS: usize = 7;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// One fig06 home: a 2 Mbit/s ADSL line plus `n_phones` 3G links, all
/// stochastic with 1 s resampling, carrying HLS-chunk-sized flows.
fn build_home(sim: &mut Simulation, seed: u64, n_phones: usize, n_flows: usize) {
    let adsl = sim.add_link(
        format!("adsl{seed}"),
        CapacityProcess::stochastic(2e6, 0.3, 1.0, DiurnalProfile::flat(), seed),
    );
    let mut links = vec![adsl];
    for p in 0..n_phones {
        links.push(sim.add_link(
            format!("3g{seed}_{p}"),
            CapacityProcess::stochastic(
                3e6,
                0.4,
                1.0,
                DiurnalProfile::flat(),
                seed * 31 + p as u64,
            ),
        ));
    }
    // Long flows pinned across the home's links so every capacity
    // change resolves a non-trivial allocation (fig06 steady state:
    // the scheduler keeps all pipes busy for the whole download).
    for f in 0..n_flows {
        let path = vec![links[f % links.len()]];
        sim.start_flow(path, 1e12); // effectively infinite: pure steady state
    }
}

fn run_home_workload(n_homes: usize, horizon_secs: f64) -> (f64, u64) {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut sim = Simulation::new();
        for h in 0..n_homes {
            build_home(&mut sim, 1 + h as u64, 2, 6);
        }
        let t = Instant::now();
        sim.run_until(SimTime::from_secs(horizon_secs));
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    // Flows never finish, so the event stream is exactly the capacity
    // resampling: one change per stochastic link per step (1 s).
    let events = (n_homes as u64 * 3) * horizon_secs as u64;
    (median(times), events)
}

/// Fleet with churn: `n_homes` independent ADSL+2-phone homes where
/// every link carries two finite flows and each completion immediately
/// starts a replacement on the same link, so the event stream mixes
/// per-second capacity resampling with constant arrivals/departures.
/// This is the workload the event-local stepper targets: at 1000 homes
/// the pre-calendar engine scanned 3000 links and 6000 flows on every
/// single event.
fn run_fleet_workload(n_homes: usize, horizon_secs: f64) -> (f64, u64) {
    let mut times = Vec::with_capacity(REPS);
    let mut events = 0u64;
    for _ in 0..REPS {
        let mut sim = Simulation::new();
        let mut links = Vec::with_capacity(n_homes * 3);
        for h in 0..n_homes as u64 {
            links.push(sim.add_link(
                format!("adsl{h}"),
                CapacityProcess::stochastic(2e6, 0.3, 1.0, DiurnalProfile::flat(), 1 + h),
            ));
            for p in 0..2u64 {
                links.push(sim.add_link(
                    format!("3g{h}_{p}"),
                    CapacityProcess::stochastic(
                        3e6,
                        0.4,
                        1.0,
                        DiurnalProfile::flat(),
                        1000 + h * 31 + p,
                    ),
                ));
            }
        }
        let mut seq = 0u64;
        let mut next_size = move || {
            seq += 1;
            250_000.0 + (seq * 37_559 % 500_000) as f64
        };
        for &l in &links {
            sim.start_flow(vec![l], next_size());
            sim.start_flow(vec![l], next_size());
        }
        let horizon = SimTime::from_secs(horizon_secs);
        let t = Instant::now();
        events = 0;
        while let Some(ev) = sim.next_event_until(horizon) {
            events += 1;
            if let SimEvent::FlowCompleted { record, .. } = ev {
                sim.start_flow(vec![record.path[0]], next_size());
            }
        }
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(times), events)
}

/// The live-prototype fleet: whole virtual-net households (origin,
/// device proxies with discovery, client-side HLS proxy, concurrent
/// VoD prebuffer + photo upload under virtual time) streamed across
/// every core in chunks and folded into the fleet digest. Tracks the
/// cost of the virtual network substrate itself — the simulator
/// workloads above never touch it. Returns the median wall-clock over
/// `reps` runs and one run's virtual-net event count.
fn run_live_fleet_workload(homes: usize, reps: usize) -> (f64, u64) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut times = Vec::with_capacity(reps);
    let mut events = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let digest = Pool::with(cores.min(homes), |pool| {
            threegol_bench::fleet::run_fleet(homes, fleet::DEFAULT_CHUNK, pool)
        });
        std::hint::black_box(&digest);
        times.push(t.elapsed().as_secs_f64() * 1e3);
        events = digest.net_events;
    }
    (median(times), events)
}

/// Bare solver: the allocating reference oracle vs the scratch-backed
/// `max_min_fair_into`, both live on identical inputs.
fn run_solver_workload(nl: usize, nf: usize, iters: u64) -> (f64, f64, u64) {
    let caps: Vec<f64> = (0..nl).map(|i| 1e6 + (i as f64) * 1e5).collect();
    let flows: Vec<FlowDemand> = (0..nf)
        .map(|f| FlowDemand {
            links: vec![f % nl, (f * 7 + 1) % nl],
            cap: if f % 3 == 0 { Some(5e5) } else { None },
        })
        .collect();
    let mut reference_times = Vec::with_capacity(REPS);
    let mut scratch_times = Vec::with_capacity(REPS);
    let table = FlowTable::from_demands(&flows);
    let mut scratch = FairShareScratch::default();
    let mut out = Vec::new();
    for _ in 0..REPS {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(max_min_fair(
                std::hint::black_box(&caps),
                std::hint::black_box(&flows),
            ));
        }
        reference_times.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        for _ in 0..iters {
            max_min_fair_into(
                std::hint::black_box(&caps),
                std::hint::black_box(&table),
                &mut scratch,
                &mut out,
            );
            std::hint::black_box(&out);
        }
        scratch_times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median(reference_times), median(scratch_times), iters)
}

/// Pre-optimization numbers (see module docs). The solver row instead
/// measures the still-present reference implementation live.
const BASELINE: &[(&str, Option<f64>)] = &[
    ("fig06_home", Some(0.71)),
    ("street_16_homes", Some(10.68)),
    // Measured from the tree immediately before the event-local
    // (calendar) stepper landed: every event paid a full scan of all
    // flows and links.
    ("fleet_1k_homes", Some(1436.8)),
    ("fig06_sweep", Some(89.6)),
    // Measured from the tree immediately before the zero-copy
    // streaming codec landed: whole-body materialization on the device
    // relay, per-read 8 KiB stack chunks, per-message header Strings,
    // one write syscall-equivalent per head and per body.
    ("proxy_throughput_segment_relay", Some(14.47)),
    ("proxy_throughput_upload_relay", Some(6.53)),
];

/// `after_ms` per workload from a committed `BENCH_simnet.json`,
/// hand-parsed (serde_json is an offline stub in this container). The
/// file is the fixed flat shape this binary writes, so scanning for
/// the `"name"` / `"after_ms"` key pairs is sufficient.
fn committed_after_ms(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix("\",").map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"after_ms\": ") {
            if let (Some(n), Ok(v)) = (name.take(), rest.trim_end_matches(',').parse::<f64>()) {
                out.push((n, v));
            }
        }
    }
    out
}

fn main() {
    // `--only a,b,c`: measure just the named rows, skip the file
    // rewrite, still gate against the committed numbers.
    let mut cli = std::env::args().skip(1);
    let mut only: Option<Vec<String>> = None;
    while let Some(arg) = cli.next() {
        match arg.as_str() {
            "--only" => {
                let rows = cli.next().unwrap_or_else(|| {
                    eprintln!("--only needs a comma-separated row list");
                    std::process::exit(2);
                });
                only = Some(rows.split(',').map(|s| s.trim().to_string()).collect());
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: bench_summary [--only row,row,...]");
                std::process::exit(2);
            }
        }
    }
    let want = |name: &str| only.as_ref().is_none_or(|rows| rows.iter().any(|r| r == name));

    let mut samples = Vec::new();

    // The live-prototype fleet rows run first so the process peak RSS
    // recorded for the million-home row is attributable to the fleet
    // path, not to whichever experiment sweep ran before it.
    if want("live_fleet_50_homes") {
        let (ms, events) = run_live_fleet_workload(50, REPS);
        samples.push(Sample {
            name: "live_fleet_50_homes",
            what: "50 live-prototype households (virtual-net runtimes, concurrent VoD + upload) \
                   streamed across cores",
            median_ms: ms,
            live_before_ms: None,
            events,
            extra: None,
        });
    }

    if want("live_fleet_200_homes") {
        let (ms, events) = run_live_fleet_workload(200, REPS);
        samples.push(Sample {
            name: "live_fleet_200_homes",
            what: "200 live-prototype households (virtual-net runtimes, concurrent VoD + upload) \
                   streamed across cores",
            median_ms: ms,
            live_before_ms: None,
            events,
            extra: None,
        });
    }

    // Where a streamed home's wall time goes: the per-home mean split
    // into runtime acquire/reset, the home's `block_on`, and digest
    // fold + release, from the process-wide home-cost counters. The
    // row is diagnostic (gate-exempt): it explains live_fleet shifts —
    // a setup regression means runtime reuse broke, a workload shift
    // is the hot path itself.
    if want("home_cost_breakdown") {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let _ = fleet::take_home_cost(); // rewind whatever earlier rows accumulated
        for _ in 0..3 {
            let digest = Pool::with(cores.min(200), |pool| {
                fleet::run_fleet(200, fleet::DEFAULT_CHUNK, pool)
            });
            std::hint::black_box(&digest);
        }
        let cost = fleet::take_home_cost();
        samples.push(Sample {
            name: "home_cost_breakdown",
            what: "per-home wall-time split of a 200-home streamed fleet (3 runs): \
                   runtime acquire+reset / block_on workload / fold+release; \
                   after_ms is the mean total per home (diagnostic, gate-exempt)",
            median_ms: (cost.setup_us() + cost.workload_us() + cost.teardown_us()) / 1e3,
            live_before_ms: None,
            events: cost.homes,
            extra: Some(format!(
                "\"homes\": {},\n      \"setup_us_per_home\": {:.2},\n      \
                 \"workload_us_per_home\": {:.2},\n      \"teardown_us_per_home\": {:.2}",
                cost.homes,
                cost.setup_us(),
                cost.workload_us(),
                cost.teardown_us()
            )),
        });
    }

    // The cell-coupled fleet row: the same streamed households, but
    // sharing 8 3G cells through the fixed-point cellular coupling —
    // tracks the cost of running the fleet to convergence (several
    // passes) rather than once.
    if want("live_fleet_cells") {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let config = fleet::CellFleetConfig::default();
        let mut times = Vec::with_capacity(3);
        let mut run = None;
        for _ in 0..3 {
            let t = Instant::now();
            let r = Pool::with(cores.min(200), |pool| {
                fleet::run_cell_fleet(200, fleet::DEFAULT_CHUNK, pool, &config)
            });
            times.push(t.elapsed().as_secs_f64() * 1e3);
            run = Some(r);
        }
        let run = run.expect("at least one run");
        let peak_dl_mbps = run.loads.iter().map(|l| l.peak_dl_bps()).fold(0.0, f64::max) / 1e6;
        samples.push(Sample {
            name: "live_fleet_cells",
            what: "200 live-prototype households coupled through 8 shared 3G cells, \
                   fixed-point iterated to convergence (median of 3 runs)",
            median_ms: median(times),
            live_before_ms: None,
            events: run.digest.net_events,
            extra: Some(format!(
                "\"runs\": 3,\n      \"cells\": {},\n      \"passes\": {},\n      \
                 \"converged\": {},\n      \"peak_cell_dl_mbps\": {:.3}",
                config.cells, run.passes, run.converged, peak_dl_mbps
            )),
        });
    }

    // The scenario-engine row: the same streamed households, but each
    // running the trace-driven 7-day scenario (diurnal sessions, device
    // churn, live allowance loop) instead of the fixed paper script —
    // tracks the cost of a simulated week per home.
    if want("live_fleet_scenario_week") {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut times = Vec::with_capacity(3);
        let mut digest = None;
        for _ in 0..3 {
            let t = Instant::now();
            let d = Pool::with(cores.min(200), |pool| {
                fleet::run_scenario_fleet(
                    200,
                    7,
                    threegol_traces::DEFAULT_SCENARIO_SEED,
                    fleet::DEFAULT_CHUNK,
                    pool,
                )
            });
            times.push(t.elapsed().as_secs_f64() * 1e3);
            digest = Some(d);
        }
        let digest = digest.expect("at least one run");
        samples.push(Sample {
            name: "live_fleet_scenario_week",
            what: "200 live-prototype households each running the trace-driven 7-day scenario \
                   (diurnal VoD/upload schedules, device churn, live 3GOLa(t) allowance loop), \
                   median of 3 runs",
            median_ms: median(times),
            live_before_ms: None,
            events: digest.net_events,
            extra: Some(format!(
                "\"runs\": 3,\n      \"sessions\": {},\n      \"device_days\": {},\n      \
                 \"overrun_rate\": {:.4},\n      \"captured_fraction\": {:.4}",
                digest.scenario.sessions,
                digest.scenario.device_days,
                digest.scenario.overrun_rate(),
                digest.scenario.captured_fraction()
            )),
        });
    }

    // The fleet-scale acceptance row: one million streamed homes, a
    // single run (it is minutes of wall-clock, and at this unit count
    // run-to-run variance is negligible). The row records homes/sec,
    // virtual-net events/sec and the process peak RSS, and fails hard
    // if the streamed design's documented memory ceiling is broken.
    if want("live_fleet_1m_homes") {
        let (ms, events) = run_live_fleet_workload(1_000_000, 1);
        let peak_rss = fleet::peak_rss_bytes().unwrap_or(0);
        if peak_rss > fleet::FLEET_RSS_CEILING_BYTES {
            eprintln!(
                "RSS CEILING BROKEN: million-home fleet peaked at {:.1} MiB (ceiling {} MiB)",
                peak_rss as f64 / (1024.0 * 1024.0),
                fleet::FLEET_RSS_CEILING_BYTES / (1024 * 1024)
            );
            std::process::exit(1);
        }
        samples.push(Sample {
            name: "live_fleet_1m_homes",
            what: "1,000,000 live-prototype households streamed through the pool in 64-home \
                   chunks, folded into the mergeable fleet digest (single run)",
            median_ms: ms,
            live_before_ms: None,
            events,
            extra: Some(format!(
                "\"runs\": 1,\n      \"homes_per_sec\": {:.0},\n      \
                 \"events_per_sec\": {:.0},\n      \"peak_rss_mib\": {:.1},\n      \
                 \"rss_ceiling_mib\": {}",
                1_000_000.0 / (ms / 1e3),
                events as f64 / (ms / 1e3),
                peak_rss as f64 / (1024.0 * 1024.0),
                fleet::FLEET_RSS_CEILING_BYTES / (1024 * 1024)
            )),
        });
    }

    if want("fig06_home") {
        let (ms, events) = run_home_workload(1, 600.0);
        samples.push(Sample {
            name: "fig06_home",
            what: "1 home (ADSL + 2 phones, 6 flows), 600 simulated s",
            median_ms: ms,
            live_before_ms: None,
            events,
            extra: None,
        });
    }

    if want("street_16_homes") {
        let (ms, events) = run_home_workload(16, 120.0);
        samples.push(Sample {
            name: "street_16_homes",
            what: "16 independent homes (48 links, 96 flows), 120 simulated s",
            median_ms: ms,
            live_before_ms: None,
            events,
            extra: None,
        });
    }

    if want("fleet_1k_homes") {
        let (ms, events) = run_fleet_workload(1000, 5.0);
        samples.push(Sample {
            name: "fleet_1k_homes",
            what: "1000 homes (3000 links, 6000 flows) with churn: completions restart, \
                   5 simulated s",
            median_ms: ms,
            live_before_ms: None,
            events,
            extra: None,
        });
    }

    // The relay hot path: throughput through an
    // unthrottled device proxy, both directions (see the `relay`
    // module and the `proxy_throughput` criterion bench).
    if want("proxy_throughput_segment_relay") {
        let mut seg_times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            relay::segment_relay();
            seg_times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        samples.push(Sample {
            name: "proxy_throughput_segment_relay",
            what: "4 x 2 MB GET bodies through an unthrottled device relay \
                   (origin -> device -> client) on the virtual net",
            median_ms: median(seg_times),
            live_before_ms: None,
            events: relay::SEGMENT_RUN_BYTES as u64,
            extra: None,
        });
    }

    if want("proxy_throughput_upload_relay") {
        let mut up_times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            relay::upload_relay();
            up_times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        samples.push(Sample {
            name: "proxy_throughput_upload_relay",
            what: "8 x 250 kB multipart photo POSTs through an unthrottled device relay \
                   (client -> device -> origin), committed at the origin",
            median_ms: median(up_times),
            live_before_ms: None,
            events: relay::UPLOAD_RUN_BYTES as u64,
            extra: None,
        });
    }

    // The acceptance workload: the actual fig06 experiment (full
    // scheduler sweep, 30 reps per point), flow churn included.
    if want("fig06_sweep") {
        let fig06 = registry().get("fig06").expect("fig06 registered");
        let mut sweep_times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            std::hint::black_box(fig06.run_serial(Scale::FULL));
            sweep_times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        samples.push(Sample {
            name: "fig06_sweep",
            what: "full fig06 experiment: scheduler sweep, 30 reps per point, with flow churn",
            median_ms: median(sweep_times),
            live_before_ms: None,
            events: 30,
            extra: None,
        });
    }

    // Replication sharding: the two heaviest Monte-Carlo sweeps run
    // once serially and once decomposed into per-rep units on a pool
    // using every core. Both paths produce byte-identical reports; the
    // "before" column is the serial wall-clock.
    if want("repro_shard_fig06_fig07") {
        let fig06 = registry().get("fig06").expect("fig06 registered");
        let fig07 = registry().get("fig07").expect("fig07 registered");
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut serial_times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            std::hint::black_box(fig06.run_serial(Scale::FULL));
            std::hint::black_box(fig07.run_serial(Scale::FULL));
            serial_times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let mut sharded_times = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            Pool::with(cores, |pool| {
                std::hint::black_box(fig06.run_sharded(Scale::FULL, pool));
                std::hint::black_box(fig07.run_sharded(Scale::FULL, pool));
            });
            sharded_times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let units = (fig06.unit_count(Scale::FULL) + fig07.unit_count(Scale::FULL)) as u64;
        samples.push(Sample {
            name: "repro_shard_fig06_fig07",
            what: Box::leak(
                format!(
                    "fig06 + fig07 sharded into per-rep units across {cores} core(s); \
                     before = same work serial — speedup tracks the machine's core count"
                )
                .into_boxed_str(),
            ),
            median_ms: median(sharded_times),
            live_before_ms: Some(median(serial_times)),
            events: units,
            extra: None,
        });
    }

    if want("solver_64x256") {
        let (reference_ms, scratch_ms, iters) = run_solver_workload(64, 256, 200);
        samples.push(Sample {
            name: "solver_64x256",
            what: "max_min_fair oracle vs max_min_fair_into, 64 links x 256 flows, 200 calls",
            median_ms: scratch_ms,
            live_before_ms: Some(reference_ms),
            events: iters,
            extra: None,
        });
    }

    // Snapshot the committed numbers before overwriting: they are the
    // reference for the regression gate below.
    let committed = std::fs::read_to_string("BENCH_simnet.json")
        .map(|t| committed_after_ms(&t))
        .unwrap_or_default();

    // serde_json is an offline stub in this container, so format the
    // (flat, fixed-shape) JSON by hand.
    let mut out = String::from("{\n  \"benchmark\": \"simnet hot path (fig06-shaped)\",\n");
    out.push_str("  \"unit\": \"milliseconds, median of 7 runs\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let baseline = s
            .live_before_ms
            .or_else(|| BASELINE.iter().find(|(n, _)| *n == s.name).and_then(|(_, v)| *v));
        let (base_str, speedup_str) = match baseline {
            Some(b) => (format!("{b:.2}"), format!("{:.2}", b / s.median_ms)),
            None => ("null".to_string(), "null".to_string()),
        };
        let extra = match &s.extra {
            Some(fields) => format!(",\n      {fields}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"what\": \"{}\",\n      \
             \"events\": {},\n      \"before_ms\": {},\n      \"after_ms\": {:.2},\n      \
             \"speedup\": {}{}\n    }}{}\n",
            s.name,
            s.what,
            s.events,
            base_str,
            s.median_ms,
            speedup_str,
            extra,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if only.is_none() {
        std::fs::write("BENCH_simnet.json", &out).expect("write BENCH_simnet.json");
    }
    print!("{out}");

    // Regression gate: nonzero exit if any workload measured >20%
    // slower than the committed BENCH_simnet.json. The sharded row is
    // exempt — its wall-clock tracks the machine's core count, not the
    // engine — as is the diagnostic cost-breakdown row. (In full mode
    // the freshly measured file has already been written, so the
    // offending numbers are on disk for inspection.)
    let mut regressed = false;
    for s in &samples {
        if s.name == "repro_shard_fig06_fig07" || s.name == "home_cost_breakdown" {
            continue;
        }
        if let Some((_, committed_ms)) = committed.iter().find(|(n, _)| n == s.name) {
            if s.median_ms > committed_ms * 1.2 {
                eprintln!(
                    "REGRESSION: {} measured {:.2} ms vs committed {:.2} ms (>20% slower)",
                    s.name, s.median_ms, committed_ms
                );
                regressed = true;
            }
        }
    }
    if regressed {
        std::process::exit(1);
    }
}
