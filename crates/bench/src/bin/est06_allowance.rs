//! Reproduction binary for experiment `est06` (see DESIGN.md §6).
//!
//! Usage: `est06_allowance [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("est06");
}
