//! Run every reproduction experiment and print an EXPERIMENTS.md-ready
//! Markdown report to stdout; a human-readable rendering goes to
//! stderr.
//!
//! ```text
//! cargo run -p threegol-bench --release --bin repro_all [scale] [workers] > EXPERIMENTS.md
//! ```
//!
//! `scale` must lie in (0, 1] (default 1). `workers` overrides the
//! `THREEGOL_WORKERS` environment variable and the detected core
//! count. Every experiment decomposes into independent replication
//! units that all interleave in one shared work-stealing pool, and
//! each experiment's merge step reassembles its partials in unit
//! order — so the output is byte-identical for any worker count.

use threegol_bench::fleet::{
    run_cell_fleet, run_fleet, run_scenario_fleet, scenario_spec, CellFleetConfig, CellFleetRun,
    FleetDigest, DEFAULT_CHUNK,
};
use threegol_bench::{registry, resolve_workers, DynExperiment, Pool, Report, Scale};
use threegol_caps::{evaluate_estimator, AllowanceEstimator};
use threegol_traces::{device_free_history, ScenarioConfig, DEFAULT_SCENARIO_SEED};

/// Days the live traced-scenario fleet simulates in this report.
const SCENARIO_DAYS: u16 = 7;

/// Homes in the live fleet run at full scale. Small enough to add only
/// seconds to the report, large enough that every ADSL tier × device
/// mix in [`threegol_bench::fleet::home_spec`] appears many times.
const FLEET_HOMES_FULL: f64 = 200.0;

/// The recorded million-home run (see the section text for why the
/// gain rows and digest reproduce bit for bit anywhere while the
/// throughput and RSS lines are machine-specific).
const RECORDED_1M: &str = "\
fleet: 1000000 homes (virtual net, virtual time)
gain over ADSL alone        min   ~p50   mean    max
  vod prebuffer              1.37   1.83   1.88   2.77
  photo upload               1.79   3.67   4.69  11.92
onloaded 595407.88 MB to 3G paths, 100010.68 MB duplicate waste, 50833330 virtual-net events
1000000 homes on 1 worker(s), chunk 64: 1383.26 s wall (723 homes/s, 36749 net events/s); report digest 36f8644e7ac9100a
peak RSS 11.5 MiB
per-home cost: 0.9 \u{b5}s setup + 1378.9 \u{b5}s workload + 2.8 \u{b5}s teardown
";

/// Render the fleet-at-scale section: a live streamed fleet run folded
/// into this report, then the recorded million-home run with its exact
/// reproduction command. Returns the Markdown and whether the live
/// checks passed.
fn fleet_section(digest: &FleetDigest, homes: usize) -> (String, bool) {
    let min_ok = digest.upload_gain.min > 1.0;
    let p50_ok = digest.upload_gain.p50() > 1.2;
    let mut out = String::new();
    out.push_str("## fleet — §6 aggregates from the live prototype, at fleet scale\n\n");
    out.push_str(
        "Section 6 of the paper aggregates per-home gains measured in ~10 \
         deployed households. The reproduction's live prototype runs *whole \
         households* — HLS VoD prebuffer and multi-device photo upload through \
         the splitting proxies, one single-threaded tokio runtime per home on a \
         virtual net and virtual clock — and streams them through the worker \
         pool in chunks, folding each report into a mergeable digest \
         (DESIGN.md §11). Virtual time makes every home a pure function of its \
         index, so the gain distributions and the content digest below \
         reproduce bit for bit on any machine and any worker count.\n\n",
    );
    out.push_str(&format!(
        "Live run folded into this report ({homes} homes at this scale):\n\n```text\n{}digest {:016x}\n```\n",
        digest.render(),
        digest.digest(),
    ));
    out.push_str("\n| check | paper | measured | |\n|---|---|---|---|\n");
    out.push_str(&format!(
        "| worst-home upload gain | §6: onloading never hurts (> 1×) | {:.2}× | {} |\n",
        digest.upload_gain.min,
        if min_ok { "✅" } else { "⚠️" }
    ));
    out.push_str(&format!(
        "| median upload gain | §6: phones roughly double the uplink | {:.2}× | {} |\n",
        digest.upload_gain.p50(),
        if p50_ok { "✅" } else { "⚠️" }
    ));
    out.push_str(
        "\n### Recorded million-home run\n\n\
         The same binary scales four orders of magnitude past the paper's \
         deployment on one core in flat memory — the streamed fold never \
         materializes the fleet:\n\n\
         ```text\n\
         $ cargo run -p threegol-bench --release --bin fleet -- 1000000 1 64\n",
    );
    out.push_str(RECORDED_1M);
    out.push_str(
        "```\n\n\
         Throughput, wall-clock and peak RSS above are machine-specific \
         (recorded on the 1-core reference container; the RSS ceiling is \
         enforced at 256 MiB by `bench_summary` and the `fleet_scale` test). \
         The gain table and the digest are not: rerunning with any worker \
         count or chunk size — `fleet -- 1000000 7 23` included — must \
         reproduce them bit for bit, because each home is deterministic under \
         virtual time and the digest merge reassembles chunk partials in \
         index order (tested at 200, 5 000 and 10 000 homes; the merge \
         algebra makes the invariant size-independent).\n\n",
    );
    (out, min_ok && p50_ok)
}

/// Render the Fig 11 section: the cell-coupled fleet's aggregate
/// cellular load after the fixed-point iteration. Returns the Markdown
/// and whether the shape checks passed.
fn cells_section(run: &CellFleetRun) -> (String, bool) {
    let block = |lo: usize, hi: usize| -> f64 {
        run.loads.iter().map(|l| (lo..hi).map(|h| l.dl_bps[h] + l.ul_bps[h]).sum::<f64>()).sum()
    };
    let evening = block(18, 24);
    let night = block(2, 8);
    // Cells 2 and 3 of the default city: tourist/congested vs
    // suburban/well-provisioned, compared at the mobile evening peak.
    let congested_share = run.profiles[2].down_bps[19];
    let well_share = run.profiles[3].down_bps[19];
    let converged_ok = run.converged;
    // A handful of homes cannot sample 24 hours; the diurnal-shape
    // check needs a fleet big enough that the hour assignment's wired
    // curve shows (the full-scale report is 200 homes).
    let shape_applicable = run.digest.homes >= 100;
    let shape_ok = !shape_applicable || evening > 2.0 * night;
    let shed_ok = congested_share < well_share;
    let mut out = String::new();
    out.push_str(
        "## fig11-fleet — aggregate 3G cell load under city-wide onloading, \
         from the live coupled fleet\n\n",
    );
    out.push_str(
        "Figure 11 asks the §6 question: if a whole city's DSL homes onload \
         onto the shared 3G cells, what load lands on the cells, and when? The \
         reproduction couples the streamed fleet to `threegol-radio`'s city \
         grid: every home is pinned to a cell (weighted by area kind) and an \
         hour of day (distributed like the wired diurnal curve of Fig 1), each \
         fleet pass charges its onloaded bytes to its `(cell, hour)` slot, and \
         the measured load feeds back as the next pass's per-phone capacity \
         shares until the shares settle — a fixed point of the load ⇄ \
         capacity loop, reached deterministically (same pass count, same \
         digest, byte for byte, for any worker count or chunk size).\n\n",
    );
    out.push_str(&format!("```text\n{}```\n", run.render()));
    out.push_str("\n| check | paper | measured | |\n|---|---|---|---|\n");
    out.push_str(&format!(
        "| fixed point | §6: onloading self-limits (stable operating point) | \
         {} passes, converged: {} | {} |\n",
        run.passes,
        run.converged,
        if converged_ok { "✅" } else { "⚠️" }
    ));
    out.push_str(&format!(
        "| diurnal shape | Fig 11: onload follows the wired evening peak | \
         {} | {} |\n",
        if shape_applicable {
            format!("evening/night load {:.1}×", evening / night.max(1.0))
        } else {
            "n/a at this scale (< 100 homes)".to_string()
        },
        if shape_ok { "✅" } else { "⚠️" }
    ));
    out.push_str(&format!(
        "| provisioning | §6: congested cells yield smaller shares at peak | \
         {:.2} vs {:.2} Mbit/s @19h | {} |\n",
        congested_share / 1e6,
        well_share / 1e6,
        if shed_ok { "✅" } else { "⚠️" }
    ));
    out.push('\n');
    (out, converged_ok && shape_ok && shed_ok)
}

/// Render the §6-live section: the traced multi-day fleet with the
/// allowance loop closed, cross-checked against the offline
/// `threegol-caps` backtest on the *same* generated free-capacity
/// histories. Returns the Markdown and whether the checks passed.
fn scenario_section(digest: &FleetDigest, homes: usize) -> (String, bool) {
    let s = &digest.scenario;
    let config = ScenarioConfig::paper(DEFAULT_SCENARIO_SEED);
    let months = config.history_months + SCENARIO_DAYS as usize / 30 + 1;
    let est = AllowanceEstimator::paper();
    // The exact histories the live loop drew (prefix-stable per device),
    // and the exact grants it must therefore have handed out: a 7-day
    // run crosses no month boundary, so every device's daily grant is
    // its seeded-window monthly allowance over 30 for all 7 days.
    let mut histories: Vec<Vec<f64>> = Vec::new();
    let mut expected_granted = 0.0f64;
    for home in 0..homes as u32 {
        let devices = scenario_spec(home, SCENARIO_DAYS, DEFAULT_SCENARIO_SEED).devices as usize;
        for device in 0..devices {
            let h = device_free_history(&config, home, device, months);
            expected_granted +=
                est.monthly_allowance(&h[..config.history_months]) / 30.0 * SCENARIO_DAYS as f64;
            histories.push(h);
        }
    }
    let offline = evaluate_estimator(&est, &histories);
    let granted = s.granted_bytes();
    let grants_ok = (granted - expected_granted).abs() <= expected_granted.max(1.0) * 1e-6;
    // A handful of homes cannot pin down population fractions; the
    // band checks need the full-scale street (200 homes).
    let bands_applicable = homes >= 50;
    let captured = s.captured_fraction();
    let captured_ok = !bands_applicable || (0.30..0.85).contains(&captured);
    let overrun = s.overrun_rate();
    let overrun_ok = overrun < 0.5 && (overrun > 0.0 || !bands_applicable);
    let backtest_ok = offline.mean_overrun_days < 1.0;
    let mut out = String::new();
    out.push_str("## scenario — §6 live: a simulated week with the allowance loop closed\n\n");
    out.push_str(&format!(
        "The paper evaluates `3GOLa(t) = F̄u(t) − α·σ̄u(t)` *offline*, replaying \
         MNO billing records (est06 above). The reproduction also closes the \
         loop live: each of the {homes} streamed households runs a trace-driven \
         {SCENARIO_DAYS}-day scenario under virtual time — diurnal VoD/upload \
         schedules, phones leaving and rejoining the home Wi-Fi mid-day — and \
         each phone's daily grant is its own monthly 3GOLa(t) over 30, debited \
         as bytes flow. A phone that exhausts its grant stops announcing and \
         drops out of path discovery until the next simulated day; month \
         boundaries refit the estimator on the lived window. The per-day and \
         per-hour onload rows below fold exactly-associatively, so this digest \
         too is byte-identical for any worker count, chunk size, or runtime \
         mode.\n\n"
    ));
    out.push_str(&format!("```text\n{}digest {:016x}\n```\n", digest.render(), digest.digest()));
    out.push_str(&format!(
        "\nOffline backtest on the *same* generated histories ({} devices, \
         {months} months each, prefix-stable so both readers see identical \
         numbers): τ = 5, α = 4 uses {:.0}% of free capacity with {:.2} \
         overrun days/month ({:.1}% of months).\n",
        histories.len(),
        offline.free_capacity_used * 100.0,
        offline.mean_overrun_days,
        offline.overrun_month_fraction * 100.0,
    ));
    out.push_str("\n| check | paper | measured | |\n|---|---|---|---|\n");
    out.push_str(&format!(
        "| live grants == offline estimator | §6: allowance computed from billing history | \
         {:.1} vs {:.1} MB granted | {} |\n",
        granted / 1e6,
        expected_granted / 1e6,
        if grants_ok { "✅" } else { "⚠️" }
    ));
    out.push_str(&format!(
        "| live captured fraction | §6: a conservative guard leaves headroom (~65% usable) | \
         {:.0}% of granted allowance consumed | {} |\n",
        captured * 100.0,
        if captured_ok { "✅" } else { "⚠️" }
    ));
    out.push_str(&format!(
        "| live daily overruns | §6: overruns happen but stay the minority | \
         {:.1}% of device-days | {} |\n",
        overrun * 100.0,
        if overrun_ok { "✅" } else { "⚠️" }
    ));
    out.push_str(&format!(
        "| offline backtest | §6: expected overrun under 1 day per month | \
         {:.2} days/month | {} |\n",
        offline.mean_overrun_days,
        if backtest_ok { "✅" } else { "⚠️" }
    ));
    out.push('\n');
    (out, grants_ok && captured_ok && overrun_ok && backtest_ok)
}

fn main() {
    let scale = match std::env::args().nth(1) {
        None => Scale::FULL,
        Some(raw) => match raw
            .parse::<f64>()
            .map_err(|e| e.to_string())
            .and_then(|v| Scale::new(v).map_err(|e| e.to_string()))
        {
            Ok(scale) => scale,
            Err(err) => {
                eprintln!("repro_all: bad scale {raw:?}: {err}");
                std::process::exit(2);
            }
        },
    };
    let workers_arg = match std::env::args().nth(2) {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("repro_all: bad worker count {raw:?}: expected an integer ≥ 1");
                std::process::exit(2);
            }
        },
    };
    let experiments: Vec<&'static dyn DynExperiment> = registry().all().collect();
    let workers = resolve_workers(workers_arg);

    // One shared pool executes every experiment's units; a lightweight
    // driver thread per experiment submits its units and merges the
    // partials as they complete. Drivers mostly block, so the CPU
    // parallelism is the pool's worker count, not 22 + workers.
    let mut slots: Vec<Option<Report>> = (0..experiments.len()).map(|_| None).collect();
    let fleet_homes = ((FLEET_HOMES_FULL * scale.get()).round() as usize).max(1);
    let (fleet_digest, cell_run, scenario_digest) = Pool::with(workers, |pool| {
        std::thread::scope(|scope| {
            for (experiment, slot) in experiments.iter().zip(slots.iter_mut()) {
                scope.spawn(move || {
                    eprintln!("running {} …", experiment.id());
                    *slot = Some(experiment.run_sharded(scale, pool));
                });
            }
        });
        eprintln!("running fleet ({fleet_homes} live homes) …");
        let digest = run_fleet(fleet_homes, DEFAULT_CHUNK, pool);
        eprintln!("running cell-coupled fleet ({fleet_homes} homes, fixed point) …");
        let cells = run_cell_fleet(fleet_homes, DEFAULT_CHUNK, pool, &CellFleetConfig::default());
        eprintln!("running traced-scenario fleet ({fleet_homes} homes, {SCENARIO_DAYS} days) …");
        let scenario = run_scenario_fleet(
            fleet_homes,
            SCENARIO_DAYS,
            DEFAULT_SCENARIO_SEED,
            DEFAULT_CHUNK,
            pool,
        );
        (digest, cells, scenario)
    });
    let reports: Vec<Report> =
        slots.into_iter().map(|r| r.expect("every experiment ran")).collect();

    println!("# EXPERIMENTS — paper vs reproduction\n");
    println!(
        "Generated by `cargo run -p threegol-bench --release --bin repro_all` (scale {}).\n",
        scale.get()
    );
    println!(
        "Absolute numbers come from the simulated substrate, not the authors' \
         testbed; the checks assert the *shape* of each result (who wins, by \
         what factor, where crossovers sit).\n"
    );
    let mut all_ok = true;
    for report in &reports {
        eprint!("{}", report.render());
        print!("{}", report.render_markdown());
        all_ok &= report.all_ok();
    }
    let (fleet_md, fleet_ok) = fleet_section(&fleet_digest, fleet_homes);
    eprint!("{}", fleet_digest.render());
    print!("{fleet_md}");
    all_ok &= fleet_ok;
    let (cells_md, cells_ok) = cells_section(&cell_run);
    eprint!("{}", cell_run.render());
    print!("{cells_md}");
    all_ok &= cells_ok;
    let (scenario_md, scenario_ok) = scenario_section(&scenario_digest, fleet_homes);
    eprint!("{}", scenario_digest.render());
    print!("{scenario_md}");
    all_ok &= scenario_ok;
    let mut failed: Vec<&str> = reports.iter().filter(|r| !r.all_ok()).map(|r| r.id).collect();
    if !fleet_ok {
        failed.push("fleet");
    }
    if !cells_ok {
        failed.push("fig11-cells");
    }
    if !scenario_ok {
        failed.push("scenario-live");
    }
    if !all_ok {
        eprintln!("checks failed in: {failed:?}");
        std::process::exit(1);
    }
    eprintln!("all {} experiments passed their shape checks", reports.len());
}
