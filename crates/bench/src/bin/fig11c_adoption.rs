//! Reproduction binary for experiment `fig11c` (see DESIGN.md §6).
//!
//! Usage: `fig11c_adoption [scale] [workers]` — `scale` in (0, 1] (default 1),
//! `workers` defaults to `THREEGOL_WORKERS` or the core count.
fn main() {
    threegol_bench::bin_main("fig11c");
}
