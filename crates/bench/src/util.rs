//! Report structure and text-table formatting shared by all
//! reproduction experiments.

/// One paper-versus-measured comparison.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being compared.
    pub name: String,
    /// The paper's claim.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measurement is within the tolerance the experiment
    /// chose (shape-level agreement, not absolute-number matching).
    pub ok: bool,
}

impl Check {
    /// Build a check.
    pub fn new(
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> Check {
        Check { name: name.into(), paper: paper.into(), measured: measured.into(), ok }
    }
}

/// One experiment's regenerated output.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `"fig06"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The regenerated rows/series, preformatted.
    pub body: String,
    /// Headline paper-vs-measured checks.
    pub checks: Vec<Check>,
}

impl Report {
    /// Start building a report: headers, rows and checks accumulate on
    /// the [`ReportBuilder`], which formats the body table on
    /// [`ReportBuilder::finish`]. Deliberately named `new` — the
    /// builder is the only way to construct a `Report` field-by-field,
    /// and call sites read naturally.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(id: &'static str, title: &'static str) -> ReportBuilder {
        ReportBuilder { id, title, headers: Vec::new(), rows: Vec::new(), checks: Vec::new() }
    }

    /// Render for the terminal.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {}\n\n{}\n", self.id, self.title, self.body);
        if !self.checks.is_empty() {
            out.push_str("\npaper vs measured:\n");
            for c in &self.checks {
                out.push_str(&format!(
                    "  [{}] {}: paper {} | measured {}\n",
                    if c.ok { "ok" } else { "!!" },
                    c.name,
                    c.paper,
                    c.measured
                ));
            }
        }
        out
    }

    /// Render as a Markdown section for EXPERIMENTS.md.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n```text\n{}```\n", self.id, self.title, self.body);
        if !self.checks.is_empty() {
            out.push_str("\n| check | paper | measured | |\n|---|---|---|---|\n");
            for c in &self.checks {
                out.push_str(&format!(
                    "| {} | {} | {} | {} |\n",
                    c.name,
                    c.paper,
                    c.measured,
                    if c.ok { "✅" } else { "⚠️" }
                ));
            }
        }
        out.push('\n');
        out
    }

    /// True if every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Builder returned by [`Report::new`]: collects the table headers,
/// rows and paper-vs-measured checks, then formats the aligned body
/// table once on [`ReportBuilder::finish`] — replacing the ad-hoc
/// row-vector bookkeeping every experiment module used to repeat.
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    id: &'static str,
    title: &'static str,
    headers: Vec<&'static str>,
    rows: Vec<Vec<String>>,
    checks: Vec<Check>,
}

impl ReportBuilder {
    /// Set the body table's column headers.
    pub fn headers(mut self, headers: &[&'static str]) -> ReportBuilder {
        self.headers = headers.to_vec();
        self
    }

    /// Append one body row (must match the header count).
    pub fn row(mut self, row: Vec<String>) -> ReportBuilder {
        self.rows.push(row);
        self
    }

    /// Append many body rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<String>>) -> ReportBuilder {
        self.rows.extend(rows);
        self
    }

    /// Append one paper-vs-measured check.
    pub fn check(
        mut self,
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> ReportBuilder {
        self.checks.push(Check::new(name, paper, measured, ok));
        self
    }

    /// Format the body table and produce the report.
    pub fn finish(self) -> Report {
        Report {
            id: self.id,
            title: self.title,
            body: table(&self.headers, &self.rows),
            checks: self.checks,
        }
    }
}

/// Format an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            for _ in cell.chars().count()..*w {
                line.push(' ');
            }
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(headers.iter().map(|s| s.to_string()).collect(), &widths));
    out.push_str(&fmt_row(widths.iter().map(|w| "-".repeat(*w)).collect(), &widths));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Format bits/s as Mbit/s with 2 decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// Format seconds with 1 decimal.
pub fn secs(s: f64) -> String {
    format!("{s:.1}")
}

/// Scaled repetition count: at least 2, `full` at scale 1.
pub fn reps(full: u64, scale: f64) -> u64 {
    ((full as f64 * scale).round() as u64).max(2)
}

/// Relative closeness check: |a/b − 1| ≤ tol.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    if b == 0.0 {
        return a == 0.0;
    }
    (a / b - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "v"],
            &[vec!["a".into(), "1.0".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn report_rendering() {
        let r = Report {
            id: "figX",
            title: "test",
            body: "row\n".into(),
            checks: vec![Check::new("c", "1", "1.05", true)],
        };
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("[ok]"));
        let md = r.render_markdown();
        assert!(md.contains("## figX"));
        assert!(md.contains("✅"));
        assert!(r.all_ok());
    }

    #[test]
    fn builder_matches_literal_construction() {
        let built = Report::new("figX", "test")
            .headers(&["name", "v"])
            .row(vec!["a".into(), "1.0".into()])
            .rows([vec!["longer".into(), "22".into()]])
            .check("c", "1", "1.05", true)
            .finish();
        let literal = Report {
            id: "figX",
            title: "test",
            body: table(
                &["name", "v"],
                &[vec!["a".into(), "1.0".into()], vec!["longer".into(), "22".into()]],
            ),
            checks: vec![Check::new("c", "1", "1.05", true)],
        };
        assert_eq!(built.render(), literal.render());
        assert_eq!(built.render_markdown(), literal.render_markdown());
    }

    #[test]
    fn helpers() {
        assert_eq!(mbps(2_500_000.0), "2.50");
        assert_eq!(secs(1.26), "1.3");
        assert_eq!(reps(30, 1.0), 30);
        assert_eq!(reps(30, 0.1), 3);
        assert_eq!(reps(30, 0.0), 2);
        assert!(close(1.05, 1.0, 0.1));
        assert!(!close(1.5, 1.0, 0.1));
        assert!(close(0.0, 0.0, 0.1));
    }
}
