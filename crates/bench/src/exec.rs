//! The replication-sharding execution layer: a work-stealing pool of
//! scoped threads that runs an experiment's independent replication
//! units across cores.
//!
//! Design:
//!
//! * jobs enter through a shared [`crossbeam::deque::Injector`];
//! * each worker owns a local deque and follows the classic
//!   crossbeam discipline — pop local work first, then grab a batch
//!   from the injector, then steal from a sibling;
//! * [`map`] fans a `Vec` of units out as one job per unit and
//!   reassembles the results **in unit order**, so the merged output
//!   is byte-identical no matter how many workers ran or how the
//!   steals interleaved;
//! * workers are scoped threads: [`Pool::with`] joins them before it
//!   returns, so a pool can never outlive the driver that created it.
//!
//! Worker-count selection (CLI argument beats environment beats
//! detection) lives in [`resolve_workers`]; the `THREEGOL_WORKERS`
//! environment variable overrides the detected core count everywhere.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crossbeam::deque::{Injector, Stealer, Worker};

/// A unit of work scheduled on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A work-stealing pool of scoped worker threads.
///
/// Created with [`Pool::with`]; shared by reference (`&Pool`) with any
/// number of submitting threads. Dropping out of `with` shuts the
/// workers down and joins them.
pub struct Pool {
    injector: Injector<Job>,
    workers: usize,
    shutdown: AtomicBool,
    /// Parking lot for idle workers: submitters notify on push.
    idle: Mutex<()>,
    wakeup: Condvar,
}

impl Pool {
    /// Run `f` with a pool of `workers` threads, then shut the pool
    /// down and join every worker before returning.
    ///
    /// `workers == 0` is clamped to 1. With one worker the pool still
    /// works but [`map`] short-circuits to inline execution, so a
    /// 1-worker pool is exactly the serial path.
    pub fn with<R>(workers: usize, f: impl FnOnce(&Pool) -> R) -> R {
        let workers = workers.max(1);
        let pool = Pool {
            injector: Injector::new(),
            workers,
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            wakeup: Condvar::new(),
        };
        let locals: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Job>> = locals.iter().map(|w| w.stealer()).collect();
        std::thread::scope(|scope| {
            let pool_ref = &pool;
            let stealers = &stealers;
            for (index, local) in locals.into_iter().enumerate() {
                scope.spawn(move || pool_ref.worker_loop(index, local, stealers));
            }
            // Catch a panicking driver (e.g. a unit panic re-raised by
            // [`map`]) so the shutdown flag is always set: otherwise
            // the workers never exit and the scope join hangs forever.
            let result = catch_unwind(AssertUnwindSafe(|| f(pool_ref)));
            pool_ref.shutdown.store(true, Ordering::SeqCst);
            {
                let _guard = pool_ref.idle.lock().expect("pool idle lock");
                pool_ref.wakeup.notify_all();
            }
            match result {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            }
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submit one job for execution on any worker.
    pub fn submit(&self, job: Job) {
        self.injector.push(job);
        // Taking the idle lock orders this notify against any worker's
        // empty-check-then-wait, so a push can't slip between the two
        // and leave the worker parked with work available.
        let _guard = self.idle.lock().expect("pool idle lock");
        self.wakeup.notify_all();
    }

    fn worker_loop(&self, index: usize, local: Worker<Job>, stealers: &[Stealer<Job>]) {
        loop {
            let job = local
                .pop()
                .or_else(|| self.injector.steal_batch_and_pop(&local).success())
                .or_else(|| {
                    stealers
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != index)
                        .find_map(|(_, s)| s.steal().success())
                });
            match job {
                Some(job) => job(),
                None => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Park until a submitter notifies. The timeout is a
                    // backstop for work that sits in a sibling's local
                    // deque (sibling pushes don't notify).
                    let guard = self.idle.lock().expect("pool idle lock");
                    if self.injector.is_empty() && !self.shutdown.load(Ordering::SeqCst) {
                        let _ = self
                            .wakeup
                            .wait_timeout(guard, Duration::from_millis(1))
                            .expect("pool idle lock");
                    }
                }
            }
        }
    }
}

/// Run `f` over every unit on the pool and return the results in unit
/// order (deterministic merge regardless of worker count or stealing
/// interleavings).
///
/// A unit that panics re-raises the panic on the calling thread once
/// all other in-flight sends have resolved, mirroring serial behavior.
/// With a single worker, or a single unit, everything runs inline on
/// the caller — the exact serial code path.
pub fn map<U, P, F>(pool: &Pool, units: Vec<U>, f: F) -> Vec<P>
where
    U: Send + Sync + 'static,
    P: Send + 'static,
    F: Fn(&U) -> P + Send + Sync + 'static,
{
    let n = units.len();
    fold(pool, units, f, Vec::with_capacity(n), |mut all, partial| {
        all.push(partial);
        all
    })
}

/// Run `f` over every unit on the pool and fold the partial results
/// into `init` with `merge`, **in unit order**, as they arrive.
///
/// This is the streaming counterpart of [`map`]: instead of holding
/// every partial result until the end, the caller's accumulator
/// absorbs each one the moment all earlier units have been absorbed —
/// partials that finish out of order wait in a buffer bounded by the
/// pool's reordering depth (at most the in-flight unit count), so the
/// driver's memory stays proportional to the worker count, never to
/// the unit count.
///
/// The merge order is the unit order regardless of how many workers
/// ran or how the steals interleaved, so an order-sensitive
/// accumulator (a running digest, a float fold) produces byte-identical
/// results for any worker count. With a single worker, or a single
/// unit, everything runs inline on the caller — the exact serial path.
///
/// A unit that panics re-raises the panic on the calling thread,
/// mirroring serial behavior.
pub fn fold<U, P, A, F, M>(pool: &Pool, units: Vec<U>, f: F, init: A, mut merge: M) -> A
where
    U: Send + Sync + 'static,
    P: Send + 'static,
    F: Fn(&U) -> P + Send + Sync + 'static,
    M: FnMut(A, P) -> A,
{
    let n = units.len();
    if pool.workers() <= 1 || n <= 1 {
        return units.iter().map(f).fold(init, merge);
    }
    let units = Arc::new(units);
    let f = Arc::new(f);
    let (tx, rx) = mpsc::channel();
    for index in 0..n {
        let units = Arc::clone(&units);
        let f = Arc::clone(&f);
        let tx = tx.clone();
        pool.submit(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| f(&units[index])));
            // A disconnected receiver means the driver already gave up
            // (another unit panicked); dropping the result is fine.
            let _ = tx.send((index, result));
        }));
    }
    drop(tx);
    let mut acc = init;
    let mut next = 0usize;
    let mut pending: BTreeMap<usize, P> = BTreeMap::new();
    for _ in 0..n {
        let (index, result) = rx.recv().expect("pool worker dropped a unit result");
        match result {
            Ok(partial) => {
                pending.insert(index, partial);
                while let Some(partial) = pending.remove(&next) {
                    acc = merge(acc, partial);
                    next += 1;
                }
            }
            Err(payload) => resume_unwind(payload),
        }
    }
    debug_assert!(pending.is_empty() && next == n, "every unit merged exactly once");
    acc
}

/// Pick the worker count: explicit `cli` argument if given, else the
/// `THREEGOL_WORKERS` environment variable, else the machine's
/// available parallelism.
pub fn resolve_workers(cli: Option<usize>) -> usize {
    cli.or_else(|| {
        std::env::var("THREEGOL_WORKERS").ok().and_then(|v| v.trim().parse::<usize>().ok())
    })
    .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_unit_order() {
        let units: Vec<u64> = (0..100).collect();
        let out = Pool::with(4, |pool| {
            map(pool, units, |&u| {
                // Scramble completion order.
                if u % 7 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
                u * 3
            })
        });
        assert_eq!(out, (0..100).map(|u| u * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn one_worker_matches_many_workers() {
        let units: Vec<u64> = (0..50).collect();
        let serial = Pool::with(1, |pool| map(pool, units.clone(), |&u| u * u));
        let parallel = Pool::with(8, |pool| map(pool, units, |&u| u * u));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_usable_from_concurrent_drivers() {
        Pool::with(4, |pool| {
            std::thread::scope(|scope| {
                for d in 0..6u64 {
                    scope.spawn(move || {
                        let units: Vec<u64> = (0..40).collect();
                        let out = map(pool, units, move |&u| u + d);
                        assert_eq!(out, (0..40).map(|u| u + d).collect::<Vec<u64>>());
                    });
                }
            });
        });
    }

    #[test]
    fn fold_merges_in_unit_order_for_any_worker_count() {
        // An order-sensitive accumulator: a polynomial hash of the
        // unit results. Any reordering changes the value.
        let hash = |workers: usize| {
            let units: Vec<u64> = (0..200).collect();
            Pool::with(workers, |pool| {
                fold(
                    pool,
                    units,
                    |&u| {
                        if u % 5 == 0 {
                            std::thread::sleep(Duration::from_micros(150));
                        }
                        u * 7 + 1
                    },
                    0u64,
                    |acc, p| acc.wrapping_mul(0x100000001b3).wrapping_add(p),
                )
            })
        };
        let serial = hash(1);
        assert_eq!(hash(2), serial);
        assert_eq!(hash(4), serial);
        assert_eq!(hash(7), serial);
    }

    #[test]
    fn fold_panic_propagates_to_driver() {
        let result = std::panic::catch_unwind(|| {
            Pool::with(4, |pool| {
                fold(
                    pool,
                    (0..16u64).collect::<Vec<u64>>(),
                    |&u| {
                        assert!(u != 9, "unit 9 exploded");
                        u
                    },
                    0u64,
                    |acc, p| acc + p,
                )
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn unit_panic_propagates_to_driver() {
        let result = std::panic::catch_unwind(|| {
            Pool::with(4, |pool| {
                map(pool, (0..16u64).collect::<Vec<u64>>(), |&u| {
                    assert!(u != 11, "unit 11 exploded");
                    u
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let out = Pool::with(0, |pool| {
            assert_eq!(pool.workers(), 1);
            map(pool, vec![1, 2, 3], |&u: &i32| u * 2)
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn resolve_workers_prefers_cli() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert!(resolve_workers(None) >= 1);
    }
}
