//! The deterministic proxy-fleet harness at fleet scale: N whole
//! households from the live prototype (`threegol-proxy`), each an
//! isolated tokio runtime on its own virtual-network namespace,
//! **streamed** through the work-stealing [`Pool`] in chunks and
//! aggregated into a mergeable [`FleetDigest`].
//!
//! Nothing is ever materialized per home: a [`HomeSpec`] is a pure
//! `Copy` function of the home index built on the worker's stack, a
//! [`HomeReport`] is folded into the worker's chunk digest the moment
//! the home finishes, and [`crate::exec::fold`] absorbs chunk digests
//! into the fleet digest in chunk order as they arrive. The driver's
//! live state is one digest per in-flight chunk — a million-home fleet
//! runs in the same flat tens-of-megabytes RSS as a hundred-home one
//! (see [`FLEET_RSS_CEILING_BYTES`]).
//!
//! Determinism contract: each home is a deterministic function of its
//! index (own runtime, own virtual clock, own virtual net), chunk
//! digests fold homes in index order, and the fleet digest merges
//! chunks in chunk order — so the final digest is byte-identical for
//! any worker count and chunk size, across repeated runs. All
//! [`FleetDigest`] state is exactly mergeable (integer counts,
//! fixed-point integer sums, min/max, histogram buckets, and a
//! polynomial hash monoid), so the merge is associative as well as
//! order-preserving; see `DESIGN.md` §11.

use threegol_proxy::{Home, HomeReport, HomeSpec};

use crate::exec::{fold, map, Pool};

/// The spec for home `index`: the paper-default household with the
/// access links cycled through four ADSL tiers and one-to-three phones
/// per home, so the fleet is heterogeneous (a street, not one house
/// copied N times) while staying a pure function of the index.
pub fn home_spec(index: u32) -> HomeSpec {
    const ADSL_TIERS: [(f64, f64); 4] = [(2e6, 0.3e6), (4e6, 0.5e6), (6e6, 0.7e6), (8e6, 1.0e6)];
    let (down, up) = ADSL_TIERS[(index % 4) as usize];
    HomeSpec {
        adsl_down_bps: down,
        adsl_up_bps: up,
        devices: 1 + (index % 3) as usize,
        ..HomeSpec::paper_default(index)
    }
}

/// Default homes per streamed unit: big enough that pool bookkeeping
/// is noise (a chunk is hundreds of milliseconds of work), small
/// enough that a million-home fleet still load-balances across
/// workers and the reorder buffer stays tiny.
pub const DEFAULT_CHUNK: usize = 64;

/// Documented hard ceiling on peak RSS for a streamed fleet run of
/// *any* size, one million homes included: 256 MiB.
///
/// The streamed design makes peak memory a function of the worker
/// count (one in-flight chunk digest per worker plus one home's
/// transient allocations per worker), never of the fleet size; the
/// `fleet_scale` integration test and the `bench_summary` million-home
/// row both fail if a run exceeds this.
pub const FLEET_RSS_CEILING_BYTES: u64 = 256 * 1024 * 1024;

/// Number of buckets in a [`MetricDigest`] histogram.
pub const HIST_BUCKETS: usize = 64;

/// Fixed-point scale for exactly-mergeable metric sums: values are
/// accumulated as `round(v * 2^20)` in 128-bit integers, so summation
/// is associative to the last bit (unlike `f64` addition) while
/// keeping ~1e-6 absolute resolution and room for a million homes of
/// gigabyte-sized byte counts.
const FP_SCALE: f64 = (1u64 << 20) as f64;

/// 64-bit FNV-1a offset basis / prime (the prime doubles as the odd
/// multiplier of the polynomial hash monoid).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn to_fp(v: f64) -> i128 {
    (v * FP_SCALE).round() as i128
}

fn from_fp(fp: i128) -> f64 {
    fp as f64 / FP_SCALE
}

/// Mergeable summary of one per-home metric: count, exact fixed-point
/// sum, min/max, and a 64-bucket quarter-log2 histogram covering
/// `[2^-4, 2^12)` (0.0625 .. 4096, ~19% per bucket) from which
/// quantiles are estimated. Every field merges exactly (integer adds,
/// float min/max), so [`MetricDigest::merge`] is associative and a
/// chunked merge is bit-identical to the sequential fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricDigest {
    /// Observations folded in.
    pub count: u64,
    /// Exact sum, fixed-point (`2^-20` units).
    sum_fp: i128,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// Quarter-log2 bucket counts; values outside the covered range
    /// clamp to the end buckets.
    pub hist: [u64; HIST_BUCKETS],
}

impl MetricDigest {
    /// The identity digest: no observations.
    pub fn empty() -> MetricDigest {
        MetricDigest {
            count: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: [0; HIST_BUCKETS],
        }
    }

    fn bucket(v: f64) -> usize {
        // NaN and non-positive values (which log2 can't place) land in
        // the first bucket.
        if v <= 0.0 || v.is_nan() {
            return 0;
        }
        let b = ((v.log2() + 4.0) * 4.0).floor();
        b.clamp(0.0, (HIST_BUCKETS - 1) as f64) as usize
    }

    /// Fold one observation in. Values must be finite.
    pub fn observe(&mut self, v: f64) {
        assert!(v.is_finite(), "metric observation must be finite, got {v}");
        self.count += 1;
        self.sum_fp += to_fp(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist[Self::bucket(v)] += 1;
    }

    /// Fold another digest in. Exact and associative: integer adds and
    /// float min/max only.
    pub fn merge(&mut self, other: &MetricDigest) {
        self.count += other.count;
        self.sum_fp += other.sum_fp;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.hist.iter_mut().zip(other.hist.iter()) {
            *mine += *theirs;
        }
    }

    /// Sum of all observations (fixed-point rounded).
    pub fn sum(&self) -> f64 {
        from_fp(self.sum_fp)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Median estimate from the histogram: the geometric midpoint of
    /// the bucket holding the middle observation (~±9% with the
    /// quarter-log2 buckets). 0 when empty.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Quantile estimate from the histogram (see [`MetricDigest::p50`]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.hist.iter().enumerate() {
            seen += n;
            if seen > rank {
                return f64::exp2((b as f64 + 0.5) / 4.0 - 4.0);
            }
        }
        self.max
    }
}

/// Mergeable rollup of an entire fleet: per-metric digests, exact
/// byte totals, virtual-net event counts, and an order-sensitive
/// content hash — everything the old per-home report vector was for,
/// in a few kilobytes of `Copy` state.
///
/// `merge` is **associative** and order-preserving, so any chunking of
/// the home sequence produces bit-identical results as long as chunks
/// merge in home order — which [`run_fleet`] guarantees for every
/// worker count. The content hash is a polynomial fold of per-home
/// FNV-1a hashes: home `i` contributes `fnv(report_i)` and the
/// combined hash of a sequence is `Σ fnv(report_i) · R^(n-1-i)` in
/// wrapping 64-bit arithmetic, represented as the pair
/// `(hash, R^n)` so two digests concatenate in O(1).
///
/// ```
/// use threegol_bench::fleet::FleetDigest;
/// use threegol_proxy::HomeReport;
///
/// let report = |index: u32| HomeReport {
///     index,
///     vod_bytes: 5e5,
///     vod_secs: 1.0 + index as f64,
///     vod_gain: 2.0,
///     upload_bytes: 3e5,
///     upload_secs: 2.0,
///     upload_gain: 3.0,
///     upload_device_bytes: 2e5,
///     upload_wasted_bytes: 1e4,
/// };
///
/// // Sequential fold of four homes...
/// let mut all = FleetDigest::empty();
/// for i in 0..4 {
///     all.observe(&report(i));
/// }
///
/// // ...equals any associative chunking, merged in home order.
/// let mut left = FleetDigest::empty();
/// left.observe(&report(0));
/// let mut right = FleetDigest::empty();
/// right.observe(&report(1));
/// right.observe(&report(2));
/// right.observe(&report(3));
/// left.merge(&right);
/// assert_eq!(left, all);
/// assert_eq!(left.digest(), all.digest());
///
/// // ...but a different order is a different fleet.
/// let mut swapped = FleetDigest::empty();
/// swapped.observe(&report(1));
/// swapped.observe(&report(0));
/// let mut tail = FleetDigest::empty();
/// tail.observe(&report(2));
/// tail.observe(&report(3));
/// swapped.merge(&tail);
/// assert_ne!(swapped.digest(), all.digest());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetDigest {
    /// Homes folded in.
    pub homes: u64,
    /// Per-home VoD prebuffer gain over ADSL alone.
    pub vod_gain: MetricDigest,
    /// Per-home photo-upload gain over ADSL alone.
    pub upload_gain: MetricDigest,
    /// Per-home VoD prebuffer wall time (virtual seconds).
    pub vod_secs: MetricDigest,
    /// Per-home upload batch wall time (virtual seconds).
    pub upload_secs: MetricDigest,
    /// Virtual-net events across all homes (socket binds + connects +
    /// datagrams delivered); bumped by the fleet runner, merged by
    /// addition.
    pub net_events: u64,
    /// Exact totals, fixed-point.
    vod_bytes_fp: i128,
    upload_bytes_fp: i128,
    device_bytes_fp: i128,
    wasted_bytes_fp: i128,
    /// Polynomial content hash `Σ fnv(report_i) · R^(n-1-i)`.
    hash: u64,
    /// `R^n` for the `n` reports folded in — the concatenation weight.
    weight: u64,
}

/// FNV-1a over the canonical byte encoding of a report: the index and
/// every metric's exact bit pattern. Stable across platforms (no
/// `Debug` formatting involved) and sensitive to every bit of every
/// field.
fn fnv_report(r: &HomeReport) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&r.index.to_le_bytes());
    for v in [
        r.vod_bytes,
        r.vod_secs,
        r.vod_gain,
        r.upload_bytes,
        r.upload_secs,
        r.upload_gain,
        r.upload_device_bytes,
        r.upload_wasted_bytes,
    ] {
        eat(&v.to_bits().to_le_bytes());
    }
    h
}

impl FleetDigest {
    /// The identity digest: zero homes. Merging it in either direction
    /// is a no-op.
    pub fn empty() -> FleetDigest {
        FleetDigest {
            homes: 0,
            vod_gain: MetricDigest::empty(),
            upload_gain: MetricDigest::empty(),
            vod_secs: MetricDigest::empty(),
            upload_secs: MetricDigest::empty(),
            net_events: 0,
            vod_bytes_fp: 0,
            upload_bytes_fp: 0,
            device_bytes_fp: 0,
            wasted_bytes_fp: 0,
            hash: 0,
            weight: 1,
        }
    }

    /// Fold one home's report in (appends to the hashed sequence).
    pub fn observe(&mut self, report: &HomeReport) {
        self.homes += 1;
        self.vod_gain.observe(report.vod_gain);
        self.upload_gain.observe(report.upload_gain);
        self.vod_secs.observe(report.vod_secs);
        self.upload_secs.observe(report.upload_secs);
        self.vod_bytes_fp += to_fp(report.vod_bytes);
        self.upload_bytes_fp += to_fp(report.upload_bytes);
        self.device_bytes_fp += to_fp(report.upload_device_bytes);
        self.wasted_bytes_fp += to_fp(report.upload_wasted_bytes);
        self.hash = self.hash.wrapping_mul(FNV_PRIME).wrapping_add(fnv_report(report));
        self.weight = self.weight.wrapping_mul(FNV_PRIME);
    }

    /// Concatenate `other`'s home sequence after this one.
    ///
    /// Associative and exact: counts, histogram buckets and
    /// fixed-point sums add; min/max combine; the content hashes
    /// concatenate through the `(hash, weight)` monoid — so
    /// `(a·b)·c == a·(b·c)` bit for bit, and any chunked merge in
    /// home order equals the sequential fold. See the type-level
    /// example.
    pub fn merge(&mut self, other: &FleetDigest) {
        self.homes += other.homes;
        self.vod_gain.merge(&other.vod_gain);
        self.upload_gain.merge(&other.upload_gain);
        self.vod_secs.merge(&other.vod_secs);
        self.upload_secs.merge(&other.upload_secs);
        self.net_events += other.net_events;
        self.vod_bytes_fp += other.vod_bytes_fp;
        self.upload_bytes_fp += other.upload_bytes_fp;
        self.device_bytes_fp += other.device_bytes_fp;
        self.wasted_bytes_fp += other.wasted_bytes_fp;
        self.hash = self.hash.wrapping_mul(other.weight).wrapping_add(other.hash);
        self.weight = self.weight.wrapping_mul(other.weight);
    }

    /// The order-sensitive content hash of every report folded in: two
    /// fleets agree on this only if every home's every metric agrees
    /// bit for bit, in the same order.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Total VoD prebuffer bytes fetched across the fleet.
    pub fn vod_bytes(&self) -> f64 {
        from_fp(self.vod_bytes_fp)
    }

    /// Total upload batch bytes across the fleet.
    pub fn upload_bytes(&self) -> f64 {
        from_fp(self.upload_bytes_fp)
    }

    /// Total upload bytes that crossed 3G paths.
    pub fn device_bytes(&self) -> f64 {
        from_fp(self.device_bytes_fp)
    }

    /// Total upload bytes moved by aborted duplicates.
    pub fn wasted_bytes(&self) -> f64 {
        from_fp(self.wasted_bytes_fp)
    }

    /// Human-readable rollup table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fleet: {} homes (virtual net, virtual time)\n", self.homes));
        out.push_str("gain over ADSL alone        min   ~p50   mean    max\n");
        for (name, d) in [("vod prebuffer", &self.vod_gain), ("photo upload", &self.upload_gain)] {
            out.push_str(&format!(
                "  {name:<24} {:>6.2} {:>6.2} {:>6.2} {:>6.2}\n",
                d.min,
                d.p50(),
                d.mean(),
                d.max
            ));
        }
        out.push_str(&format!(
            "onloaded {:.2} MB to 3G paths, {:.2} MB duplicate waste, \
             {} virtual-net events\n",
            self.device_bytes() / 1e6,
            self.wasted_bytes() / 1e6,
            self.net_events
        ));
        out
    }
}

/// Run one home inside its own fresh runtime and fold the outcome
/// (report + that runtime's virtual-net event count) into `digest`.
fn run_home_into(digest: &mut FleetDigest, index: u32) {
    let spec = home_spec(index);
    let (report, stats) = tokio::runtime::block_on(async {
        let report = Home::run(&spec).await;
        (report, tokio::net::stats())
    });
    let report = report.unwrap_or_else(|e| panic!("home {index} failed: {e}"));
    digest.observe(&report);
    digest.net_events += stats.tcp_binds + stats.tcp_connects + stats.udp_binds + stats.datagrams;
}

/// Run a fleet of `homes` households, streamed through the pool in
/// `chunk`-home units, and return the fleet digest.
///
/// Memory is flat in the fleet size: no spec, report, or result vector
/// of length `homes` ever exists (see module docs and
/// [`FLEET_RSS_CEILING_BYTES`]). The digest is byte-identical for any
/// worker count and any chunk size, because chunk digests fold homes
/// in index order and merge in chunk order.
///
/// ```
/// use threegol_bench::fleet::run_fleet;
/// use threegol_bench::Pool;
///
/// let two = Pool::with(2, |pool| run_fleet(4, 2, pool));
/// let seven = Pool::with(7, |pool| run_fleet(4, 1, pool));
/// assert_eq!(two, seven);
/// assert_eq!(two.homes, 4);
/// assert!(two.upload_gain.min > 0.0);
/// ```
///
/// Panics if any home's workload fails: in the virtual-net prototype
/// every failure is a bug, never weather.
pub fn run_fleet(homes: usize, chunk: usize, pool: &Pool) -> FleetDigest {
    assert!(homes <= u32::MAX as usize, "home index space is u32");
    let homes = homes as u32;
    let chunk = chunk.max(1) as u32;
    let ranges: Vec<(u32, u32)> =
        (0..homes).step_by(chunk as usize).map(|start| (start, homes.min(start + chunk))).collect();
    fold(
        pool,
        ranges,
        |&(start, end)| {
            let mut part = FleetDigest::empty();
            for index in start..end {
                run_home_into(&mut part, index);
            }
            part
        },
        FleetDigest::empty(),
        |mut acc, part| {
            acc.merge(&part);
            acc
        },
    )
}

/// Run a small fleet and keep every per-home report — the
/// materializing path for tests and close inspection. The big-fleet
/// entry point is [`run_fleet`]; this one holds `homes` reports in
/// memory.
pub fn collect_reports(homes: usize, pool: &Pool) -> Vec<HomeReport> {
    assert!(homes <= u32::MAX as usize, "home index space is u32");
    let indices: Vec<u32> = (0..homes as u32).collect();
    map(pool, indices, |&index| {
        let spec = home_spec(index);
        tokio::runtime::block_on(Home::run(&spec))
            .unwrap_or_else(|e| panic!("home {index} failed: {e}"))
    })
}

/// Peak resident set size of this process so far (`VmHWM`), in bytes.
/// `None` where `/proc` is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_heterogeneous_but_deterministic() {
        assert_eq!(home_spec(5), home_spec(5));
        assert_ne!(home_spec(0).adsl_down_bps, home_spec(1).adsl_down_bps);
        assert_eq!(home_spec(0).devices, 1);
        assert_eq!(home_spec(2).devices, 3);
        assert_eq!(home_spec(4).adsl_down_bps, home_spec(0).adsl_down_bps);
        // The index space reaches a million homes and beyond.
        assert_eq!(home_spec(1_000_000).index, 1_000_000);
    }

    fn synthetic_report(index: u32) -> HomeReport {
        // Deterministic, heterogeneous, and full of awkward float
        // values so order-dependence would show.
        let x = (index as f64 * 0.7370915).sin().abs() + 0.01;
        HomeReport {
            index,
            vod_bytes: 5e5 + index as f64,
            vod_secs: x * 3.0,
            vod_gain: 0.5 + x * 4.0,
            upload_bytes: 3e5,
            upload_secs: x * 7.0,
            upload_gain: 0.3 + x * 11.0,
            upload_device_bytes: 1e5 * x,
            upload_wasted_bytes: 1e4 * x,
        }
    }

    /// Digest the chunked-by-`c` sequence `[0, n)`, merging chunk
    /// digests left to right — the shape a `c`-chunk fleet produces.
    fn chunked_digest(n: u32, c: u32) -> FleetDigest {
        let mut acc = FleetDigest::empty();
        let mut start = 0;
        while start < n {
            let mut part = FleetDigest::empty();
            for i in start..n.min(start + c) {
                part.observe(&synthetic_report(i));
            }
            acc.merge(&part);
            start += c;
        }
        acc
    }

    #[test]
    fn digest_merge_is_associative_and_matches_sequential_fold() {
        // 10k synthetic homes: the sequential fold vs every chunking a
        // 1-, 2- or 7-worker fleet run could produce (chunk sizes that
        // divide, don't divide, and exceed the fleet), bit for bit.
        let sequential = chunked_digest(10_000, u32::MAX);
        for chunk in [1, 2, 7, 64, 1000, 9999, 10_000, 20_000] {
            let chunked = chunked_digest(10_000, chunk);
            assert_eq!(chunked, sequential, "chunk size {chunk} diverged");
            assert_eq!(chunked.digest(), sequential.digest());
        }

        // Raw associativity on uneven splits: (a·b)·c == a·(b·c).
        let part = |lo: u32, hi: u32| {
            let mut d = FleetDigest::empty();
            for i in lo..hi {
                d.observe(&synthetic_report(i));
            }
            d
        };
        let (a, b, c) = (part(0, 17), part(17, 6000), part(6000, 10_000));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // Identity on both sides.
        let mut with_empty = FleetDigest::empty();
        with_empty.merge(&sequential);
        with_empty.merge(&FleetDigest::empty());
        assert_eq!(with_empty, sequential);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut forward = FleetDigest::empty();
        forward.observe(&synthetic_report(0));
        forward.observe(&synthetic_report(1));
        let mut backward = FleetDigest::empty();
        backward.observe(&synthetic_report(1));
        backward.observe(&synthetic_report(0));
        assert_ne!(forward.digest(), backward.digest());
    }

    #[test]
    fn digest_sees_every_bit() {
        let mut a = FleetDigest::empty();
        a.observe(&synthetic_report(3));
        let mut tweaked = synthetic_report(3);
        tweaked.upload_wasted_bytes = f64::from_bits(tweaked.upload_wasted_bytes.to_bits() ^ 1);
        let mut b = FleetDigest::empty();
        b.observe(&tweaked);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn metric_digest_summarizes() {
        let mut d = MetricDigest::empty();
        for v in [1.0, 2.0, 3.0] {
            d.observe(v);
        }
        assert_eq!(d.count, 3);
        assert_eq!((d.min, d.max), (1.0, 3.0));
        assert!((d.mean() - 2.0).abs() < 1e-5);
        // Histogram p50: within one quarter-log2 bucket of the truth.
        assert!((d.p50() / 2.0).log2().abs() < 0.26, "p50 {}", d.p50());
    }

    #[test]
    fn small_fleet_digests_and_renders() {
        let digest = Pool::with(2, |pool| run_fleet(4, 2, pool));
        assert_eq!(digest.homes, 4);
        assert!(digest.upload_gain.min > 0.0);
        assert!(digest.device_bytes() > 0.0);
        assert!(digest.net_events > 0);
        assert!(!digest.render().is_empty());
        // The collect path sees the same homes.
        let reports = Pool::with(2, |pool| collect_reports(4, pool));
        let mut refold = FleetDigest::empty();
        for r in &reports {
            refold.observe(r);
        }
        assert_eq!(refold.digest(), digest.digest());
    }
}
