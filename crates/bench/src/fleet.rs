//! The deterministic proxy-fleet harness at fleet scale: N whole
//! households from the live prototype (`threegol-proxy`), each an
//! isolated tokio runtime on its own virtual-network namespace,
//! **streamed** through the work-stealing [`Pool`] in chunks and
//! aggregated into a mergeable [`FleetDigest`].
//!
//! Nothing is ever materialized per home: a [`HomeSpec`] is a pure
//! `Copy` function of the home index built on the worker's stack, a
//! [`HomeReport`] is folded into the worker's chunk digest the moment
//! the home finishes, and [`crate::exec::fold`] absorbs chunk digests
//! into the fleet digest in chunk order as they arrive. The driver's
//! live state is one digest per in-flight chunk — a million-home fleet
//! runs in the same flat tens-of-megabytes RSS as a hundred-home one
//! (see [`FLEET_RSS_CEILING_BYTES`]).
//!
//! Determinism contract: each home is a deterministic function of its
//! index (own runtime, own virtual clock, own virtual net), chunk
//! digests fold homes in index order, and the fleet digest merges
//! chunks in chunk order — so the final digest is byte-identical for
//! any worker count and chunk size, across repeated runs. All
//! [`FleetDigest`] state is exactly mergeable (integer counts,
//! fixed-point integer sums, min/max, histogram buckets, and a
//! polynomial hash monoid), so the merge is associative as well as
//! order-preserving; see `DESIGN.md` §11.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

use threegol_proxy::{
    CellProfile, Home, HomeReport, HomeSpec, Scenario, Tier, MAX_SCENARIO_DAYS, NO_CELL,
    SCENARIO_FP_SCALE,
};
use threegol_radio::{CellLoad, CellMap};
use tokio::runtime::Runtime;

use crate::exec::{fold, map, Pool};

/// The spec for home `index`: the paper-default household with the
/// access links cycled through the four ADSL [`Tier`]s and
/// one-to-three phones per home, so the fleet is heterogeneous (a
/// street, not one house copied N times) while staying a pure function
/// of the index.
pub fn home_spec(index: u32) -> HomeSpec {
    HomeSpec::tier(Tier::of_index(index)).index(index).devices(1 + (index % 3) as usize)
}

/// The spec for home `index` of a traced-scenario fleet: the same
/// heterogeneous street as [`home_spec`], driven by the multi-day
/// scenario engine from local midnight (`hour(0)`, so every simulated
/// day is complete) instead of the fixed paper script.
pub fn scenario_spec(index: u32, days: u16, seed: u64) -> HomeSpec {
    home_spec(index).hour(0).scenario(Scenario::Traced { days, seed })
}

/// Default homes per streamed unit: big enough that pool bookkeeping
/// is noise (a chunk is hundreds of milliseconds of work), small
/// enough that a million-home fleet still load-balances across
/// workers and the reorder buffer stays tiny.
pub const DEFAULT_CHUNK: usize = 64;

/// Documented hard ceiling on peak RSS for a streamed fleet run of
/// *any* size, one million homes included: 256 MiB.
///
/// The streamed design makes peak memory a function of the worker
/// count (one in-flight chunk digest per worker plus one home's
/// transient allocations per worker), never of the fleet size; the
/// `fleet_scale` integration test and the `bench_summary` million-home
/// row both fail if a run exceeds this.
pub const FLEET_RSS_CEILING_BYTES: u64 = 256 * 1024 * 1024;

/// Number of buckets in a [`MetricDigest`] histogram.
pub const HIST_BUCKETS: usize = 64;

/// Fixed-point scale for exactly-mergeable metric sums: values are
/// accumulated as `round(v * 2^20)` in 128-bit integers, so summation
/// is associative to the last bit (unlike `f64` addition) while
/// keeping ~1e-6 absolute resolution and room for a million homes of
/// gigabyte-sized byte counts.
const FP_SCALE: f64 = (1u64 << 20) as f64;

/// 64-bit FNV-1a offset basis / prime (the prime doubles as the odd
/// multiplier of the polynomial hash monoid).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn to_fp(v: f64) -> i128 {
    (v * FP_SCALE).round() as i128
}

fn from_fp(fp: i128) -> f64 {
    fp as f64 / FP_SCALE
}

/// Mergeable summary of one per-home metric: count, exact fixed-point
/// sum, min/max, and a 64-bucket quarter-log2 histogram covering
/// `[2^-4, 2^12)` (0.0625 .. 4096, ~19% per bucket) from which
/// quantiles are estimated. Every field merges exactly (integer adds,
/// float min/max), so [`MetricDigest::merge`] is associative and a
/// chunked merge is bit-identical to the sequential fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricDigest {
    /// Observations folded in.
    pub count: u64,
    /// Exact sum, fixed-point (`2^-20` units).
    sum_fp: i128,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// Quarter-log2 bucket counts; values outside the covered range
    /// clamp to the end buckets.
    pub hist: [u64; HIST_BUCKETS],
}

impl MetricDigest {
    /// The identity digest: no observations.
    pub fn empty() -> MetricDigest {
        MetricDigest {
            count: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: [0; HIST_BUCKETS],
        }
    }

    fn bucket(v: f64) -> usize {
        // NaN and non-positive values (which log2 can't place) land in
        // the first bucket.
        if v <= 0.0 || v.is_nan() {
            return 0;
        }
        let b = ((v.log2() + 4.0) * 4.0).floor();
        b.clamp(0.0, (HIST_BUCKETS - 1) as f64) as usize
    }

    /// Fold one observation in. Values must be finite.
    pub fn observe(&mut self, v: f64) {
        assert!(v.is_finite(), "metric observation must be finite, got {v}");
        self.count += 1;
        self.sum_fp += to_fp(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist[Self::bucket(v)] += 1;
    }

    /// Fold another digest in. Exact and associative: integer adds and
    /// float min/max only.
    pub fn merge(&mut self, other: &MetricDigest) {
        self.count += other.count;
        self.sum_fp += other.sum_fp;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.hist.iter_mut().zip(other.hist.iter()) {
            *mine += *theirs;
        }
    }

    /// Sum of all observations (fixed-point rounded).
    pub fn sum(&self) -> f64 {
        from_fp(self.sum_fp)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Median estimate from the histogram: the geometric midpoint of
    /// the bucket holding the middle observation (~±9% with the
    /// quarter-log2 buckets). 0 when empty.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Quantile estimate from the histogram (see [`MetricDigest::p50`]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.hist.iter().enumerate() {
            seen += n;
            if seen > rank {
                return f64::exp2((b as f64 + 0.5) / 4.0 - 4.0);
            }
        }
        self.max
    }
}

/// Mergeable rollup of an entire fleet: per-metric digests, exact
/// byte totals, virtual-net event counts, and an order-sensitive
/// content hash — everything the old per-home report vector was for,
/// in a few kilobytes of `Copy` state.
///
/// `merge` is **associative** and order-preserving, so any chunking of
/// the home sequence produces bit-identical results as long as chunks
/// merge in home order — which [`run_fleet`] guarantees for every
/// worker count. The content hash is a polynomial fold of per-home
/// FNV-1a hashes: home `i` contributes `fnv(report_i)` and the
/// combined hash of a sequence is `Σ fnv(report_i) · R^(n-1-i)` in
/// wrapping 64-bit arithmetic, represented as the pair
/// `(hash, R^n)` so two digests concatenate in O(1).
///
/// ```
/// use threegol_bench::fleet::FleetDigest;
/// use threegol_proxy::HomeReport;
///
/// let report = |index: u32| HomeReport {
///     index,
///     cell: index % 2,
///     hour: 21,
///     vod_bytes: 5e5,
///     vod_secs: 1.0 + index as f64,
///     vod_gain: 2.0,
///     upload_bytes: 3e5,
///     upload_secs: 2.0,
///     upload_gain: 3.0,
///     vod_device_bytes: 1e5,
///     upload_device_bytes: 2e5,
///     upload_wasted_bytes: 1e4,
///     ..HomeReport::empty(index)
/// };
///
/// // Sequential fold of four homes...
/// let mut all = FleetDigest::empty();
/// for i in 0..4 {
///     all.observe(&report(i));
/// }
///
/// // ...equals any associative chunking, merged in home order.
/// let mut left = FleetDigest::empty();
/// left.observe(&report(0));
/// let mut right = FleetDigest::empty();
/// right.observe(&report(1));
/// right.observe(&report(2));
/// right.observe(&report(3));
/// left.merge(&right);
/// assert_eq!(left, all);
/// assert_eq!(left.digest(), all.digest());
///
/// // ...but a different order is a different fleet.
/// let mut swapped = FleetDigest::empty();
/// swapped.observe(&report(1));
/// swapped.observe(&report(0));
/// let mut tail = FleetDigest::empty();
/// tail.observe(&report(2));
/// tail.observe(&report(3));
/// swapped.merge(&tail);
/// assert_ne!(swapped.digest(), all.digest());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetDigest {
    /// Homes folded in.
    pub homes: u64,
    /// Per-home VoD prebuffer gain over ADSL alone.
    pub vod_gain: MetricDigest,
    /// Per-home photo-upload gain over ADSL alone.
    pub upload_gain: MetricDigest,
    /// Per-home VoD prebuffer wall time (virtual seconds).
    pub vod_secs: MetricDigest,
    /// Per-home upload batch wall time (virtual seconds).
    pub upload_secs: MetricDigest,
    /// Virtual-net events across all homes (socket binds + connects +
    /// datagrams delivered); bumped by the fleet runner, merged by
    /// addition.
    pub net_events: u64,
    /// Per-cell onloaded-byte accumulators for cell-coupled fleets
    /// (all zeros when every home runs isolated 3G).
    pub cells: CellDigest,
    /// Per-day / per-hour onload and allowance-overrun accumulators
    /// for traced-scenario fleets (all zeros when every home runs the
    /// paper-default script).
    pub scenario: ScenarioDigest,
    /// Exact totals, fixed-point.
    vod_bytes_fp: i128,
    upload_bytes_fp: i128,
    device_bytes_fp: i128,
    wasted_bytes_fp: i128,
    /// Polynomial content hash `Σ fnv(report_i) · R^(n-1-i)`.
    hash: u64,
    /// `R^n` for the `n` reports folded in — the concatenation weight.
    weight: u64,
}

/// FNV-1a over the canonical byte encoding of a report: the index and
/// every metric's exact bit pattern. Stable across platforms (no
/// `Debug` formatting involved) and sensitive to every bit of every
/// field.
fn fnv_report(r: &HomeReport) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&r.index.to_le_bytes());
    eat(&r.cell.to_le_bytes());
    eat(&[r.hour]);
    for v in [
        r.vod_bytes,
        r.vod_secs,
        r.vod_gain,
        r.upload_bytes,
        r.upload_secs,
        r.upload_gain,
        r.vod_device_bytes,
        r.upload_device_bytes,
        r.upload_wasted_bytes,
    ] {
        eat(&v.to_bits().to_le_bytes());
    }
    // Scenario fields are hashed only for traced runs: a paper-default
    // report (`days == 0`, every field below zero) keeps the exact byte
    // stream of the pre-scenario digest, so recorded baselines — the
    // million-home run included — stay bit-for-bit reproducible.
    if r.days > 0 {
        eat(&r.days.to_le_bytes());
        eat(&r.sessions.to_le_bytes());
        eat(&r.adsl_only_sessions.to_le_bytes());
        eat(&r.overrun_device_days.to_le_bytes());
        eat(&r.device_days.to_le_bytes());
        eat(&r.granted_allowance_fp.to_le_bytes());
        eat(&r.used_allowance_fp.to_le_bytes());
        for v in r.day_dl_fp.iter().chain(&r.day_ul_fp).chain(&r.hour_dl_fp).chain(&r.hour_ul_fp) {
            eat(&v.to_le_bytes());
        }
    }
    h
}

/// Most cells a [`CellDigest`] can track: enough for the paper's
/// city-scale sketch (§6 works with ~1.7 M lines over ~2000 cells but
/// the aggregate analysis bins them into a handful of archetypes)
/// while keeping the digest a fixed-size `Copy` value.
pub const MAX_CELLS: usize = 32;

/// Fixed-point scale for per-`(cell, hour)` byte accumulators: 2^10
/// units (~1 millibyte resolution). Coarser than [`FP_SCALE`] on
/// purpose — the slots are `i64`, and a million-home fleet can land
/// several terabytes of onloaded bytes in one `(cell, hour)` slot, so
/// the scale leaves ~2^53 bytes (8 petabytes) of headroom per slot.
const CELL_FP_SCALE: f64 = (1u64 << 10) as f64;

/// Exactly-mergeable per-cell onload accumulators: for every
/// `(cell, hour-of-day)` slot, the fixed-point sum of downlink (VoD)
/// and uplink (upload) bytes that crossed 3G paths, plus a per-cell
/// home count. All state is integers, so `merge` is element-wise
/// addition — associative to the last bit, like the rest of
/// [`FleetDigest`].
///
/// Homes with [`NO_CELL`] (isolated 3G) are not accumulated; a
/// non-`NO_CELL` cell index must be below [`MAX_CELLS`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDigest {
    /// Homes attached per cell.
    pub homes: [u64; MAX_CELLS],
    /// Downlink onloaded bytes per `(cell, hour)`, fixed-point
    /// (`cell * 24 + hour` layout, `2^-10` units).
    dl_fp: [i64; MAX_CELLS * 24],
    /// Uplink onloaded bytes per `(cell, hour)`, same layout.
    ul_fp: [i64; MAX_CELLS * 24],
}

impl CellDigest {
    /// The identity digest: no homes, no bytes.
    pub fn empty() -> CellDigest {
        CellDigest { homes: [0; MAX_CELLS], dl_fp: [0; MAX_CELLS * 24], ul_fp: [0; MAX_CELLS * 24] }
    }

    fn to_cell_fp(v: f64) -> i64 {
        (v * CELL_FP_SCALE).round() as i64
    }

    /// Fold one home's onload into its `(cell, hour)` slot. No-op for
    /// isolated homes.
    pub fn observe(&mut self, report: &HomeReport) {
        if report.cell == NO_CELL {
            return;
        }
        let cell = report.cell as usize;
        assert!(cell < MAX_CELLS, "cell {cell} out of digest range");
        let slot = cell * 24 + (report.hour as usize % 24);
        self.homes[cell] += 1;
        self.dl_fp[slot] += Self::to_cell_fp(report.vod_device_bytes);
        self.ul_fp[slot] += Self::to_cell_fp(report.upload_device_bytes);
    }

    /// Fold another digest in: element-wise integer adds, exact and
    /// associative.
    pub fn merge(&mut self, other: &CellDigest) {
        for (mine, theirs) in self.homes.iter_mut().zip(other.homes.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.dl_fp.iter_mut().zip(other.dl_fp.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.ul_fp.iter_mut().zip(other.ul_fp.iter()) {
            *mine += *theirs;
        }
    }

    /// Onloaded bytes for cell `cell` at hour `hour`, `(down, up)`.
    pub fn bytes_at(&self, cell: u32, hour: usize) -> (f64, f64) {
        let slot = cell as usize * 24 + hour % 24;
        (self.dl_fp[slot] as f64 / CELL_FP_SCALE, self.ul_fp[slot] as f64 / CELL_FP_SCALE)
    }

    /// Total onloaded bytes across all cells and hours, `(down, up)`.
    pub fn total_bytes(&self) -> (f64, f64) {
        let dl: i64 = self.dl_fp.iter().sum();
        let ul: i64 = self.ul_fp.iter().sum();
        (dl as f64 / CELL_FP_SCALE, ul as f64 / CELL_FP_SCALE)
    }

    /// The accumulated load on the first `cells` cells as
    /// [`CellLoad`]s: the hourly byte sums become mean extra bits/s
    /// over that hour, with each simulated home standing in for
    /// `scale_per_home` city households (the fleet samples the city;
    /// see `CellFleetConfig::scale_per_home`).
    pub fn loads(&self, cells: u32, scale_per_home: f64) -> Vec<CellLoad> {
        (0..cells)
            .map(|cell| {
                let mut load = CellLoad::empty(cell);
                load.homes = self.homes[cell as usize];
                for hour in 0..24 {
                    let (dl, ul) = self.bytes_at(cell, hour);
                    load.dl_bps[hour] = dl * 8.0 / 3600.0 * scale_per_home;
                    load.ul_bps[hour] = ul * 8.0 / 3600.0 * scale_per_home;
                }
                load
            })
            .collect()
    }
}

/// Exactly-mergeable accumulators for traced-scenario fleets
/// (DESIGN.md §14): per-day and per-hour onloaded bytes in `i64`
/// fixed-point (the reports already carry them at
/// [`SCENARIO_FP_SCALE`]), session counters, and the live allowance
/// loop's overrun/grant tallies. All integers, so `merge` is
/// element-wise addition — associative to the last bit, keeping the
/// four-invariant determinism contract for scenario fleets.
///
/// Paper-default reports (`days == 0`) are not accumulated, so a mixed
/// or classic fleet leaves this digest at the identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioDigest {
    /// Traced homes folded in.
    pub homes: u64,
    /// Total simulated device-days.
    pub device_days: u64,
    /// Device-days that exhausted a positive granted allowance.
    pub overrun_device_days: u64,
    /// VoD + upload sessions executed.
    pub sessions: u64,
    /// Sessions that ran ADSL-only (no admissible 3G path).
    pub adsl_only_sessions: u64,
    /// Daily allowance granted across device-days, fixed-point bytes.
    granted_fp: i64,
    /// Allowance consumed (`min(used, granted)` per device-day),
    /// fixed-point bytes.
    used_fp: i64,
    /// Downlink onload per scenario day, fixed-point bytes.
    day_dl_fp: [i64; MAX_SCENARIO_DAYS],
    /// Uplink onload per scenario day, fixed-point bytes.
    day_ul_fp: [i64; MAX_SCENARIO_DAYS],
    /// Downlink onload per hour of day, fixed-point bytes.
    hour_dl_fp: [i64; 24],
    /// Uplink onload per hour of day, fixed-point bytes.
    hour_ul_fp: [i64; 24],
}

impl ScenarioDigest {
    /// The identity digest: no traced homes, no bytes.
    pub fn empty() -> ScenarioDigest {
        ScenarioDigest {
            homes: 0,
            device_days: 0,
            overrun_device_days: 0,
            sessions: 0,
            adsl_only_sessions: 0,
            granted_fp: 0,
            used_fp: 0,
            day_dl_fp: [0; MAX_SCENARIO_DAYS],
            day_ul_fp: [0; MAX_SCENARIO_DAYS],
            hour_dl_fp: [0; 24],
            hour_ul_fp: [0; 24],
        }
    }

    /// Fold one home's scenario block in. No-op for paper-default
    /// reports.
    pub fn observe(&mut self, report: &HomeReport) {
        if report.days == 0 {
            return;
        }
        self.homes += 1;
        self.device_days += report.device_days as u64;
        self.overrun_device_days += report.overrun_device_days as u64;
        self.sessions += report.sessions as u64;
        self.adsl_only_sessions += report.adsl_only_sessions as u64;
        self.granted_fp += report.granted_allowance_fp;
        self.used_fp += report.used_allowance_fp;
        for (mine, theirs) in self.day_dl_fp.iter_mut().zip(report.day_dl_fp.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.day_ul_fp.iter_mut().zip(report.day_ul_fp.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.hour_dl_fp.iter_mut().zip(report.hour_dl_fp.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.hour_ul_fp.iter_mut().zip(report.hour_ul_fp.iter()) {
            *mine += *theirs;
        }
    }

    /// Fold another digest in: element-wise integer adds, exact and
    /// associative.
    pub fn merge(&mut self, other: &ScenarioDigest) {
        self.homes += other.homes;
        self.device_days += other.device_days;
        self.overrun_device_days += other.overrun_device_days;
        self.sessions += other.sessions;
        self.adsl_only_sessions += other.adsl_only_sessions;
        self.granted_fp += other.granted_fp;
        self.used_fp += other.used_fp;
        for (mine, theirs) in self.day_dl_fp.iter_mut().zip(other.day_dl_fp.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.day_ul_fp.iter_mut().zip(other.day_ul_fp.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.hour_dl_fp.iter_mut().zip(other.hour_dl_fp.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.hour_ul_fp.iter_mut().zip(other.hour_ul_fp.iter()) {
            *mine += *theirs;
        }
    }

    /// Onloaded bytes on scenario day `day`, `(down, up)`.
    pub fn bytes_on_day(&self, day: usize) -> (f64, f64) {
        (
            self.day_dl_fp[day] as f64 / SCENARIO_FP_SCALE,
            self.day_ul_fp[day] as f64 / SCENARIO_FP_SCALE,
        )
    }

    /// Onloaded bytes at hour of day `hour`, `(down, up)`.
    pub fn bytes_at_hour(&self, hour: usize) -> (f64, f64) {
        (
            self.hour_dl_fp[hour % 24] as f64 / SCENARIO_FP_SCALE,
            self.hour_ul_fp[hour % 24] as f64 / SCENARIO_FP_SCALE,
        )
    }

    /// Fraction of device-days with a positive allowance fully
    /// exhausted — the live overrun rate the §6 estimator design
    /// targets at "under one day per month" (≈ 0.033).
    pub fn overrun_rate(&self) -> f64 {
        if self.device_days == 0 {
            return 0.0;
        }
        self.overrun_device_days as f64 / self.device_days as f64
    }

    /// Fraction of the granted allowance the workload actually
    /// consumed (`Σ min(used, granted) / Σ granted`).
    pub fn captured_fraction(&self) -> f64 {
        if self.granted_fp == 0 {
            return 0.0;
        }
        self.used_fp as f64 / self.granted_fp as f64
    }

    /// Total allowance granted across device-days, bytes.
    pub fn granted_bytes(&self) -> f64 {
        self.granted_fp as f64 / SCENARIO_FP_SCALE
    }
}

impl FleetDigest {
    /// The identity digest: zero homes. Merging it in either direction
    /// is a no-op.
    pub fn empty() -> FleetDigest {
        FleetDigest {
            homes: 0,
            vod_gain: MetricDigest::empty(),
            upload_gain: MetricDigest::empty(),
            vod_secs: MetricDigest::empty(),
            upload_secs: MetricDigest::empty(),
            net_events: 0,
            cells: CellDigest::empty(),
            scenario: ScenarioDigest::empty(),
            vod_bytes_fp: 0,
            upload_bytes_fp: 0,
            device_bytes_fp: 0,
            wasted_bytes_fp: 0,
            hash: 0,
            weight: 1,
        }
    }

    /// Fold one home's report in (appends to the hashed sequence).
    pub fn observe(&mut self, report: &HomeReport) {
        self.homes += 1;
        self.vod_gain.observe(report.vod_gain);
        self.upload_gain.observe(report.upload_gain);
        self.vod_secs.observe(report.vod_secs);
        self.upload_secs.observe(report.upload_secs);
        self.cells.observe(report);
        self.scenario.observe(report);
        self.vod_bytes_fp += to_fp(report.vod_bytes);
        self.upload_bytes_fp += to_fp(report.upload_bytes);
        self.device_bytes_fp += to_fp(report.vod_device_bytes + report.upload_device_bytes);
        self.wasted_bytes_fp += to_fp(report.upload_wasted_bytes);
        self.hash = self.hash.wrapping_mul(FNV_PRIME).wrapping_add(fnv_report(report));
        self.weight = self.weight.wrapping_mul(FNV_PRIME);
    }

    /// Concatenate `other`'s home sequence after this one.
    ///
    /// Associative and exact: counts, histogram buckets and
    /// fixed-point sums add; min/max combine; the content hashes
    /// concatenate through the `(hash, weight)` monoid — so
    /// `(a·b)·c == a·(b·c)` bit for bit, and any chunked merge in
    /// home order equals the sequential fold. See the type-level
    /// example.
    pub fn merge(&mut self, other: &FleetDigest) {
        self.homes += other.homes;
        self.vod_gain.merge(&other.vod_gain);
        self.upload_gain.merge(&other.upload_gain);
        self.vod_secs.merge(&other.vod_secs);
        self.upload_secs.merge(&other.upload_secs);
        self.net_events += other.net_events;
        self.cells.merge(&other.cells);
        self.scenario.merge(&other.scenario);
        self.vod_bytes_fp += other.vod_bytes_fp;
        self.upload_bytes_fp += other.upload_bytes_fp;
        self.device_bytes_fp += other.device_bytes_fp;
        self.wasted_bytes_fp += other.wasted_bytes_fp;
        self.hash = self.hash.wrapping_mul(other.weight).wrapping_add(other.hash);
        self.weight = self.weight.wrapping_mul(other.weight);
    }

    /// The order-sensitive content hash of every report folded in: two
    /// fleets agree on this only if every home's every metric agrees
    /// bit for bit, in the same order.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Total VoD prebuffer bytes fetched across the fleet.
    pub fn vod_bytes(&self) -> f64 {
        from_fp(self.vod_bytes_fp)
    }

    /// Total upload batch bytes across the fleet.
    pub fn upload_bytes(&self) -> f64 {
        from_fp(self.upload_bytes_fp)
    }

    /// Total bytes that crossed 3G paths, both directions (VoD
    /// prefetches plus uploads).
    pub fn device_bytes(&self) -> f64 {
        from_fp(self.device_bytes_fp)
    }

    /// Total upload bytes moved by aborted duplicates.
    pub fn wasted_bytes(&self) -> f64 {
        from_fp(self.wasted_bytes_fp)
    }

    /// Human-readable rollup table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fleet: {} homes (virtual net, virtual time)\n", self.homes));
        out.push_str("gain over ADSL alone        min   ~p50   mean    max\n");
        for (name, d) in [("vod prebuffer", &self.vod_gain), ("photo upload", &self.upload_gain)] {
            out.push_str(&format!(
                "  {name:<24} {:>6.2} {:>6.2} {:>6.2} {:>6.2}\n",
                d.min,
                d.p50(),
                d.mean(),
                d.max
            ));
        }
        out.push_str(&format!(
            "onloaded {:.2} MB to 3G paths, {:.2} MB duplicate waste, \
             {} virtual-net events\n",
            self.device_bytes() / 1e6,
            self.wasted_bytes() / 1e6,
            self.net_events
        ));
        if self.scenario.device_days > 0 {
            let s = &self.scenario;
            out.push_str(&format!(
                "scenario: {} sessions over {} device-days ({} ADSL-only), \
                 overrun {}/{} device-days ({:.1}%), allowance captured {:.0}%\n",
                s.sessions,
                s.device_days,
                s.adsl_only_sessions,
                s.overrun_device_days,
                s.device_days,
                s.overrun_rate() * 100.0,
                s.captured_fraction() * 100.0,
            ));
            let peak_hour = (0..24)
                .max_by(|&a, &b| {
                    let (da, ua) = s.bytes_at_hour(a);
                    let (db, ub) = s.bytes_at_hour(b);
                    (da + ua).total_cmp(&(db + ub))
                })
                .unwrap_or(0);
            let (pd, pu) = s.bytes_at_hour(peak_hour);
            out.push_str(&format!(
                "scenario onload peaks {:.2} MB at {peak_hour:02}:00 (of {:.2} MB granted)\n",
                (pd + pu) / 1e6,
                s.granted_bytes() / 1e6,
            ));
        }
        out
    }
}

/// How each fleet worker obtains the tokio runtime a home runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// One runtime per worker thread, [`Runtime::reset`] between homes
    /// (the default): the run queue, timer wheel, task registry, and
    /// virtual-net tables keep their allocations from home to home, so
    /// per-home setup is a handful of pointer writes instead of ~8
    /// fresh `Arc`s and maps.
    Reuse,
    /// A fresh runtime for every home — the pre-reuse behaviour, kept
    /// as the reference arm of the determinism contract (the fleet
    /// digest must be byte-identical in either mode).
    Fresh,
}

impl RuntimeMode {
    /// The process-wide default: [`RuntimeMode::Reuse`], unless the
    /// `THREEGOL_FRESH_RUNTIME` environment variable is set to
    /// anything but `0` (the A/B switch `bench_summary` and profiling
    /// runs use). Read once and cached.
    pub fn default_mode() -> RuntimeMode {
        static MODE: OnceLock<RuntimeMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var_os("THREEGOL_FRESH_RUNTIME") {
            Some(v) if v != "0" => RuntimeMode::Fresh,
            _ => RuntimeMode::Reuse,
        })
    }
}

thread_local! {
    /// The worker thread's reused home runtime ([`RuntimeMode::Reuse`]).
    static HOME_RT: RefCell<Option<Runtime>> = const { RefCell::new(None) };
}

/// Hand `f` a runtime per `mode`: the thread's reused one (reset) or a
/// fresh throwaway.
fn with_runtime<R>(mode: RuntimeMode, f: impl FnOnce(&mut Runtime) -> R) -> R {
    match mode {
        RuntimeMode::Fresh => f(&mut Runtime::new()),
        RuntimeMode::Reuse => HOME_RT.with(|slot| {
            let mut slot = slot.borrow_mut();
            let rt = slot.get_or_insert_with(Runtime::new);
            rt.reset();
            f(rt)
        }),
    }
}

static HOME_COST_HOMES: AtomicU64 = AtomicU64::new(0);
static HOME_COST_SETUP_NS: AtomicU64 = AtomicU64::new(0);
static HOME_COST_WORKLOAD_NS: AtomicU64 = AtomicU64::new(0);
static HOME_COST_TEARDOWN_NS: AtomicU64 = AtomicU64::new(0);

/// Where the per-home wall time of a fleet run went, summed across all
/// workers: runtime acquire/reset (`setup`), the home's `block_on`
/// (`workload`), and digest fold + runtime release (`teardown`).
/// Collected by [`take_home_cost`]; the `bench_summary`
/// `home_cost_breakdown` row reports the per-home averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HomeCost {
    /// Homes the counters cover.
    pub homes: u64,
    /// Total nanoseconds acquiring (and resetting) runtimes.
    pub setup_ns: u64,
    /// Total nanoseconds inside `block_on` running home workloads.
    pub workload_ns: u64,
    /// Total nanoseconds folding reports and releasing runtimes.
    pub teardown_ns: u64,
}

impl HomeCost {
    fn per_home_us(&self, ns: u64) -> f64 {
        if self.homes == 0 {
            0.0
        } else {
            ns as f64 / self.homes as f64 / 1e3
        }
    }

    /// Mean setup microseconds per home.
    pub fn setup_us(&self) -> f64 {
        self.per_home_us(self.setup_ns)
    }

    /// Mean workload microseconds per home.
    pub fn workload_us(&self) -> f64 {
        self.per_home_us(self.workload_ns)
    }

    /// Mean teardown microseconds per home.
    pub fn teardown_us(&self) -> f64 {
        self.per_home_us(self.teardown_ns)
    }
}

/// Drain the process-wide home-cost counters: returns the totals
/// accumulated since the last call and rewinds them to zero.
pub fn take_home_cost() -> HomeCost {
    HomeCost {
        homes: HOME_COST_HOMES.swap(0, Relaxed),
        setup_ns: HOME_COST_SETUP_NS.swap(0, Relaxed),
        workload_ns: HOME_COST_WORKLOAD_NS.swap(0, Relaxed),
        teardown_ns: HOME_COST_TEARDOWN_NS.swap(0, Relaxed),
    }
}

/// Run one home inside a runtime obtained per `mode` and fold the
/// outcome (report + that run's virtual-net event count) into
/// `digest`. The home-cost counters get the setup / workload /
/// teardown split.
fn run_home_into(digest: &mut FleetDigest, spec: &HomeSpec, mode: RuntimeMode) {
    let start = std::time::Instant::now();
    let mut ready = start;
    let mut done = start;
    let (report, stats) = with_runtime(mode, |rt| {
        ready = std::time::Instant::now();
        let out = rt.block_on(async {
            let report = Home::run(spec).await;
            (report, tokio::net::stats())
        });
        done = std::time::Instant::now();
        out
    });
    let report = report.unwrap_or_else(|e| panic!("home {} failed: {e}", spec.index));
    digest.observe(&report);
    digest.net_events += stats.tcp_binds + stats.tcp_connects + stats.udp_binds + stats.datagrams;
    HOME_COST_HOMES.fetch_add(1, Relaxed);
    HOME_COST_SETUP_NS.fetch_add((ready - start).as_nanos() as u64, Relaxed);
    HOME_COST_WORKLOAD_NS.fetch_add((done - ready).as_nanos() as u64, Relaxed);
    HOME_COST_TEARDOWN_NS.fetch_add(done.elapsed().as_nanos() as u64, Relaxed);
}

/// Run a fleet of `homes` households, streamed through the pool in
/// `chunk`-home units, and return the fleet digest.
///
/// Memory is flat in the fleet size: no spec, report, or result vector
/// of length `homes` ever exists (see module docs and
/// [`FLEET_RSS_CEILING_BYTES`]). The digest is byte-identical for any
/// worker count and any chunk size, because chunk digests fold homes
/// in index order and merge in chunk order.
///
/// ```
/// use threegol_bench::fleet::run_fleet;
/// use threegol_bench::Pool;
///
/// let two = Pool::with(2, |pool| run_fleet(4, 2, pool));
/// let seven = Pool::with(7, |pool| run_fleet(4, 1, pool));
/// assert_eq!(two, seven);
/// assert_eq!(two.homes, 4);
/// assert!(two.upload_gain.min > 0.0);
/// ```
///
/// Panics if any home's workload fails: in the virtual-net prototype
/// every failure is a bug, never weather.
pub fn run_fleet(homes: usize, chunk: usize, pool: &Pool) -> FleetDigest {
    run_fleet_with(homes, chunk, pool, home_spec)
}

/// Run a traced-scenario fleet: [`run_fleet`]'s street of homes, each
/// driven by the multi-day scenario engine for `days` simulated days
/// at `seed` (see [`scenario_spec`]). Same streaming, same determinism
/// contract — the digest, scenario accumulators included, is
/// byte-identical for any worker count, chunk size, and runtime mode.
pub fn run_scenario_fleet(
    homes: usize,
    days: u16,
    seed: u64,
    chunk: usize,
    pool: &Pool,
) -> FleetDigest {
    run_fleet_with(homes, chunk, pool, move |index| scenario_spec(index, days, seed))
}

/// [`run_fleet`] with a caller-supplied spec function: home `index`
/// runs under `spec(index)`. The function must be a *pure* function of
/// the index — it is called on whichever worker's stack picks the
/// chunk up, and determinism of the digest rests on every call site
/// agreeing. This is the entry point cell-coupled passes use, feeding
/// per-cell capacity profiles from the previous pass into each spec.
pub fn run_fleet_with<F>(homes: usize, chunk: usize, pool: &Pool, spec: F) -> FleetDigest
where
    F: Fn(u32) -> HomeSpec + Send + Sync + 'static,
{
    run_fleet_mode(homes, chunk, pool, spec, RuntimeMode::default_mode())
}

/// [`run_fleet_with`] with an explicit [`RuntimeMode`] — the entry
/// point the determinism tests use to prove the fourth invariant:
/// the digest is byte-identical whether each home gets a fresh
/// runtime or the worker's reused one.
pub fn run_fleet_mode<F>(
    homes: usize,
    chunk: usize,
    pool: &Pool,
    spec: F,
    mode: RuntimeMode,
) -> FleetDigest
where
    F: Fn(u32) -> HomeSpec + Send + Sync + 'static,
{
    assert!(homes <= u32::MAX as usize, "home index space is u32");
    let homes = homes as u32;
    let chunk = chunk.max(1) as u32;
    let ranges: Vec<(u32, u32)> =
        (0..homes).step_by(chunk as usize).map(|start| (start, homes.min(start + chunk))).collect();
    fold(
        pool,
        ranges,
        move |&(start, end)| {
            let mut part = FleetDigest::empty();
            for index in start..end {
                run_home_into(&mut part, &spec(index), mode);
            }
            part
        },
        FleetDigest::empty(),
        |mut acc, part| {
            acc.merge(&part);
            acc
        },
    )
}

/// Run a small fleet and keep every per-home report — the
/// materializing path for tests and close inspection. The big-fleet
/// entry point is [`run_fleet`]; this one holds `homes` reports in
/// memory.
pub fn collect_reports(homes: usize, pool: &Pool) -> Vec<HomeReport> {
    assert!(homes <= u32::MAX as usize, "home index space is u32");
    let indices: Vec<u32> = (0..homes as u32).collect();
    map(pool, indices, |&index| {
        let spec = home_spec(index);
        with_runtime(RuntimeMode::default_mode(), |rt| rt.block_on(Home::run(&spec)))
            .unwrap_or_else(|e| panic!("home {index} failed: {e}"))
    })
}

/// Configuration for a cell-coupled fleet run (see [`run_cell_fleet`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFleetConfig {
    /// Shared 3G cells in the city grid (≤ [`MAX_CELLS`]).
    pub cells: u32,
    /// Fixed-point passes to run before giving up on convergence.
    pub max_passes: u32,
    /// Convergence threshold: the loop stops once no per-phone share
    /// changed by more than this relative amount between passes.
    pub tolerance: f64,
    /// City households each simulated home stands in for when its
    /// onloaded bytes are charged to the cell. The paper's back of the
    /// envelope (§2.1) puts ~880 DSL households under one urban cell;
    /// the default of 1000 lets a thousand-home fleet model a
    /// million-household city.
    pub scale_per_home: f64,
    /// Nominal (uncontended) per-phone 3G downlink, bits/s.
    pub nominal_down_bps: f64,
    /// Nominal (uncontended) per-phone 3G uplink, bits/s.
    pub nominal_up_bps: f64,
    /// Relaxation weight for the share update, `(0, 1]`: each pass
    /// moves the shares this fraction of the way toward the loads'
    /// implied shares. `1.0` is the raw undamped update, which can
    /// oscillate (low share → bytes shift to ADSL → load drops →
    /// high share → …); `0.5` halves the oscillation amplitude every
    /// pass.
    pub damping: f64,
}

impl Default for CellFleetConfig {
    fn default() -> CellFleetConfig {
        CellFleetConfig {
            cells: 8,
            max_passes: 8,
            tolerance: 0.05,
            scale_per_home: 1000.0,
            nominal_down_bps: 2e6,
            nominal_up_bps: 1e6,
            damping: 0.5,
        }
    }
}

/// The outcome of a cell-coupled fleet run: the final pass's digest,
/// how the fixed point went, and the per-cell load and share curves it
/// settled on.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFleetRun {
    /// The configuration the run used.
    pub config: CellFleetConfig,
    /// The city grid the fleet ran under.
    pub map: CellMap,
    /// Digest of the final pass (per-cell accumulators included).
    pub digest: FleetDigest,
    /// Fleet passes executed.
    pub passes: u32,
    /// Whether the share curves settled within the tolerance.
    pub converged: bool,
    /// Final per-cell 3GOL load (what the last pass put on each cell).
    pub loads: Vec<CellLoad>,
    /// The per-phone share curves the last pass ran under.
    pub profiles: Vec<CellProfile>,
}

impl CellFleetRun {
    /// Human-readable per-cell rollup: Fig 11 as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cells: {} shared 3G cells, {} pass{} ({}), \
             {:.0} households per simulated home\n",
            self.map.cells(),
            self.passes,
            if self.passes == 1 { "" } else { "es" },
            if self.converged { "converged" } else { "not converged" },
            self.config.scale_per_home,
        ));
        out.push_str(
            "cell  area              homes  peak-dl Mb/s  peak-ul Mb/s  peak-h  share@19h Mb/s\n",
        );
        for load in &self.loads {
            let site = self.map.site(load.cell);
            let share = &self.profiles[load.cell as usize];
            out.push_str(&format!(
                "  {:>2}  {:<16} {:>6}  {:>12.3}  {:>12.3}  {:>6}  {:>14.3}\n",
                load.cell,
                format!("{:?}", site.area),
                load.homes,
                load.peak_dl_bps() / 1e6,
                load.peak_ul_bps() / 1e6,
                load.peak_hour(),
                share.down_bps[19] / 1e6,
            ));
        }
        out
    }
}

/// Largest relative change between two share curves.
fn profile_shift(old: &CellProfile, new: &CellProfile) -> f64 {
    let mut shift: f64 = 0.0;
    for h in 0..24 {
        shift = shift.max((new.down_bps[h] - old.down_bps[h]).abs() / old.down_bps[h].max(1.0));
        shift = shift.max((new.up_bps[h] - old.up_bps[h]).abs() / old.up_bps[h].max(1.0));
    }
    shift
}

/// Per-phone share curves for every cell given the loads of the
/// previous pass (pure function of map + config + loads).
fn share_profiles(map: &CellMap, config: &CellFleetConfig, loads: &[CellLoad]) -> Vec<CellProfile> {
    loads
        .iter()
        .map(|load| {
            let (down_bps, up_bps) =
                map.phone_share(load.cell, config.nominal_down_bps, config.nominal_up_bps, load);
            CellProfile { cell: load.cell, down_bps, up_bps }
        })
        .collect()
}

/// Run a fleet coupled through shared 3G cells to its fixed point:
/// the paper's §6 question — what does a whole city of 3GOL homes do
/// to the cells it onloads onto? — answered by iteration.
///
/// Each pass streams the full fleet with every home's 3G capacity set
/// to its cell's per-phone share curve from the previous pass (pass 1
/// starts from the unloaded-cell shares). The pass digest's per-cell
/// accumulators then become the next pass's [`CellLoad`]s, and the
/// loop stops when no share moves by more than `config.tolerance`
/// (relative) or after `config.max_passes` passes. Load up → shares
/// down → the schedulers shift bytes back to ADSL → load down: the
/// same damping that makes the real system stable makes the iteration
/// converge.
///
/// Determinism: every pass input is a pure function of the previous
/// pass's digest, and every digest is byte-identical across worker
/// counts and chunk sizes — so the pass count, the convergence
/// verdict, the final profiles *and* the final digest are all
/// worker-invariant. The coupled fleet keeps the streamed fleet's
/// contract.
pub fn run_cell_fleet(
    homes: usize,
    chunk: usize,
    pool: &Pool,
    config: &CellFleetConfig,
) -> CellFleetRun {
    assert!(config.cells > 0 && config.cells as usize <= MAX_CELLS, "1..={MAX_CELLS} cells");
    assert!(config.max_passes > 0, "need at least one pass");
    let map = CellMap::city(config.cells);
    let empty: Vec<CellLoad> = (0..config.cells).map(CellLoad::empty).collect();
    let mut profiles = share_profiles(&map, config, &empty);
    let mut passes = 0;
    loop {
        passes += 1;
        let (pass_map, pass_profiles) = (map.clone(), profiles.clone());
        let digest = run_fleet_with(homes, chunk, pool, move |index| {
            let cell = pass_map.cell_of(index);
            home_spec(index).hour(pass_map.hour_of(index)).cell(pass_profiles[cell as usize])
        });
        let loads = digest.cells.loads(config.cells, config.scale_per_home);
        let mut next = share_profiles(&map, config, &loads);
        // Relax: move only `damping` of the way toward the implied
        // shares, so the load↔share oscillation contracts.
        for (new, old) in next.iter_mut().zip(profiles.iter()) {
            for h in 0..24 {
                new.down_bps[h] =
                    old.down_bps[h] + config.damping * (new.down_bps[h] - old.down_bps[h]);
                new.up_bps[h] = old.up_bps[h] + config.damping * (new.up_bps[h] - old.up_bps[h]);
            }
        }
        let shift = profiles
            .iter()
            .zip(next.iter())
            .map(|(old, new)| profile_shift(old, new))
            .fold(0.0, f64::max);
        let converged = shift <= config.tolerance;
        if converged || passes >= config.max_passes {
            return CellFleetRun {
                config: *config,
                map,
                digest,
                passes,
                converged,
                loads,
                profiles,
            };
        }
        profiles = next;
    }
}

/// Peak resident set size of this process so far (`VmHWM`), in bytes.
/// `None` where `/proc` is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_heterogeneous_but_deterministic() {
        assert_eq!(home_spec(5), home_spec(5));
        assert_ne!(home_spec(0).adsl_down_bps, home_spec(1).adsl_down_bps);
        assert_eq!(home_spec(0).devices, 1);
        assert_eq!(home_spec(2).devices, 3);
        assert_eq!(home_spec(4).adsl_down_bps, home_spec(0).adsl_down_bps);
        // The index space reaches a million homes and beyond.
        assert_eq!(home_spec(1_000_000).index, 1_000_000);
    }

    fn synthetic_report(index: u32) -> HomeReport {
        // Deterministic, heterogeneous, and full of awkward float
        // values so order-dependence would show.
        let x = (index as f64 * 0.7370915).sin().abs() + 0.01;
        let mut r = HomeReport {
            cell: if index.is_multiple_of(5) { threegol_proxy::NO_CELL } else { index % 5 },
            hour: (index % 24) as u8,
            vod_bytes: 5e5 + index as f64,
            vod_secs: x * 3.0,
            vod_gain: 0.5 + x * 4.0,
            upload_bytes: 3e5,
            upload_secs: x * 7.0,
            upload_gain: 0.3 + x * 11.0,
            vod_device_bytes: 2e5 * x,
            upload_device_bytes: 1e5 * x,
            upload_wasted_bytes: 1e4 * x,
            ..HomeReport::empty(index)
        };
        // A third of the synthetic street ran traced scenarios, so the
        // chunking/associativity sweeps below cover the scenario
        // accumulators too.
        if !index.is_multiple_of(3) {
            r.days = 1 + (index % 7) as u16;
            r.sessions = 2 + index % 9;
            r.adsl_only_sessions = index % 3;
            r.overrun_device_days = index % 4;
            r.device_days = r.days as u32 * 2;
            r.granted_allowance_fp = (index as i64 + 7) * 1_000_003;
            r.used_allowance_fp = index as i64 * 999_983;
            r.day_dl_fp[(index % 7) as usize] = index as i64 * 11;
            r.day_ul_fp[(index % 5) as usize] = index as i64 * 13;
            r.hour_dl_fp[(index % 24) as usize] = index as i64 * 17;
            r.hour_ul_fp[(index % 23) as usize] = index as i64 * 19;
        }
        r
    }

    /// Digest the chunked-by-`c` sequence `[0, n)`, merging chunk
    /// digests left to right — the shape a `c`-chunk fleet produces.
    fn chunked_digest(n: u32, c: u32) -> FleetDigest {
        let mut acc = FleetDigest::empty();
        let mut start = 0;
        while start < n {
            let mut part = FleetDigest::empty();
            for i in start..n.min(start + c) {
                part.observe(&synthetic_report(i));
            }
            acc.merge(&part);
            start += c;
        }
        acc
    }

    #[test]
    fn digest_merge_is_associative_and_matches_sequential_fold() {
        // 10k synthetic homes: the sequential fold vs every chunking a
        // 1-, 2- or 7-worker fleet run could produce (chunk sizes that
        // divide, don't divide, and exceed the fleet), bit for bit.
        let sequential = chunked_digest(10_000, u32::MAX);
        for chunk in [1, 2, 7, 64, 1000, 9999, 10_000, 20_000] {
            let chunked = chunked_digest(10_000, chunk);
            assert_eq!(chunked, sequential, "chunk size {chunk} diverged");
            assert_eq!(chunked.digest(), sequential.digest());
        }

        // Raw associativity on uneven splits: (a·b)·c == a·(b·c).
        let part = |lo: u32, hi: u32| {
            let mut d = FleetDigest::empty();
            for i in lo..hi {
                d.observe(&synthetic_report(i));
            }
            d
        };
        let (a, b, c) = (part(0, 17), part(17, 6000), part(6000, 10_000));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // Identity on both sides.
        let mut with_empty = FleetDigest::empty();
        with_empty.merge(&sequential);
        with_empty.merge(&FleetDigest::empty());
        assert_eq!(with_empty, sequential);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut forward = FleetDigest::empty();
        forward.observe(&synthetic_report(0));
        forward.observe(&synthetic_report(1));
        let mut backward = FleetDigest::empty();
        backward.observe(&synthetic_report(1));
        backward.observe(&synthetic_report(0));
        assert_ne!(forward.digest(), backward.digest());
    }

    #[test]
    fn digest_sees_every_bit() {
        let mut a = FleetDigest::empty();
        a.observe(&synthetic_report(3));
        let mut tweaked = synthetic_report(3);
        tweaked.upload_wasted_bytes = f64::from_bits(tweaked.upload_wasted_bytes.to_bits() ^ 1);
        let mut b = FleetDigest::empty();
        b.observe(&tweaked);
        assert_ne!(a.digest(), b.digest());
        // The hash also covers the cell-coupling fields.
        let mut recelled = synthetic_report(3);
        recelled.cell += 1;
        let mut c = FleetDigest::empty();
        c.observe(&recelled);
        assert_ne!(a.digest(), c.digest());
        let mut rehoured = synthetic_report(3);
        rehoured.hour += 1;
        let mut d = FleetDigest::empty();
        d.observe(&rehoured);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn scenario_digest_accumulates_and_gates_on_days() {
        let mut digest = FleetDigest::empty();
        for i in 0..200u32 {
            digest.observe(&synthetic_report(i));
        }
        // Totals match a direct sum over the traced reports.
        let mut device_days = 0u64;
        let mut overruns = 0u64;
        let mut granted = 0i64;
        let mut day3_dl = 0i64;
        for i in 0..200u32 {
            let r = synthetic_report(i);
            device_days += u64::from(r.device_days);
            overruns += u64::from(r.overrun_device_days);
            granted += r.granted_allowance_fp;
            day3_dl += r.day_dl_fp[3];
        }
        assert_eq!(digest.scenario.device_days, device_days);
        assert_eq!(digest.scenario.overrun_device_days, overruns);
        assert!(
            (digest.scenario.granted_bytes() - granted as f64 / SCENARIO_FP_SCALE).abs() < 1e-9
        );
        assert!(
            (digest.scenario.bytes_on_day(3).0 - day3_dl as f64 / SCENARIO_FP_SCALE).abs() < 1e-9
        );
        let rate = digest.scenario.overrun_rate();
        assert!((0.0..=1.0).contains(&rate));
        assert!((rate - overruns as f64 / device_days as f64).abs() < 1e-12);
        // The render names the scenario once device-days exist.
        assert!(digest.render().contains("scenario:"));

        // Every scenario field reaches the hash…
        let traced = synthetic_report(4); // 4 % 3 != 0 → traced
        assert!(traced.days > 0);
        let base = {
            let mut d = FleetDigest::empty();
            d.observe(&traced);
            d.digest()
        };
        for tweak in 0..4usize {
            let mut t = traced;
            match tweak {
                0 => t.overrun_device_days += 1,
                1 => t.granted_allowance_fp ^= 1,
                2 => t.day_ul_fp[7] ^= 1,
                _ => t.hour_dl_fp[21] ^= 1,
            }
            let mut d = FleetDigest::empty();
            d.observe(&t);
            assert_ne!(d.digest(), base, "scenario tweak {tweak} was invisible");
        }

        // …but only when days > 0: a paper-default report hashes and
        // accumulates identically whatever its (unused) scenario fields
        // hold, so pre-scenario recorded digests stay valid.
        let paper = synthetic_report(3); // 3 % 3 == 0 → paper default
        assert_eq!(paper.days, 0);
        let mut junk = paper;
        junk.sessions = 999;
        junk.granted_allowance_fp = 123_456;
        junk.hour_ul_fp[5] = 789;
        let mut a = FleetDigest::empty();
        a.observe(&paper);
        let mut b = FleetDigest::empty();
        b.observe(&junk);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.scenario.device_days, 0);
        assert!(!a.render().contains("scenario:"));
    }

    #[test]
    fn cell_digest_buckets_by_cell_and_hour() {
        let mut digest = CellDigest::empty();
        for i in 0..200u32 {
            digest.observe(&synthetic_report(i));
        }
        // Isolated homes (index % 5 == 0) never land in a cell.
        assert_eq!(digest.homes.iter().sum::<u64>(), 160);
        assert_eq!(digest.homes[0], 0);
        // Byte totals match a direct sum over the coupled reports.
        let (dl, ul) = digest.total_bytes();
        let mut want_dl = 0.0;
        let mut want_ul = 0.0;
        for i in 0..200u32 {
            let r = synthetic_report(i);
            if r.cell != threegol_proxy::NO_CELL {
                want_dl += r.vod_device_bytes;
                want_ul += r.upload_device_bytes;
            }
        }
        assert!((dl - want_dl).abs() < 1.0, "{dl} vs {want_dl}");
        assert!((ul - want_ul).abs() < 1.0);
        // Loads convert bytes to mean bits/s with the city scale.
        let loads = digest.loads(5, 1000.0);
        let r = synthetic_report(7); // cell 2, hour 7
        let (dl7, _) = digest.bytes_at(2, 7);
        assert!(dl7 >= r.vod_device_bytes * 0.999);
        assert!((loads[2].dl_bps[7] - dl7 * 8.0 / 3600.0 * 1000.0).abs() < 1e-6);
        assert_eq!(loads[2].cell, 2);
        assert_eq!(loads[2].homes, digest.homes[2]);
    }

    #[test]
    fn cell_fleet_reaches_a_deterministic_fixed_point() {
        let config =
            CellFleetConfig { cells: 4, scale_per_home: 20_000.0, ..CellFleetConfig::default() };
        let a = Pool::with(2, |pool| run_cell_fleet(12, 3, pool, &config));
        let b = Pool::with(1, |pool| run_cell_fleet(12, 5, pool, &config));
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.digest.digest(), b.digest.digest());
        // Every home landed in a cell, and the render names them all.
        assert_eq!(a.digest.cells.homes.iter().sum::<u64>(), 12);
        assert!(a.render().contains("shared 3G cells"));
    }

    #[test]
    fn metric_digest_summarizes() {
        let mut d = MetricDigest::empty();
        for v in [1.0, 2.0, 3.0] {
            d.observe(v);
        }
        assert_eq!(d.count, 3);
        assert_eq!((d.min, d.max), (1.0, 3.0));
        assert!((d.mean() - 2.0).abs() < 1e-5);
        // Histogram p50: within one quarter-log2 bucket of the truth.
        assert!((d.p50() / 2.0).log2().abs() < 0.26, "p50 {}", d.p50());
    }

    #[test]
    fn small_fleet_digests_and_renders() {
        let digest = Pool::with(2, |pool| run_fleet(4, 2, pool));
        assert_eq!(digest.homes, 4);
        assert!(digest.upload_gain.min > 0.0);
        assert!(digest.device_bytes() > 0.0);
        assert!(digest.net_events > 0);
        assert!(!digest.render().is_empty());
        // The collect path sees the same homes.
        let reports = Pool::with(2, |pool| collect_reports(4, pool));
        let mut refold = FleetDigest::empty();
        for r in &reports {
            refold.observe(r);
        }
        assert_eq!(refold.digest(), digest.digest());
    }
}
